//! Shared fixtures for the integration-test suite, built once per
//! test binary behind `OnceLock`s. The planner corpus is pure output
//! of `enumerate_pruned` — rebuilding it in every `#[test]` fn (as the
//! suite used to) only burned time; each accessor here returns a
//! `&'static` slice the tests borrow from.
//!
//! Integration tests are separate binaries, so each binary gets its
//! own copy — the sharing is per-binary, across its `#[test]` fns.

// Each test binary compiles this module but uses only the fixtures it
// needs; the others are intentionally dead code there.
#![allow(dead_code)]

use std::sync::OnceLock;

use tangram::tangram_passes::planner;

/// The full pruned §IV-B corpus, enumerated once per test binary.
pub fn pruned() -> &'static [planner::CodeVersion] {
    static CORPUS: OnceLock<Vec<planner::CodeVersion>> = OnceLock::new();
    CORPUS.get_or_init(planner::enumerate_pruned)
}

/// The four strongest Fig. 6 versions — the cheap subset the campaign
/// and interpreter-equivalence tests sweep.
pub fn fig6_subset() -> &'static [planner::CodeVersion] {
    static SUBSET: OnceLock<Vec<planner::CodeVersion>> = OnceLock::new();
    SUBSET.get_or_init(|| {
        planner::fig6_best()
            .into_iter()
            .take(4)
            .map(|l| planner::fig6_by_label(l).unwrap())
            .collect()
    })
}
