//! Shape assertions for the paper's evaluation claims (§IV-C), run at
//! reduced scale: the relative orderings and crossovers the figures
//! report must hold in the reproduction. EXPERIMENTS.md records the
//! full-scale numbers.

use gpu_sim::ArchConfig;
use tangram::select::select_best;
use tangram_bench::{measure_cub, measure_kokkos};

/// §IV-C1: "Tangram-synthesized code performs significantly better
/// than the hand-written CUB code for small and medium-size arrays,
/// i.e., below 1M elements. The speedup is between 2× and 6×
/// on average depending on the GPU architecture and the array size."
#[test]
fn tangram_beats_cub_below_1m_on_every_architecture() {
    for arch in ArchConfig::paper_archs() {
        for n in [256u64, 16_384, 262_144] {
            let (_t, row) = select_best(&arch, n).unwrap();
            let cub = measure_cub(&arch, n).unwrap();
            let speedup = cub / row.time_ns;
            assert!(
                speedup > 2.0,
                "{} n={n}: speedup {speedup:.2} should exceed 2x",
                arch.id
            );
            assert!(speedup < 12.0, "{} n={n}: speedup {speedup:.2} implausibly high", arch.id);
        }
    }
}

/// §IV-C1: "For large arrays … Tangram-synthesized code is between
/// 17% and 38% slower than the CUB code" (CUB's vectorized loads).
#[test]
fn cub_wins_large_arrays_via_vectorized_loads() {
    for arch in ArchConfig::paper_archs() {
        let n = 64 << 20;
        let (_t, row) = select_best(&arch, n).unwrap();
        let cub = measure_cub(&arch, n).unwrap();
        let ratio = row.time_ns / cub; // >1 = Tangram slower
        assert!(
            ratio > 1.02 && ratio < 1.6,
            "{}: Tangram/CUB at 64M = {ratio:.2}, expected ~1.05-1.4",
            arch.id
        );
    }
}

/// §IV-C2: Kepler's largest penalty (38% slower) exceeds Maxwell's
/// (7%): Kepler's scalar loads achieve the smallest fraction of its
/// vectorized bandwidth.
#[test]
fn kepler_large_array_penalty_exceeds_maxwell() {
    let ratio = |arch: &ArchConfig| {
        let n = 64 << 20;
        let (_t, row) = select_best(arch, n).unwrap();
        row.time_ns / measure_cub(arch, n).unwrap()
    };
    let kepler = ratio(&ArchConfig::kepler_k40c());
    let maxwell = ratio(&ArchConfig::maxwell_gtx980());
    assert!(
        kepler > maxwell,
        "kepler penalty {kepler:.2} should exceed maxwell {maxwell:.2}"
    );
}

/// §IV-C2/3/4: beyond ~10M elements the Kokkos code outperforms CUB
/// (≈2.2–2.7×); below ~1M its multi-kernel structure loses to CUB.
#[test]
fn kokkos_crossover() {
    for arch in ArchConfig::paper_archs() {
        let small = measure_kokkos(&arch, 16_384).unwrap() / measure_cub(&arch, 16_384).unwrap();
        let large =
            measure_cub(&arch, 64 << 20).unwrap() / measure_kokkos(&arch, 64 << 20).unwrap();
        assert!(small > 1.0, "{}: Kokkos should lose at 16K (ratio {small:.2})", arch.id);
        assert!(
            large > 1.7 && large < 3.5,
            "{}: Kokkos speedup at 64M = {large:.2}, expected ~2.2-2.7",
            arch.id
        );
    }
}

/// §IV-C1: the OpenMP CPU version is clearly faster than CUB below
/// 65K elements and clearly slower for very large arrays.
#[test]
fn openmp_wins_small_loses_large() {
    let m = cpu_ref::OpenMpModel::power8_minsky();
    for arch in ArchConfig::paper_archs() {
        for n in [64u64, 4096, 65_536] {
            let cub = measure_cub(&arch, n).unwrap();
            assert!(
                m.time_ns(n) < cub / 2.0,
                "{} n={n}: OpenMP should be at least 2x faster than CUB",
                arch.id
            );
        }
    }
    let cub_large = measure_cub(&ArchConfig::pascal_p100(), 256 << 20).unwrap();
    assert!(m.time_ns(256 << 20) > 3.0 * cub_large, "OpenMP must lose badly at 256M");
}

/// §IV-C2: on Kepler, the software lock-update-unlock shared atomics
/// keep the multi-warp shared-atomic versions (VA1 at large blocks)
/// out of the winner set, while §IV-C3 Maxwell's native units make a
/// shared-atomic version the small-array winner.
#[test]
fn shared_atomic_preference_flips_between_kepler_and_maxwell() {
    let (_t, kepler_row) = select_best(&ArchConfig::kepler_k40c(), 1024).unwrap();
    let (_t, maxwell_row) = select_best(&ArchConfig::maxwell_gtx980(), 1024).unwrap();
    assert!(
        !kepler_row.version.uses_shared_atomics() || kepler_row.block_size == 32,
        "Kepler winner {} should avoid contended shared atomics",
        kepler_row.version
    );
    assert!(
        maxwell_row.version.uses_shared_atomics(),
        "Maxwell small-array winner {} should use shared atomics (paper: version (n))",
        maxwell_row.version
    );
}

/// All winners come from the pruned (single-kernel, global-atomic)
/// set — the paper's tested 30.
#[test]
fn winners_are_always_pruned_versions() {
    use tangram::tangram_passes::planner;
    let pruned = planner::enumerate_pruned();
    for arch in ArchConfig::paper_archs() {
        for n in [256u64, 65_536] {
            let (_t, row) = select_best(&arch, n).unwrap();
            assert!(pruned.contains(&row.version));
        }
    }
}

/// The per-architecture winner differs across generations at small
/// sizes — the performance-portability argument in one assertion.
#[test]
fn winning_version_differs_across_architectures() {
    let winners: Vec<String> = ArchConfig::paper_archs()
        .iter()
        .map(|arch| select_best(arch, 1024).unwrap().1.version.to_string())
        .collect();
    assert!(
        winners.iter().collect::<std::collections::HashSet<_>>().len() >= 2,
        "at least two generations should pick different versions: {winners:?}"
    );
}
