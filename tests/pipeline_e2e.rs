//! End-to-end pipeline tests: source → passes → variants → kernels,
//! plus serialization round-trips over everything the synthesizer
//! produces.

use gpu_sim::asm::assemble;
use tangram::run_pipeline;
use tangram::tangram_codegen::vir::synthesize_op;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::ReduceOp;

#[test]
fn pipeline_report_names_all_pass_derivations() {
    let report = run_pipeline("float");
    assert_eq!(report.seeds.len(), 6, "Figs. 1a, 1b(tiled), 1b(strided), 1c, 3a, 3b");
    let mut shuffle_variants = 0;
    let mut atomic_variants = 0;
    for v in report.new_variants() {
        for d in &v.derivation {
            match d.as_str() {
                "shfl" => shuffle_variants += 1,
                "atomic-global" => atomic_variants += 1,
                _ => {}
            }
        }
    }
    // Fig. 1c and Fig. 3b both match the Fig. 4 shuffle pattern; the
    // two compound codelets both carry the atomic Map API.
    assert!(shuffle_variants >= 2, "found {shuffle_variants}");
    assert!(atomic_variants >= 2, "found {atomic_variants}");
}

#[test]
fn pass_generated_codelets_flow_into_synthesis() {
    // The Vs / VA2+S codelets used by the synthesizer must be the
    // shuffle pass's outputs (contain shuffle calls, no staging array).
    use tangram::tangram_codegen::vir::coop_codelet;
    use tangram::tangram_ir::print::codelet_to_string;
    use tangram::tangram_passes::planner::Coop;
    for c in [Coop::Vs, Coop::VA2s] {
        let src = codelet_to_string(&coop_codelet(c, "float"));
        assert!(src.contains("__shfl_down"), "{c:?}:\n{src}");
        assert!(!src.contains("tmp["), "{c:?} staging array must be disabled");
    }
}

/// Every synthesized kernel's text form re-assembles to the same
/// instruction stream: the VIR text format is a faithful interchange
/// format for the whole version space.
#[test]
fn kernel_text_round_trips_for_all_versions_and_ops() {
    let tuning = Tuning { block_size: 128, coarsen: 4 };
    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
        for v in planner::enumerate_pruned() {
            let sv = synthesize_op(v, tuning, op).unwrap();
            for kernel in std::iter::once(&sv.main).chain(sv.second.as_ref()) {
                let text = kernel.to_string();
                let back = assemble(&text)
                    .unwrap_or_else(|e| panic!("{v} ({op:?}): {e}\n{text}"));
                assert_eq!(kernel.instrs, back.instrs, "{v} ({op:?})");
                assert_eq!(kernel.params, back.params);
                assert_eq!(kernel.static_smem, back.static_smem);
                assert_eq!(kernel.dynamic_smem, back.dynamic_smem);
            }
        }
    }
}

#[test]
fn two_kernel_versions_carry_their_second_kernel() {
    for v in planner::enumerate_original() {
        let sv = synthesize(v, Tuning::default()).unwrap();
        assert!(sv.second.is_some(), "{v} must have a partials kernel");
    }
    for v in planner::enumerate_pruned() {
        let sv = synthesize(v, Tuning::default()).unwrap();
        assert!(sv.second.is_none(), "{v} is single-kernel");
    }
}

#[test]
fn shared_memory_footprints_differ_as_the_paper_argues() {
    // §III-B/§III-C: shared atomics and shuffles shrink the footprint.
    let tuning = Tuning { block_size: 256, coarsen: 1 };
    let smem = |label: char| {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), tuning).unwrap();
        sv.main.smem_bytes(sv.plan(1 << 20).dynamic_smem as u64)
    };
    let tree = smem('l'); // V: staging array + partials
    let shuffled = smem('m'); // Vs: partials only
    let atomic = smem('n'); // VA1: one accumulator
    assert!(shuffled < tree, "shuffle shrinks shared memory: {shuffled} vs {tree}");
    assert!(atomic < tree, "shared atomics shrink shared memory: {atomic} vs {tree}");
}

#[test]
fn emitted_cuda_and_vir_stay_in_sync() {
    // Both backends must agree on which versions use which features.
    use tangram::tangram_codegen::version_cuda;
    for v in planner::enumerate_pruned() {
        let cuda = version_cuda(v, Tuning::default()).unwrap();
        let sv = synthesize(v, Tuning::default()).unwrap();
        let vir_has_shfl = sv
            .main
            .instrs
            .iter()
            .any(|i| matches!(i, gpu_sim::isa::Instr::Shfl { .. }));
        assert_eq!(
            cuda.contains("__shfl"),
            vir_has_shfl,
            "backend divergence on shuffles for {v}"
        );
        let vir_has_shared_atomic = sv.main.instrs.iter().any(|i| {
            matches!(
                i,
                gpu_sim::isa::Instr::Atom { space: gpu_sim::isa::Space::Shared, .. }
            )
        });
        let cuda_shared_atomic =
            cuda.contains("atomicAdd(&") || cuda.contains("atomicAdd_block(");
        assert_eq!(cuda_shared_atomic, vir_has_shared_atomic, "atomics diverge for {v}");
    }
}
