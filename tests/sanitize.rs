//! Racecheck differential harness. Three claims pin the sanitizer
//! down:
//!
//! 1. **Positive corpus** — every pruned §IV-B variant is race-free on
//!    all three paper architectures under all three interpreter tiers.
//!    This is the synthesis pipeline's central safety property: the
//!    atomic/shuffle rewrites preserve race freedom, and the sanitizer
//!    proves it directly rather than via output equality.
//! 2. **Negative corpus** — each deliberately-racy kernel yields its
//!    expected typed finding at its expected `pc`, on every tier.
//!    Without this the positive result would be vacuous (a sanitizer
//!    that never fires also reports a clean corpus).
//! 3. **Transparency** — sanitizing is observationally free: results,
//!    statistics counters, and modelled time are bit-identical with it
//!    on and off, like the profiler it shares the hook seam with.

use gpu_sim::exec::BlockSelection;
use gpu_sim::{negative_corpus, run_negative, ArchConfig, Device, ExecMode};
use proptest::prelude::*;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

mod support;

/// All three interpreter tiers. Sanitized launches on the compiled
/// tier fall back to the µop engine at launch granularity, so running
/// the corpus under `Compiled` pins exactly that fallback seam.
const MODES: [ExecMode; 3] = [ExecMode::Predecoded, ExecMode::Reference, ExecMode::Compiled];

/// Sanitize one synthesized variant at its first feasible tuning and
/// return the race summaries of any dirty launches (empty = clean).
/// `None` means no tuning was feasible for this `(arch, n)`.
fn sanitize_first_feasible(
    arch: &ArchConfig,
    mode: ExecMode,
    version: planner::CodeVersion,
    values: &[f32],
) -> Option<Vec<String>> {
    for block_size in [32u32, 64, 128, 256, 512] {
        for coarsen in [1u32, 2, 4, 8, 16] {
            let Ok(sv) = synthesize(version, Tuning { block_size, coarsen }) else {
                continue;
            };
            let mut dev = Device::new(arch.clone());
            dev.set_exec_mode(mode);
            dev.set_sanitizing(true);
            let input = upload(&mut dev, values).unwrap();
            let ran =
                run_reduction(&mut dev, &sv, input, values.len() as u64, BlockSelection::All);
            if ran.is_err() {
                continue;
            }
            return Some(
                dev.launches()
                    .iter()
                    .map(|l| l.races.as_ref().expect("sanitizing launch carries a report"))
                    .filter(|r| !r.is_clean())
                    .map(|r| r.summary())
                    .collect(),
            );
        }
    }
    None
}

/// The entire pruned corpus is race-free on every paper architecture
/// under every interpreter tier — the acceptance bar for the
/// synthesized kernels themselves.
#[test]
fn pruned_corpus_is_race_free_on_all_arches_and_all_interpreters() {
    let values: Vec<f32> = (0..4096).map(|i| ((i % 11) as f32) - 5.0).collect();
    for arch in ArchConfig::paper_archs() {
        for mode in MODES {
            for &version in support::pruned() {
                let dirty = sanitize_first_feasible(&arch, mode, version, &values)
                    .unwrap_or_else(|| {
                        panic!("no feasible tuning on {} ({})", arch.id, mode.id())
                    });
                assert!(
                    dirty.is_empty(),
                    "races on {} ({}): {}",
                    arch.id,
                    mode.id(),
                    dirty.join("; ")
                );
            }
        }
    }
}

/// Every negative kernel produces its expected typed finding at its
/// expected `pc`, under every tier. Racy kernels may emit
/// secondary findings too (e.g. the read half of a broken
/// read-modify-write), so the assertion is membership, not equality.
#[test]
fn negative_corpus_yields_expected_typed_findings() {
    let arch = ArchConfig::maxwell_gtx980();
    for mode in MODES {
        for nk in negative_corpus() {
            let report = run_negative(&arch, mode, &nk).unwrap();
            assert!(
                !report.is_clean(),
                "{} must race under {} but came back clean",
                nk.label,
                mode.id()
            );
            assert!(
                report.findings.iter().any(|f| f.kind == nk.expect
                    && f.access.pc as usize == nk.expect_pc),
                "{} under {}: expected {}@pc={} among findings, got {}",
                nk.label,
                mode.id(),
                nk.expect.label(),
                nk.expect_pc,
                report.summary()
            );
        }
    }
}

/// The negative corpus is interpreter-invariant in full: every tier
/// sees the identical deduplicated finding list, not merely the one
/// expected hazard — the hooks sit at the same places (the compiled
/// tier via its sanitize fallback to the µop engine).
#[test]
fn negative_findings_are_identical_across_interpreters() {
    let arch = ArchConfig::maxwell_gtx980();
    for nk in negative_corpus() {
        let uop = run_negative(&arch, ExecMode::Predecoded, &nk).unwrap();
        for mode in [ExecMode::Reference, ExecMode::Compiled] {
            let other = run_negative(&arch, mode, &nk).unwrap();
            assert_eq!(
                uop, other,
                "reports diverge between uop and {} on {}",
                mode.id(),
                nk.label
            );
        }
    }
}

/// Run one reduction with the sanitizer on or off; return the result
/// bits plus everything the timing model consumes, and whether every
/// launch carried a race report.
fn run_sanitized(
    sanitized: bool,
    mode: ExecMode,
    arch: &ArchConfig,
    version: planner::CodeVersion,
    tuning: Tuning,
    values: &[f32],
    selection: BlockSelection,
) -> (u32, f64, Vec<String>, bool) {
    let sv = synthesize(version, tuning).unwrap();
    let mut dev = Device::new(arch.clone());
    dev.set_exec_mode(mode);
    dev.set_sanitizing(sanitized);
    let input = upload(&mut dev, values).unwrap();
    let got = run_reduction(&mut dev, &sv, input, values.len() as u64, selection).unwrap();
    let launches: Vec<String> = dev
        .launches()
        .iter()
        .map(|l| {
            format!(
                "{} exact={} stats={:?} timing_ns={}",
                l.kernel,
                l.exact,
                l.stats,
                l.timing.time_ns.to_bits()
            )
        })
        .collect();
    let all_reported = dev.launches().iter().all(|l| l.races.is_some());
    (got.to_bits(), dev.elapsed_ns(), launches, all_reported)
}

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    prop_oneof![
        Just(ArchConfig::kepler_k40c()),
        Just(ArchConfig::maxwell_gtx980()),
        Just(ArchConfig::pascal_p100()),
    ]
}

fn version_strategy() -> impl Strategy<Value = planner::CodeVersion> {
    (0..support::pruned().len()).prop_map(|i| support::pruned()[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Sanitize-on ≡ sanitize-off, bit for bit, in everything the
    /// unsanitized run reports — results, statistics, modelled time —
    /// under all three interpreter tiers and both block selections
    /// (on the compiled tier this pins the sanitize fallback against
    /// the tier's native hot path).
    #[test]
    fn sanitizing_is_observationally_free(
        version in version_strategy(),
        arch in arch_strategy(),
        mode_idx in 0usize..MODES.len(),
        block_exp in 0u32..5,       // 32..512
        coarsen_exp in 0u32..5,     // 1..16
        n in 1usize..10_000,
        sampled in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let mode = MODES[mode_idx];
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 1 << coarsen_exp };
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 7) % 9) as f32 - 4.0)
            .collect();
        let selection = if sampled {
            BlockSelection::Sample { max_blocks: 3 }
        } else {
            BlockSelection::All
        };
        let Ok(sv) = synthesize(version, tuning) else { return };
        // Skip tunings the hardware model rejects (same on both runs).
        {
            let mut dev = Device::new(arch.clone());
            dev.set_exec_mode(mode);
            let input = upload(&mut dev, &values).unwrap();
            if run_reduction(&mut dev, &sv, input, n as u64, selection).is_err() {
                return;
            }
        }
        let off = run_sanitized(false, mode, &arch, version, tuning, &values, selection);
        let on = run_sanitized(true, mode, &arch, version, tuning, &values, selection);
        prop_assert_eq!(off.0, on.0, "result bits differ ({} n={})", sv.id(), n);
        prop_assert_eq!(off.1.to_bits(), on.1.to_bits(), "elapsed_ns differs ({} n={})", sv.id(), n);
        prop_assert_eq!(&off.2, &on.2, "launch stats differ ({} n={})", sv.id(), n);
        prop_assert!(!off.3 || off.2.is_empty(), "unsanitized run must carry no race reports");
        prop_assert!(on.3, "sanitized run must attach a race report to every launch");
    }
}
