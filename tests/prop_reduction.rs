//! Property-based tests: for arbitrary inputs, sizes, versions and
//! tunings, the synthesized GPU reduction matches the CPU oracle; the
//! parser round-trips the printer; the passes preserve semantics.

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device};
use proptest::prelude::*;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_ir::print::codelet_to_string;
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    prop_oneof![
        Just(ArchConfig::kepler_k40c()),
        Just(ArchConfig::maxwell_gtx980()),
        Just(ArchConfig::pascal_p100()),
    ]
}

fn version_strategy() -> impl Strategy<Value = planner::CodeVersion> {
    let pruned = planner::enumerate_pruned();
    (0..pruned.len()).prop_map(move |i| pruned[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Any pruned version × tuning × size × integer data sums exactly.
    #[test]
    fn reduction_matches_oracle(
        version in version_strategy(),
        arch in arch_strategy(),
        block_exp in 0u32..4,       // 32..256
        coarsen_exp in 0u32..4,     // 1..8
        n in 1usize..6000,
        seed in any::<u32>(),
    ) {
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 1 << coarsen_exp };
        // Small integer values: f32 addition is exact at these sizes.
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 9) % 7) as f32 - 3.0)
            .collect();
        let expect: f32 = values.iter().sum();
        let sv = synthesize(version, tuning).unwrap();
        let mut dev = Device::new(arch);
        let input = upload(&mut dev, &values).unwrap();
        let got = run_reduction(&mut dev, &sv, input, n as u64, BlockSelection::All).unwrap();
        prop_assert_eq!(got, expect, "version {} n={}", sv.id(), n);
    }

    /// Printing a parsed codelet and re-parsing yields the same AST.
    #[test]
    fn print_parse_round_trip_on_corpus_mutations(which in 0usize..6, elem in 0usize..3) {
        use tangram::tangram_passes::corpus;
        let sources = [
            corpus::FIG1A, corpus::FIG1B_TILED, corpus::FIG1B_STRIDED,
            corpus::FIG1C, corpus::FIG3A, corpus::FIG3B,
        ];
        let elems = ["int", "float", "double"];
        let c = corpus::parse_canonical(sources[which], elems[elem]);
        let printed = codelet_to_string(&c);
        let reparsed = tangram::tangram_lang::parse_codelets(&printed).unwrap().remove(0);
        prop_assert_eq!(c, reparsed);
    }

    /// The shuffle pass preserves reduction semantics on every
    /// architecture (pass output executes to the same value as its
    /// input codelet, via the direct-coop versions that embed them).
    #[test]
    fn shuffle_pass_preserves_semantics(
        n in 1usize..2000,
        seed in any::<u32>(),
        arch in arch_strategy(),
    ) {
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32) ^ seed) % 5) as f32)
            .collect();
        let tuning = Tuning { block_size: 128, coarsen: 1 };
        let plain = synthesize(planner::fig6_by_label('l').unwrap(), tuning).unwrap();
        let shuffled = synthesize(planner::fig6_by_label('m').unwrap(), tuning).unwrap();
        let run = |sv| {
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &values).unwrap();
            run_reduction(&mut dev, sv, input, n as u64, BlockSelection::All).unwrap()
        };
        prop_assert_eq!(run(&plain), run(&shuffled));
    }

    /// Atomic-on-shared versions agree with the tree version.
    #[test]
    fn shared_atomic_versions_agree(
        n in 1usize..2000,
        seed in any::<u32>(),
    ) {
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_add(seed)) % 9) as f32 - 4.0)
            .collect();
        let tuning = Tuning { block_size: 64, coarsen: 1 };
        let arch = ArchConfig::pascal_p100();
        let run = |label| {
            let sv = synthesize(planner::fig6_by_label(label).unwrap(), tuning).unwrap();
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &values).unwrap();
            run_reduction(&mut dev, &sv, input, n as u64, BlockSelection::All).unwrap()
        };
        let reference = run('l');
        prop_assert_eq!(run('n'), reference);
        prop_assert_eq!(run('o'), reference);
        prop_assert_eq!(run('p'), reference);
    }
}
