//! Robustness-layer tests: traps instead of panics, barrier-deadlock
//! detection, deterministic fault injection, and graceful degradation
//! of the selection sweep.

use gpu_sim::exec::BlockSelection;
use gpu_sim::isa::{CmpOp, Operand, Sreg, Ty};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::{ArchConfig, Device, FaultPlan, LaunchDims, SimError};
use proptest::prelude::*;
use tangram::evaluate::{evaluate_all, best_measurement, ContextPool, EvalOptions};
use tangram::resilience::{evaluate_all_report, ResilienceOptions};
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

mod support;

/// A kernel in which warp 0 waits at a barrier that warp 1 never
/// reaches (it branches straight to exit and retires) must trap as
/// `BarrierDeadlock` — the silent-release behavior this detector
/// replaced would mask real divergent-barrier bugs.
#[test]
fn divergent_barrier_returns_deadlock_error() {
    let mut b = KernelBuilder::new("divergent_bar");
    let p = b.pred();
    b.setp(CmpOp::Ge, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(32));
    let skip = b.label();
    b.bra_if(p, true, skip);
    b.bar();
    b.place(skip);
    b.exit();
    let kernel = b.finish().unwrap();

    let mut dev = Device::new(ArchConfig::maxwell_gtx980());
    let err = dev.launch_simple(&kernel, LaunchDims::new(1, 64), &[]).unwrap_err();
    match err {
        SimError::BarrierDeadlock { waiting_warps, .. } => {
            assert_eq!(waiting_warps, vec![0], "warp 0 is the one left waiting");
        }
        other => panic!("expected BarrierDeadlock, got {other:?}"),
    }
}

/// The same fault seed must inject the same faults on every run:
/// campaigns replay bit-for-bit.
#[test]
fn same_seed_injects_identical_faults() {
    let sv = synthesize(
        planner::fig6_by_label('a').unwrap(),
        Tuning { block_size: 128, coarsen: 4 },
    )
    .unwrap();
    let data: Vec<f32> = (0..4096).map(|i| ((i % 13) as f32) - 2.0).collect();
    let run = |seed: u64| {
        let mut dev = Device::new(ArchConfig::kepler_k40c());
        let input = upload(&mut dev, &data).unwrap();
        dev.set_fault_plan(Some(FaultPlan::seeded(seed, 2_000)));
        let got = run_reduction(&mut dev, &sv, input, 4096, BlockSelection::All);
        (format!("{got:?}"), format!("{:?}", dev.fault_log()))
    };
    let (v1, log1) = run(99);
    let (v2, log2) = run(99);
    assert!(!log1.contains("[]"), "rate 2000ppm must inject at least one fault");
    assert_eq!(v1, v2, "same seed, same outcome");
    assert_eq!(log1, log2, "same seed, same injected faults");
    let (_, log3) = run(100);
    assert_ne!(log1, log3, "different seed, different fault stream");
}

/// Same fault seed ⇒ identical `ResilienceReport` and measurements
/// for every `--threads` value.
#[test]
fn fault_campaign_is_thread_count_invariant() {
    let arch = ArchConfig::pascal_p100();
    let cands = support::fig6_subset();
    let pool = ContextPool::new(&arch, 2_048);
    let res = ResilienceOptions::campaign(7, 400);
    let (m1, r1) = evaluate_all_report(&pool, cands, &EvalOptions::serial(), &res).unwrap();
    let (m2, r2) =
        evaluate_all_report(&pool, cands, &EvalOptions::with_threads(3), &res).unwrap();
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    let times = |ms: &[Option<tangram::evaluate::Measurement>]| -> Vec<Option<u64>> {
        ms.iter().map(|m| m.as_ref().map(|m| m.time_ns.to_bits())).collect()
    };
    assert_eq!(times(&m1), times(&m2));
}

/// A fault campaign never silently reports a wrong winner: accepted
/// measurements are fault-free and bit-identical to the clean sweep,
/// and every injected fault is recovered or quarantined.
#[test]
fn campaign_winner_matches_clean_sweep() {
    let arch = ArchConfig::maxwell_gtx980();
    let cands = support::fig6_subset();
    let pool = ContextPool::new(&arch, 4_096);
    let opts = EvalOptions::serial();
    let clean = evaluate_all(&pool, cands, &opts).unwrap();
    let (faulty, report) =
        evaluate_all_report(&pool, cands, &opts, &ResilienceOptions::campaign(11, 500)).unwrap();
    assert!(report.faults_injected > 0);
    assert_eq!(report.silent, 0);
    if report.quarantined == 0 {
        assert_eq!(
            report.faults_recovered,
            report.faults_injected,
            "with no quarantines every fault must be recovered: {}",
            report.summary_line()
        );
    }
    let (cb, fb) = (best_measurement(&clean).unwrap(), best_measurement(&faulty).unwrap());
    assert_eq!(cb.version, fb.version);
    assert_eq!(cb.time_ns.to_bits(), fb.time_ns.to_bits());
}

/// With a single attempt there is no clean retry: jobs whose only
/// attempt faulted must be quarantined, never accepted.
#[test]
fn single_attempt_campaign_quarantines_faulted_jobs() {
    let arch = ArchConfig::kepler_k40c();
    let cands = support::fig6_subset();
    let pool = ContextPool::new(&arch, 4_096);
    let mut res = ResilienceOptions::campaign(3, 2_000);
    res.max_attempts = 1;
    let (_, report) =
        evaluate_all_report(&pool, cands, &EvalOptions::serial(), &res).unwrap();
    assert!(report.faults_injected > 0, "high rate must inject: {}", report.summary_line());
    assert_eq!(report.silent, 0);
    assert_eq!(report.faults_recovered, 0, "no retries, so nothing is recovered");
    assert!(report.quarantined > 0, "faulted jobs must be quarantined: {}", report.summary_line());
    assert_eq!(
        report.measured + report.infeasible + report.quarantined,
        report.total_jobs
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Every Fig. 6 corpus variant terminates without a trap under an
    /// empty `FaultPlan` and matches the CPU oracle — the trap layer
    /// and the (inactive) fault hook change nothing for healthy
    /// kernels.
    #[test]
    fn fig6_corpus_traps_nothing_under_empty_plan(
        which in 0usize..16,
        block_exp in 0u32..4,
        n in 1usize..4000,
        seed in any::<u32>(),
    ) {
        let (_, version) = planner::fig6_versions()[which];
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 2 };
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 7) % 9) as f32 - 4.0)
            .collect();
        let expect: f32 = values.iter().sum();
        let sv = synthesize(version, tuning).unwrap();
        let mut dev = Device::new(ArchConfig::maxwell_gtx980());
        let input = upload(&mut dev, &values).unwrap();
        // An empty plan must behave exactly like no plan at all.
        dev.set_fault_plan(Some(FaultPlan::empty(seed.into())));
        let got = run_reduction(&mut dev, &sv, input, n as u64, BlockSelection::All);
        prop_assert!(dev.fault_log().is_empty(), "empty plan must inject nothing");
        match got {
            Ok(v) => prop_assert_eq!(v, expect, "version {} n={}", sv.id(), n),
            Err(e) => prop_assert!(false, "trap on {}: {}", sv.id(), e),
        }
    }
}
