//! Golden tests for the paper's Listings 1–4 through the public
//! code-generation API.

use tangram::tangram_codegen::cuda::{coop_kernel_cuda, CudaInputMap};
use tangram::tangram_codegen::vir::coop_codelet;
use tangram::tangram_codegen::{version_cuda, Tuning};
use tangram::tangram_passes::planner::{self, BlockOp, Coop, Dist, GridOp};

#[test]
fn listing1_non_atomic_grid() {
    let v = planner::CodeVersion {
        grid: GridOp { dist: Dist::Tiled, atomic: false },
        block: BlockOp::Coop(Coop::V),
    };
    let src = version_cuda(v, Tuning::default()).unwrap();
    // Listing 1: partial array sized by the partition count, second
    // reduction launch.
    assert!(src.contains("cudaMalloc(&map_return_block, (p)*sizeof(float));"));
    assert!(src.contains("Reduce_Final<<<1, 256>>>"));
    assert!(src.contains("Reduce_Block<<<p,"));
}

#[test]
fn listing2_atomic_grid() {
    let v = planner::fig6_by_label('l').unwrap();
    let src = version_cuda(v, Tuning::default()).unwrap();
    // Listing 2: a single accumulator, no second kernel.
    assert!(src.contains("cudaMalloc(&map_return_block, sizeof(float));"));
    assert!(!src.contains("Reduce_Final"));
}

#[test]
fn listing2_block_scope_atomics() {
    // The atomic-compound block uses atomicAdd_block inside the block
    // and a device-scope atomicAdd at the grid boundary, exactly as
    // Listing 2 shows.
    let v = planner::fig6_by_label('j').unwrap();
    let src = version_cuda(v, Tuning::default()).unwrap();
    assert!(src.contains("atomicAdd_block(Return, accum);"));
    assert!(src.contains("atomicAdd(Return, map_return);"));
}

#[test]
fn listing3_shared_memory_atomics() {
    let codelet = coop_codelet(Coop::VA2, "float");
    let src = coop_kernel_cuda(&codelet, CudaInputMap::default()).unwrap();
    let required = [
        "__shared__ float partial;",        // line 5
        "if (threadIdx.x == 0)",            // line 6
        "partial = 0;",                     // line 7
        "__syncthreads();",                 // line 8
        "extern __shared__ float tmp[];",   // line 9
        "atomicAdd(&partial, val);",        // line 27
        "Return[blockID] = val;",           // line 34
    ];
    for needle in required {
        assert!(src.contains(needle), "missing `{needle}` in:\n{src}");
    }
}

#[test]
fn listing4_warp_shuffles() {
    let codelet = coop_codelet(Coop::Vs, "float");
    let src = coop_kernel_cuda(&codelet, CudaInputMap::default()).unwrap();
    // Two tree loops replaced by shuffles (lines 15 and 27).
    assert_eq!(src.matches("__shfl_down(val, offset, 32)").count(), 2);
    // The partial array keeps its 32-element static allocation
    // (line 5); the tmp staging array is disabled entirely.
    assert!(src.contains("__shared__ float partial[32];"));
    assert!(!src.contains("tmp"));
}

#[test]
fn fig2_vector_api_mapping() {
    // The Vector member functions translate to their CUDA equivalents.
    let codelet = coop_codelet(Coop::V, "float");
    let src = coop_kernel_cuda(&codelet, CudaInputMap::default()).unwrap();
    assert!(src.contains("threadIdx.x % warpSize"), "LaneId()");
    assert!(src.contains("threadIdx.x / warpSize"), "VectorId()");
    assert!(src.contains("threadIdx.x"), "ThreadId()");
}

#[test]
fn every_pruned_version_yields_compilable_looking_cuda() {
    for v in planner::enumerate_pruned() {
        let src = version_cuda(v, Tuning::default()).unwrap();
        // Structural sanity: balanced braces, a grid function, a kernel.
        let open = src.matches('{').count();
        let close = src.matches('}').count();
        assert_eq!(open, close, "unbalanced braces in version {v}:\n{src}");
        assert!(src.contains("__global__"));
        assert!(src.contains("Reduce_Grid"));
    }
}
