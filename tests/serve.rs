//! Integration suite for the autotuning daemon (`tangram::serve`):
//! in-flight deduplication really coalesces concurrent identical
//! queries into one sweep, the admission gate sheds overload with
//! typed busy responses (absorbed as `Overload` quarantine events),
//! and the socket front-end round-trips cold → warm → stats →
//! shutdown with answers byte-identical to direct sweeps.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use gpu_sim::{ArchConfig, ExecMode};
use tangram::evaluate::{EvalOptions, SweepMode};
use tangram::resilience::QuarantineReason;
use tangram::serve::{
    Busy, Client, Query, Reply, Served, ServeConfig, Server, TuneService, WireReply,
};
use tangram::Session;

fn service(workers: usize, max_queue: usize, queue_wait_ms: u64) -> TuneService {
    let cfg = ServeConfig {
        workers,
        max_queue,
        tenant_cap: 64,
        queue_wait: Duration::from_millis(queue_wait_ms),
        sweep_threads: 1,
        cache_dir: None,
        ..ServeConfig::default()
    };
    TuneService::new(cfg, ArchConfig::paper_archs())
}

/// The daemon's ground truth: a direct storeless halving sweep on the
/// compiled tier, exactly what a leader runs.
fn direct_line(arch: &ArchConfig, n: u64) -> String {
    let report = Session::new(arch.clone())
        .eval(
            EvalOptions::with_threads(1)
                .with_sweep(SweepMode::Halving)
                .with_interp(ExecMode::Compiled),
        )
        .select_best(n)
        .unwrap();
    format!(
        "winner={} block={} coarsen={} time_ns={}",
        report.row.version, report.row.block_size, report.row.coarsen, report.row.time_ns
    )
}

#[test]
fn concurrent_identical_queries_coalesce_into_one_sweep() {
    let m = 6;
    let service = Arc::new(service(4, 8, 2_000));
    let barrier = Arc::new(Barrier::new(m));
    let handles: Vec<_> = (0..m)
        .map(|i| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Distinct tenants: dedup must key on the query shape,
                // not the requester.
                let q = Query::sweep("maxwell", 65_536).tenant(&format!("t{i}"));
                barrier.wait();
                service.query(&q)
            })
        })
        .collect();
    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let truth = direct_line(&ArchConfig::maxwell_gtx980(), 65_536);
    let mut dedup = 0;
    for reply in &replies {
        let Reply::Ok(answer) = reply else { panic!("expected ok, got {reply:?}") };
        assert_eq!(answer.winner_line(), truth, "fan-out must be byte-identical");
        if answer.served == Served::Dedup {
            dedup += 1;
        }
    }
    let metrics = service.metrics();
    assert_eq!(metrics.sweeps, 1, "M identical queries must run exactly one sweep");
    assert_eq!(metrics.dedup as usize, dedup);
    assert_eq!(metrics.dedup as usize, m - 1, "all followers must coalesce");
    assert_eq!(metrics.ok as usize, m);
    assert_eq!(metrics.cold, 1, "the one leader runs cold");
}

#[test]
fn over_admission_bursts_shed_with_typed_busy_responses() {
    // One worker, no queueing slack, no queue wait: any concurrency
    // beyond the single leader (on *distinct* shapes, so dedup cannot
    // absorb it) must shed.
    let service = Arc::new(service(1, 0, 0));
    let m = 5;
    let barrier = Arc::new(Barrier::new(m));
    let handles: Vec<_> = (0..m)
        .map(|i| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let q = Query::sweep("maxwell", 4_096 + i as u64 * 1_024);
                barrier.wait();
                service.query(&q)
            })
        })
        .collect();
    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let ok = replies.iter().filter(|r| matches!(r, Reply::Ok(_))).count();
    let busy: Vec<&Busy> = replies
        .iter()
        .filter_map(|r| match r {
            Reply::Busy(b) => Some(b),
            _ => None,
        })
        .collect();
    assert!(ok >= 1, "at least the first leader must be admitted");
    assert!(!busy.is_empty(), "a burst past the gate must shed, got {replies:?}");
    assert_eq!(ok + busy.len(), m, "every query is answered or shed, never dropped");
    for b in &busy {
        assert!(
            b.reason.contains("queue full") || b.reason.contains("queue wait"),
            "busy must carry a typed reason, got `{}`",
            b.reason
        );
    }

    let metrics = service.metrics();
    assert_eq!(metrics.busy as usize, busy.len());
    let overloads = metrics
        .resilience
        .events
        .iter()
        .filter(|e| matches!(e.quarantined, Some(QuarantineReason::Overload(_))))
        .count();
    assert_eq!(
        overloads,
        busy.len(),
        "every shed request must surface as an Overload quarantine event"
    );
}

#[test]
fn tenant_cap_sheds_the_greedy_tenant_only() {
    // Two workers but a per-tenant cap of 1: a tenant's second
    // concurrent distinct query is shed even though a worker is free.
    let cfg = ServeConfig {
        workers: 2,
        max_queue: 8,
        tenant_cap: 1,
        queue_wait: Duration::from_millis(2_000),
        sweep_threads: 1,
        cache_dir: None,
        ..ServeConfig::default()
    };
    let service = Arc::new(TuneService::new(cfg, ArchConfig::paper_archs()));
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = [8_192u64, 16_384]
        .into_iter()
        .map(|n| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let q = Query::sweep("maxwell", n).tenant("greedy");
                barrier.wait();
                service.query(&q)
            })
        })
        .collect();
    let replies: Vec<Reply> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = replies.iter().filter(|r| matches!(r, Reply::Ok(_))).count();
    let busy = replies
        .iter()
        .filter_map(|r| match r {
            Reply::Busy(b) => Some(b.reason.clone()),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!((ok, busy.len()), (1, 1), "cap=1 admits one, sheds one: {replies:?}");
    assert!(busy[0].contains("tenant `greedy`"), "got `{}`", busy[0]);
}

#[test]
fn socket_end_to_end_cold_warm_stats_shutdown() {
    let pid = std::process::id();
    let socket = std::env::temp_dir().join(format!("tangram-serve-it-{pid}.sock"));
    let cache = std::env::temp_dir().join(format!("tangram-serve-it-cache-{pid}"));
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&cache);
    let cfg = ServeConfig {
        socket: socket.clone(),
        workers: 2,
        max_queue: 8,
        tenant_cap: 8,
        queue_wait: Duration::from_millis(500),
        sweep_threads: 1,
        cache_dir: Some(cache.clone()),
        cache_mode: tangram::CacheMode::ReadWrite,
    };
    let server = Server::bind(cfg, ArchConfig::paper_archs()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run(&stop))
    };

    let mut client = Client::connect(&socket).unwrap();
    let q = Query::sweep("kepler", 32_768);
    let truth = direct_line(&ArchConfig::kepler_k40c(), 32_768);

    let WireReply::Ok(cold) = client.query(&q).unwrap() else { panic!("cold query failed") };
    assert_eq!(cold.served, "cold");
    assert_eq!(cold.line, truth, "daemon cold answer must match the sweep bin");

    let WireReply::Ok(warm) = client.query(&q).unwrap() else { panic!("warm query failed") };
    assert_eq!(warm.served, "warm");
    assert_eq!(warm.line, truth, "daemon warm answer must match the sweep bin");

    // Unknown shapes come back as typed errors, not dead sockets.
    let bad = Query::sweep("volta", 32_768);
    let WireReply::Error(e) = client.query(&bad).unwrap() else { panic!("expected error") };
    assert!(e.contains("unknown arch"), "got: {e}");

    let stats = client.stats().unwrap();
    let get = |k: &str| stats.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!((get("ok"), get("cold"), get("warm"), get("errors")), (2, 1, 1, 1));
    assert!(stats.get("p50_ms").and_then(|v| v.as_f64()).unwrap() > 0.0);

    client.shutdown().unwrap();
    let metrics = handle.join().unwrap().unwrap();
    assert_eq!(metrics.ok, 2);
    assert!(!socket.exists(), "a clean shutdown must remove the socket file");
    let _ = std::fs::remove_dir_all(&cache);
}
