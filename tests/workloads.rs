//! End-to-end and differential coverage for the first-class workloads
//! (argmax/argmin with index payloads, bin-indexed histograms,
//! inclusive/exclusive scans, segmented sums).
//!
//! Three layers of guarantees:
//!
//! 1. **Differential oracle (proptest)** — for any workload variant,
//!    tuning, size, and random data, the kernel's result under the
//!    lane-wise reference interpreter, the predecoded µop engine, and
//!    the compiled tier are bit-identical to each other *and* exactly
//!    equal to the CPU reference (`u64` equality for packed
//!    arg-pairs, per-bin equality for histograms, per-word bitwise
//!    equality for scan prefixes and segment sums — no tolerance).
//!    Scan/segsum exactness is by construction: the generator emits
//!    integer-valued `f32` in `[-500, 500)` and sizes stay under
//!    3 000, so every partial sum has magnitude `< 2^24` and `f32`
//!    addition is associative over the reachable values.
//! 2. **Sweep determinism** — `Session::run` picks the same winner
//!    (variant, tuning, and modelled-time bits) under all three
//!    interpreter tiers on every paper architecture, and the winner's
//!    reported value matches the CPU oracle.
//! 3. **Serving** — an in-process `TuneService` answers typed
//!    workload queries with winner lines byte-identical to a direct
//!    `Session::run`, and the synthesized corpus is race-free under
//!    the happens-before sanitizer.

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device, ExecMode};
use proptest::prelude::*;
use tangram::evaluate::EvalOptions;
use tangram::serve::{Query, Reply, ServeConfig, TuneService};
use tangram::tangram_codegen::{synthesize_workload_cached, Tuning};
use tangram::{
    enumerate_variants_for, expected_value,
    runner::{run_segsum, run_workload},
    upload, Dtype, Reducer, Session, Workload, WorkloadKey, WorkloadValue,
};

const MODES: [ExecMode; 3] = [ExecMode::Reference, ExecMode::Predecoded, ExecMode::Compiled];

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    prop_oneof![
        Just(ArchConfig::kepler_k40c()),
        Just(ArchConfig::maxwell_gtx980()),
        Just(ArchConfig::pascal_p100()),
    ]
}

fn key_strategy() -> impl Strategy<Value = WorkloadKey> {
    prop_oneof![
        Just(WorkloadKey::argmax()),
        Just(WorkloadKey::argmin()),
        Just(WorkloadKey::histogram(16)),
        Just(WorkloadKey::histogram(64)),
        Just(WorkloadKey::scan(Dtype::F32)),
        Just(WorkloadKey::scan(Dtype::U32)),
        Just(WorkloadKey::exscan(Dtype::F32)),
        Just(WorkloadKey::exscan(Dtype::U32)),
        Just(WorkloadKey::segsum(Dtype::F32)),
        Just(WorkloadKey::segsum(Dtype::U32)),
    ]
}

/// Run one synthesized workload end to end under `mode`.
fn run_mode(
    arch: &ArchConfig,
    mode: ExecMode,
    key: WorkloadKey,
    variant: tangram::WlVariant,
    tuning: Tuning,
    values: &[f32],
) -> Option<WorkloadValue> {
    let sw = synthesize_workload_cached(key, variant, tuning).expect("synthesis");
    let mut dev = Device::new(arch.clone());
    dev.set_exec_mode(mode);
    let input = upload(&mut dev, values).unwrap();
    run_workload(&mut dev, &sw, input, values.len() as u64, BlockSelection::All).ok()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// reference ≡ uop ≡ compiled ≡ cpu-ref, exactly, for every
    /// workload kind × variant on random data.
    #[test]
    fn workload_results_are_bit_identical_across_tiers_and_match_cpu_ref(
        arch in arch_strategy(),
        key in key_strategy(),
        variant_idx in 0usize..6,
        block_exp in 0u32..4,       // 32..256
        coarsen_exp in 0u32..4,     // 1..8
        n in 1usize..3_000,
        seed in any::<u32>(),
    ) {
        let variants = enumerate_variants_for(key.kind);
        let variant = variants[variant_idx % variants.len()];
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 1 << coarsen_exp };
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 5) % 1000) as f32 - 500.0)
            .collect();
        let want = expected_value(key, &values);
        let mut results = Vec::new();
        for mode in MODES {
            results.push(run_mode(&arch, mode, key, variant, tuning, &values));
        }
        // Infeasible launches (e.g. smem over budget) must be
        // infeasible under every tier; feasible ones must agree.
        prop_assert!(
            results.iter().all(|r| r.is_some()) || results.iter().all(|r| r.is_none()),
            "feasibility must not depend on the interpreter tier: {results:?}"
        );
        if let Some(got) = &results[0] {
            for (mode, r) in MODES.iter().zip(&results) {
                prop_assert_eq!(
                    r.as_ref(),
                    Some(got),
                    "tier {:?} diverged on {} {}", mode, key, variant
                );
            }
            prop_assert_eq!(got, &want, "{} {} vs cpu-ref", key, variant);
        }
    }
}

/// `Session::run` winners — variant, tuning, and modelled-time bits —
/// are interpreter-independent on every paper architecture, and the
/// reported value is the CPU oracle's, exactly.
#[test]
fn workload_sweep_winners_are_interpreter_independent() {
    for w in [
        Workload::argmax(8_192),
        Workload::histogram(64, 8_192),
        Workload::scan(8_192),
        Workload::segsum(8_192),
    ] {
        for arch in ArchConfig::paper_archs() {
            let mut rows = Vec::new();
            for mode in MODES {
                let report = Session::new(arch.clone())
                    .eval(EvalOptions::serial().with_interp(mode))
                    .run(&w)
                    .unwrap();
                let rep = report.as_workload().expect("non-reduce workload");
                assert_eq!(
                    rep.value,
                    expected_value(w.key, &w.oracle_input()),
                    "{} {:?} winner value vs cpu-ref",
                    arch.id,
                    mode
                );
                rows.push((
                    rep.row.variant.clone(),
                    rep.row.block_size,
                    rep.row.coarsen,
                    rep.row.time_ns.to_bits(),
                ));
            }
            assert_eq!(rows[0], rows[1], "{}: reference vs uop winner", arch.id);
            assert_eq!(rows[1], rows[2], "{}: uop vs compiled winner", arch.id);
        }
    }
}

/// The synthesized workload corpus is race-free: a sanitized sweep
/// quarantines nothing and is bitwise transparent.
#[test]
fn workload_corpus_is_race_free_under_the_sanitizer() {
    for w in [
        Workload::argmin(8_192),
        Workload::histogram(16, 8_192),
        Workload::exscan(8_192),
        Workload::segsum(8_192),
    ] {
        for arch in ArchConfig::paper_archs() {
            let sane = Session::new(arch.clone())
                .eval(EvalOptions::serial())
                .sanitized(true)
                .run(&w)
                .unwrap();
            let rep = sane.as_workload().unwrap();
            let races = rep.races.as_ref().expect("sanitized run records reports");
            assert!(
                races.iter().all(tangram::CandidateRaces::is_clean),
                "{}: corpus must be race-free, got {:?}",
                arch.id,
                races.iter().filter(|r| !r.is_clean()).count()
            );
            let plain = Session::new(arch.clone()).eval(EvalOptions::serial()).run(&w).unwrap();
            let plain = plain.as_workload().unwrap();
            assert_eq!(rep.row.variant, plain.row.variant, "{}", arch.id);
            assert_eq!(rep.row.time_ns.to_bits(), plain.row.time_ns.to_bits(), "{}", arch.id);
        }
    }
}

/// The daemon answers typed workload queries byte-identical to a
/// direct session sweep (the same guarantee the legacy `sum` path
/// has always had).
#[test]
fn daemon_workload_answers_match_direct_sweeps_byte_for_byte() {
    let service = TuneService::new(
        ServeConfig { workers: 2, ..ServeConfig::default() },
        ArchConfig::paper_archs(),
    );
    for (arch, key, n) in [
        (ArchConfig::kepler_k40c(), WorkloadKey::argmax(), 16_384),
        (ArchConfig::pascal_p100(), WorkloadKey::histogram(64), 16_384),
        (ArchConfig::maxwell_gtx980(), WorkloadKey::scan(Dtype::F32), 16_384),
        (ArchConfig::kepler_k40c(), WorkloadKey::segsum(Dtype::F32), 16_384),
    ] {
        let q = Query::sweep(&arch.id, n).with_workload(key);
        let Reply::Ok(answer) = service.query(&q) else { panic!("expected ok") };
        let direct = Session::new(arch.clone())
            .eval(
                EvalOptions::with_threads(1)
                    .with_sweep(tangram::evaluate::SweepMode::Halving)
                    .with_interp(ExecMode::Compiled),
            )
            .run(&Workload::new(key, n))
            .unwrap();
        let direct = direct.as_workload().unwrap();
        assert_eq!(answer.winner_line(), direct.winner_line(), "{}", arch.id);
        assert_eq!(answer.workload.as_deref(), Some(key.id().as_str()), "{}", arch.id);
    }
}

/// Boundary shapes the sweep never visits: empty input (the device
/// path is skipped entirely — the `Reducer` answers from the oracle),
/// a single element, one all-covering segment, and a descriptor where
/// every segment has length 1. Each runs under every interpreter tier
/// and every schedule in the kind's menu.
#[test]
fn scan_and_segsum_edge_shapes_match_the_oracle() {
    // n == 0: no kernel can launch; the API must still answer, and
    // the answer must be the (empty) oracle value.
    for key in [
        WorkloadKey::scan(Dtype::F32),
        WorkloadKey::exscan(Dtype::U32),
        WorkloadKey::segsum(Dtype::F32),
    ] {
        let mut reducer = Reducer::new(ArchConfig::pascal_p100());
        let res = reducer.run(key, &[]).unwrap();
        assert_eq!(res.value, expected_value(key, &[]), "{key} on empty input");
        assert_eq!(res.version, "-", "{key}: empty input must not launch a kernel");
    }

    // n == 1 through the full device path, every variant and tier.
    for key in [
        WorkloadKey::scan(Dtype::F32),
        WorkloadKey::scan(Dtype::U32),
        WorkloadKey::exscan(Dtype::F32),
        WorkloadKey::segsum(Dtype::F32),
    ] {
        let data = [7.0f32];
        let want = expected_value(key, &data);
        for variant in enumerate_variants_for(key.kind) {
            for mode in MODES {
                let got = run_mode(
                    &ArchConfig::pascal_p100(),
                    mode,
                    key,
                    variant,
                    Tuning::default(),
                    &data,
                )
                .expect("single-element launches are always feasible");
                assert_eq!(got, want, "{key} {variant} {mode:?} on one element");
            }
        }
    }

    // Custom segment descriptors around the canonical one: a single
    // segment covering everything (stresses the privatization window
    // and cross-block combines into one cell) and one segment per
    // element (stresses head-flag handling — every lane is a head).
    let n = 1_000u64;
    let data: Vec<f32> = (0..n).map(|i| ((i % 23) as f32) - 4.0).collect();
    let one_segment = vec![0u32; n as usize];
    let singletons: Vec<u32> = (0..n as u32).collect();
    for (label, ids) in [("one-segment", &one_segment), ("singletons", &singletons)] {
        let want: Vec<u32> = {
            let sums = cpu_ref::segsum_f32(&data, ids);
            sums.iter().map(|v| v.to_bits()).collect()
        };
        let key = WorkloadKey::segsum(Dtype::F32);
        for variant in enumerate_variants_for(key.kind) {
            for mode in MODES {
                let sw = synthesize_workload_cached(key, variant, Tuning::default()).unwrap();
                let mut dev = Device::new(ArchConfig::pascal_p100());
                dev.set_exec_mode(mode);
                let input = upload(&mut dev, &data).unwrap();
                let got = run_segsum(&mut dev, &sw, input, n, ids, BlockSelection::All)
                    .expect("segsum launch");
                assert_eq!(
                    got,
                    WorkloadValue::Buffer(want.clone()),
                    "{label} {variant} {mode:?}"
                );
            }
        }
    }
}
