//! The full atomic-API family of §III-A: max/min reductions through
//! operator specialization, on every pruned version. All-negative
//! inputs exercise the identity-element handling (a zero-identity bug
//! would surface immediately).

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device};
use tangram::tangram_codegen::vir::synthesize_op;
use tangram::tangram_codegen::Tuning;
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload, ReduceOp, Reducer, WorkloadKey, WorkloadValue};

fn data(n: usize, seed: u64, offset: f32) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 1000) as f32) / 10.0 + offset
        })
        .collect()
}

fn run_op(
    arch: &ArchConfig,
    version: planner::CodeVersion,
    tuning: Tuning,
    op: ReduceOp,
    values: &[f32],
) -> f32 {
    let sv = synthesize_op(version, tuning, op).expect("synthesis");
    let mut dev = Device::new(arch.clone());
    let input = upload(&mut dev, values).unwrap();
    run_reduction(&mut dev, &sv, input, values.len() as u64, BlockSelection::All).unwrap()
}

#[test]
fn max_on_all_pruned_versions_with_negative_data() {
    // All values strictly negative: the sum identity 0 would win a
    // naive max and expose identity bugs.
    let values = data(9_000, 11, -150.0);
    let expect = values.iter().copied().fold(f32::MIN, f32::max);
    assert!(expect < 0.0, "test data must be all-negative");
    let arch = ArchConfig::maxwell_gtx980();
    let tuning = Tuning { block_size: 128, coarsen: 4 };
    for v in planner::enumerate_pruned() {
        let got = run_op(&arch, v, tuning, ReduceOp::Max, &values);
        assert_eq!(got, expect, "max via {v}");
    }
}

#[test]
fn min_on_all_pruned_versions_with_positive_data() {
    // All values strictly positive: the sum identity 0 would win a
    // naive min.
    let values = data(9_000, 5, 50.0);
    let expect = values.iter().copied().fold(f32::MAX, f32::min);
    assert!(expect > 0.0, "test data must be all-positive");
    let arch = ArchConfig::kepler_k40c();
    let tuning = Tuning { block_size: 64, coarsen: 2 };
    for v in planner::enumerate_pruned() {
        let got = run_op(&arch, v, tuning, ReduceOp::Min, &values);
        assert_eq!(got, expect, "min via {v}");
    }
}

#[test]
fn minmax_boundary_sizes() {
    let arch = ArchConfig::pascal_p100();
    let tuning = Tuning { block_size: 32, coarsen: 1 };
    for n in [1usize, 31, 32, 33, 100, 1024] {
        let values = data(n, n as u64, -5.0);
        let emax = values.iter().copied().fold(f32::MIN, f32::max);
        let emin = values.iter().copied().fold(f32::MAX, f32::min);
        for label in ['m', 'n', 'p', 'j', 'a'] {
            let v = planner::fig6_by_label(label).unwrap();
            assert_eq!(run_op(&arch, v, tuning, ReduceOp::Max, &values), emax, "max ({label}) n={n}");
            assert_eq!(run_op(&arch, v, tuning, ReduceOp::Min, &values), emin, "min ({label}) n={n}");
        }
    }
}

#[test]
fn reducer_api_max_min() {
    let mut r = Reducer::new(ArchConfig::maxwell_gtx980());
    let values = data(4_000, 99, -80.0);
    let max = r.run(WorkloadKey::reduce(ReduceOp::Max), &values).unwrap();
    let min = r.run(WorkloadKey::reduce(ReduceOp::Min), &values).unwrap();
    let emax = values.iter().copied().fold(f32::MIN, f32::max);
    let emin = values.iter().copied().fold(f32::MAX, f32::min);
    assert_eq!(max.value, WorkloadValue::Scalar(emax));
    assert_eq!(min.value, WorkloadValue::Scalar(emin));
    assert_eq!(max.workload, WorkloadKey::reduce(ReduceOp::Max));
    assert_eq!(min.workload, WorkloadKey::reduce(ReduceOp::Min));
    // Empty input returns the identity.
    let empty = r.run(WorkloadKey::reduce(ReduceOp::Max), &[]).unwrap();
    assert_eq!(empty.value, WorkloadValue::Scalar(f32::MIN));
    let empty = r.run(WorkloadKey::reduce(ReduceOp::Min), &[]).unwrap();
    assert_eq!(empty.value, WorkloadValue::Scalar(f32::MAX));
}

#[test]
fn specialized_cuda_uses_matching_atomics() {
    use tangram::tangram_codegen::cuda::{coop_kernel_cuda, CudaInputMap};
    use tangram::tangram_codegen::vir::coop_codelet_op;
    use tangram::tangram_passes::planner::Coop;
    let c = coop_codelet_op(Coop::VA2, "float", ReduceOp::Max);
    let src = coop_kernel_cuda(&c, CudaInputMap::default()).unwrap();
    assert!(src.contains("atomicMax(&partial, val);"), "src:\n{src}");
    assert!(!src.contains("atomicAdd"), "no additive atomics in a max kernel:\n{src}");
}
