//! End-to-end correctness: every pruned code version, on every
//! architecture, must reduce to the CPU oracle's value (exact —
//! integer-valued data keeps f32 addition associative).

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device};
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn data(n: usize, seed: u64) -> Vec<f32> {
    // Deterministic integer-valued data in [-8, 8): exact in f32 for
    // any summation order at these sizes.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 16) as i64 - 8) as f32
        })
        .collect()
}

fn check_version(
    arch: &ArchConfig,
    version: planner::CodeVersion,
    tuning: Tuning,
    values: &[f32],
) {
    let sv = synthesize(version, tuning).expect("synthesis");
    let mut dev = Device::new(arch.clone());
    let input = upload(&mut dev, values).unwrap();
    let got = run_reduction(&mut dev, &sv, input, values.len() as u64, BlockSelection::All)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", sv.id(), arch.id));
    let expect: f32 = values.iter().sum();
    assert_eq!(got, expect, "version {} on {} (n={})", sv.id(), arch.id, values.len());
}

#[test]
fn all_pruned_versions_on_all_architectures() {
    let values = data(20_000, 42);
    let tuning = Tuning { block_size: 128, coarsen: 4 };
    for arch in ArchConfig::paper_archs() {
        for v in planner::enumerate_pruned() {
            check_version(&arch, v, tuning, &values);
        }
    }
}

#[test]
fn all_original_two_kernel_versions() {
    let values = data(6_000, 7);
    let tuning = Tuning::default();
    let arch = ArchConfig::kepler_k40c();
    for v in planner::enumerate_original() {
        check_version(&arch, v, tuning, &values);
    }
}

#[test]
fn boundary_sizes() {
    // Sizes around warp/block/tile boundaries, including 1.
    let arch = ArchConfig::maxwell_gtx980();
    let tuning = Tuning { block_size: 64, coarsen: 2 };
    for n in [1usize, 2, 31, 32, 33, 63, 64, 65, 127, 128, 129, 4095, 4096, 4097] {
        let values = data(n, n as u64);
        for (label, v) in planner::fig6_versions() {
            let sv = synthesize(v, tuning).expect("synthesis");
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &values).unwrap();
            let got =
                run_reduction(&mut dev, &sv, input, n as u64, BlockSelection::All).unwrap();
            let expect: f32 = values.iter().sum();
            assert_eq!(got, expect, "fig6({label}) n={n}");
        }
    }
}

#[test]
fn extreme_tunings() {
    let values = data(10_000, 3);
    let expect: f32 = values.iter().sum();
    let arch = ArchConfig::pascal_p100();
    for (bs, c) in [(32u32, 1u32), (32, 16), (512, 1), (512, 16), (256, 8)] {
        for label in ['a', 'j', 'n', 'p'] {
            let v = planner::fig6_by_label(label).unwrap();
            let sv = synthesize(v, Tuning { block_size: bs, coarsen: c }).unwrap();
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &values).unwrap();
            let got =
                run_reduction(&mut dev, &sv, input, values.len() as u64, BlockSelection::All)
                    .unwrap();
            assert_eq!(got, expect, "fig6({label}) B={bs} C={c}");
        }
    }
}

#[test]
fn non_integer_data_within_tolerance() {
    // Real-valued data: different summation orders differ in rounding;
    // compare against the Kahan oracle with a relative tolerance.
    let n = 50_000;
    let values: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.001).sin()).collect();
    let oracle = cpu_ref::kahan_sum(&values);
    let arch = ArchConfig::maxwell_gtx980();
    for label in ['m', 'n', 'p'] {
        let v = planner::fig6_by_label(label).unwrap();
        let sv = synthesize(v, Tuning::default()).unwrap();
        let mut dev = Device::new(arch.clone());
        let input = upload(&mut dev, &values).unwrap();
        let got =
            run_reduction(&mut dev, &sv, input, n as u64, BlockSelection::All).unwrap();
        let rel = (f64::from(got) - oracle).abs() / oracle.abs().max(1.0);
        assert!(rel < 1e-4, "fig6({label}) rel error {rel}");
    }
}
