//! Integration tests for the §IV-B search-space narrative, exercised
//! through the public API.

use tangram::tangram_passes::planner::{
    self, BlockOp, Coop, Dist, GridOp, Reducer,
};

#[test]
fn original_tangram_expresses_exactly_10_versions() {
    assert_eq!(planner::enumerate_original().len(), 10);
}

#[test]
fn pruning_keeps_30_single_kernel_versions() {
    let pruned = planner::enumerate_pruned();
    assert_eq!(pruned.len(), 30);
    // "all of which use atomic instructions on global memory to reduce
    // partial per-block sums" (§IV-B).
    assert!(pruned.iter().all(|v| v.uses_global_atomics()));
    assert!(pruned.iter().all(|v| !v.needs_second_kernel()));
}

#[test]
fn category_counts_partition_the_space() {
    let r = planner::search_space_report();
    assert_eq!(r.original + r.global_atomic_only + r.shared_atomic + r.shuffle, r.total);
    // The paper's reference counts are carried in the report.
    assert_eq!(r.paper, (10, 89, 10, 38, 31, 30));
}

#[test]
fn fig6_versions_use_global_atomic_tile_distribution() {
    // "All of these 16 versions use Global Atomic Tile Distribution at
    // the grid level" (§IV-B).
    let tiled_atomic = GridOp { dist: Dist::Tiled, atomic: true };
    for (label, v) in planner::fig6_versions() {
        assert_eq!(v.grid, tiled_atomic, "fig6({label})");
    }
}

#[test]
fn fig6_contains_the_evaluations_winning_versions() {
    // §IV-C names these versions as per-size winners.
    assert_eq!(planner::fig6_by_label('p').unwrap().block, BlockOp::Coop(Coop::VA2s));
    assert_eq!(planner::fig6_by_label('m').unwrap().block, BlockOp::Coop(Coop::Vs));
    assert_eq!(planner::fig6_by_label('n').unwrap().block, BlockOp::Coop(Coop::VA1));
    let b = planner::fig6_by_label('b').unwrap();
    assert_eq!(b.block, BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::Vs) });
    let e = planner::fig6_by_label('e').unwrap();
    assert_eq!(
        e.block,
        BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::VA2s) }
    );
}

#[test]
fn eight_best_versions_are_highlighted() {
    let best = planner::fig6_best();
    assert_eq!(best.len(), 8);
    for label in best {
        assert!(planner::fig6_by_label(label).is_some());
    }
}

#[test]
fn component_feature_flags_are_consistent() {
    for v in planner::enumerate_all() {
        // A version cannot be original and use any new feature.
        if v.is_original() {
            assert!(!v.uses_global_atomics());
            assert!(!v.uses_shared_atomics());
            assert!(!v.uses_shuffle());
        }
        // VA2s counts as both shared-atomic and shuffle.
        if v.block == BlockOp::Coop(Coop::VA2s) {
            assert!(v.uses_shared_atomics() && v.uses_shuffle());
        }
    }
}
