//! Robustness suite for the persistent tuning store, PR-2 style:
//! every failure mode is *injected* — truncated, bit-flipped,
//! wrong-schema, wrong-corpus and garbage records, torn-write
//! orphans, stale and contended writer locks — and every scenario
//! must recover to a winner bit-identical to a clean cold sweep,
//! without a panic, an error, or a changed selection. The cache is an
//! accelerator, never an authority.

use std::fs;
use std::path::{Path, PathBuf};

use gpu_sim::ArchConfig;
use proptest::prelude::*;
use tangram::evaluate::EvalOptions;
use tangram::resilience::QuarantineReason;
use tangram::store::StoreError;
use tangram::{CacheMode, Session, StoreKey, SweepReport, TuningStore};

mod support;

/// A fresh, empty store directory unique to this test binary run.
fn store_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tangram-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn session(arch: &ArchConfig) -> Session {
    Session::new(arch.clone()).eval(EvalOptions::serial())
}

fn record_path(dir: &Path, arch: &str, n: u64) -> PathBuf {
    dir.join(StoreKey::for_sweep(arch, n).file_name())
}

/// Assert two sweep reports selected the same winner, bit for bit.
fn assert_same_winner(a: &SweepReport, b: &SweepReport, ctx: &str) {
    assert_eq!(a.row.version, b.row.version, "winner version differs: {ctx}");
    assert_eq!(a.row.block_size, b.row.block_size, "winner block size differs: {ctx}");
    assert_eq!(a.row.coarsen, b.row.coarsen, "winner coarsening differs: {ctx}");
    assert_eq!(
        a.row.time_ns.to_bits(),
        b.row.time_ns.to_bits(),
        "winner time bits differ: {ctx}"
    );
}

fn store_outcome(report: &SweepReport) -> &str {
    report.metrics.store.as_ref().map_or("<none>", |s| s.outcome.as_str())
}

#[test]
fn warm_start_is_bit_identical_to_cold_sweep_on_all_arches() {
    let n = 65_536;
    for arch in ArchConfig::paper_archs() {
        let cold = session(&arch).select_best(n).unwrap();
        let dir = store_dir(&format!("warm-{}", arch.id));
        let cached = session(&arch).store(&dir);

        // First run: a miss that writes the record back.
        let first = cached.select_best(n).unwrap();
        assert_same_winner(&cold, &first, &format!("cold vs miss on {}", arch.id));
        let s = first.metrics.store.as_ref().expect("store summary present");
        assert_eq!((s.outcome.as_str(), s.warm, s.saved), ("miss", false, true), "{}", arch.id);
        assert!(record_path(&dir, &arch.id, n).exists());

        // Second run: a warm start that skips the sweep entirely —
        // one confirmation job instead of the full candidate space,
        // same winner bits.
        let warm = cached.select_best(n).unwrap();
        assert_same_winner(&cold, &warm, &format!("cold vs warm on {}", arch.id));
        let s = warm.metrics.store.as_ref().expect("store summary present");
        assert_eq!((s.outcome.as_str(), s.warm, s.saved), ("warm", true, false), "{}", arch.id);
        assert_eq!(
            (warm.resilience.total_jobs, warm.resilience.measured),
            (1, 1),
            "warm start must cost one confirmation job on {}",
            arch.id
        );
        assert_eq!(warm.metrics.rungs.len(), 1, "{}", arch.id);
        assert_eq!(warm.metrics.rungs[0].rung, "cache-confirm", "{}", arch.id);
        assert!(
            first.resilience.total_jobs > warm.resilience.total_jobs,
            "cold sweep must enumerate more jobs than a warm confirmation on {}",
            arch.id
        );

        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupted_records_quarantine_fall_back_and_self_heal() {
    let arch = ArchConfig::maxwell_gtx980();
    let n = 16_384;
    let cold = session(&arch).select_best(n).unwrap();
    let dir = store_dir("corrupt");
    let cached = session(&arch).store(&dir);
    let path = record_path(&dir, &arch.id, n);

    // Each scenario mutates a freshly-written valid record, then
    // sweeps again. `quarantines` says whether the mutation must move
    // the file aside as `.corrupt` (a stale-corpus record is invalid
    // but left in place for the overwrite).
    type Mutate = fn(&Path);
    let scenarios: [(&str, Mutate, bool); 6] = [
        ("truncated", |p| {
            let text = fs::read(p).unwrap();
            fs::write(p, &text[..text.len() / 3]).unwrap();
        }, true),
        ("bit-flipped payload", |p| {
            let text = fs::read_to_string(p).unwrap();
            assert!(text.contains("\"arch\": \"maxwell\""), "fixture drifted: {text}");
            fs::write(p, text.replace("\"arch\": \"maxwell\"", "\"arch\": \"maxwelk\"")).unwrap();
        }, true),
        ("garbage", |p| fs::write(p, b"!!not json at all!!").unwrap(), true),
        ("empty", |p| fs::write(p, b"").unwrap(), true),
        ("wrong schema version", |p| {
            let text = fs::read_to_string(p).unwrap();
            assert!(text.contains("\"schema\": 2,"), "fixture drifted: {text}");
            fs::write(p, text.replace("\"schema\": 2,", "\"schema\": 999,")).unwrap();
        }, true),
        ("wrong corpus hash", |p| {
            let text = fs::read_to_string(p).unwrap();
            let start = text.find("\"corpus\": \"").expect("corpus field") + 11;
            let mut t = text.clone();
            t.replace_range(start..start + 16, "0000000000000000");
            fs::write(p, t).unwrap();
        }, false),
    ];

    for (name, mutate, quarantines) in scenarios {
        // (Re)write a valid record, then break it.
        let seeded = cached.select_best(n).unwrap();
        assert!(path.exists(), "{name}: record must exist before mutation");
        assert!(
            seeded.metrics.store.as_ref().is_some_and(|s| s.warm || s.saved),
            "{name}: seeding run must hit or write the record"
        );
        let corrupt = PathBuf::from(format!("{}.corrupt", path.display()));
        let _ = fs::remove_file(&corrupt);
        mutate(&path);

        let report = cached.select_best(n).unwrap();
        assert_same_winner(&cold, &report, &format!("scenario `{name}`"));
        assert_eq!(store_outcome(&report), "invalid", "scenario `{name}`");
        assert!(
            report.resilience.quarantined >= 1,
            "scenario `{name}` must quarantine the record"
        );
        assert!(
            report
                .resilience
                .events
                .iter()
                .any(|e| matches!(e.quarantined, Some(QuarantineReason::CacheInvalid(_)))),
            "scenario `{name}` must report CacheInvalid, got {:?}",
            report.resilience.events
        );
        assert_eq!(
            corrupt.exists(),
            quarantines,
            "scenario `{name}`: wrong quarantine-file behavior"
        );
        // Self-heal: the fallback sweep rewrote the record, so the
        // next run warm-starts again.
        assert!(
            report.metrics.store.as_ref().is_some_and(|s| s.saved),
            "scenario `{name}` must overwrite the broken record"
        );
        let healed = cached.select_best(n).unwrap();
        assert_eq!(store_outcome(&healed), "warm", "scenario `{name}` did not self-heal");
        assert_same_winner(&cold, &healed, &format!("healed after `{name}`"));
    }

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_orphans_are_swept_on_the_next_save() {
    let arch = ArchConfig::maxwell_gtx980();
    let n = 16_384;
    let dir = store_dir("torn");
    fs::create_dir_all(&dir).unwrap();
    // A writer killed mid-protocol leaves a half-written temp file
    // (and possibly a truncated live record from an earlier, buggier
    // era). Neither may survive a successful sweep.
    let orphan = dir.join(format!("{}.99999.tmp", StoreKey::for_sweep(&arch.id, n).file_name()));
    fs::write(&orphan, b"{\"schema\": 1, \"corp").unwrap();
    fs::write(record_path(&dir, &arch.id, n), b"{\"schema\": 1, \"corp").unwrap();

    let cold = session(&arch).select_best(n).unwrap();
    let report = session(&arch).store(&dir).select_best(n).unwrap();
    assert_same_winner(&cold, &report, "torn-write recovery");
    assert_eq!(store_outcome(&report), "invalid");
    assert!(!orphan.exists(), "save must sweep dead writers' temp files");
    assert!(report.metrics.store.as_ref().is_some_and(|s| s.saved));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_lock_from_a_dead_writer_is_broken() {
    let dir = store_dir("stale-lock");
    let store = TuningStore::open(&dir, 1).unwrap();
    // A PID beyond any real pid_max: the owner is provably dead.
    fs::write(dir.join("store.lock"), b"999999999").unwrap();
    let rec = tangram::StoreRecord {
        key: StoreKey::for_sweep("maxwell", 4096),
        n: 4096,
        version: "v".to_string(),
        block_size: 32,
        coarsen: 1,
        time_ns_bits: 1.0f64.to_bits(),
    };
    store.save(&rec).expect("stale lock must be broken, not honored");
    assert!(!dir.join("store.lock").exists(), "lock released after save");
    // A lock file holding garbage is a torn write of the lock itself —
    // also stale by definition.
    fs::write(dir.join("store.lock"), b"not a pid").unwrap();
    store.save(&rec).expect("garbage lock must be broken");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn contended_lock_fails_the_save_but_never_the_sweep() {
    let arch = ArchConfig::maxwell_gtx980();
    let n = 16_384;
    let dir = store_dir("held-lock");
    fs::create_dir_all(&dir).unwrap();
    // Our own PID is alive by construction, so the lock is honored as
    // live contention (another thread of this process mid-write).
    fs::write(dir.join("store.lock"), format!("{}", std::process::id())).unwrap();

    let store = TuningStore::open(&dir, 1).unwrap();
    let rec = tangram::StoreRecord {
        key: StoreKey::for_sweep(&arch.id, n),
        n,
        version: "v".to_string(),
        block_size: 32,
        coarsen: 1,
        time_ns_bits: 1.0f64.to_bits(),
    };
    match store.save(&rec) {
        Err(StoreError::Locked(_)) => {}
        other => panic!("expected Locked, got {other:?}"),
    }

    // At the session level the failed write-back degrades to a note
    // in the summary; the sweep itself still succeeds and matches a
    // storeless run.
    let cold = session(&arch).select_best(n).unwrap();
    let report = session(&arch).store(&dir).select_best(n).unwrap();
    assert_same_winner(&cold, &report, "contended-lock sweep");
    let s = report.metrics.store.as_ref().expect("store summary present");
    assert!(!s.saved, "a held lock must fail the write-back");
    assert!(
        s.detail.as_deref().is_some_and(|d| d.contains("save failed")),
        "summary must carry the save failure, got {:?}",
        s.detail
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn read_only_and_off_modes_respect_their_contracts() {
    let arch = ArchConfig::maxwell_gtx980();
    let n = 16_384;
    let dir = store_dir("modes");
    let cold = session(&arch).select_best(n).unwrap();

    // Off: the configured store is ignored outright — no summary, no
    // directory, no files.
    let off = session(&arch).store(&dir).cache_mode(CacheMode::Off).select_best(n).unwrap();
    assert_same_winner(&cold, &off, "cache off");
    assert!(off.metrics.store.is_none(), "off mode must not consult the store");
    assert!(!dir.exists(), "off mode must not create the store directory");

    // Read-only against an empty store: a miss that must not write.
    let ro = session(&arch).store(&dir).cache_mode(CacheMode::ReadOnly).select_best(n).unwrap();
    assert_same_winner(&cold, &ro, "ro miss");
    let s = ro.metrics.store.as_ref().expect("store summary present");
    assert_eq!((s.outcome.as_str(), s.saved), ("miss", false));
    assert!(!record_path(&dir, &arch.id, n).exists(), "ro mode must never write records");

    // Populate via rw, then ro warm-starts from it.
    session(&arch).store(&dir).select_best(n).unwrap();
    let ro_warm =
        session(&arch).store(&dir).cache_mode(CacheMode::ReadOnly).select_best(n).unwrap();
    assert_same_winner(&cold, &ro_warm, "ro warm");
    assert_eq!(store_outcome(&ro_warm), "warm");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bucket_hit_with_different_exact_size_is_an_honest_miss() {
    let arch = ArchConfig::maxwell_gtx980();
    let dir = store_dir("bucket");
    let cached = session(&arch).store(&dir);
    // 100_000 and 65_536 share bucket 17 but are different sweeps; a
    // warm start across them would return a winner tuned for the
    // wrong exact size.
    cached.select_best(100_000).unwrap();
    let other = cached.select_best(65_536).unwrap();
    let s = other.metrics.store.as_ref().expect("store summary present");
    assert_eq!(s.outcome, "miss", "a different exact n must not warm-start");
    assert!(
        s.detail.as_deref().is_some_and(|d| d.contains("bucket record is for n=100000")),
        "got {:?}",
        s.detail
    );
    // The overwrite wins the bucket: the later size now warm-starts,
    // the earlier one is back to a miss.
    assert_eq!(store_outcome(&cached.select_best(65_536).unwrap()), "warm");
    assert_eq!(store_outcome(&cached.select_best(100_000).unwrap()), "miss");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_never_tear_lose_or_leak() {
    // Many threads hammer one store: half write distinct records
    // (different arches and buckets), half pile onto one identical
    // record. Afterwards every record must read back valid — no torn
    // JSON, no lost update — and no `.tmp` or `store.lock` file may
    // survive. The writer lock's bounded jittered retry (PR-8) is
    // what absorbs the contention; receipts surface the attempts.
    let dir = store_dir("concurrent");
    fs::create_dir_all(&dir).unwrap();
    let dir = std::sync::Arc::new(dir);
    let make = |arch: &str, n: u64, block: u32| tangram::StoreRecord {
        key: StoreKey::for_sweep(arch, n),
        n,
        version: "DT,A / DS+S+V".to_string(),
        block_size: block,
        coarsen: 4,
        time_ns_bits: (n as f64).to_bits(),
    };
    let shapes: Vec<(String, u64)> = ["kepler", "maxwell", "pascal"]
        .iter()
        .flat_map(|a| [16_384u64, 65_536, 262_144].map(|n| (a.to_string(), n)))
        .collect();
    let mut handles = Vec::new();
    for (arch, n) in shapes.clone() {
        let dir = std::sync::Arc::clone(&dir);
        handles.push(std::thread::spawn(move || {
            let store = TuningStore::open(dir.as_ref(), 1).unwrap();
            let receipt = store.save(&make(&arch, n, 128)).expect("distinct save");
            assert!(receipt.lock_attempts >= 1);
        }));
    }
    for _ in 0..6 {
        let dir = std::sync::Arc::clone(&dir);
        handles.push(std::thread::spawn(move || {
            let store = TuningStore::open(dir.as_ref(), 1).unwrap();
            let receipt = store.save(&make("maxwell", 4096, 256)).expect("identical save");
            assert!(receipt.lock_attempts >= 1);
        }));
    }
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    let store = TuningStore::open(dir.as_ref(), 1).unwrap();
    for (arch, n) in shapes {
        match store.load(&StoreKey::for_sweep(&arch, n)) {
            tangram::Lookup::Hit(rec) => {
                assert_eq!((rec.n, rec.block_size), (n, 128), "{arch} n={n}");
            }
            other => panic!("{arch} n={n}: lost or torn record: {other:?}"),
        }
    }
    match store.load(&StoreKey::for_sweep("maxwell", 4096)) {
        tangram::Lookup::Hit(rec) => assert_eq!(rec.block_size, 256),
        other => panic!("contended record lost: {other:?}"),
    }
    for entry in fs::read_dir(dir.as_ref()).unwrap().flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            name.ends_with(".json"),
            "leaked non-record file after concurrent writes: {name}"
        );
    }
    let _ = fs::remove_dir_all(dir.as_ref());
}

#[test]
fn nearest_bucket_seeds_the_sweep_and_keeps_winners_bitwise() {
    // An exact miss next to a cached neighbor must warm-start the
    // halving sweep (summary.seeded) and still return the storeless
    // winner bit for bit — the seed narrows the search, never steers
    // it. 65_536 is bucket 17, 131_072 bucket 18, 1_048_576 bucket 21
    // (two buckets out from 18): both directions of nearest-neighbor
    // seeding are exercised.
    use tangram::evaluate::SweepMode;
    let halving =
        |arch: &ArchConfig| Session::new(arch.clone()).eval(
            EvalOptions::serial().with_sweep(SweepMode::Halving),
        );
    for arch in ArchConfig::paper_archs() {
        let dir = store_dir(&format!("seeded-{}", arch.id));
        let cached = halving(&arch).store(&dir);

        // Empty store: a plain miss, nothing to seed from.
        let first = cached.select_best(65_536).unwrap();
        let s = first.metrics.store.as_ref().expect("store summary present");
        assert!(!s.seeded, "{}: empty store cannot seed", arch.id);
        assert_eq!(s.outcome, "miss", "{}", arch.id);

        for n in [131_072u64, 1_048_576] {
            let cold = halving(&arch).select_best(n).unwrap();
            let report = cached.select_best(n).unwrap();
            assert_same_winner(&cold, &report, &format!("seeded n={n} on {}", arch.id));
            let s = report.metrics.store.as_ref().expect("store summary present");
            assert!(s.seeded, "{} n={n}: neighbor present, sweep must seed", arch.id);
            assert!(
                s.detail.as_deref().is_some_and(|d| d.contains("seeded from")),
                "{} n={n}: detail must name the seed record, got {:?}",
                arch.id,
                s.detail
            );
            assert_eq!(s.outcome, "miss", "{} n={n}: seeding is still a miss", arch.id);
            assert!(s.saved, "{} n={n}: the seeded sweep writes its own bucket", arch.id);
            // A seeded sweep that confirms its seed measures fewer
            // full-fidelity jobs than the unseeded halving rung; it
            // must at least never measure more.
            assert!(
                report.metrics.rungs.iter().any(|r| r.rung == "seeded"),
                "{} n={n}: rung stats must show the seeded rung, got {:?}",
                arch.id,
                report.metrics.rungs
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// For any architecture and size, a warm-started sweep over the
    /// full pruned corpus returns the cold sweep's winner bit for bit
    /// — version, tuning, and modelled-time bits — while doing only
    /// one confirmation job.
    #[test]
    fn warm_start_winner_equals_cold_winner(
        arch_ix in 0usize..3,
        shift in 12u32..17,
    ) {
        let arch = ArchConfig::paper_archs().swap_remove(arch_ix);
        let n = 1u64 << shift;
        // Keep the corpus fixture warm across cases (support::pruned
        // is the same slice the sweeps enumerate internally).
        prop_assert!(!support::pruned().is_empty());

        let cold = session(&arch).select_best(n).unwrap();
        let dir = store_dir(&format!("prop-{}-{shift}", arch.id));
        let cached = session(&arch).store(&dir);
        let first = cached.select_best(n).unwrap();
        let warm = cached.select_best(n).unwrap();
        prop_assert_eq!(store_outcome(&warm), "warm");
        for (label, report) in [("miss", &first), ("warm", &warm)] {
            prop_assert_eq!(&cold.row.version, &report.row.version, "{} on {}", label, arch.id);
            prop_assert_eq!(cold.row.block_size, report.row.block_size, "{} on {}", label, arch.id);
            prop_assert_eq!(cold.row.coarsen, report.row.coarsen, "{} on {}", label, arch.id);
            prop_assert_eq!(
                cold.row.time_ns.to_bits(),
                report.row.time_ns.to_bits(),
                "{} on {}", label, arch.id
            );
        }
        prop_assert_eq!(warm.resilience.total_jobs, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
