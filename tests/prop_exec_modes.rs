//! Differential property test for the interpreter hot paths: for any
//! pruned version, tuning, architecture and size, the predecoded µop
//! engine (with warp-uniform scalarization) and the closure-threaded
//! compiled tier must both be bit-identical to the lane-wise
//! reference interpreter in results, every statistics counter, and
//! modelled time — a three-way reference ≡ uop ≡ compiled check.

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device, ExecMode};
use proptest::prelude::*;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    prop_oneof![
        Just(ArchConfig::kepler_k40c()),
        Just(ArchConfig::maxwell_gtx980()),
        Just(ArchConfig::pascal_p100()),
    ]
}

fn version_strategy() -> impl Strategy<Value = planner::CodeVersion> {
    let pruned = planner::enumerate_pruned();
    (0..pruned.len()).prop_map(move |i| pruned[i])
}

/// Run one reduction end to end under `mode`; return the result bits
/// plus everything the timing model consumes.
fn run_mode(
    mode: ExecMode,
    arch: &ArchConfig,
    version: planner::CodeVersion,
    tuning: Tuning,
    values: &[f32],
    selection: BlockSelection,
) -> (u32, f64, Vec<String>) {
    let sv = synthesize(version, tuning).unwrap();
    let mut dev = Device::new(arch.clone());
    dev.set_exec_mode(mode);
    let input = upload(&mut dev, values).unwrap();
    let got = run_reduction(&mut dev, &sv, input, values.len() as u64, selection).unwrap();
    let launches: Vec<String> = dev
        .launches()
        .iter()
        .map(|l| format!("{} exact={} stats={:?} timing_ns={}", l.kernel, l.exact, l.stats, l.timing.time_ns.to_bits()))
        .collect();
    (got.to_bits(), dev.elapsed_ns(), launches)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// µop-predecoded and compiled execution ≡ lane-wise reference
    /// execution, bit for bit, on the pruned pass corpus.
    #[test]
    fn uop_and_compiled_engines_are_bit_identical_to_reference(
        version in version_strategy(),
        arch in arch_strategy(),
        block_exp in 0u32..5,       // 32..512
        coarsen_exp in 0u32..5,     // 1..16
        n in 1usize..10_000,
        sampled in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 1 << coarsen_exp };
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 7) % 9) as f32 - 4.0)
            .collect();
        let selection = if sampled {
            BlockSelection::Sample { max_blocks: 3 }
        } else {
            BlockSelection::All
        };
        let Ok(sv) = synthesize(version, tuning) else { return };
        // Skip tunings the hardware model rejects (same on both paths).
        {
            let mut dev = Device::new(arch.clone());
            dev.set_exec_mode(ExecMode::Reference);
            let input = upload(&mut dev, &values).unwrap();
            if run_reduction(&mut dev, &sv, input, n as u64, selection).is_err() {
                return;
            }
        }
        let r = run_mode(ExecMode::Reference, &arch, version, tuning, &values, selection);
        for mode in [ExecMode::Predecoded, ExecMode::Compiled] {
            let m = run_mode(mode, &arch, version, tuning, &values, selection);
            let id = mode.id();
            prop_assert_eq!(r.0, m.0, "result bits differ ({} vs {} n={})", sv.id(), id, n);
            prop_assert_eq!(
                r.1.to_bits(), m.1.to_bits(),
                "elapsed_ns differs ({} vs {} n={})", sv.id(), id, n
            );
            prop_assert_eq!(&r.2, &m.2, "launch stats differ ({} vs {} n={})", sv.id(), id, n);
        }
    }
}
