//! Sweep-strategy equivalence on the full pruned corpus: the
//! successive-halving sweep must select the exhaustive sweep's winner
//! — same version, same tuning, bit-identical modelled time — for
//! every paper architecture, and the interpreter hot path must not
//! change any measurement.

use gpu_sim::{ArchConfig, ExecMode};
use tangram::evaluate::{best_measurement, evaluate_all, ContextPool, EvalOptions, SweepMode};
mod support;

#[test]
fn halving_winner_matches_exhaustive_on_full_corpus() {
    let candidates = support::pruned();
    for arch in ArchConfig::paper_archs() {
        let pool = ContextPool::new(&arch, 65_536);
        let exhaustive = evaluate_all(&pool, candidates, &EvalOptions::default()).unwrap();
        let halving = evaluate_all(
            &pool,
            candidates,
            &EvalOptions::default().with_sweep(SweepMode::Halving),
        )
        .unwrap();

        let (be, bh) =
            (best_measurement(&exhaustive).unwrap(), best_measurement(&halving).unwrap());
        assert_eq!(be.version, bh.version, "winner version differs on {}", arch.id);
        assert_eq!(be.tuning, bh.tuning, "winner tuning differs on {}", arch.id);
        assert_eq!(
            be.time_ns.to_bits(),
            bh.time_ns.to_bits(),
            "winner time differs on {}",
            arch.id
        );

        // Every surviving job is a full-fidelity measurement, so its
        // value must be bitwise identical to the exhaustive sweep's;
        // the screen must also have pruned a substantial share.
        let mut pruned = 0usize;
        for (e, h) in exhaustive.iter().zip(&halving) {
            match (e, h) {
                (_, None) => pruned += 1,
                (Some(a), Some(b)) => {
                    assert_eq!(a.time_ns.to_bits(), b.time_ns.to_bits(), "on {}", arch.id);
                }
                (None, Some(_)) => panic!("halving measured an infeasible job on {}", arch.id),
            }
        }
        let feasible = exhaustive.iter().flatten().count();
        assert!(
            pruned * 2 > feasible,
            "halving pruned only {pruned} of {feasible} feasible jobs on {}",
            arch.id
        );
    }
}

#[test]
fn interpreter_hot_path_does_not_change_measurements() {
    // A fig6 subset keeps this cheap; the full differential coverage
    // lives in the prop_exec_modes property test.
    let candidates = support::fig6_subset();
    let arch = ArchConfig::kepler_k40c();
    let uop = ContextPool::builder(&arch, 32_768).exec_mode(ExecMode::Predecoded).build();
    let opts = EvalOptions::serial();
    let a = evaluate_all(&uop, candidates, &opts).unwrap();
    for mode in [ExecMode::Reference, ExecMode::Compiled] {
        let pool = ContextPool::builder(&arch, 32_768).exec_mode(mode).build();
        let b = evaluate_all(&pool, candidates, &opts).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (None, None) => {}
                (Some(p), Some(q)) => {
                    assert_eq!(p.tuning, q.tuning, "tuning differs under {}", mode.id());
                    assert_eq!(
                        p.time_ns.to_bits(),
                        q.time_ns.to_bits(),
                        "time differs under {}",
                        mode.id()
                    );
                }
                _ => panic!("feasibility differs between uop and {}", mode.id()),
            }
        }
    }
}
