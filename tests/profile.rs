//! Observability must be free: enabling site-level profiling may not
//! change anything the unprofiled run reports — results, statistics
//! counters, and modelled time stay bit-identical on the pruned pass
//! corpus under both interpreter hot paths. A second test checks the
//! Chrome `trace_event` export is well-formed JSON with per-thread
//! monotonic timestamps.

use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device, ExecMode};
use proptest::prelude::*;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn arch_strategy() -> impl Strategy<Value = ArchConfig> {
    prop_oneof![
        Just(ArchConfig::kepler_k40c()),
        Just(ArchConfig::maxwell_gtx980()),
        Just(ArchConfig::pascal_p100()),
    ]
}

fn version_strategy() -> impl Strategy<Value = planner::CodeVersion> {
    let pruned = planner::enumerate_pruned();
    (0..pruned.len()).prop_map(move |i| pruned[i])
}

/// Run one reduction end to end with profiling on or off; return the
/// result bits plus everything the timing model consumes, and whether
/// every launch carried a profile.
fn run_profiled(
    profiled: bool,
    mode: ExecMode,
    arch: &ArchConfig,
    version: planner::CodeVersion,
    tuning: Tuning,
    values: &[f32],
    selection: BlockSelection,
) -> (u32, f64, Vec<String>, bool) {
    let sv = synthesize(version, tuning).unwrap();
    let mut dev = Device::new(arch.clone());
    dev.set_exec_mode(mode);
    dev.set_profiling(profiled);
    let input = upload(&mut dev, values).unwrap();
    let got = run_reduction(&mut dev, &sv, input, values.len() as u64, selection).unwrap();
    let launches: Vec<String> = dev
        .launches()
        .iter()
        .map(|l| format!("{} exact={} stats={:?} timing_ns={}", l.kernel, l.exact, l.stats, l.timing.time_ns.to_bits()))
        .collect();
    let all_profiled = dev.launches().iter().all(|l| l.profile.is_some());
    (got.to_bits(), dev.elapsed_ns(), launches, all_profiled)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Profiling on ≡ profiling off, bit for bit, in everything the
    /// unprofiled run reports — under both interpreter hot paths.
    #[test]
    fn profiling_is_observationally_free(
        version in version_strategy(),
        arch in arch_strategy(),
        uop in any::<bool>(),
        block_exp in 0u32..5,       // 32..512
        coarsen_exp in 0u32..5,     // 1..16
        n in 1usize..10_000,
        sampled in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let mode = if uop { ExecMode::Predecoded } else { ExecMode::Reference };
        let tuning = Tuning { block_size: 32 << block_exp, coarsen: 1 << coarsen_exp };
        let values: Vec<f32> = (0..n)
            .map(|i| (((i as u32).wrapping_mul(seed | 1) >> 7) % 9) as f32 - 4.0)
            .collect();
        let selection = if sampled {
            BlockSelection::Sample { max_blocks: 3 }
        } else {
            BlockSelection::All
        };
        let Ok(sv) = synthesize(version, tuning) else { return };
        // Skip tunings the hardware model rejects (same on both runs).
        {
            let mut dev = Device::new(arch.clone());
            dev.set_exec_mode(mode);
            let input = upload(&mut dev, &values).unwrap();
            if run_reduction(&mut dev, &sv, input, n as u64, selection).is_err() {
                return;
            }
        }
        let off = run_profiled(false, mode, &arch, version, tuning, &values, selection);
        let on = run_profiled(true, mode, &arch, version, tuning, &values, selection);
        prop_assert_eq!(off.0, on.0, "result bits differ ({} n={})", sv.id(), n);
        prop_assert_eq!(off.1.to_bits(), on.1.to_bits(), "elapsed_ns differs ({} n={})", sv.id(), n);
        prop_assert_eq!(&off.2, &on.2, "launch stats differ ({} n={})", sv.id(), n);
        prop_assert!(!off.3 || off.2.is_empty(), "unprofiled run must carry no profiles");
        prop_assert!(on.3, "profiled run must attach a profile to every launch");
    }
}

/// The Chrome `trace_event` export parses as JSON and its `ts` values
/// are monotonically non-decreasing within each `(pid, tid)` lane —
/// the invariant `chrome://tracing` / Perfetto rely on to build rows.
#[test]
fn chrome_trace_is_valid_json_with_monotonic_timestamps() {
    let version = planner::enumerate_pruned()
        .into_iter()
        .find(|v| v.uses_shuffle())
        .expect("pruned corpus has a shuffle version");
    let sv = synthesize(version, Tuning { block_size: 128, coarsen: 2 }).unwrap();
    let mut dev = Device::new(ArchConfig::maxwell_gtx980());
    dev.set_profiling(true);
    let values: Vec<f32> = (0..40_000).map(|i| (i % 7) as f32).collect();
    let input = upload(&mut dev, &values).unwrap();
    run_reduction(&mut dev, &sv, input, values.len() as u64, BlockSelection::All).unwrap();
    let trace = dev.take_trace();

    let json = trace.to_chrome_json();
    let root = serde_json::from_str(&json).expect("chrome trace must parse as JSON");
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("traceEvents must be an array");
    assert!(!events.is_empty(), "a profiled launch must emit events");
    let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for e in events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"), "complete events only");
        let pid = e.get("pid").and_then(|v| v.as_u64()).expect("pid");
        let tid = e.get("tid").and_then(|v| v.as_u64()).expect("tid");
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        assert!(e.get("dur").and_then(|v| v.as_f64()).is_some(), "dur");
        if let Some(&prev) = last.get(&(pid, tid)) {
            assert!(ts >= prev, "ts must be monotonic per (pid, tid): {ts} < {prev}");
        }
        last.insert((pid, tid), ts);
    }
}
