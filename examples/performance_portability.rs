//! Performance portability across GPU generations — the paper's core
//! argument (§I, §IV-C).
//!
//! ```text
//! cargo run --example performance_portability
//! ```
//!
//! For each of the three simulated architectures (Kepler K40c, Maxwell
//! GTX980, Pascal P100) and a few array sizes, the framework selects a
//! *different* best code version: the winning algorithm depends on each
//! generation's atomic-instruction microarchitecture and shuffle
//! support, which is exactly why a single hand-written kernel cannot be
//! performance-portable.

use gpu_sim::ArchConfig;
use tangram::select::select_best;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes: [u64; 4] = [256, 16_384, 1 << 20, 16 << 20];
    println!(
        "{:<18}{:>12}{:>8}{:>26}{:>14}",
        "architecture", "n", "label", "winning version", "time (µs)"
    );
    for arch in ArchConfig::paper_archs() {
        for &n in &sizes {
            let (_tuned, row) = select_best(&arch, n)?;
            println!(
                "{:<18}{:>12}{:>8}{:>26}{:>14.1}",
                arch.id,
                n,
                row.fig6_label.map(|c| format!("({c})")).unwrap_or_else(|| "-".into()),
                row.version.to_string(),
                row.time_ns / 1000.0
            );
        }
    }
    println!();
    println!("Note how Kepler (software-locked shared atomics) avoids the");
    println!("shared-atomic versions that Maxwell/Pascal (native support)");
    println!("prefer — §IV-C2 vs §IV-C3/4 of the paper.");
    Ok(())
}
