//! A tour of the compilation pipeline (Fig. 5): codelet source → AST
//! → transformation passes → generated CUDA, reproducing the paper's
//! Listings.
//!
//! ```text
//! cargo run --example codegen_tour
//! ```

use tangram::tangram_codegen::cuda::{coop_kernel_cuda, CudaInputMap};
use tangram::tangram_codegen::{version_cuda, Tuning};
use tangram::tangram_ir::print::codelet_to_string;
use tangram::tangram_passes::planner::{self, Coop};
use tangram::tangram_passes::{corpus, lower_shared_atomics, Pass, ShufflePass};

fn banner(title: &str) {
    println!("\n================================================================");
    println!("== {title}");
    println!("================================================================");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The cooperative codelet of Fig. 1c, parsed from source.
    let fig1c = corpus::parse_canonical(corpus::FIG1C, "float");
    banner("Fig. 1c codelet (parsed and re-printed)");
    println!("{}", codelet_to_string(&fig1c));

    // 2. The §III-C shuffle pass (the Fig. 4 detection algorithm).
    let shuffled = ShufflePass
        .run(&fig1c)
        .pop()
        .expect("Fig. 1c matches the shuffle pattern")
        .codelet;
    banner("After the warp-shuffle pass (tree loops → __shfl_down)");
    println!("{}", codelet_to_string(&shuffled));

    // 3. The §III-B shared-atomic lowering on Fig. 3b.
    let fig3b = corpus::parse_canonical(corpus::FIG3B, "float");
    let (lowered, rewrites) = lower_shared_atomics(&fig3b);
    banner(&format!("Fig. 3b after the shared-atomic lowering ({rewrites} write(s) rewritten)"));
    println!("{}", codelet_to_string(&lowered));

    // 4. Generated CUDA for the shared-atomic cooperative codelet
    //    (the paper's Listing 3).
    banner("Generated CUDA — Listing 3 (shared-memory atomics)");
    let va2 = tangram::tangram_codegen::vir::coop_codelet(Coop::VA2, "float");
    println!("{}", coop_kernel_cuda(&va2, CudaInputMap::default())?);

    // 5. Generated CUDA for the shuffle variant (Listing 4).
    banner("Generated CUDA — Listing 4 (warp shuffles)");
    let vs = tangram::tangram_codegen::vir::coop_codelet(Coop::Vs, "float");
    println!("{}", coop_kernel_cuda(&vs, CudaInputMap::default())?);

    // 6. Listing 1 vs Listing 2: the grid-level memory management.
    let non_atomic = planner::enumerate_original()[0];
    let atomic = planner::fig6_by_label('l').expect("fig6(l)");
    banner("Grid synthesis — Listing 1 (non-atomic: partials array + 2nd kernel)");
    let src = version_cuda(non_atomic, Tuning::default())?;
    print_grid_part(&src);
    banner("Grid synthesis — Listing 2 (global atomics: single accumulator)");
    let src = version_cuda(atomic, Tuning::default())?;
    print_grid_part(&src);
    Ok(())
}

fn print_grid_part(src: &str) {
    let start = src.find("template").unwrap_or(0);
    println!("{}", &src[start..]);
}
