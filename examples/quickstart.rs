//! Quickstart: reduce an array with the extended-Tangram reducer.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The reducer synthesizes the paper's 30 single-kernel code versions
//! (§IV-B), tunes their `__tunable` parameters, picks the fastest for
//! the target architecture and size, and runs it on the simulated GPU.

use gpu_sim::ArchConfig;
use tangram::Reducer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The data: 100k elements with a pattern we can check by hand.
    let data: Vec<f32> = (0..100_000).map(|i| ((i % 19) as f32) - 4.0).collect();
    let oracle = cpu_ref::parallel_sum(&data, 4);

    for arch in ArchConfig::paper_archs() {
        let name = arch.name.clone();
        let mut reducer = Reducer::new(arch);
        let result = reducer.sum(&data)?;
        println!("{name}:");
        println!("  sum          = {}", result.value);
        println!(
            "  code version = {}  (Fig. 6 label: {})",
            result.version,
            result.fig6_label.map(|c| format!("({c})")).unwrap_or_else(|| "-".into())
        );
        println!(
            "  tunables     = blockDim {} / coarsening {}",
            result.block_size, result.coarsen
        );
        println!("  modelled time = {:.1} µs", result.time_ns / 1000.0);
        assert!(
            (f64::from(result.value) - oracle).abs() < 1e-3,
            "GPU result must match the CPU oracle"
        );
    }
    println!("\nall results match the CPU oracle ({oracle})");
    Ok(())
}
