//! Quickstart: run workloads with the extended-Tangram reducer.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The reducer synthesizes the paper's single-kernel code versions
//! (§IV-B), tunes their `__tunable` parameters, picks the fastest for
//! the target architecture and size, and runs it on the simulated GPU.
//! `Reducer::run` takes a typed [`WorkloadKey`], so the same entry
//! point serves plain reductions, arg-reductions, and histograms.

use gpu_sim::ArchConfig;
use tangram::{Reducer, WorkloadKey, WorkloadValue};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The data: 100k elements with a pattern we can check by hand.
    let data: Vec<f32> = (0..100_000).map(|i| ((i % 19) as f32) - 4.0).collect();
    let oracle = cpu_ref::parallel_sum(&data, 4);

    for arch in ArchConfig::paper_archs() {
        let name = arch.name.clone();
        let mut reducer = Reducer::new(arch);

        let result = reducer.run(WorkloadKey::sum(), &data)?;
        let WorkloadValue::Scalar(sum) = result.value else {
            unreachable!("sum returns a scalar");
        };
        println!("{name}:");
        println!("  sum          = {sum}");
        println!("  code version = {}", result.version);
        println!(
            "  tunables     = blockDim {} / coarsening {}",
            result.block_size, result.coarsen
        );
        println!("  modelled time = {:.1} µs", result.time_ns / 1000.0);
        assert!(
            (f64::from(sum) - oracle).abs() < 1e-3,
            "GPU result must match the CPU oracle"
        );

        // The same entry point serves every workload: ask for the
        // index of the maximum instead of the sum.
        let top = reducer.run(WorkloadKey::argmax(), &data)?;
        println!(
            "  argmax       = index {:?} via {}",
            top.value.arg_index(),
            top.version
        );
        assert_eq!(top.value.arg_index(), Some(18), "first occurrence of the max (14.0)");
    }
    println!("\nall results match the CPU oracle ({oracle})");
    Ok(())
}
