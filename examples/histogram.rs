//! Histogram with privatized shared-memory bins — the workload the
//! paper cites as motivating atomic instructions on scratchpad memory
//! (§II-A2, refs [12], [13]).
//!
//! ```text
//! cargo run --example histogram
//! ```
//!
//! Each block builds a private histogram in shared memory with
//! `red.shared` atomics, then merges it into the global histogram with
//! `red.global` atomics. Running the same kernel on Kepler (software
//! lock-update-unlock shared atomics) and Maxwell (native support)
//! shows why the generation matters: the shared-atomic-heavy kernel is
//! far more expensive on Kepler.

use gpu_sim::isa::{Address, AtomOp, BinOp, CmpOp, Operand, Scope, Space, Sreg, Ty};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::{ArchConfig, Arg, Device, Kernel, LaunchDims};

const BINS: u32 = 64;

/// Build the privatized-histogram kernel:
/// p0 = input (u32 values), p1 = global bins, p2 = n.
fn histogram_kernel() -> Kernel {
    let mut b = KernelBuilder::new("histogram_priv");
    let p_in = b.param_ptr();
    let p_bins = b.param_ptr();
    let p_n = b.param_scalar(Ty::U32);
    let smem = b.smem_alloc(u64::from(BINS) * 4);

    // Zero the private bins (threads 0..BINS).
    let p = b.pred();
    b.setp(CmpOp::Lt, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(i64::from(BINS)));
    let skip_init = b.label();
    b.bra_if(p, false, skip_init);
    let zero = b.reg();
    b.mov(Ty::U32, zero, Operand::ImmI(0));
    let a = b.reg();
    b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
    b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
    b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::ImmI(smem as i64));
    b.st(Space::Shared, Ty::U32, zero, Address::reg(a));
    b.place(skip_init);
    b.bar();

    // Grid-stride loop: bin = value % BINS, private atomic increment.
    let i = b.reg();
    b.mad(Ty::U32, i, Operand::Sreg(Sreg::CtaIdX), Operand::Sreg(Sreg::NtidX), Operand::Sreg(Sreg::TidX));
    let step = b.reg();
    b.bin(BinOp::Mul, Ty::U32, step, Operand::Sreg(Sreg::NtidX), Operand::Sreg(Sreg::NctaIdX));
    let top = b.label();
    let done = b.label();
    b.place(top);
    let pd = b.pred();
    b.setp(CmpOp::Ge, Ty::U32, pd, Operand::Reg(i), Operand::Param(p_n));
    b.bra_if(pd, true, done);
    let addr = b.reg();
    b.cvt(Ty::U32, Ty::U64, addr, Operand::Reg(i));
    b.bin(BinOp::Mul, Ty::U64, addr, Operand::Reg(addr), Operand::ImmI(4));
    b.bin(BinOp::Add, Ty::U64, addr, Operand::Reg(addr), Operand::Param(p_in));
    let v = b.reg();
    b.ld(Space::Global, Ty::U32, v, Address::reg(addr));
    let bin = b.reg();
    b.bin(BinOp::Rem, Ty::U32, bin, Operand::Reg(v), Operand::ImmI(i64::from(BINS)));
    let baddr = b.reg();
    b.cvt(Ty::U32, Ty::U64, baddr, Operand::Reg(bin));
    b.bin(BinOp::Mul, Ty::U64, baddr, Operand::Reg(baddr), Operand::ImmI(4));
    b.bin(BinOp::Add, Ty::U64, baddr, Operand::Reg(baddr), Operand::ImmI(smem as i64));
    let one = b.reg();
    b.mov(Ty::U32, one, Operand::ImmI(1));
    b.red(Space::Shared, Scope::Cta, AtomOp::Add, Ty::U32, Address::reg(baddr), Operand::Reg(one));
    b.bin(BinOp::Add, Ty::U32, i, Operand::Reg(i), Operand::Reg(step));
    b.bra(top);
    b.place(done);
    b.bar();

    // Merge private bins into the global histogram.
    let pm = b.pred();
    b.setp(CmpOp::Lt, Ty::U32, pm, Operand::Sreg(Sreg::TidX), Operand::ImmI(i64::from(BINS)));
    let skip_merge = b.label();
    b.bra_if(pm, false, skip_merge);
    let sa = b.reg();
    b.cvt(Ty::U32, Ty::U64, sa, Operand::Sreg(Sreg::TidX));
    b.bin(BinOp::Mul, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(4));
    let priv_addr = b.reg();
    b.bin(BinOp::Add, Ty::U64, priv_addr, Operand::Reg(sa), Operand::ImmI(smem as i64));
    let count = b.reg();
    b.ld(Space::Shared, Ty::U32, count, Address::reg(priv_addr));
    let gaddr = b.reg();
    b.bin(BinOp::Add, Ty::U64, gaddr, Operand::Reg(sa), Operand::Param(p_bins));
    b.red(Space::Global, Scope::Gpu, AtomOp::Add, Ty::U32, Address::reg(gaddr), Operand::Reg(count));
    b.place(skip_merge);
    b.exit();
    b.finish().expect("histogram kernel must build")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: u32 = 1 << 20;
    // Skewed data: contention on a few hot bins (the case the paper's
    // scratchpad-atomics modelling work [13] studies).
    let data: Vec<u32> = (0..n).map(|i| if i % 4 == 0 { 7 } else { i.wrapping_mul(2654435761) % 97 }).collect();

    // CPU reference.
    let mut expect = vec![0u32; BINS as usize];
    for &v in &data {
        expect[(v % BINS) as usize] += 1;
    }

    let kernel = histogram_kernel();
    for arch in [ArchConfig::kepler_k40c(), ArchConfig::maxwell_gtx980()] {
        let name = arch.name.clone();
        let mut dev = Device::new(arch);
        let input = dev.alloc(u64::from(n) * 4)?;
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        dev.upload_bytes(input, &bytes)?;
        let bins = dev.alloc(u64::from(BINS) * 4)?;
        dev.memset_zero(bins, u64::from(BINS) * 4)?;

        dev.reset_clock();
        let report = dev.launch_simple(&kernel, LaunchDims::new(64, 256), &[
            input.arg(),
            bins.arg(),
            Arg::U32(n),
        ])?;
        let shared_atomics = report.stats.shared_atomics;
        let serial = report.stats.shared_atomic_serial;
        let time_us = dev.elapsed_ns() / 1000.0;

        // Check the result.
        let got: Vec<u32> = (0..BINS)
            .map(|i| dev.read_scalar(Ty::U32, bins.offset(u64::from(i) * 4)).unwrap() as u32)
            .collect();
        assert_eq!(got, expect, "histogram mismatch on {name}");

        println!("{name}:");
        println!("  shared atomics: {shared_atomics} (warp-serialization events: {serial})");
        println!("  modelled time : {time_us:.1} µs");
    }
    println!("\nSame kernel, same input: Kepler's lock-update-unlock shared");
    println!("atomics make it far slower than Maxwell's native units —");
    println!("the microarchitectural gap the paper's qualifiers expose.");
    Ok(())
}
