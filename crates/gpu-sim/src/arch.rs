//! Architecture descriptions and cost-model parameters for the three
//! GPU generations the paper evaluates (§IV-A): Kepler K40c, Maxwell
//! GTX980 and Pascal P100 — plus the knobs that encode each
//! generation's atomic-instruction microarchitecture (§II-A2).

use serde::{Deserialize, Serialize};

/// How shared-memory atomics are implemented by the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SharedAtomicImpl {
    /// Pre-Maxwell: a software lock-update-unlock loop with branches;
    /// expensive under contention and a source of branch divergence
    /// (Gómez-Luna et al., modelled per §II-A2 / §IV-C2).
    SoftwareLock {
        /// Cycles for an uncontended lock-update-unlock sequence.
        base_cycles: u64,
        /// Extra cycles per additional same-bank conflicting lane
        /// (each conflicting lane retries the lock loop).
        per_conflict_cycles: u64,
    },
    /// Maxwell and later: native shared-memory atomic units.
    Native {
        /// Cycles for an uncontended shared atomic.
        base_cycles: u64,
        /// Extra cycles per additional conflicting lane (hardware
        /// serializes same-address updates).
        per_conflict_cycles: u64,
    },
}

impl SharedAtomicImpl {
    /// Issue-cycle cost of one warp-level shared atomic with the given
    /// worst per-address conflict degree.
    pub fn warp_cost(&self, conflict_degree: u64) -> u64 {
        let extra = conflict_degree.saturating_sub(1);
        match *self {
            SharedAtomicImpl::SoftwareLock { base_cycles, per_conflict_cycles } => {
                base_cycles + extra * per_conflict_cycles
            }
            SharedAtomicImpl::Native { base_cycles, per_conflict_cycles } => {
                base_cycles + extra * per_conflict_cycles
            }
        }
    }

    /// Whether the implementation is the pre-Maxwell software lock.
    pub fn is_software(&self) -> bool {
        matches!(self, SharedAtomicImpl::SoftwareLock { .. })
    }
}

/// A GPU architecture: resource limits plus timing parameters.
///
/// Resource limits drive the occupancy model; timing parameters drive
/// the analytic performance model in [`crate::timing`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Marketing name, e.g. `"Kepler K40c"`.
    pub name: String,
    /// Short identifier used in reports, e.g. `"kepler"`.
    pub id: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp width (32 on all modelled parts).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u64,
    /// Maximum shared memory per block in bytes.
    pub smem_per_block: u64,
    /// 32-bit registers per SM.
    pub regs_per_sm: u64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Fraction of peak bandwidth achieved by coalesced *scalar*
    /// (1-element) accesses. CUB's vectorized loads achieve
    /// [`ArchConfig::bw_eff_vector`] instead — the §IV-C1 gap.
    pub bw_eff_scalar: f64,
    /// Fraction of peak bandwidth achieved by 128-bit vector accesses.
    pub bw_eff_vector: f64,
    /// DRAM round-trip latency in nanoseconds (exposed once on a
    /// launch's critical path).
    pub mem_latency_ns: f64,
    /// Kernel-launch overhead in nanoseconds (driver + hardware);
    /// dominates tiny-array timings and penalizes two-kernel versions.
    pub launch_overhead_ns: f64,
    /// Warp instructions issued per cycle per SM.
    pub issue_width: f64,
    /// Resident warps per SM needed to fully hide pipeline/memory
    /// latency; below this, throughput degrades proportionally.
    pub hide_warps: f64,
    /// Minimum throughput fraction at single-warp occupancy.
    pub min_hide: f64,
    /// Shared-memory atomic implementation.
    pub shared_atomic: SharedAtomicImpl,
    /// Sustained same-address global atomic rate in ops/ns (the L2
    /// atomic units; improved from Fermi→Kepler, §II-A2).
    pub global_atomic_chain_rate: f64,
    /// Aggregate global atomic throughput in ops/ns across addresses.
    pub global_atomic_rate: f64,
    /// Whether scoped atomics (`_block`/`_system`) exist (Pascal+).
    /// On earlier parts a `cta`-scope request executes as `gpu` scope.
    pub has_scoped_atomics: bool,
    /// Cost multiplier for block-scope atomics relative to device
    /// scope when scopes are supported (< 1.0: cheaper).
    pub cta_scope_discount: f64,
    /// Registers the interpreter assumes per thread when the kernel
    /// metadata does not say otherwise (occupancy model).
    pub default_regs_per_thread: u32,
}

impl ArchConfig {
    /// NVIDIA Tesla K40c (Kepler GK110B, SM 3.5).
    pub fn kepler_k40c() -> Self {
        ArchConfig {
            name: "Kepler K40c".into(),
            id: "kepler".into(),
            sm_count: 15,
            clock_ghz: 0.745,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            smem_per_sm: 48 * 1024,
            smem_per_block: 48 * 1024,
            regs_per_sm: 65_536,
            dram_bw_gbps: 288.0,
            bw_eff_scalar: 0.66,
            bw_eff_vector: 0.93,
            mem_latency_ns: 600.0,
            launch_overhead_ns: 6_500.0,
            issue_width: 4.0,
            hide_warps: 24.0,
            min_hide: 0.10,
            // Software lock-update-unlock: expensive and divergent.
            shared_atomic: SharedAtomicImpl::SoftwareLock {
                base_cycles: 48,
                per_conflict_cycles: 96,
            },
            global_atomic_chain_rate: 0.70,
            global_atomic_rate: 8.0,
            has_scoped_atomics: false,
            cta_scope_discount: 1.0,
            default_regs_per_thread: 32,
        }
    }

    /// NVIDIA GeForce GTX 980 (Maxwell GM204, SM 5.2).
    pub fn maxwell_gtx980() -> Self {
        ArchConfig {
            name: "Maxwell GTX980".into(),
            id: "maxwell".into(),
            sm_count: 16,
            clock_ghz: 1.126,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            smem_per_sm: 96 * 1024,
            smem_per_block: 48 * 1024,
            regs_per_sm: 65_536,
            dram_bw_gbps: 224.0,
            bw_eff_scalar: 0.875,
            bw_eff_vector: 0.94,
            mem_latency_ns: 450.0,
            launch_overhead_ns: 5_200.0,
            issue_width: 4.0,
            hide_warps: 20.0,
            min_hide: 0.12,
            // Native microarchitectural support (§II-A2).
            shared_atomic: SharedAtomicImpl::Native { base_cycles: 4, per_conflict_cycles: 1 },
            global_atomic_chain_rate: 1.2,
            global_atomic_rate: 16.0,
            has_scoped_atomics: false,
            cta_scope_discount: 1.0,
            default_regs_per_thread: 32,
        }
    }

    /// NVIDIA Tesla P100 (Pascal GP100, SM 6.0).
    pub fn pascal_p100() -> Self {
        ArchConfig {
            name: "Pascal P100".into(),
            id: "pascal".into(),
            sm_count: 56,
            clock_ghz: 1.328,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            smem_per_sm: 64 * 1024,
            smem_per_block: 48 * 1024,
            regs_per_sm: 65_536,
            dram_bw_gbps: 732.0,
            bw_eff_scalar: 0.75,
            bw_eff_vector: 0.95,
            mem_latency_ns: 380.0,
            launch_overhead_ns: 2_800.0,
            issue_width: 4.0,
            hide_warps: 20.0,
            min_hide: 0.12,
            shared_atomic: SharedAtomicImpl::Native { base_cycles: 3, per_conflict_cycles: 1 },
            global_atomic_chain_rate: 2.0,
            global_atomic_rate: 32.0,
            has_scoped_atomics: true,
            cta_scope_discount: 0.6,
            default_regs_per_thread: 32,
        }
    }

    /// All three paper architectures, in paper order.
    pub fn paper_archs() -> Vec<ArchConfig> {
        vec![Self::kepler_k40c(), Self::maxwell_gtx980(), Self::pascal_p100()]
    }

    /// Cycles per nanosecond.
    pub fn cycles_per_ns(&self) -> f64 {
        self.clock_ghz
    }

    /// Resident blocks per SM for a kernel using `threads_per_block`
    /// threads, `smem` bytes of shared memory and `regs_per_thread`
    /// registers (the occupancy calculation; higher occupancy from
    /// smaller shared-memory footprints is exactly the benefit the
    /// paper attributes to shuffle/atomic variants, §III-B/§III-C).
    pub fn blocks_per_sm(&self, threads_per_block: u32, smem: u64, regs_per_thread: u32) -> u32 {
        if threads_per_block == 0 {
            return 0;
        }
        let by_blocks = self.max_blocks_per_sm;
        let by_threads = self.max_threads_per_sm / threads_per_block;
        let by_smem = self
            .smem_per_sm
            .checked_div(smem)
            .map_or(u32::MAX, |v| v.min(u64::from(u32::MAX)) as u32);
        let regs_per_block = u64::from(regs_per_thread.max(16)) * u64::from(threads_per_block);
        let by_regs = (self.regs_per_sm / regs_per_block).min(u32::MAX as u64) as u32;
        by_blocks.min(by_threads).min(by_smem).min(by_regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_atomic_models() {
        let k = ArchConfig::kepler_k40c();
        let m = ArchConfig::maxwell_gtx980();
        let p = ArchConfig::pascal_p100();
        assert!(k.shared_atomic.is_software());
        assert!(!m.shared_atomic.is_software());
        assert!(p.has_scoped_atomics);
        assert!(!k.has_scoped_atomics);
    }

    #[test]
    fn software_lock_much_more_expensive_under_contention() {
        let k = ArchConfig::kepler_k40c().shared_atomic;
        let m = ArchConfig::maxwell_gtx980().shared_atomic;
        // A fully-conflicting warp (32 lanes, same address).
        assert!(k.warp_cost(32) > 10 * m.warp_cost(32));
        // Uncontended is also cheaper on Maxwell.
        assert!(k.warp_cost(1) > m.warp_cost(1));
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let m = ArchConfig::maxwell_gtx980();
        // 96 KiB/SM with 24 KiB blocks → 4 blocks/SM.
        assert_eq!(m.blocks_per_sm(128, 24 * 1024, 32), 4);
        // No shared memory → limited by threads (2048/128 = 16).
        assert_eq!(m.blocks_per_sm(128, 0, 32), 16);
    }

    #[test]
    fn occupancy_limited_by_threads_and_blocks() {
        let k = ArchConfig::kepler_k40c();
        assert_eq!(k.blocks_per_sm(1024, 0, 32), 2);
        assert_eq!(k.blocks_per_sm(64, 0, 32), 16); // block limit
    }

    #[test]
    fn paper_archs_order() {
        let a = ArchConfig::paper_archs();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].id, "kepler");
        assert_eq!(a[2].id, "pascal");
    }
}
