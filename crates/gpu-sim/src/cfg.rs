//! Control-flow analysis: basic blocks, postdominators and the
//! reconvergence table used by the SIMT divergence stack.
//!
//! The interpreter reconverges divergent warps at the *immediate
//! postdominator* (IPDOM) of the divergent branch, the scheme used by
//! real SIMT hardware models. We build a CFG over the flat
//! instruction stream, compute postdominators on the reverse graph
//! with the classic iterative dataflow algorithm, and record for each
//! conditional branch the instruction index at which its two paths
//! are guaranteed to have rejoined.

use crate::isa::Instr;
use crate::kernel::Kernel;

/// A basic block: a maximal straight-line range `[start, end)` of
/// instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// Control-flow graph plus the IPDOM-derived reconvergence table.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in instruction order.
    pub blocks: Vec<Block>,
    /// For each instruction index: the containing block id.
    pub block_of: Vec<usize>,
    /// For each *conditional branch* instruction index: the pc at
    /// which its divergent paths reconverge (`usize::MAX` = never —
    /// the paths only rejoin at thread exit).
    reconv: Vec<usize>,
}

/// Virtual exit node id used during postdominator computation.
const NONE: usize = usize::MAX;

impl Cfg {
    /// Build the CFG and reconvergence table for `kernel`.
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.instrs.len();
        // 1. Find block leaders.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, i) in kernel.instrs.iter().enumerate() {
            match i {
                Instr::Bra { target, .. } => {
                    leader[*target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Exit
                    if pc + 1 < n => {
                        leader[pc + 1] = true;
                    }
                _ => {}
            }
        }
        // 2. Materialize blocks.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(Block { start, end: pc, succs: Vec::new() });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block { start, end: n, succs: Vec::new() });
        }
        for (id, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(id);
        }
        // 3. Successor edges.
        let nb = blocks.len();
        for b in &mut blocks {
            let (start_end, last) = (b.end, b.end - 1);
            let mut succs = Vec::new();
            match &kernel.instrs[last] {
                Instr::Bra { pred, target } => {
                    let t = block_of[*target];
                    succs.push(t);
                    if pred.is_some() && start_end < n {
                        let ft = block_of[start_end];
                        if ft != t {
                            succs.push(ft);
                        }
                    }
                }
                Instr::Exit => {}
                _ => {
                    if start_end < n {
                        succs.push(block_of[start_end]);
                    }
                }
            }
            b.succs = succs;
        }
        // 4. Immediate postdominators via iterative dataflow on the
        //    reverse CFG, with a virtual exit node (id = nb) that every
        //    `exit`-terminated block flows into.
        let ipdom = compute_ipdom(&blocks, n, &kernel.instrs);
        // 5. Reconvergence pc for each conditional branch = start of
        //    the branch block's immediate postdominator block.
        let mut reconv = vec![NONE; n];
        for (pc, i) in kernel.instrs.iter().enumerate() {
            if let Instr::Bra { pred: Some(_), .. } = i {
                let b = block_of[pc];
                let ip = ipdom[b];
                reconv[pc] = if ip == nb || ip == NONE { NONE } else { blocks[ip].start };
            }
        }
        Cfg { blocks, block_of, reconv }
    }

    /// Reconvergence pc for the conditional branch at `pc`, or `None`
    /// when the paths only rejoin at thread exit.
    pub fn reconvergence(&self, pc: usize) -> Option<usize> {
        match self.reconv.get(pc) {
            Some(&r) if r != NONE => Some(r),
            _ => None,
        }
    }
}

/// Compute immediate postdominators. Returns, for each block, the id
/// of its immediate postdominator (`nb` = virtual exit, `NONE` =
/// unreachable-from-exit).
fn compute_ipdom(blocks: &[Block], n_instrs: usize, instrs: &[Instr]) -> Vec<usize> {
    let nb = blocks.len();
    let exit_node = nb;
    // Predecessors in the reverse graph = successors in the CFG; we
    // need, for each node, its CFG successors (which are its reverse-
    // graph predecessors). Nodes ending in `exit` flow to exit_node.
    let mut succs: Vec<Vec<usize>> = blocks.iter().map(|b| b.succs.clone()).collect();
    for (id, b) in blocks.iter().enumerate() {
        let last = b.end - 1;
        if matches!(instrs[last], Instr::Exit) || (b.end >= n_instrs && succs[id].is_empty()) {
            succs[id].push(exit_node);
        }
    }
    // Reverse postorder on the reverse CFG == postorder from exit on
    // the forward CFG. Iterative dataflow (Cooper-Harvey-Kennedy).
    // Order nodes by reverse DFS from exit over reverse edges.
    let mut rev_edges: Vec<Vec<usize>> = vec![Vec::new(); nb + 1];
    for (id, ss) in succs.iter().enumerate() {
        for &s in ss {
            rev_edges[s].push(id);
        }
    }
    // DFS from exit_node over rev_edges to get postorder.
    let mut order = Vec::with_capacity(nb + 1);
    let mut visited = vec![false; nb + 1];
    let mut stack = vec![(exit_node, 0usize)];
    visited[exit_node] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        if *idx < rev_edges[node].len() {
            let next = rev_edges[node][*idx];
            *idx += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, 0));
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    // `order` is postorder from exit; number nodes by it.
    let mut po_num = vec![NONE; nb + 1];
    for (i, &node) in order.iter().enumerate() {
        po_num[node] = i;
    }
    let mut idom = vec![NONE; nb + 1];
    idom[exit_node] = exit_node;
    let mut changed = true;
    while changed {
        changed = false;
        // Process in reverse postorder (from exit outward).
        for &node in order.iter().rev() {
            if node == exit_node {
                continue;
            }
            let mut new_idom = NONE;
            for &s in &succs[node] {
                if idom[s] != NONE {
                    new_idom = if new_idom == NONE {
                        s
                    } else {
                        intersect(new_idom, s, &idom, &po_num)
                    };
                }
            }
            if new_idom != NONE && idom[node] != new_idom {
                idom[node] = new_idom;
                changed = true;
            }
        }
    }
    idom.truncate(nb);
    idom
}

fn intersect(mut a: usize, mut b: usize, idom: &[usize], po_num: &[usize]) -> usize {
    while a != b {
        while po_num[a] < po_num[b] {
            a = idom[a];
        }
        while po_num[b] < po_num[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BinOp, CmpOp, Operand, Ty};
    use crate::kernel::KernelBuilder;

    /// if/else diamond: reconvergence is the join block.
    #[test]
    fn diamond_reconverges_at_join() {
        let mut b = KernelBuilder::new("diamond");
        let r = b.reg();
        let p = b.pred();
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Sreg(crate::isa::Sreg::TidX), Operand::ImmI(16));
        let else_l = b.label();
        let join_l = b.label();
        b.bra_if(p, false, else_l); // pc 1
        b.mov(Ty::U32, r, Operand::ImmI(1)); // pc 2 (then)
        b.bra(join_l); // pc 3
        b.place(else_l);
        b.mov(Ty::U32, r, Operand::ImmI(2)); // pc 4 (else)
        b.place(join_l);
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(1)); // pc 5
        b.exit(); // pc 6
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.reconvergence(1), Some(5));
    }

    /// Loop back-edge: the conditional back-branch reconverges at the
    /// loop exit (fall-through).
    #[test]
    fn loop_reconverges_after_backedge() {
        let mut b = KernelBuilder::new("loop");
        let i = b.reg();
        let p = b.pred();
        b.mov(Ty::U32, i, Operand::ImmI(0)); // 0
        let top = b.label();
        b.place(top);
        b.bin(BinOp::Add, Ty::U32, i, Operand::Reg(i), Operand::ImmI(1)); // 1
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Reg(i), Operand::ImmI(10)); // 2
        b.bra_if(p, true, top); // 3
        b.exit(); // 4
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.reconvergence(3), Some(4));
    }

    /// A guarded early-exit: paths rejoin only at exit → None.
    #[test]
    fn guarded_exit_never_reconverges() {
        let mut b = KernelBuilder::new("guard");
        let p = b.pred();
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Sreg(crate::isa::Sreg::TidX), Operand::ImmI(0)); // 0
        let done = b.label();
        b.bra_if(p, false, done); // 1
        b.exit(); // 2 (lane 0 exits early)
        b.place(done);
        b.exit(); // 3
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        // Both paths end in exit; reconvergence is the virtual exit →
        // reported as None.
        assert_eq!(cfg.reconvergence(1), None);
    }

    #[test]
    fn straightline_single_block() {
        let mut b = KernelBuilder::new("s");
        let r = b.reg();
        b.mov(Ty::U32, r, Operand::ImmI(0));
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(1));
        b.exit();
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.block_of, vec![0, 0, 0]);
    }

    /// Nested diamonds reconverge at their own joins.
    #[test]
    fn nested_diamonds() {
        let mut b = KernelBuilder::new("nested");
        let r = b.reg();
        let p0 = b.pred();
        let p1 = b.pred();
        let outer_else = b.label();
        let outer_join = b.label();
        let inner_else = b.label();
        let inner_join = b.label();
        b.setp(CmpOp::Lt, Ty::U32, p0, Operand::Sreg(crate::isa::Sreg::TidX), Operand::ImmI(16)); // 0
        b.bra_if(p0, false, outer_else); // 1
        // then: inner diamond
        b.setp(CmpOp::Lt, Ty::U32, p1, Operand::Sreg(crate::isa::Sreg::TidX), Operand::ImmI(8)); // 2
        b.bra_if(p1, false, inner_else); // 3
        b.mov(Ty::U32, r, Operand::ImmI(1)); // 4
        b.bra(inner_join); // 5
        b.place(inner_else);
        b.mov(Ty::U32, r, Operand::ImmI(2)); // 6
        b.place(inner_join);
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(10)); // 7
        b.bra(outer_join); // 8
        b.place(outer_else);
        b.mov(Ty::U32, r, Operand::ImmI(3)); // 9
        b.place(outer_join);
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(100)); // 10
        b.exit(); // 11
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.reconvergence(3), Some(7), "inner join");
        assert_eq!(cfg.reconvergence(1), Some(10), "outer join");
    }
}
