//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seed plus a rate; a per-launch [`FaultSession`]
//! expands it lazily into a stream of fault events as the interpreter
//! issues instructions. Everything is derived from the seed with a
//! counter-free xorshift generator, so a campaign is replayable
//! bit-for-bit: the same plan on the same launch injects the same
//! faults at the same dynamic instruction indices, regardless of host
//! thread count or wall-clock time.
//!
//! The injected fault classes model the transient failures the
//! robustness layer must recover from or quarantine:
//!
//! * single bit-flips in global memory (DRAM upsets);
//! * single bit-flips in the current block's shared memory (SRAM
//!   upsets);
//! * retry storms on the Kepler software-lock shared-atomic path
//!   (extra lock-acquire serialization, a timing-only fault);
//! * transient warp stalls (scheduler hiccups, also timing-only).
//!
//! The hot-path cost in the interpreter is one counter increment and
//! one predictable compare per issued warp instruction; a disabled
//! session keeps its trigger at `u64::MAX` and never fires.

use serde::Serialize;

/// A seeded, rate-controlled fault-injection plan.
///
/// `rate_ppm` is the expected number of injected faults per million
/// issued warp instructions; zero disables injection entirely (the
/// "empty plan"). Plans are tiny value types — derive per-launch or
/// per-attempt variants with [`FaultPlan::derive`] so retries observe
/// *different* transient faults from the same campaign seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FaultPlan {
    /// Campaign seed; all randomness derives from it.
    pub seed: u64,
    /// Expected faults per million issued warp instructions.
    pub rate_ppm: u32,
    /// Upper bound on faults injected into one launch.
    pub max_faults_per_launch: u32,
}

impl FaultPlan {
    /// A plan injecting roughly `rate_ppm` faults per million issued
    /// warp instructions, capped at 8 faults per launch.
    pub fn seeded(seed: u64, rate_ppm: u32) -> Self {
        FaultPlan { seed, rate_ppm, max_faults_per_launch: 8 }
    }

    /// The empty plan: replayable but injecting nothing.
    pub fn empty(seed: u64) -> Self {
        FaultPlan { seed, rate_ppm: 0, max_faults_per_launch: 0 }
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_empty(&self) -> bool {
        self.rate_ppm == 0 || self.max_faults_per_launch == 0
    }

    /// Derive a sub-plan whose stream is decorrelated from this one by
    /// `salt` (e.g. a launch index or retry attempt), deterministically.
    pub fn derive(self, salt: u64) -> Self {
        FaultPlan { seed: splitmix64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)), ..self }
    }
}

/// One fault actually injected into a launch, as recorded in the
/// session log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct InjectedFault {
    /// Dynamic warp-instruction index (within the launch) at which the
    /// fault fired.
    pub instr_index: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// The concrete fault classes a session can inject.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// A single bit flipped in global memory.
    GlobalBitFlip {
        /// Byte address of the flipped bit.
        addr: u64,
        /// Bit index within the byte (0–7).
        bit: u8,
    },
    /// A single bit flipped in the executing block's shared memory.
    SharedBitFlip {
        /// Byte address of the flipped bit.
        addr: u64,
        /// Bit index within the byte (0–7).
        bit: u8,
    },
    /// A lock-retry storm on the software shared-atomic path: the
    /// modelled lock loop spins `extra_serial` additional conflict
    /// rounds.
    AtomicRetryStorm {
        /// Extra serialized conflict rounds charged to the launch.
        extra_serial: u64,
    },
    /// A transient warp stall of `cycles` issue cycles.
    WarpStall {
        /// Stall length in issue cycles.
        cycles: u64,
    },
}

/// A fault drawn by the session, before the interpreter maps it onto
/// concrete state (the session does not know memory sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingFault {
    /// Flip a global-memory bit; `pos` is an unbounded draw the
    /// interpreter reduces modulo the memory's size in bits.
    GlobalBitFlip {
        /// Unbounded bit-position draw.
        pos: u64,
    },
    /// Flip a shared-memory bit (falls back to global when the block
    /// has no shared memory).
    SharedBitFlip {
        /// Unbounded bit-position draw.
        pos: u64,
    },
    /// Charge extra software-lock serialization.
    AtomicRetryStorm {
        /// Extra serialized conflict rounds.
        extra_serial: u64,
    },
    /// Stall a warp.
    WarpStall {
        /// Stall length in issue cycles.
        cycles: u64,
    },
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-launch fault state: expands a [`FaultPlan`] into events and
/// records what was injected.
#[derive(Debug)]
pub struct FaultSession {
    state: u64,
    instr: u64,
    next_trigger: u64,
    mean_gap: u64,
    remaining: u32,
    allow_storm: bool,
    log: Vec<InjectedFault>,
}

impl FaultSession {
    /// A session that never fires — the interpreter's default. Costs
    /// one increment and one always-false compare per issue.
    pub fn disabled() -> Self {
        FaultSession {
            state: 0,
            instr: 0,
            next_trigger: u64::MAX,
            mean_gap: 0,
            remaining: 0,
            allow_storm: false,
            log: Vec::new(),
        }
    }

    /// A session for one launch of a campaign. `allow_storm` should be
    /// true only on architectures with the software shared-atomic lock
    /// path (the storm fault models lock retries, which native units
    /// do not have).
    pub fn new(plan: &FaultPlan, allow_storm: bool) -> Self {
        if plan.is_empty() {
            return FaultSession::disabled();
        }
        // Mean gap between faults in issued instructions; the draw is
        // uniform in [1, 2*mean], giving the requested expected rate.
        let mean_gap = (1_000_000u64 / u64::from(plan.rate_ppm)).max(1);
        let mut s = FaultSession {
            state: splitmix64(plan.seed),
            instr: 0,
            next_trigger: 0,
            mean_gap,
            remaining: plan.max_faults_per_launch,
            allow_storm,
            log: Vec::new(),
        };
        s.schedule_next();
        s
    }

    fn rng(&mut self) -> u64 {
        // xorshift64*: tiny, fast, and plenty for fault placement.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn schedule_next(&mut self) {
        if self.remaining == 0 {
            self.next_trigger = u64::MAX;
            return;
        }
        let gap = 1 + self.rng() % (2 * self.mean_gap);
        self.next_trigger = self.instr.saturating_add(gap);
    }

    /// Advance the issue counter; returns a fault to apply when the
    /// trigger fires. Hot path: inline, one add, one compare.
    #[inline]
    pub fn poll(&mut self) -> Option<PendingFault> {
        self.instr += 1;
        if self.instr < self.next_trigger {
            return None;
        }
        self.fire()
    }

    #[cold]
    fn fire(&mut self) -> Option<PendingFault> {
        if self.remaining == 0 {
            self.next_trigger = u64::MAX;
            return None;
        }
        self.remaining -= 1;
        let draw = self.rng();
        let fault = match draw % 100 {
            // 40% global flips, 25% shared flips, 20% stalls, 15%
            // storms (drawn as stalls when storms are not modelled).
            0..=39 => PendingFault::GlobalBitFlip { pos: self.rng() },
            40..=64 => PendingFault::SharedBitFlip { pos: self.rng() },
            65..=84 => PendingFault::WarpStall { cycles: 16 + self.rng() % 240 },
            _ if self.allow_storm => {
                PendingFault::AtomicRetryStorm { extra_serial: 8 + self.rng() % 56 }
            }
            _ => PendingFault::WarpStall { cycles: 16 + self.rng() % 240 },
        };
        self.schedule_next();
        Some(fault)
    }

    /// Record a fault the interpreter actually applied.
    pub fn record(&mut self, kind: FaultKind) {
        self.log.push(InjectedFault { instr_index: self.instr, kind });
    }

    /// Number of issued warp instructions seen so far.
    pub fn instr_index(&self) -> u64 {
        self.instr
    }

    /// Whether this session can still fire a fault. Disabled sessions
    /// and exhausted campaigns (no remaining injections, trigger
    /// parked at `u64::MAX`) return `false`; the compiled execution
    /// tier uses this to skip per-issue polling entirely, falling back
    /// to the µop engine whenever a fault could actually land.
    pub fn is_live(&self) -> bool {
        self.next_trigger != u64::MAX || self.remaining > 0
    }

    /// Faults injected so far, in injection order.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Drain the injection log.
    pub fn take_log(&mut self) -> Vec<InjectedFault> {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_never_fires() {
        let mut s = FaultSession::disabled();
        for _ in 0..100_000 {
            assert!(s.poll().is_none());
        }
        assert!(s.log().is_empty());
    }

    #[test]
    fn empty_plan_is_disabled() {
        let mut s = FaultSession::new(&FaultPlan::empty(42), true);
        for _ in 0..10_000 {
            assert!(s.poll().is_none());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan::seeded(7, 10_000); // ~1 per 100 instrs
        let run = || {
            let mut s = FaultSession::new(&plan, true);
            let mut events = Vec::new();
            for i in 0..10_000u64 {
                if let Some(f) = s.poll() {
                    events.push((i, f));
                }
            }
            events
        };
        let a = run();
        let b = run();
        assert!(!a.is_empty(), "rate 10000ppm over 10k instrs should fire");
        assert_eq!(a, b);
    }

    #[test]
    fn derived_plans_differ() {
        let base = FaultPlan::seeded(7, 10_000);
        let a = base.derive(1);
        let b = base.derive(2);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, base.seed);
        // Same salt → same derived seed (replayability of retries).
        assert_eq!(base.derive(1), a);
    }

    #[test]
    fn cap_limits_fault_count() {
        let plan = FaultPlan { seed: 3, rate_ppm: 500_000, max_faults_per_launch: 4 };
        let mut s = FaultSession::new(&plan, false);
        let mut fired = 0;
        for _ in 0..100_000 {
            if s.poll().is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 4);
    }

    #[test]
    fn storms_only_when_allowed() {
        let plan = FaultPlan { seed: 11, rate_ppm: 500_000, max_faults_per_launch: 1000 };
        let mut s = FaultSession::new(&plan, false);
        for _ in 0..100_000 {
            if let Some(f) = s.poll() {
                assert!(!matches!(f, PendingFault::AtomicRetryStorm { .. }));
            }
        }
    }
}
