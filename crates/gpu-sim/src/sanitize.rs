//! Opt-in dynamic race detection: a happens-before sanitizer for
//! shared and global memory (in the spirit of
//! `cuda-memcheck --tool racecheck`).
//!
//! The synthesis pipeline's central safety claim is that swapping
//! non-atomic shared-memory updates for atomics, and tree-reduction
//! loops for shuffle exchanges, preserves race freedom. Output
//! equality against the CPU oracle checks this only indirectly — a
//! racy kernel can still produce the right answer under the
//! simulator's deterministic warp schedule. This module adds a direct
//! gate: a [`LaunchSanitizer`] rides the same optional hook seam as
//! [`crate::profile::LaunchProfile`] (zero-cost when off, identical
//! hook placement in both interpreter hot paths) and tracks
//! *per-byte shadow state* for every shared- and global-memory access.
//!
//! # Shadow-state model
//!
//! Each byte of shared or global memory touched by the launch carries
//! a shadow cell: the last write (block, warp, lane, pc, barrier
//! epoch, atomicity, scope) plus the last plain reads from up to two
//! distinct warps. The happens-before relation the simulator
//! guarantees is:
//!
//! * accesses by the *same warp* are ordered (lanes execute in
//!   lockstep, warps run to their next barrier sequentially) — except
//!   two lanes of one warp writing the same byte in the *same
//!   instruction instance*, whose outcome is lane-order dependent on
//!   real hardware;
//! * a `bar` separates accesses by *different warps of one block*:
//!   each barrier release advances the block's epoch, and two
//!   same-block accesses conflict only when their epochs are equal;
//! * nothing orders accesses by *different blocks* within a launch, so
//!   same-address global accesses from two blocks always conflict
//!   unless both are atomic with device-visible scope;
//! * atomic read-modify-writes never conflict with each other when
//!   their scope covers the distance between the issuing threads
//!   (same block, or device scope across blocks).
//!
//! Conflicting access pairs with at least one write map onto the
//! racecheck hazard taxonomy in [`HazardKind`]; `bar` executed under a
//! partial active mask and plain reads of never-written shared bytes
//! are reported from the same seam. Findings are deduplicated by
//! (hazard, pc, prior pc) with occurrence counts, so a racy kernel
//! produces a short typed report rather than one finding per byte.

use crate::exec::LaunchDims;
use crate::hash::FxHashMap;
use crate::isa::{Address, AtomOp, BinOp, CmpOp, Instr, Operand, Scope, Space, Sreg, Ty};
use crate::kernel::{Kernel, KernelBuilder};

/// Distinct findings retained per launch; further distinct hazards
/// only bump [`RaceReport::truncated`]. Racy kernels tend to repeat
/// one pattern, so this is generous in practice.
const MAX_FINDINGS: usize = 64;

/// The hazard taxonomy, mapping onto `cuda-memcheck --tool racecheck`
/// hazard types (plus the scope hazard CUDA's `_block` atomics make
/// possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// Two unordered plain writes to the same byte.
    WriteWrite,
    /// An unordered plain read / plain write pair on the same byte.
    ReadWrite,
    /// An atomic and a plain access to the same byte, unordered.
    MixedAtomic,
    /// Two atomics whose scope does not cover their distance (e.g.
    /// block-scoped atomics from different blocks to one global
    /// address).
    AtomicScope,
    /// A plain shared-memory read of a byte no thread has written
    /// this block.
    SharedReadUninit,
    /// `bar` executed by a warp whose active mask is partial —
    /// divergent or early-exited lanes never arrive.
    BarrierDivergence,
}

impl HazardKind {
    /// Stable lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            HazardKind::WriteWrite => "write-write",
            HazardKind::ReadWrite => "read-write",
            HazardKind::MixedAtomic => "mixed-atomic",
            HazardKind::AtomicScope => "atomic-scope",
            HazardKind::SharedReadUninit => "shared-read-uninit",
            HazardKind::BarrierDivergence => "barrier-divergence",
        }
    }
}

/// One side of a hazard: which thread touched the byte, where in the
/// program, and in which barrier epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSite {
    /// Block index of the access.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Lane index within the warp.
    pub lane: u32,
    /// Static instruction site (`pc`, identical in both interpreters).
    pub pc: u32,
    /// Barrier epoch within the block at the time of the access.
    pub epoch: u32,
}

impl serde::Serialize for AccessSite {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("block".to_string(), serde::Value::UInt(u64::from(self.block))),
            ("warp".to_string(), serde::Value::UInt(u64::from(self.warp))),
            ("lane".to_string(), serde::Value::UInt(u64::from(self.lane))),
            ("pc".to_string(), serde::Value::UInt(u64::from(self.pc))),
            ("epoch".to_string(), serde::Value::UInt(u64::from(self.epoch))),
        ])
    }
}

/// One deduplicated hazard: a (kind, pc, prior pc) class with the
/// first concrete occurrence and a count of further ones.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceFinding {
    /// Which hazard class fired.
    pub kind: HazardKind,
    /// Memory space label (`"shared"` / `"global"`; `"barrier"` for
    /// divergence hazards, which carry no address).
    pub space: &'static str,
    /// First conflicting byte address of the first occurrence.
    pub addr: u64,
    /// The access that completed the hazard (second in time).
    pub access: AccessSite,
    /// The recorded earlier access it conflicts with (`None` for
    /// single-sided hazards: uninitialized reads, divergence).
    pub prior: Option<AccessSite>,
    /// Occurrences folded into this finding (same kind and pc pair).
    pub count: u64,
}

impl serde::Serialize for RaceFinding {
    fn to_value(&self) -> serde::Value {
        let mut m = vec![
            ("kind".to_string(), serde::Value::Str(self.kind.label().to_string())),
            ("space".to_string(), serde::Value::Str(self.space.to_string())),
            ("addr".to_string(), serde::Value::UInt(self.addr)),
            ("access".to_string(), self.access.to_value()),
        ];
        if let Some(p) = &self.prior {
            m.push(("prior".to_string(), p.to_value()));
        }
        m.push(("count".to_string(), serde::Value::UInt(self.count)));
        serde::Value::Map(m)
    }
}

/// The sanitizer's verdict for one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceReport {
    /// Kernel name the report belongs to.
    pub kernel: String,
    /// Whether every block of the launch was executed functionally
    /// (mirrors [`crate::profile::LaunchProfile::exact`]); sampled
    /// launches sanitize only the executed blocks.
    pub exact: bool,
    /// Deduplicated findings, in first-occurrence order.
    pub findings: Vec<RaceFinding>,
    /// Hazard occurrences dropped after the per-launch cap of 64
    /// distinct findings was already reached.
    pub truncated: u64,
}

impl RaceReport {
    /// True when the launch produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.truncated == 0
    }

    /// Total hazard occurrences (deduplicated counts plus truncated).
    pub fn occurrences(&self) -> u64 {
        self.findings.iter().map(|f| f.count).sum::<u64>() + self.truncated
    }

    /// One-line human-readable summary, e.g.
    /// `kernel=reduce findings=2 occurrences=64 first=read-write@pc=12`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "kernel={} findings={} occurrences={}",
            self.kernel,
            self.findings.len(),
            self.occurrences()
        );
        if let Some(f) = self.findings.first() {
            s.push_str(&format!(" first={}@pc={}", f.kind.label(), f.access.pc));
        }
        s
    }
}

impl serde::Serialize for RaceReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("kernel".to_string(), serde::Value::Str(self.kernel.clone())),
            ("exact".to_string(), serde::Value::Bool(self.exact)),
            (
                "findings".to_string(),
                serde::Value::Seq(self.findings.iter().map(|f| f.to_value()).collect()),
            ),
            ("truncated".to_string(), serde::Value::UInt(self.truncated)),
        ])
    }
}

/// How a memory hook classifies the access it reports.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write,
    /// Atomic read-modify-write at the given scope.
    Atomic {
        /// Visibility scope of the atomic.
        scope: Scope,
    },
}

/// Shadow record for one prior access to a byte.
#[derive(Debug, Clone, Copy)]
struct Rec {
    block: u32,
    warp: u32,
    lane: u32,
    pc: u32,
    epoch: u32,
    /// Per-launch instruction-instance counter: equal values mean the
    /// two accesses came from the same dynamic warp instruction.
    op: u64,
    atomic: bool,
    /// Atomic scope covers the whole device (`Gpu`/`Sys`).
    device_scope: bool,
}

impl Rec {
    fn site(&self) -> AccessSite {
        AccessSite {
            block: self.block,
            warp: self.warp,
            lane: self.lane,
            pc: self.pc,
            epoch: self.epoch,
        }
    }
}

/// Per-byte shadow cell: the last write plus the last plain reads
/// from up to two distinct warps. Two read slots suffice: a write
/// conflicts with *any* concurrent prior reader, and retaining
/// readers from two different warps guarantees at least one of them
/// is in a different warp than any later writer.
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    write: Option<Rec>,
    reads: [Option<Rec>; 2],
    /// Whether any thread has written the byte (shared-memory
    /// uninitialized-read tracking; atomics also set it).
    written: bool,
}

/// Per-launch race detector attached to [`crate::exec::ExecConfig`]
/// by [`crate::Device`] when sanitizing is enabled.
///
/// The interpreters call the `pub(crate)` hooks; [`Self::into_report`]
/// renders the verdict. Like the profiler, the sanitizer is purely
/// observational: it never touches registers, memory, statistics or
/// modelled time, and the differential test suite asserts runs are
/// bit-identical with it on and off.
#[derive(Debug)]
pub struct LaunchSanitizer {
    kernel: String,
    /// Whether every block of the launch ran functionally (stamped by
    /// the launch driver, like the profiler's flag).
    pub exact: bool,
    block: u32,
    epoch: u32,
    op: u64,
    shared: FxHashMap<u64, Shadow>,
    global: FxHashMap<u64, Shadow>,
    seen: FxHashMap<(HazardKind, u32, u32), usize>,
    findings: Vec<RaceFinding>,
    truncated: u64,
}

impl LaunchSanitizer {
    /// Fresh shadow state for one launch of `kernel`.
    pub fn for_kernel(kernel: &Kernel) -> Self {
        LaunchSanitizer {
            kernel: kernel.name.clone(),
            exact: true,
            block: 0,
            epoch: 0,
            op: 0,
            shared: FxHashMap::default(),
            global: FxHashMap::default(),
            seen: FxHashMap::default(),
            findings: Vec::new(),
            truncated: 0,
        }
    }

    /// Consume the shadow state into the launch's verdict.
    pub fn into_report(self) -> RaceReport {
        RaceReport {
            kernel: self.kernel,
            exact: self.exact,
            findings: self.findings,
            truncated: self.truncated,
        }
    }

    /// A block starts executing: reset its shared-memory shadow and
    /// barrier epoch (global shadow spans the launch).
    pub(crate) fn begin_block(&mut self, block: u32) {
        self.block = block;
        self.epoch = 0;
        self.shared.clear();
    }

    /// All warps of the current block arrived at a `bar`: accesses
    /// after the release are ordered against accesses before it.
    pub(crate) fn barrier_release(&mut self) {
        self.epoch += 1;
    }

    /// A warp executed `bar`. `active` is its current active mask,
    /// `full` the mask of lanes that exist in the warp.
    pub(crate) fn record_bar(&mut self, pc: usize, warp: u32, active: u32, full: u32) {
        if active == full {
            return;
        }
        let cur = Rec {
            block: self.block,
            warp,
            lane: if active == 0 { 0 } else { active.trailing_zeros() },
            pc: pc as u32,
            epoch: self.epoch,
            op: self.op,
            atomic: false,
            device_scope: false,
        };
        self.report(HazardKind::BarrierDivergence, "barrier", 0, cur, None);
    }

    /// One warp memory instruction: `accesses` holds `(addr, bytes)`
    /// per active lane, in ascending-lane order matching the set bits
    /// of `active`.
    pub(crate) fn record_warp(
        &mut self,
        space: Space,
        pc: usize,
        warp: u32,
        kind: AccessKind,
        active: u32,
        accesses: &[(u64, u64)],
    ) {
        self.op += 1;
        let mut m = active;
        let mut i = 0;
        while m != 0 {
            let lane = m.trailing_zeros();
            let (addr, size) = accesses[i];
            for byte in addr..addr.saturating_add(size) {
                self.record_byte(space, pc, warp, lane, kind, byte);
            }
            i += 1;
            m &= m - 1;
        }
    }

    /// Whether a prior record is unordered with respect to an access
    /// happening now (same epoch, different warp; or different block
    /// on global memory).
    fn concurrent(&self, space: Space, prior: &Rec, warp: u32) -> bool {
        if space == Space::Global && prior.block != self.block {
            return true;
        }
        prior.epoch == self.epoch && prior.warp != warp
    }

    fn record_byte(
        &mut self,
        space: Space,
        pc: usize,
        warp: u32,
        lane: u32,
        kind: AccessKind,
        addr: u64,
    ) {
        let cur = Rec {
            block: self.block,
            warp,
            lane,
            pc: pc as u32,
            epoch: self.epoch,
            op: self.op,
            atomic: matches!(kind, AccessKind::Atomic { .. }),
            device_scope: matches!(kind, AccessKind::Atomic { scope } if scope != Scope::Cta),
        };
        // Probe-then-update: copy the cell out, write the new state
        // back, and only then run the (self-mutating) hazard checks.
        let map = match space {
            Space::Shared => &mut self.shared,
            Space::Global => &mut self.global,
        };
        let cell = map.entry(addr).or_default();
        let prev = *cell;
        match kind {
            AccessKind::Read => {
                // Keep reads from up to two distinct warps: overwrite
                // this warp's slot, else fill an empty one, else evict
                // the older-epoch slot.
                let slot = match (cell.reads[0], cell.reads[1]) {
                    (Some(r0), _) if r0.warp == warp => 0,
                    (_, Some(r1)) if r1.warp == warp => 1,
                    (None, _) => 0,
                    (_, None) => 1,
                    (Some(r0), Some(r1)) => usize::from(r0.epoch > r1.epoch),
                };
                cell.reads[slot] = Some(cur);
            }
            AccessKind::Write | AccessKind::Atomic { .. } => {
                cell.write = Some(cur);
                cell.written = true;
            }
        }
        match kind {
            AccessKind::Read => {
                if space == Space::Shared && !prev.written {
                    self.report(HazardKind::SharedReadUninit, space.label(), addr, cur, None);
                }
                if let Some(w) = prev.write {
                    if self.concurrent(space, &w, warp) {
                        let kind = if w.atomic {
                            HazardKind::MixedAtomic
                        } else {
                            HazardKind::ReadWrite
                        };
                        self.report(kind, space.label(), addr, cur, Some(w));
                    }
                }
            }
            AccessKind::Write => {
                if let Some(w) = prev.write {
                    if self.concurrent(space, &w, warp) {
                        let kind = if w.atomic {
                            HazardKind::MixedAtomic
                        } else {
                            HazardKind::WriteWrite
                        };
                        self.report(kind, space.label(), addr, cur, Some(w));
                    } else if !w.atomic && w.op == cur.op && w.lane != lane {
                        // Two lanes of one warp instruction writing
                        // the same byte: lane-order dependent on real
                        // hardware.
                        self.report(HazardKind::WriteWrite, space.label(), addr, cur, Some(w));
                    }
                }
                for r in prev.reads.into_iter().flatten() {
                    if self.concurrent(space, &r, warp) {
                        self.report(HazardKind::ReadWrite, space.label(), addr, cur, Some(r));
                    }
                }
            }
            AccessKind::Atomic { .. } => {
                if let Some(w) = prev.write {
                    if w.atomic {
                        // Atomics order against each other unless the
                        // scope of either fails to span the distance.
                        if space == Space::Global
                            && w.block != self.block
                            && !(w.device_scope && cur.device_scope)
                        {
                            self.report(HazardKind::AtomicScope, space.label(), addr, cur, Some(w));
                        }
                    } else if self.concurrent(space, &w, warp) {
                        self.report(HazardKind::MixedAtomic, space.label(), addr, cur, Some(w));
                    }
                }
                for r in prev.reads.into_iter().flatten() {
                    if self.concurrent(space, &r, warp) {
                        self.report(HazardKind::MixedAtomic, space.label(), addr, cur, Some(r));
                    }
                }
            }
        }
    }

    fn report(
        &mut self,
        kind: HazardKind,
        space: &'static str,
        addr: u64,
        cur: Rec,
        prior: Option<Rec>,
    ) {
        let key = (kind, cur.pc, prior.map_or(u32::MAX, |p| p.pc));
        if let Some(&idx) = self.seen.get(&key) {
            self.findings[idx].count += 1;
            return;
        }
        if self.findings.len() >= MAX_FINDINGS {
            self.truncated += 1;
            return;
        }
        self.seen.insert(key, self.findings.len());
        self.findings.push(RaceFinding {
            kind,
            space,
            addr,
            access: cur.site(),
            prior: prior.map(|p| p.site()),
            count: 1,
        });
    }
}

/// One deliberately-racy kernel plus the finding it must produce.
///
/// The negative corpus is the sanitizer's ground truth: each kernel
/// encodes one classic CUDA bug, and the differential harness asserts
/// the expected [`HazardKind`] fires at the expected `pc` (see
/// `tests/sanitize.rs` and the sweep bin's `--seed-racy` smoke mode).
#[derive(Debug)]
pub struct NegativeKernel {
    /// Short stable identifier (`missing-bar`, ...).
    pub label: &'static str,
    /// The racy kernel.
    pub kernel: Kernel,
    /// Launch geometry that exhibits the race.
    pub dims: LaunchDims,
    /// `u32` slots of global memory to allocate and pass as the
    /// kernel's single pointer parameter (0 when it takes none).
    pub global_words: u64,
    /// The hazard the sanitizer must report.
    pub expect: HazardKind,
    /// The `pc` the finding must be attributed to.
    pub expect_pc: usize,
}

/// First pc whose instruction matches `pred`.
fn pc_of(kernel: &Kernel, pred: impl Fn(&Instr) -> bool) -> usize {
    kernel.instrs.iter().position(pred).expect("negative kernel contains the expected instr")
}

/// Last pc whose instruction matches `pred`.
fn last_pc_of(kernel: &Kernel, pred: impl Fn(&Instr) -> bool) -> usize {
    kernel.instrs.iter().rposition(pred).expect("negative kernel contains the expected instr")
}

/// The built-in deliberately-racy kernel corpus: one kernel per
/// classic CUDA synchronization bug, each annotated with the typed
/// finding the sanitizer must attribute to a specific pc.
pub fn negative_corpus() -> Vec<NegativeKernel> {
    let mut out = Vec::new();

    // 1. Tree-exchange with the second barrier missing: warp 1 reads
    //    its partner's slot in the same epoch warp 0 rewrites it.
    {
        let mut b = KernelBuilder::new("neg_missing_bar");
        let smem = b.smem_alloc(64 * 4) as i64;
        let tid = b.reg();
        let a = b.reg();
        let partner = b.reg();
        let a2 = b.reg();
        let v = b.reg();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.st(Space::Shared, Ty::U32, tid, Address::new(Operand::Reg(a), smem));
        b.bar();
        b.bin(BinOp::Add, Ty::U32, partner, Operand::Reg(tid), Operand::ImmI(32));
        b.bin(BinOp::And, Ty::U32, partner, Operand::Reg(partner), Operand::ImmI(63));
        b.cvt(Ty::U32, Ty::U64, a2, Operand::Reg(partner));
        b.bin(BinOp::Mul, Ty::U64, a2, Operand::Reg(a2), Operand::ImmI(4));
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::Reg(a2), smem));
        // BUG: the exchange needs a second `bar` here.
        b.st(Space::Shared, Ty::U32, v, Address::new(Operand::Reg(a), smem));
        b.exit();
        let kernel = b.finish().expect("neg_missing_bar is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::Ld { space: Space::Shared, .. }));
        out.push(NegativeKernel {
            label: "missing-bar",
            kernel,
            dims: LaunchDims::new(1, 64),
            global_words: 0,
            expect: HazardKind::ReadWrite,
            expect_pc,
        });
    }

    // 2. Non-atomic shared accumulation: every thread load-add-stores
    //    one shared counter with no ordering at all.
    {
        let mut b = KernelBuilder::new("neg_shared_accum");
        let smem = b.smem_alloc(4) as i64;
        let zero = b.reg();
        let v = b.reg();
        let p = b.pred();
        let skip = b.label();
        b.mov(Ty::U32, zero, Operand::ImmI(0));
        b.setp(CmpOp::Ne, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(0));
        b.bra_if(p, true, skip);
        b.st(Space::Shared, Ty::U32, zero, Address::new(Operand::ImmI(0), smem));
        b.place(skip);
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(0), smem));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::ImmI(1));
        // BUG: the read-modify-write must be a shared atomic.
        b.st(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(0), smem));
        b.exit();
        let kernel = b.finish().expect("neg_shared_accum is well-formed");
        let expect_pc =
            last_pc_of(&kernel, |i| matches!(i, Instr::St { space: Space::Shared, .. }));
        out.push(NegativeKernel {
            label: "shared-accum",
            kernel,
            dims: LaunchDims::new(1, 64),
            global_words: 0,
            expect: HazardKind::WriteWrite,
            expect_pc,
        });
    }

    // 3. Mixed atomic/plain access: all threads accumulate atomically
    //    while thread 0 also resets the counter with a plain store.
    {
        let mut b = KernelBuilder::new("neg_mixed_atomic");
        let smem = b.smem_alloc(4) as i64;
        let zero = b.reg();
        let p = b.pred();
        let skip = b.label();
        b.mov(Ty::U32, zero, Operand::ImmI(0));
        b.red(
            Space::Shared,
            Scope::Cta,
            AtomOp::Add,
            Ty::U32,
            Address::new(Operand::ImmI(0), smem),
            Operand::ImmI(1),
        );
        b.setp(CmpOp::Ne, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(0));
        b.bra_if(p, true, skip);
        // BUG: unordered against the other warps' atomics.
        b.st(Space::Shared, Ty::U32, zero, Address::new(Operand::ImmI(0), smem));
        b.place(skip);
        b.exit();
        let kernel = b.finish().expect("neg_mixed_atomic is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::Atom { .. }));
        out.push(NegativeKernel {
            label: "mixed-atomic",
            kernel,
            dims: LaunchDims::new(1, 64),
            global_words: 0,
            expect: HazardKind::MixedAtomic,
            expect_pc,
        });
    }

    // 4. Barrier under divergence: only half the warp reaches `bar`.
    {
        let mut b = KernelBuilder::new("neg_divergent_bar");
        let p = b.pred();
        let skip = b.label();
        b.setp(CmpOp::Ge, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(16));
        b.bra_if(p, true, skip);
        // BUG: lanes 16..32 never arrive.
        b.bar();
        b.place(skip);
        b.exit();
        let kernel = b.finish().expect("neg_divergent_bar is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::Bar));
        out.push(NegativeKernel {
            label: "divergent-bar",
            kernel,
            dims: LaunchDims::new(1, 32),
            global_words: 0,
            expect: HazardKind::BarrierDivergence,
            expect_pc,
        });
    }

    // 5. Plain global accumulation across blocks: the grid-level
    //    combine that the paper replaces with `red.global`.
    {
        let mut b = KernelBuilder::new("neg_global_accum");
        let out_ptr = b.param_ptr();
        let v = b.reg();
        b.ld(Space::Global, Ty::U32, v, Address::new(Operand::Param(out_ptr), 0));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::ImmI(1));
        // BUG: must be a device-scope atomic.
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(out_ptr), 0));
        b.exit();
        let kernel = b.finish().expect("neg_global_accum is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::St { space: Space::Global, .. }));
        out.push(NegativeKernel {
            label: "global-plain-accum",
            kernel,
            dims: LaunchDims::new(4, 32),
            global_words: 1,
            expect: HazardKind::WriteWrite,
            expect_pc,
        });
    }

    // 6. Block-scoped atomics to one global address from two blocks:
    //    the scope does not span the distance.
    {
        let mut b = KernelBuilder::new("neg_cta_scope_global");
        let out_ptr = b.param_ptr();
        b.red(
            Space::Global,
            Scope::Cta,
            AtomOp::Add,
            Ty::U32,
            Address::new(Operand::Param(out_ptr), 0),
            Operand::ImmI(1),
        );
        b.exit();
        let kernel = b.finish().expect("neg_cta_scope_global is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::Atom { .. }));
        out.push(NegativeKernel {
            label: "cta-scope-global-atomic",
            kernel,
            dims: LaunchDims::new(2, 32),
            global_words: 1,
            expect: HazardKind::AtomicScope,
            expect_pc,
        });
    }

    // 7. One Hillis-Steele scan step with the inter-step barrier
    //    missing: each thread reads its left neighbour's slot in the
    //    same epoch the neighbour rewrites it. This is the classic
    //    scan bug the generated HS schedules avoid by re-barriering
    //    between the neighbour read and the slot update.
    {
        let mut b = KernelBuilder::new("neg_scan_missing_bar");
        let smem = b.smem_alloc(64 * 4) as i64;
        let tid = b.reg();
        let a = b.reg();
        let v = b.reg();
        let jm = b.reg();
        let jc = b.reg();
        let a2 = b.reg();
        let t = b.reg();
        let tz = b.reg();
        let p = b.pred();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.mov(Ty::U32, v, Operand::Reg(tid));
        b.st(Space::Shared, Ty::U32, v, Address::new(Operand::Reg(a), smem));
        b.bar();
        b.setp(CmpOp::Ge, Ty::U32, p, Operand::Reg(tid), Operand::ImmI(1));
        b.bin(BinOp::Sub, Ty::U32, jm, Operand::Reg(tid), Operand::ImmI(1));
        b.selp(Ty::U32, jc, Operand::Reg(jm), Operand::ImmI(0), p);
        b.cvt(Ty::U32, Ty::U64, a2, Operand::Reg(jc));
        b.bin(BinOp::Mul, Ty::U64, a2, Operand::Reg(a2), Operand::ImmI(4));
        b.ld(Space::Shared, Ty::U32, t, Address::new(Operand::Reg(a2), smem));
        b.selp(Ty::U32, tz, Operand::Reg(t), Operand::ImmI(0), p);
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::Reg(tz));
        // BUG: the step needs a `bar` between the neighbour read and
        // this rewrite of the slot it read from.
        b.st(Space::Shared, Ty::U32, v, Address::new(Operand::Reg(a), smem));
        b.exit();
        let kernel = b.finish().expect("neg_scan_missing_bar is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::Ld { space: Space::Shared, .. }));
        out.push(NegativeKernel {
            label: "scan-missing-bar",
            kernel,
            dims: LaunchDims::new(1, 64),
            global_words: 0,
            expect: HazardKind::ReadWrite,
            expect_pc,
        });
    }

    // 8. Segmented combine without atomics: threads sharing a segment
    //    (and the second block, re-walking the same segments)
    //    load-add-store the per-segment cell directly. This is the
    //    cross-segment combine the generated segsum schedules perform
    //    with `red.global`/`red.shared`.
    {
        let mut b = KernelBuilder::new("neg_segsum_plain_combine");
        let out_ptr = b.param_ptr();
        let tid = b.reg();
        let seg = b.reg();
        let addr = b.reg();
        let v = b.reg();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        // Four threads per segment: seg = tid >> 2.
        b.bin(BinOp::Shr, Ty::U32, seg, Operand::Reg(tid), Operand::ImmI(2));
        b.cvt(Ty::U32, Ty::U64, addr, Operand::Reg(seg));
        b.bin(BinOp::Mul, Ty::U64, addr, Operand::Reg(addr), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, addr, Operand::Reg(addr), Operand::Param(out_ptr));
        b.ld(Space::Global, Ty::U32, v, Address::new(Operand::Reg(addr), 0));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::ImmI(1));
        // BUG: the per-segment combine must be an atomic.
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Reg(addr), 0));
        b.exit();
        let kernel = b.finish().expect("neg_segsum_plain_combine is well-formed");
        let expect_pc = pc_of(&kernel, |i| matches!(i, Instr::St { space: Space::Global, .. }));
        out.push(NegativeKernel {
            label: "segsum-plain-combine",
            kernel,
            dims: LaunchDims::new(2, 32),
            global_words: 8,
            expect: HazardKind::WriteWrite,
            expect_pc,
        });
    }

    out
}

/// Run one negative kernel under the sanitizer on `arch` with the
/// given interpreter hot path and return its race report. This is the
/// shared driver behind the differential harness (`tests/sanitize.rs`)
/// and the bench bins' `--seed-racy` smoke mode.
///
/// # Errors
///
/// Propagates simulator errors (the negative kernels race; they never
/// trap or deadlock).
pub fn run_negative(
    arch: &crate::arch::ArchConfig,
    mode: crate::exec::ExecMode,
    nk: &NegativeKernel,
) -> Result<RaceReport, crate::error::SimError> {
    let mut dev = crate::device::Device::new(arch.clone());
    dev.set_exec_mode(mode);
    dev.set_sanitizing(true);
    let args = if nk.global_words > 0 {
        vec![dev.alloc_f32(nk.global_words)?.arg()]
    } else {
        Vec::new()
    };
    dev.launch_simple(&nk.kernel, nk.dims, &args)?;
    dev.launches().last().and_then(|l| l.races.clone()).ok_or_else(|| {
        crate::error::SimError::InvalidLaunch("sanitizing launch produced no report".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sanitizer() -> LaunchSanitizer {
        let mut b = KernelBuilder::new("unit");
        b.exit();
        LaunchSanitizer::for_kernel(&b.finish().unwrap())
    }

    #[test]
    fn same_warp_accesses_are_ordered() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 1, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 2, 0, AccessKind::Read, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 3, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn cross_warp_same_epoch_write_write_is_reported_once_per_site() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 5, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 5, 1, AccessKind::Write, 0b11, &[(0, 4), (0, 4)]);
        let r = s.into_report();
        assert_eq!(r.findings.len(), 1);
        let f = &r.findings[0];
        assert_eq!(f.kind, HazardKind::WriteWrite);
        assert_eq!(f.access.pc, 5);
        // 4 conflicting bytes from lane 0 plus 8 from the duplicate
        // lane-1 write, all folded into one finding.
        assert!(f.count > 1);
    }

    #[test]
    fn barrier_separates_warps() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 1, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        s.barrier_release();
        s.record_warp(Space::Shared, 2, 1, AccessKind::Read, 0b1, &[(0, 4)]);
        assert!(s.into_report().is_clean());
    }

    #[test]
    fn shared_shadow_resets_per_block_but_global_spans_launch() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 1, 0, AccessKind::Write, 0b1, &[(8, 4)]);
        s.record_warp(Space::Global, 2, 0, AccessKind::Write, 0b1, &[(8, 4)]);
        s.begin_block(1);
        // Same shared byte from the new block: fresh shadow, clean.
        s.record_warp(Space::Shared, 1, 0, AccessKind::Write, 0b1, &[(8, 4)]);
        // Same global byte from the new block: unordered.
        s.record_warp(Space::Global, 2, 0, AccessKind::Write, 0b1, &[(8, 4)]);
        let r = s.into_report();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, HazardKind::WriteWrite);
        assert_eq!(r.findings[0].space, "global");
    }

    #[test]
    fn device_scope_atomics_commute_but_cta_scope_does_not_span_blocks() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Global, 3, 0, AccessKind::Atomic { scope: Scope::Gpu }, 0b1, &[(0, 4)]);
        s.begin_block(1);
        s.record_warp(Space::Global, 3, 0, AccessKind::Atomic { scope: Scope::Gpu }, 0b1, &[(0, 4)]);
        assert!(s.into_report().is_clean());

        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Global, 3, 0, AccessKind::Atomic { scope: Scope::Cta }, 0b1, &[(0, 4)]);
        s.begin_block(1);
        s.record_warp(Space::Global, 3, 0, AccessKind::Atomic { scope: Scope::Cta }, 0b1, &[(0, 4)]);
        let r = s.into_report();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, HazardKind::AtomicScope);
    }

    #[test]
    fn uninitialized_shared_read_is_flagged_only_before_first_write() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 7, 0, AccessKind::Read, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 8, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 9, 0, AccessKind::Read, 0b1, &[(0, 4)]);
        let r = s.into_report();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, HazardKind::SharedReadUninit);
        assert_eq!(r.findings[0].access.pc, 7);
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_bar(4, 0, 0x0000_ffff, 0xffff_ffff);
        s.record_bar(5, 1, 0xffff_ffff, 0xffff_ffff);
        let r = s.into_report();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].kind, HazardKind::BarrierDivergence);
        assert_eq!(r.findings[0].access.pc, 4);
    }

    #[test]
    fn negative_corpus_is_buildable_and_labeled() {
        let corpus = negative_corpus();
        assert_eq!(corpus.len(), 8);
        for neg in &corpus {
            assert!(neg.expect_pc < neg.kernel.instrs.len());
            assert!(!neg.label.is_empty());
        }
    }

    #[test]
    fn report_serializes_findings_with_sites() {
        let mut s = sanitizer();
        s.begin_block(0);
        s.record_warp(Space::Shared, 5, 0, AccessKind::Write, 0b1, &[(0, 4)]);
        s.record_warp(Space::Shared, 6, 1, AccessKind::Read, 0b1, &[(0, 4)]);
        let v = serde::Serialize::to_value(&s.into_report());
        let findings = v.get("findings").and_then(|f| f.as_seq()).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("kind").and_then(|k| k.as_str()), Some("read-write"));
        assert_eq!(
            findings[0].get("access").and_then(|a| a.get("pc")).and_then(|p| p.as_u64()),
            Some(6)
        );
        assert_eq!(
            findings[0].get("prior").and_then(|a| a.get("pc")).and_then(|p| p.as_u64()),
            Some(5)
        );
    }
}
