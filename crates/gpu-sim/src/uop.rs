//! Predecoded µop execution engine with warp-uniform scalarization.
//!
//! The reference interpreter ([`crate::exec`]) re-examines each
//! [`crate::isa::Instr`] on every issue: operands are matched,
//! immediates converted per the instruction type, special registers
//! recomputed, and branch reconvergence points looked up in the CFG —
//! all inside the per-lane loop. This module removes that per-issue
//! work by *predecoding* the instruction stream once per kernel into a
//! flat [`UopProgram`]:
//!
//! * every operand is resolved to a `Src` — a register slot, a
//!   pre-converted immediate bit pattern, an index into a per-block
//!   constant table (parameters and launch geometry), or one of the
//!   three lane-varying special registers;
//! * branch reconvergence points are pre-linked from the CFG, so the
//!   divergence path never consults it at run time;
//! * per-µop static properties (instruction class for the stats
//!   counters, statically-illegal operand combinations) are computed
//!   at decode time. Combinations the reference path rejects at run
//!   time with a trap decode to an explicit `Uop::Trap` that fires
//!   with the identical [`TrapKind`] and fault location.
//!
//! On top of the µop buffer the executor tracks **warp uniformity**: a
//! bitmask per warp recording which registers (and predicates) provably
//! hold the same raw value in every lane of the warp. Pure compute µops
//! whose sources are all uniform are *scalarized* — evaluated once and
//! broadcast to the active lanes — instead of executed 32 times. Loop
//! counters, block/warp IDs, strides and shared-memory base addresses
//! in the generated reduction kernels are uniform, so this covers most
//! ALU traffic. Writes under a partial active mask, lane-dependent
//! sources, loads, shuffles and atomics demote the destination to
//! non-uniform; correctness never depends on the mask being full.
//! Branches with a uniform predicate take the all-or-nothing fast path
//! without evaluating per lane.
//!
//! Results, statistics and modelled time are bit-identical to the
//! reference path by construction: the issue loop performs the same
//! budget, fault-poll and [`LaunchStats::issue`](crate::stats::LaunchStats::issue)
//! sequence per µop, memory and shuffle µops replicate the reference
//! per-lane semantics exactly, and scalarized compute writes the value
//! the per-lane loop would have produced (the sources being uniform
//! makes the per-lane results equal by definition). A differential
//! test suite enforces this across the synthesized-kernel corpus.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::error::{SimError, TrapKind};
use crate::exec::{
    apply_fault, eval_atom, eval_bin, eval_cmp, eval_cvt, from_f, full_mask, record_mem, to_f,
    trap_at, truncate, BlockCtx, StackEntry, WarpStop, MAX_LANES, RECONV_NONE,
};
use crate::fault::FaultSession;
use crate::hash::FxHashMap;
use crate::isa::{
    AtomOp, BinOp, CmpOp, Instr, InstrClass, Operand, PredId, RegId, Scope, ShflMode, Space, Sreg,
    Ty, UnOp,
};
use crate::kernel::Kernel;
use crate::memory::LinearMemory;
use crate::sanitize::AccessKind;

/// Registers above this index fall outside the per-warp uniformity
/// bitmask and are conservatively treated as lane-varying. The
/// synthesized corpus peaks at ~90 registers, well within range.
const UNI_REGS: usize = 128;
/// Predicate registers above this index are conservatively
/// lane-varying (the corpus peaks at ~14).
const UNI_PREDS: usize = 64;

/// A predecoded operand: everything the reference interpreter's
/// `operand()` match does per issue, resolved once at decode time.
///
/// Immediates are pre-converted to the raw register image for the type
/// the using instruction evaluates them at, so reading one at run time
/// is a plain load. Launch-geometry special registers and kernel
/// parameters index a small per-block constant table; only the three
/// genuinely lane-varying sources remain symbolic.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Src {
    /// A general-purpose register slot.
    Reg(RegId),
    /// A pre-converted immediate bit pattern.
    Imm(u64),
    /// Index into the per-block constant table
    /// (`params ++ [ctaid, ntid, nctaid, warpsize]`).
    Const(u16),
    /// `%tid.x` — the thread index within the block.
    Tid,
    /// `%laneid` — the lane index within the warp.
    Lane,
    /// `%warpid` — the warp index within the block (uniform).
    WarpId,
}

/// A statically-detected illegal operand combination, materialized as
/// a [`Uop::Trap`] that reproduces the reference path's runtime trap.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StaticTrap {
    /// Bitwise/shift binary op on a float type.
    FloatBitwise {
        /// The offending bitwise op.
        op: BinOp,
        /// The float type it was applied to.
        ty: Ty,
    },
    /// `plop` with an op outside And/Or/Xor.
    PlopNonLogical {
        /// The offending op.
        op: BinOp,
    },
}

impl StaticTrap {
    pub(crate) fn kind(self) -> TrapKind {
        match self {
            StaticTrap::FloatBitwise { op, ty } => TrapKind::IllegalOperandType {
                detail: format!("bitwise op {op:?} on float type {ty:?}"),
            },
            StaticTrap::PlopNonLogical { op } => TrapKind::IllegalInstruction {
                detail: format!("plop with non-logical op {op:?}"),
            },
        }
    }
}

/// One predecoded micro-operation. Mirrors [`Instr`] with operands
/// resolved to [`Src`], vector widths flattened to lane counts, and
/// branch reconvergence pre-linked.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Uop {
    /// `dst = truncate(ty, src)`
    Mov { ty: Ty, dst: RegId, src: Src },
    /// Arithmetic negation.
    Neg { ty: Ty, dst: RegId, src: Src },
    /// Bitwise complement.
    Not { ty: Ty, dst: RegId, src: Src },
    /// `dst = a op b` (float-bitwise combinations decode to `Trap`).
    Bin { op: BinOp, ty: Ty, dst: RegId, a: Src, b: Src },
    /// `dst = a * b + c`
    Mad { ty: Ty, dst: RegId, a: Src, b: Src, c: Src },
    /// Type conversion.
    Cvt { from: Ty, to: Ty, dst: RegId, src: Src },
    /// Predicate compare.
    Setp { op: CmpOp, ty: Ty, dst: PredId, a: Src, b: Src },
    /// Predicate logic (op pre-validated to And/Or/Xor).
    Plop { op: BinOp, dst: PredId, a: PredId, b: PredId },
    /// Select.
    Selp { ty: Ty, dst: RegId, a: Src, b: Src, pred: PredId },
    /// Load `vlanes` consecutive elements into consecutive registers.
    Ld { space: Space, ty: Ty, dst: RegId, base: Src, offset: i64, vlanes: u16 },
    /// Store `vlanes` consecutive registers.
    St { space: Space, ty: Ty, src: RegId, base: Src, offset: i64, vlanes: u16 },
    /// Atomic read-modify-write.
    Atom {
        space: Space,
        scope: Scope,
        op: AtomOp,
        ty: Ty,
        dst: Option<RegId>,
        base: Src,
        offset: i64,
        src: Src,
        cmp: Option<Src>,
    },
    /// Warp shuffle.
    Shfl {
        mode: ShflMode,
        ty: Ty,
        dst: RegId,
        src: Src,
        lane: Src,
        width: u32,
        pred_out: Option<PredId>,
    },
    /// Block-wide barrier.
    Bar,
    /// Unconditional branch.
    Bra { target: usize },
    /// Conditional branch with the reconvergence pc pre-linked
    /// (`RECONV_NONE` when the CFG has none).
    BraIf { pred: PredId, when: bool, target: usize, reconv: usize },
    /// Thread exit.
    Exit,
    /// Statically-certain illegal combination; fires the reference
    /// path's trap at the first active lane.
    Trap { what: StaticTrap },
}

/// A kernel's predecoded µop stream plus per-µop static metadata.
///
/// Built once per kernel by [`Kernel::uops`] and shared by every clone
/// (see [`UopCache`]); the executor indexes it with the same pc values
/// the instruction stream uses, so divergence stacks, branch targets
/// and trap locations are interchangeable between the two paths.
pub struct UopProgram {
    pub(crate) uops: Vec<Uop>,
    /// Instruction class per pc (precomputed for the stats counters).
    pub(crate) classes: Vec<InstrClass>,
    /// Parameter count; the per-block constant table appends launch
    /// geometry after the parameters.
    pub(crate) n_params: u16,
}

impl UopProgram {
    /// Number of µops (equal to the kernel's instruction count).
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty (an invalid kernel; retained for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }
}

impl fmt::Debug for UopProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UopProgram({} uops)", self.uops.len())
    }
}

/// Lazily-initialized predecoded µop program attached to a
/// [`Kernel`].
///
/// Like [`CfgCache`](crate::kernel::CfgCache), the µop stream depends
/// only on the immutable instruction stream, so it is decoded at most
/// once per kernel and shared by every clone — the parallel tuner's
/// workers predecode each synthesized kernel once, not once per
/// launch.
#[derive(Default)]
pub struct UopCache(OnceLock<Arc<UopProgram>>);

impl UopCache {
    /// Whether the µop program has been decoded yet.
    pub fn is_built(&self) -> bool {
        self.0.get().is_some()
    }

    pub(crate) fn get_or_decode(&self, kernel: &Kernel) -> &UopProgram {
        self.0.get_or_init(|| Arc::new(decode(kernel)))
    }
}

impl Clone for UopCache {
    fn clone(&self) -> Self {
        let out = UopCache::default();
        if let Some(prog) = self.0.get() {
            let _ = out.0.set(Arc::clone(prog));
        }
        out
    }
}

impl fmt::Debug for UopCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_built() { "UopCache(built)" } else { "UopCache(empty)" })
    }
}

/// Resolve an [`Operand`] evaluated at type `ty` into a [`Src`],
/// replicating the immediate conversions of the reference
/// interpreter's `operand()` for that type.
fn resolve(op: Operand, ty: Ty, n_params: u16) -> Src {
    match op {
        Operand::Reg(r) => Src::Reg(r),
        Operand::ImmI(v) => Src::Imm(match ty {
            Ty::F32 => u64::from((v as f32).to_bits()),
            Ty::F64 => (v as f64).to_bits(),
            Ty::I32 | Ty::U32 => v as i32 as u32 as u64,
            _ => v as u64,
        }),
        Operand::ImmF(v) => Src::Imm(match ty {
            Ty::F32 => u64::from((v as f32).to_bits()),
            _ => v.to_bits(),
        }),
        Operand::Sreg(s) => match s {
            Sreg::TidX => Src::Tid,
            Sreg::LaneId => Src::Lane,
            Sreg::WarpId => Src::WarpId,
            Sreg::CtaIdX => Src::Const(n_params),
            Sreg::NtidX => Src::Const(n_params + 1),
            Sreg::NctaIdX => Src::Const(n_params + 2),
            Sreg::WarpSize => Src::Const(n_params + 3),
        },
        Operand::Param(p) => Src::Const(p),
    }
}

/// Predecode a validated kernel into its µop program.
pub(crate) fn decode(kernel: &Kernel) -> UopProgram {
    let cfg = kernel.cfg();
    let np = kernel.params.len() as u16;
    let mut uops = Vec::with_capacity(kernel.instrs.len());
    let mut classes = Vec::with_capacity(kernel.instrs.len());
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        classes.push(instr.class());
        let uop = match *instr {
            Instr::Mov { ty, dst, src } => Uop::Mov { ty, dst, src: resolve(src, ty, np) },
            Instr::Un { op, ty, dst, src } => {
                let src = resolve(src, ty, np);
                match op {
                    UnOp::Neg => Uop::Neg { ty, dst, src },
                    UnOp::Not => Uop::Not { ty, dst, src },
                }
            }
            Instr::Bin { op, ty, dst, a, b } => {
                if ty.is_float()
                    && matches!(op, BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
                {
                    Uop::Trap { what: StaticTrap::FloatBitwise { op, ty } }
                } else {
                    Uop::Bin { op, ty, dst, a: resolve(a, ty, np), b: resolve(b, ty, np) }
                }
            }
            Instr::Mad { ty, dst, a, b, c } => Uop::Mad {
                ty,
                dst,
                a: resolve(a, ty, np),
                b: resolve(b, ty, np),
                c: resolve(c, ty, np),
            },
            Instr::Cvt { from, to, dst, src } => {
                Uop::Cvt { from, to, dst, src: resolve(src, from, np) }
            }
            Instr::Setp { op, ty, dst, a, b } => {
                Uop::Setp { op, ty, dst, a: resolve(a, ty, np), b: resolve(b, ty, np) }
            }
            Instr::Plop { op, dst, a, b } => match op {
                BinOp::And | BinOp::Or | BinOp::Xor => Uop::Plop { op, dst, a, b },
                other => Uop::Trap { what: StaticTrap::PlopNonLogical { op: other } },
            },
            Instr::Selp { ty, dst, a, b, pred } => {
                Uop::Selp { ty, dst, a: resolve(a, ty, np), b: resolve(b, ty, np), pred }
            }
            Instr::Ld { space, ty, dst, addr, width } => Uop::Ld {
                space,
                ty,
                dst,
                base: resolve(addr.base, Ty::U64, np),
                offset: addr.offset,
                vlanes: width.lanes(),
            },
            Instr::St { space, ty, src, addr, width } => Uop::St {
                space,
                ty,
                src,
                base: resolve(addr.base, Ty::U64, np),
                offset: addr.offset,
                vlanes: width.lanes(),
            },
            Instr::Atom { space, scope, op, ty, dst, addr, src, cmp } => Uop::Atom {
                space,
                scope,
                op,
                ty,
                dst,
                base: resolve(addr.base, Ty::U64, np),
                offset: addr.offset,
                src: resolve(src, ty, np),
                cmp: cmp.map(|c| resolve(c, ty, np)),
            },
            Instr::Shfl { mode, ty, dst, src, lane, width, pred_out } => Uop::Shfl {
                mode,
                ty,
                dst,
                src: resolve(src, ty, np),
                lane: resolve(lane, Ty::U32, np),
                width,
                pred_out,
            },
            Instr::Bar => Uop::Bar,
            Instr::Bra { pred: None, target } => Uop::Bra { target },
            Instr::Bra { pred: Some((p, when)), target } => Uop::BraIf {
                pred: p,
                when,
                target,
                reconv: cfg.reconvergence(pc).unwrap_or(RECONV_NONE),
            },
            Instr::Exit => Uop::Exit,
        };
        uops.push(uop);
    }
    UopProgram { uops, classes, n_params: np }
}

/// Per-warp execution state for the µop path: the reference divergence
/// stack plus the uniformity lattice (one bit per tracked register or
/// predicate: set ⇒ every existing lane of the warp holds the same raw
/// value).
pub(crate) struct UopWarp {
    pub(crate) warp_id: u32,
    pub(crate) stack: Vec<StackEntry>,
    pub(crate) exited: u32,
    /// Mask of the lanes that exist in this warp (partial last warp).
    pub(crate) full: u32,
    /// Uniformity bit per general-purpose register (< [`UNI_REGS`]).
    pub(crate) reg_uni: u128,
    /// Uniformity bit per predicate register (< [`UNI_PREDS`]).
    pub(crate) pred_uni: u64,
}

#[inline]
pub(crate) fn src_uniform(warp: &UopWarp, s: Src) -> bool {
    match s {
        Src::Reg(r) => (r as usize) < UNI_REGS && warp.reg_uni & (1u128 << r) != 0,
        Src::Tid | Src::Lane => false,
        Src::Imm(_) | Src::Const(_) | Src::WarpId => true,
    }
}

#[inline]
pub(crate) fn pred_uniform(warp: &UopWarp, p: PredId) -> bool {
    (p as usize) < UNI_PREDS && warp.pred_uni & (1u64 << p) != 0
}

#[inline]
pub(crate) fn set_reg_uni(warp: &mut UopWarp, r: RegId, uniform: bool) {
    if (r as usize) < UNI_REGS {
        let bit = 1u128 << r;
        if uniform {
            warp.reg_uni |= bit;
        } else {
            warp.reg_uni &= !bit;
        }
    }
}

#[inline]
pub(crate) fn set_pred_uni(warp: &mut UopWarp, p: PredId, uniform: bool) {
    if (p as usize) < UNI_PREDS {
        let bit = 1u64 << p;
        if uniform {
            warp.pred_uni |= bit;
        } else {
            warp.pred_uni &= !bit;
        }
    }
}

/// Evaluate a [`Src`] for one lane.
#[inline]
pub(crate) fn eval_src(
    ctx: &BlockCtx<'_>,
    consts: &[u64],
    base: u32,
    warp_id: u32,
    lane: u32,
    s: Src,
) -> u64 {
    match s {
        Src::Reg(r) => ctx.reg(base + lane, r),
        Src::Imm(v) => v,
        Src::Const(i) => consts[i as usize],
        Src::Tid => u64::from(base + lane),
        Src::Lane => u64::from(lane),
        Src::WarpId => u64::from(warp_id),
    }
}

/// Broadcast a scalarized register result to every active lane and
/// update the uniformity bit: the destination stays uniform only when
/// the write covered every existing lane.
#[inline]
pub(crate) fn write_reg_all(
    ctx: &mut BlockCtx<'_>,
    warp: &mut UopWarp,
    base: u32,
    active: u32,
    dst: RegId,
    v: u64,
) {
    let mut m = active;
    while m != 0 {
        let l = m.trailing_zeros();
        ctx.set_reg(base + l, dst, v);
        m &= m - 1;
    }
    set_reg_uni(warp, dst, active == warp.full);
}

/// Broadcast a scalarized predicate result to every active lane.
#[inline]
pub(crate) fn write_pred_all(
    ctx: &mut BlockCtx<'_>,
    warp: &mut UopWarp,
    base: u32,
    active: u32,
    dst: PredId,
    v: bool,
) {
    let mut m = active;
    while m != 0 {
        let l = m.trailing_zeros();
        ctx.set_pred(base + l, dst, v);
        m &= m - 1;
    }
    set_pred_uni(warp, dst, active == warp.full);
}

/// Fill the per-block constant table: parameters then launch
/// geometry, in the index order [`resolve`] assigned. Shared with the
/// compiled tier ([`crate::jit`]), whose programs use the same layout.
pub(crate) fn build_consts(ctx: &BlockCtx<'_>, n_params: u16, consts: &mut Vec<u64>) {
    consts.clear();
    consts.extend_from_slice(ctx.params);
    debug_assert_eq!(consts.len(), n_params as usize);
    consts.push(u64::from(ctx.block_id));
    consts.push(u64::from(ctx.block_dim));
    consts.push(u64::from(ctx.grid_dim));
    consts.push(u64::from(ctx.arch.warp_size));
}

/// Reset the caller-owned warp buffer in place for a new block.
/// Register and predicate files are zero-filled at block start, so
/// every tracked slot begins uniform. Shared with the compiled tier.
pub(crate) fn reset_warps(warps: &mut Vec<UopWarp>, block_dim: u32, warp_size: u32) {
    let n_warps = block_dim.div_ceil(warp_size) as usize;
    warps.truncate(n_warps);
    for (w, warp) in warps.iter_mut().enumerate() {
        let lanes_in_warp = (block_dim - w as u32 * warp_size).min(warp_size);
        warp.warp_id = w as u32;
        warp.exited = 0;
        warp.stack.clear();
        warp.stack.push(StackEntry { reconv: RECONV_NONE, pc: 0, mask: full_mask(lanes_in_warp) });
        warp.full = full_mask(lanes_in_warp);
        warp.reg_uni = !0;
        warp.pred_uni = !0;
    }
    for w in warps.len() as u32..n_warps as u32 {
        let lanes_in_warp = (block_dim - w * warp_size).min(warp_size);
        warps.push(UopWarp {
            warp_id: w,
            stack: vec![StackEntry { reconv: RECONV_NONE, pc: 0, mask: full_mask(lanes_in_warp) }],
            exited: 0,
            full: full_mask(lanes_in_warp),
            reg_uni: !0,
            pred_uni: !0,
        });
    }
}

/// Execute one block through the µop path. Mirrors
/// [`crate::exec::run_block`]'s scheduling (rounds of warps stopping
/// at barriers, barrier-divergence deadlock detection) exactly.
pub(crate) fn run_block(
    ctx: &mut BlockCtx<'_>,
    prog: &UopProgram,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
    warps: &mut Vec<UopWarp>,
    faults: &mut FaultSession,
    consts: &mut Vec<u64>,
) -> Result<(), SimError> {
    build_consts(ctx, prog.n_params, consts);
    reset_warps(warps, ctx.block_dim, ctx.arch.warp_size);

    loop {
        let mut waiting = 0usize;
        let mut ran = 0usize;
        for warp in warps.iter_mut() {
            if warp.stack.is_empty() {
                continue;
            }
            ran += 1;
            if matches!(
                run_warp(ctx, prog, consts, warp, global, global_chains, faults)?,
                WarpStop::Barrier
            ) {
                waiting += 1;
            }
        }
        if waiting == 0 {
            break;
        }
        if waiting < ran {
            let waiting_warps: Vec<u32> =
                warps.iter().filter(|w| !w.stack.is_empty()).map(|w| w.warp_id).collect();
            let barrier_pc = warps
                .iter()
                .find(|w| !w.stack.is_empty())
                .and_then(|w| w.stack.last())
                .map_or(0, |top| top.pc.saturating_sub(1));
            return Err(SimError::BarrierDeadlock {
                kernel: ctx.kernel.name.clone(),
                barrier_pc,
                waiting_warps,
            });
        }
        // Every live warp arrived: the barrier releases and orders
        // accesses across it.
        if let Some(s) = ctx.sanitize.as_deref_mut() {
            s.barrier_release();
        }
    }
    Ok(())
}

/// Execute one warp of µops until it hits a barrier or finishes.
#[allow(clippy::too_many_lines)]
fn run_warp(
    ctx: &mut BlockCtx<'_>,
    prog: &UopProgram,
    consts: &[u64],
    warp: &mut UopWarp,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
    faults: &mut FaultSession,
) -> Result<WarpStop, SimError> {
    let warp_size = ctx.arch.warp_size;
    let base = warp.warp_id * warp_size;
    let wid = warp.warp_id;
    let uops = prog.uops.as_slice();
    loop {
        // Pop completed or emptied divergence entries.
        loop {
            let Some(top) = warp.stack.last() else {
                return Ok(WarpStop::Done);
            };
            if top.mask & !warp.exited == 0 || top.pc == top.reconv {
                warp.stack.pop();
                continue;
            }
            break;
        }
        let top = *warp.stack.last().unwrap();
        let active = top.mask & !warp.exited;
        let pc = top.pc;
        if pc >= uops.len() {
            warp.exited |= active;
            warp.stack.pop();
            continue;
        }
        if ctx.budget == 0 {
            return Err(SimError::Timeout {
                kernel: ctx.kernel.name.clone(),
                budget: ctx.budget_total,
            });
        }
        ctx.budget -= 1;
        if let Some(pending) = faults.poll() {
            apply_fault(ctx, global, faults, pending);
        }

        let n_active = active.count_ones();
        ctx.stats.issue(prog.classes[pc], n_active, warp_size);
        if let Some(p) = ctx.profile.as_deref_mut() {
            p.record_issue(pc, n_active, warp_size);
        }

        let mut next_pc = pc + 1;
        match uops[pc] {
            Uop::Mov { ty, dst, src } => {
                if src_uniform(warp, src) {
                    let l0 = active.trailing_zeros();
                    let v = truncate(ty, eval_src(ctx, consts, base, wid, l0, src));
                    write_reg_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let v = eval_src(ctx, consts, base, wid, l, src);
                        ctx.set_reg(base + l, dst, truncate(ty, v));
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Neg { ty, dst, src } => {
                let neg = |pc_lane: u32, v: u64| -> Result<u64, SimError> {
                    if ty.is_float() {
                        Ok(from_f(ty, -to_f(ty, v)))
                    } else {
                        eval_bin(BinOp::Sub, ty, 0, v)
                            .map_err(|k| trap_at(ctx.kernel, pc, wid, pc_lane, k))
                    }
                };
                if src_uniform(warp, src) {
                    let l0 = active.trailing_zeros();
                    let v = neg(l0, eval_src(ctx, consts, base, wid, l0, src))?;
                    write_reg_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let v = neg(l, eval_src(ctx, consts, base, wid, l, src))?;
                        ctx.set_reg(base + l, dst, v);
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Not { ty, dst, src } => {
                if src_uniform(warp, src) {
                    let l0 = active.trailing_zeros();
                    let v = truncate(ty, !eval_src(ctx, consts, base, wid, l0, src));
                    write_reg_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let v = eval_src(ctx, consts, base, wid, l, src);
                        ctx.set_reg(base + l, dst, truncate(ty, !v));
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Bin { op, ty, dst, a, b } => {
                if src_uniform(warp, a) && src_uniform(warp, b) {
                    let l0 = active.trailing_zeros();
                    let x = eval_src(ctx, consts, base, wid, l0, a);
                    let y = eval_src(ctx, consts, base, wid, l0, b);
                    let r = eval_bin(op, ty, x, y).map_err(|k| trap_at(ctx.kernel, pc, wid, l0, k))?;
                    write_reg_all(ctx, warp, base, active, dst, r);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let x = eval_src(ctx, consts, base, wid, l, a);
                        let y = eval_src(ctx, consts, base, wid, l, b);
                        let r =
                            eval_bin(op, ty, x, y).map_err(|k| trap_at(ctx.kernel, pc, wid, l, k))?;
                        ctx.set_reg(base + l, dst, r);
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Mad { ty, dst, a, b, c } => {
                if src_uniform(warp, a) && src_uniform(warp, b) && src_uniform(warp, c) {
                    let l0 = active.trailing_zeros();
                    let x = eval_src(ctx, consts, base, wid, l0, a);
                    let y = eval_src(ctx, consts, base, wid, l0, b);
                    let z = eval_src(ctx, consts, base, wid, l0, c);
                    let m1 =
                        eval_bin(BinOp::Mul, ty, x, y).map_err(|k| trap_at(ctx.kernel, pc, wid, l0, k))?;
                    let r = eval_bin(BinOp::Add, ty, m1, z)
                        .map_err(|k| trap_at(ctx.kernel, pc, wid, l0, k))?;
                    write_reg_all(ctx, warp, base, active, dst, r);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let x = eval_src(ctx, consts, base, wid, l, a);
                        let y = eval_src(ctx, consts, base, wid, l, b);
                        let z = eval_src(ctx, consts, base, wid, l, c);
                        let m1 = eval_bin(BinOp::Mul, ty, x, y)
                            .map_err(|k| trap_at(ctx.kernel, pc, wid, l, k))?;
                        let r = eval_bin(BinOp::Add, ty, m1, z)
                            .map_err(|k| trap_at(ctx.kernel, pc, wid, l, k))?;
                        ctx.set_reg(base + l, dst, r);
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Cvt { from, to, dst, src } => {
                if src_uniform(warp, src) {
                    let l0 = active.trailing_zeros();
                    let v = eval_cvt(from, to, eval_src(ctx, consts, base, wid, l0, src));
                    write_reg_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let v = eval_src(ctx, consts, base, wid, l, src);
                        ctx.set_reg(base + l, dst, eval_cvt(from, to, v));
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Setp { op, ty, dst, a, b } => {
                if src_uniform(warp, a) && src_uniform(warp, b) {
                    let l0 = active.trailing_zeros();
                    let x = eval_src(ctx, consts, base, wid, l0, a);
                    let y = eval_src(ctx, consts, base, wid, l0, b);
                    write_pred_all(ctx, warp, base, active, dst, eval_cmp(op, ty, x, y));
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let x = eval_src(ctx, consts, base, wid, l, a);
                        let y = eval_src(ctx, consts, base, wid, l, b);
                        ctx.set_pred(base + l, dst, eval_cmp(op, ty, x, y));
                        m &= m - 1;
                    }
                    set_pred_uni(warp, dst, false);
                }
            }
            Uop::Plop { op, dst, a, b } => {
                let apply = |x: bool, y: bool| match op {
                    BinOp::And => x && y,
                    BinOp::Or => x || y,
                    // Decode validated op ∈ {And, Or, Xor}.
                    _ => x ^ y,
                };
                if pred_uniform(warp, a) && pred_uniform(warp, b) {
                    let l0 = active.trailing_zeros();
                    let v = apply(ctx.pred(base + l0, a), ctx.pred(base + l0, b));
                    write_pred_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let v = apply(ctx.pred(base + l, a), ctx.pred(base + l, b));
                        ctx.set_pred(base + l, dst, v);
                        m &= m - 1;
                    }
                    set_pred_uni(warp, dst, false);
                }
            }
            Uop::Selp { ty, dst, a, b, pred } => {
                if src_uniform(warp, a) && src_uniform(warp, b) && pred_uniform(warp, pred) {
                    let l0 = active.trailing_zeros();
                    let s = if ctx.pred(base + l0, pred) { a } else { b };
                    let v = truncate(ty, eval_src(ctx, consts, base, wid, l0, s));
                    write_reg_all(ctx, warp, base, active, dst, v);
                } else {
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        let s = if ctx.pred(base + l, pred) { a } else { b };
                        let v = eval_src(ctx, consts, base, wid, l, s);
                        ctx.set_reg(base + l, dst, truncate(ty, v));
                        m &= m - 1;
                    }
                    set_reg_uni(warp, dst, false);
                }
            }
            Uop::Ld { space, ty, dst, base: ab, offset, vlanes } => {
                let elem = ty.size();
                let n = u64::from(vlanes);
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                let mut i = 0usize;
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = base + l;
                    let a = eval_src(ctx, consts, base, wid, l, ab).wrapping_add(offset as u64);
                    if !a.is_multiple_of(elem * n) {
                        return Err(trap_at(
                            ctx.kernel,
                            pc,
                            wid,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: elem * n },
                        ));
                    }
                    access_buf[i] = (a, elem * n);
                    i += 1;
                    for k in 0..vlanes {
                        let v = match space {
                            Space::Global => global.read(ty, a + u64::from(k) * elem)?,
                            Space::Shared => ctx.smem.read(ty, a + u64::from(k) * elem)?,
                        };
                        ctx.set_reg(t, dst + k, v);
                    }
                    m &= m - 1;
                }
                for k in 0..vlanes {
                    set_reg_uni(warp, dst + k, false);
                }
                let accesses = &access_buf[..i];
                record_mem(ctx, pc, space, true, accesses);
                if space == Space::Global && vlanes > 1 {
                    ctx.stats.global_vector_bytes += accesses.iter().map(|&(_, s)| s).sum::<u64>();
                }
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    s.record_warp(space, pc, wid, AccessKind::Read, active, accesses);
                }
            }
            Uop::St { space, ty, src, base: ab, offset, vlanes } => {
                let elem = ty.size();
                let n = u64::from(vlanes);
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                let mut i = 0usize;
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = base + l;
                    let a = eval_src(ctx, consts, base, wid, l, ab).wrapping_add(offset as u64);
                    if !a.is_multiple_of(elem * n) {
                        return Err(trap_at(
                            ctx.kernel,
                            pc,
                            wid,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: elem * n },
                        ));
                    }
                    access_buf[i] = (a, elem * n);
                    i += 1;
                    for k in 0..vlanes {
                        let v = ctx.reg(t, src + k);
                        match space {
                            Space::Global => global.write(ty, a + u64::from(k) * elem, v)?,
                            Space::Shared => ctx.smem.write(ty, a + u64::from(k) * elem, v)?,
                        }
                    }
                    m &= m - 1;
                }
                record_mem(ctx, pc, space, false, &access_buf[..i]);
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    s.record_warp(space, pc, wid, AccessKind::Write, active, &access_buf[..i]);
                }
            }
            Uop::Atom { space, scope, op, ty, dst, base: ab, offset, src, cmp } => {
                let mut addr_buf = [0u64; MAX_LANES];
                let mut i = 0usize;
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = base + l;
                    let a = eval_src(ctx, consts, base, wid, l, ab).wrapping_add(offset as u64);
                    if !a.is_multiple_of(ty.size()) {
                        return Err(trap_at(
                            ctx.kernel,
                            pc,
                            wid,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: ty.size() },
                        ));
                    }
                    addr_buf[i] = a;
                    i += 1;
                    let s = eval_src(ctx, consts, base, wid, l, src);
                    let c = cmp.map(|c| eval_src(ctx, consts, base, wid, l, c));
                    let old = match space {
                        Space::Global => {
                            let old = global.read(ty, a)?;
                            let new = eval_atom(op, ty, old, s, c)
                                .map_err(|k| trap_at(ctx.kernel, pc, wid, l, k))?;
                            global.write(ty, a, new)?;
                            old
                        }
                        Space::Shared => {
                            let old = ctx.smem.read(ty, a)?;
                            let new = eval_atom(op, ty, old, s, c)
                                .map_err(|k| trap_at(ctx.kernel, pc, wid, l, k))?;
                            ctx.smem.write(ty, a, new)?;
                            old
                        }
                    };
                    if let Some(d) = dst {
                        ctx.set_reg(t, d, old);
                    }
                    let depth = match space {
                        Space::Global => {
                            let e = global_chains.entry(a).or_insert(0);
                            *e += 1;
                            *e - 1
                        }
                        Space::Shared => {
                            let e = ctx.shared_chains.entry(a).or_insert(0);
                            *e += 1;
                            *e - 1
                        }
                    };
                    if let Some(p) = ctx.profile.as_deref_mut() {
                        p.sites[pc].atomic_serial += depth;
                    }
                    m &= m - 1;
                }
                if let Some(d) = dst {
                    set_reg_uni(warp, d, false);
                }
                let addrs = &addr_buf[..i];
                let mut worst = 0u64;
                for (j, &a) in addrs.iter().enumerate() {
                    if addrs[..j].contains(&a) {
                        continue;
                    }
                    let c = addrs[j..].iter().filter(|&&b| b == a).count() as u64;
                    worst = worst.max(c);
                }
                match space {
                    Space::Global => {
                        ctx.stats.global_atomics += i as u64;
                    }
                    Space::Shared => {
                        ctx.stats.shared_atomics += i as u64;
                        ctx.stats.shared_atomic_serial += worst;
                    }
                }
                if let Some(p) = ctx.profile.as_deref_mut() {
                    p.sites[pc].atomic_ops += i as u64;
                }
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    let mut buf = [(0u64, 0u64); MAX_LANES];
                    for (j, &a) in addrs.iter().enumerate() {
                        buf[j] = (a, ty.size());
                    }
                    let kind = AccessKind::Atomic { scope };
                    s.record_warp(space, pc, wid, kind, active, &buf[..addrs.len()]);
                }
            }
            Uop::Shfl { mode, ty, dst, src, lane, width, pred_out } => {
                let ws = warp_size;
                let mut snapshot = [0u64; MAX_LANES];
                for l in 0..ws {
                    if base + l < ctx.block_dim {
                        snapshot[l as usize] = eval_src(ctx, consts, base, wid, l, src);
                    }
                }
                let mut m = active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = base + l;
                    let b = eval_src(ctx, consts, base, wid, l, lane) as u32;
                    let w = width.clamp(1, ws);
                    let seg = l / w * w;
                    let pos = l % w;
                    let (src_lane, in_range) = match mode {
                        ShflMode::Up => {
                            if pos >= b {
                                (seg + pos - b, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Down => {
                            if pos + b < w {
                                (seg + pos + b, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Bfly => {
                            let j = pos ^ b;
                            if j < w {
                                (seg + j, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Idx => {
                            let j = b % w;
                            (seg + j, true)
                        }
                    };
                    let v = snapshot[src_lane.min(ws - 1) as usize];
                    ctx.set_reg(t, dst, truncate(ty, v));
                    if let Some(p) = pred_out {
                        ctx.set_pred(t, p, in_range);
                    }
                    m &= m - 1;
                }
                set_reg_uni(warp, dst, false);
                if let Some(p) = pred_out {
                    set_pred_uni(warp, p, false);
                }
                if let Some(p) = ctx.profile.as_deref_mut() {
                    p.sites[pc].shuffle_exchanges += u64::from(n_active);
                }
            }
            Uop::Bar => {
                ctx.stats.barriers += 1;
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    s.record_bar(pc, wid, active, warp.full);
                }
                if let Some(top) = warp.stack.last_mut() {
                    top.pc = next_pc;
                }
                return Ok(WarpStop::Barrier);
            }
            Uop::Bra { target } => next_pc = target,
            Uop::BraIf { pred, when, target, reconv } => {
                let taken = if pred_uniform(warp, pred) {
                    // Uniform predicate: one evaluation decides the
                    // whole warp (all-or-nothing, never divergent).
                    let l0 = active.trailing_zeros();
                    if ctx.pred(base + l0, pred) == when {
                        active
                    } else {
                        0
                    }
                } else {
                    let mut taken = 0u32;
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        if ctx.pred(base + l, pred) == when {
                            taken |= 1 << l;
                        }
                        m &= m - 1;
                    }
                    taken
                };
                if taken == active {
                    next_pc = target;
                } else if taken == 0 {
                    // fall through
                } else {
                    ctx.stats.divergent_branches += 1;
                    if let Some(p) = ctx.profile.as_deref_mut() {
                        p.sites[pc].divergence_splits += 1;
                    }
                    let outer = warp.stack.pop().unwrap();
                    if reconv != RECONV_NONE {
                        warp.stack.push(StackEntry {
                            reconv: outer.reconv,
                            pc: reconv,
                            mask: outer.mask,
                        });
                    }
                    let not_taken = active & !taken;
                    warp.stack.push(StackEntry { reconv, pc: pc + 1, mask: not_taken });
                    warp.stack.push(StackEntry { reconv, pc: target, mask: taken });
                    continue;
                }
            }
            Uop::Exit => {
                warp.exited |= active;
            }
            Uop::Trap { what } => {
                let l0 = active.trailing_zeros();
                return Err(trap_at(ctx.kernel, pc, wid, l0, what.kind()));
            }
        }
        if let Some(top) = warp.stack.last_mut() {
            top.pc = next_pc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::exec::{run_kernel_cfg, Arg, BlockSelection, ExecConfig, ExecMode, LaunchDims};
    use crate::isa::Address;
    use crate::kernel::KernelBuilder;

    fn arch() -> ArchConfig {
        ArchConfig::maxwell_gtx980()
    }

    /// A loop-heavy kernel with uniform control flow, lane-varying
    /// addresses, a shared-memory tree phase and a divergent tail —
    /// exercises scalarized and per-lane paths together.
    fn mixed_kernel() -> crate::kernel::Kernel {
        let n: u32 = 64;
        let mut b = KernelBuilder::new("mixed");
        let inp = b.param_ptr();
        let outp = b.param_ptr();
        let smem_off = b.smem_alloc(u64::from(n) * 4);
        let tid = b.reg();
        let a = b.reg();
        let v = b.reg();
        let w = b.reg();
        let sa = b.reg();
        let sb = b.reg();
        let stride = b.reg();
        let p = b.pred();
        let pw = b.pred();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(inp));
        b.ld(Space::Global, Ty::U32, v, Address::reg(a));
        b.cvt(Ty::U32, Ty::U64, sa, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(smem_off as i64));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bar();
        b.mov(Ty::U32, stride, Operand::ImmI(i64::from(n / 2)));
        let top = b.label();
        let body_end = b.label();
        let done = b.label();
        b.place(top);
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(stride), Operand::ImmI(0));
        b.bra_if(p, true, done);
        b.setp(CmpOp::Lt, Ty::U32, pw, Operand::Reg(tid), Operand::Reg(stride));
        b.bra_if(pw, false, body_end);
        b.bin(BinOp::Add, Ty::U32, w, Operand::Reg(tid), Operand::Reg(stride));
        b.cvt(Ty::U32, Ty::U64, sb, Operand::Reg(w));
        b.bin(BinOp::Mul, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(smem_off as i64));
        b.ld(Space::Shared, Ty::U32, w, Address::reg(sb));
        b.ld(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::Reg(w));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.place(body_end);
        b.bar();
        b.bin(BinOp::Shr, Ty::U32, stride, Operand::Reg(stride), Operand::ImmI(1));
        b.bra(top);
        b.place(done);
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(tid), Operand::ImmI(0));
        let skip = b.label();
        b.bra_if(p, false, skip);
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(smem_off as i64), 0));
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(outp), 0));
        b.place(skip);
        b.exit();
        b.finish().unwrap()
    }

    #[test]
    fn decode_is_cached_and_shared_across_clones() {
        let k = mixed_kernel();
        assert!(!k.uop_cache.is_built());
        assert_eq!(k.uops().len(), k.instrs.len());
        assert!(k.uop_cache.is_built());
        let c = k.clone();
        assert!(c.uop_cache.is_built(), "clones must share the decoded program");
        assert!(std::ptr::eq(k.uops(), c.uops()), "same Arc, not a re-decode");
    }

    #[test]
    fn predecoded_matches_reference_bitwise() {
        let k = mixed_kernel();
        let n: u32 = 64;
        let run = |mode: ExecMode| {
            let mut mem = LinearMemory::new(4 * u64::from(n) + 4, "global");
            for i in 0..n {
                mem.write(Ty::U32, u64::from(i) * 4, u64::from(i + 1)).unwrap();
            }
            let out = run_kernel_cfg(
                &k,
                &arch(),
                LaunchDims::new(2, n),
                &[Arg::Ptr(0), Arg::Ptr(4 * u64::from(n))],
                &mut mem,
                BlockSelection::All,
                ExecConfig::builder().exec_mode(mode).build(),
            )
            .unwrap();
            (mem.read_bytes(0, 4 * u64::from(n) + 4).unwrap(), format!("{:?}", out.stats))
        };
        let (mem_ref, stats_ref) = run(ExecMode::Reference);
        let (mem_uop, stats_uop) = run(ExecMode::Predecoded);
        assert_eq!(mem_ref, mem_uop, "memory must be bit-identical");
        assert_eq!(stats_ref, stats_uop, "stats must be identical");
    }

    #[test]
    fn scalarized_path_handles_partial_masks() {
        // A divergent region where one side does uniform-source ALU
        // work under a partial mask: the broadcast must only write
        // active lanes and must demote the destination to non-uniform.
        let mut b = KernelBuilder::new("partial");
        let outp = b.param_ptr();
        let r = b.reg();
        let a = b.reg();
        let p = b.pred();
        let else_l = b.label();
        let join_l = b.label();
        b.mov(Ty::U32, r, Operand::ImmI(5));
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(9));
        b.bra_if(p, false, else_l);
        // Uniform sources, partial mask: r = 100 on lanes < 9.
        b.mov(Ty::U32, r, Operand::ImmI(100));
        b.bra(join_l);
        b.place(else_l);
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(1));
        b.place(join_l);
        // After the join r is non-uniform; this add must stay per-lane
        // correct.
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(7));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(outp));
        b.st(Space::Global, Ty::U32, r, Address::reg(a));
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(4 * 32, "global");
        run_kernel_cfg(
            &k,
            &arch(),
            LaunchDims::new(1, 32),
            &[Arg::Ptr(0)],
            &mut mem,
            BlockSelection::All,
            ExecConfig::builder().exec_mode(ExecMode::Predecoded).build(),
        )
        .unwrap();
        for i in 0..32u64 {
            let expect = if i < 9 { 107 } else { 13 };
            assert_eq!(mem.read(Ty::U32, i * 4).unwrap(), expect, "lane {i}");
        }
    }

    #[test]
    fn static_trap_fires_at_reference_location() {
        let k = Kernel {
            name: "badop".into(),
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Xor,
                    ty: Ty::F32,
                    dst: 0,
                    a: Operand::ImmF(1.0),
                    b: Operand::ImmF(2.0),
                },
                Instr::Exit,
            ],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 1,
            num_preds: 0,
            cfg_cache: Default::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        let mut mem = LinearMemory::new(0, "global");
        let err = run_kernel_cfg(
            &k,
            &arch(),
            LaunchDims::new(1, 32),
            &[],
            &mut mem,
            BlockSelection::All,
            ExecConfig::builder().exec_mode(ExecMode::Predecoded).build(),
        )
        .unwrap_err();
        match err {
            SimError::Trap { pc, warp, lane, kind, .. } => {
                assert_eq!((pc, warp, lane), (0, 0, 0));
                assert!(matches!(kind, TrapKind::IllegalOperandType { .. }));
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }
}
