//! A small text assembler for VIR.
//!
//! The hand-written baseline kernels (the CUB-like and Kokkos-like
//! reductions) are written in this format, mirroring how the paper's
//! baselines are hand-written CUDA/PTX rather than synthesized.
//!
//! # Syntax
//!
//! ```text
//! .kernel block_reduce
//! .param ptr          ; %p0 — input
//! .param ptr          ; %p1 — output
//! .param u32          ; %p2 — n
//! .smem 128           ; static shared memory bytes
//! .dsmem              ; uses dynamic shared memory
//!
//! entry:
//!   mov.u32   %r0, %tid.x;
//!   mad.u32   %r1, %ctaid.x, %ntid.x, %r0;
//!   setp.lt.u32 %pr0, %r1, %p2;
//!   @!%pr0 bra done;
//!   ld.global.f32 %r2, [%r3+4];
//!   ld.global.v4.f32 %r4, [%r3];
//!   st.shared.f32 [%r5], %r2;
//!   atom.global.gpu.add.f32 %r6, [%p1], %r2;
//!   red.shared.cta.add.f32 [%r5], %r2;
//!   shfl.down.f32 %r7, %r2, 16, 32;
//!   bar.sync;
//! done:
//!   exit;
//! ```
//!
//! Comments run from `;` or `//` to end of line (so the trailing `;`
//! terminator on instructions is simply ignored). Registers are
//! written `%rN` / `%prN`; parameters `%pN`; special registers by
//! their PTX names (`%tid.x`, `%ctaid.x`, `%ntid.x`, `%nctaid.x`,
//! `%laneid`, `%warpid`, `%warpsize`).

use std::collections::HashMap;

use crate::error::SimError;
use crate::isa::{
    Address, AtomOp, BinOp, CmpOp, Instr, Operand, Scope, ShflMode, Space, Sreg, Ty, UnOp,
    VecWidth,
};
use crate::kernel::{Kernel, ParamKind};

/// Assemble VIR source text into a [`Kernel`].
///
/// # Errors
///
/// Returns [`SimError::Asm`] with a 1-based line number on any parse
/// error, and kernel-validation errors from [`Kernel::validate`].
pub fn assemble(src: &str) -> Result<Kernel, SimError> {
    Assembler::new().assemble(src)
}

struct Assembler {
    name: String,
    params: Vec<ParamKind>,
    static_smem: u64,
    dynamic_smem: bool,
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (instruction index, label name, line)
    fixups: Vec<(usize, String, usize)>,
    max_reg: i32,
    max_pred: i32,
}

fn err(line: usize, reason: impl Into<String>) -> SimError {
    SimError::Asm { line, reason: reason.into() }
}

impl Assembler {
    fn new() -> Self {
        Assembler {
            name: "anonymous".into(),
            params: Vec::new(),
            static_smem: 0,
            dynamic_smem: false,
            instrs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            max_reg: -1,
            max_pred: -1,
        }
    }

    fn assemble(mut self, src: &str) -> Result<Kernel, SimError> {
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                self.directive(rest, lineno)?;
                continue;
            }
            // Possibly several `label:` prefixes before an instruction.
            let mut rest = line;
            loop {
                if let Some(colon) = rest.find(':') {
                    let (head, tail) = rest.split_at(colon);
                    let head_t = head.trim();
                    if !head_t.is_empty()
                        && head_t.chars().all(|c| c.is_alphanumeric() || c == '_')
                    {
                        if self.labels.insert(head_t.to_string(), self.instrs.len()).is_some() {
                            return Err(err(lineno, format!("duplicate label `{head_t}`")));
                        }
                        rest = tail[1..].trim();
                        continue;
                    }
                }
                break;
            }
            if rest.is_empty() {
                continue;
            }
            self.instruction(rest, lineno)?;
        }
        for (pc, label, line) in &self.fixups {
            let Some(&target) = self.labels.get(label) else {
                return Err(err(*line, format!("undefined label `{label}`")));
            };
            if let Instr::Bra { target: t, .. } = &mut self.instrs[*pc] {
                *t = target;
            }
        }
        let kernel = Kernel {
            name: self.name,
            instrs: self.instrs,
            params: self.params,
            static_smem: self.static_smem,
            dynamic_smem: self.dynamic_smem,
            num_regs: (self.max_reg + 1) as u16,
            num_preds: (self.max_pred + 1) as u16,
            cfg_cache: Default::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        kernel.validate()?;
        Ok(kernel)
    }

    fn directive(&mut self, rest: &str, line: usize) -> Result<(), SimError> {
        let mut it = rest.split_whitespace();
        match it.next() {
            Some("kernel") => {
                self.name = it.next().ok_or_else(|| err(line, ".kernel needs a name"))?.into();
            }
            Some("param") => {
                let kind = match it.next() {
                    Some("ptr") => ParamKind::Ptr,
                    Some(t) => ParamKind::Scalar(parse_ty(t, line)?),
                    None => return Err(err(line, ".param needs a kind")),
                };
                self.params.push(kind);
            }
            Some("smem") => {
                let n = it.next().ok_or_else(|| err(line, ".smem needs a byte count"))?;
                self.static_smem =
                    n.parse().map_err(|_| err(line, format!("bad .smem size `{n}`")))?;
            }
            Some("dsmem") => self.dynamic_smem = true,
            Some(other) => return Err(err(line, format!("unknown directive `.{other}`"))),
            None => return Err(err(line, "empty directive")),
        }
        Ok(())
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<(), SimError> {
        let text = text.trim();
        // Predicated branch: `@%pr0 bra label` / `@!%pr0 bra label`.
        if let Some(rest) = text.strip_prefix('@') {
            let (neg, rest) = match rest.strip_prefix('!') {
                Some(r) => (true, r),
                None => (false, rest),
            };
            let mut parts = rest.split_whitespace();
            let preg = parts.next().ok_or_else(|| err(line, "predicated branch needs %pr"))?;
            let p = parse_pred(preg, line)?;
            self.max_pred = self.max_pred.max(i32::from(p));
            match parts.next() {
                Some("bra") => {}
                _ => return Err(err(line, "only `bra` may be predicated")),
            }
            let label = parts.next().ok_or_else(|| err(line, "bra needs a target"))?;
            self.fixups.push((self.instrs.len(), label.to_string(), line));
            self.instrs.push(Instr::Bra { pred: Some((p, !neg)), target: usize::MAX });
            return Ok(());
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let dots: Vec<&str> = mnemonic.split('.').collect();
        let ops = split_operands(rest);

        match dots[0] {
            "mov" => {
                let ty = one_ty(&dots, line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let src = parse_operand(get(&ops, 1, line)?, line)?;
                self.instrs.push(Instr::Mov { ty, dst, src });
            }
            "neg" | "not" => {
                let op = if dots[0] == "neg" { UnOp::Neg } else { UnOp::Not };
                let ty = one_ty(&dots, line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let src = parse_operand(get(&ops, 1, line)?, line)?;
                self.instrs.push(Instr::Un { op, ty, dst, src });
            }
            "add" | "sub" | "mul" | "div" | "rem" | "min" | "max" | "and" | "or" | "xor"
            | "shl" | "shr" => {
                let op = parse_binop(dots[0]).unwrap();
                if dots.get(1) == Some(&"pred") {
                    // Predicate logic: `and.pred %pr0, %pr1, %pr2`.
                    let dst = parse_pred(get(&ops, 0, line)?, line)?;
                    let pa = parse_pred(get(&ops, 1, line)?, line)?;
                    let pb = parse_pred(get(&ops, 2, line)?, line)?;
                    self.max_pred =
                        self.max_pred.max(i32::from(dst)).max(i32::from(pa)).max(i32::from(pb));
                    self.instrs.push(Instr::Plop { op, dst, a: pa, b: pb });
                    return Ok(());
                }
                let ty = one_ty(&dots, line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let a = parse_operand(get(&ops, 1, line)?, line)?;
                let b = parse_operand(get(&ops, 2, line)?, line)?;
                self.instrs.push(Instr::Bin { op, ty, dst, a, b });
            }
            "mad" => {
                let ty = one_ty(&dots, line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let a = parse_operand(get(&ops, 1, line)?, line)?;
                let b = parse_operand(get(&ops, 2, line)?, line)?;
                let c = parse_operand(get(&ops, 3, line)?, line)?;
                self.instrs.push(Instr::Mad { ty, dst, a, b, c });
            }
            "cvt" => {
                if dots.len() != 3 {
                    return Err(err(line, "cvt needs cvt.<to>.<from>"));
                }
                let to = parse_ty(dots[1], line)?;
                let from = parse_ty(dots[2], line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let src = parse_operand(get(&ops, 1, line)?, line)?;
                self.instrs.push(Instr::Cvt { from, to, dst, src });
            }
            "setp" => {
                if dots.len() != 3 {
                    return Err(err(line, "setp needs setp.<cmp>.<ty>"));
                }
                let cmp = parse_cmp(dots[1], line)?;
                let ty = parse_ty(dots[2], line)?;
                let dst = parse_pred(get(&ops, 0, line)?, line)?;
                let a = parse_operand(get(&ops, 1, line)?, line)?;
                let b = parse_operand(get(&ops, 2, line)?, line)?;
                self.max_pred = self.max_pred.max(i32::from(dst));
                self.instrs.push(Instr::Setp { op: cmp, ty, dst, a, b });
            }
            "selp" => {
                let ty = one_ty(&dots, line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let a = parse_operand(get(&ops, 1, line)?, line)?;
                let b = parse_operand(get(&ops, 2, line)?, line)?;
                let p = parse_pred(get(&ops, 3, line)?, line)?;
                self.max_pred = self.max_pred.max(i32::from(p));
                self.instrs.push(Instr::Selp { ty, dst, a, b, pred: p });
            }
            "ld" | "st" => {
                let space = parse_space(dots.get(1).copied().unwrap_or(""), line)?;
                let (width, ty_idx) = match dots.get(2) {
                    Some(&"v2") => (VecWidth::V2, 3),
                    Some(&"v4") => (VecWidth::V4, 3),
                    _ => (VecWidth::V1, 2),
                };
                let ty = parse_ty(
                    dots.get(ty_idx).copied().ok_or_else(|| err(line, "missing type"))?,
                    line,
                )?;
                if dots[0] == "ld" {
                    let dst = parse_reg(get(&ops, 0, line)?, line)?;
                    let addr = parse_address(get(&ops, 1, line)?, line)?;
                    self.instrs.push(Instr::Ld { space, ty, dst, addr, width });
                } else {
                    let addr = parse_address(get(&ops, 0, line)?, line)?;
                    let src = parse_reg(get(&ops, 1, line)?, line)?;
                    self.max_reg = self.max_reg.max(i32::from(src + width.lanes() - 1));
                    self.instrs.push(Instr::St { space, ty, src, addr, width });
                }
            }
            "atom" | "red" => {
                if dots.len() != 5 {
                    return Err(err(line, "atomics need <space>.<scope>.<op>.<ty>"));
                }
                let space = parse_space(dots[1], line)?;
                let scope = parse_scope(dots[2], line)?;
                let op = parse_atomop(dots[3], line)?;
                let ty = parse_ty(dots[4], line)?;
                if dots[0] == "atom" {
                    let dst = parse_reg(get(&ops, 0, line)?, line)?;
                    let addr = parse_address(get(&ops, 1, line)?, line)?;
                    let src = parse_operand(get(&ops, 2, line)?, line)?;
                    let cmp = match ops.get(3) {
                        Some(c) => Some(parse_operand(c, line)?),
                        None => None,
                    };
                    if op == AtomOp::Cas && cmp.is_none() {
                        return Err(err(line, "atom.cas needs a compare operand"));
                    }
                    self.instrs
                        .push(Instr::Atom { space, scope, op, ty, dst: Some(dst), addr, src, cmp });
                } else {
                    let addr = parse_address(get(&ops, 0, line)?, line)?;
                    let src = parse_operand(get(&ops, 1, line)?, line)?;
                    self.instrs
                        .push(Instr::Atom { space, scope, op, ty, dst: None, addr, src, cmp: None });
                }
            }
            "shfl" => {
                if dots.len() != 3 {
                    return Err(err(line, "shfl needs shfl.<mode>.<ty>"));
                }
                let mode = match dots[1] {
                    "up" => ShflMode::Up,
                    "down" => ShflMode::Down,
                    "bfly" => ShflMode::Bfly,
                    "idx" => ShflMode::Idx,
                    other => return Err(err(line, format!("unknown shfl mode `{other}`"))),
                };
                let ty = parse_ty(dots[2], line)?;
                let dst = parse_reg(get(&ops, 0, line)?, line)?;
                let src = parse_operand(get(&ops, 1, line)?, line)?;
                let lane = parse_operand(get(&ops, 2, line)?, line)?;
                let width: u32 = get(&ops, 3, line)?
                    .parse()
                    .map_err(|_| err(line, "shfl width must be an integer"))?;
                self.instrs.push(Instr::Shfl { mode, ty, dst, src, lane, width, pred_out: None });
            }
            "bar" => self.instrs.push(Instr::Bar),
            "bra" => {
                let label = get(&ops, 0, line)?;
                self.fixups.push((self.instrs.len(), label.to_string(), line));
                self.instrs.push(Instr::Bra { pred: None, target: usize::MAX });
            }
            "exit" => self.instrs.push(Instr::Exit),
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
        // Infer the register file size from everything the pushed
        // instruction touches.
        if let Some(last) = self.instrs.last() {
            for r in last.used_regs().into_iter().chain(last.defined_regs()) {
                self.max_reg = self.max_reg.max(i32::from(r));
            }
            for p in last.used_preds() {
                self.max_pred = self.max_pred.max(i32::from(p));
            }
        }
        Ok(())
    }
}

fn strip_comment(line: &str) -> &str {
    let semi = line.find(';');
    let slashes = line.find("//");
    match (semi, slashes) {
        (Some(a), Some(b)) => &line[..a.min(b)],
        (Some(a), None) => &line[..a],
        (None, Some(b)) => &line[..b],
        (None, None) => line,
    }
}

fn split_operands(s: &str) -> Vec<String> {
    // Split on commas not inside brackets.
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn get(ops: &[String], i: usize, line: usize) -> Result<&str, SimError> {
    ops.get(i).map(|s| s.as_str()).ok_or_else(|| err(line, format!("missing operand {i}")))
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, SimError> {
    match s {
        "s32" | "i32" => Ok(Ty::I32),
        "u32" | "b32" => Ok(Ty::U32),
        "s64" | "i64" => Ok(Ty::I64),
        "u64" | "b64" => Ok(Ty::U64),
        "f32" => Ok(Ty::F32),
        "f64" => Ok(Ty::F64),
        other => Err(err(line, format!("unknown type `{other}`"))),
    }
}

fn one_ty(dots: &[&str], line: usize) -> Result<Ty, SimError> {
    if dots.len() != 2 {
        return Err(err(line, format!("`{}` needs exactly one type suffix", dots[0])));
    }
    parse_ty(dots[1], line)
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn parse_cmp(s: &str, line: usize) -> Result<CmpOp, SimError> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(err(line, format!("unknown comparison `{other}`"))),
    })
}

fn parse_space(s: &str, line: usize) -> Result<Space, SimError> {
    match s {
        "global" => Ok(Space::Global),
        "shared" => Ok(Space::Shared),
        other => Err(err(line, format!("unknown space `{other}`"))),
    }
}

fn parse_scope(s: &str, line: usize) -> Result<Scope, SimError> {
    match s {
        "cta" => Ok(Scope::Cta),
        "gpu" => Ok(Scope::Gpu),
        "sys" => Ok(Scope::Sys),
        other => Err(err(line, format!("unknown scope `{other}`"))),
    }
}

fn parse_atomop(s: &str, line: usize) -> Result<AtomOp, SimError> {
    Ok(match s {
        "add" => AtomOp::Add,
        "sub" => AtomOp::Sub,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "and" => AtomOp::And,
        "or" => AtomOp::Or,
        "xor" => AtomOp::Xor,
        "exch" => AtomOp::Exch,
        "cas" => AtomOp::Cas,
        other => return Err(err(line, format!("unknown atomic op `{other}`"))),
    })
}

fn parse_reg(s: &str, line: usize) -> Result<u16, SimError> {
    s.trim()
        .strip_prefix("%r")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected register %rN, got `{s}`")))
}

fn parse_pred(s: &str, line: usize) -> Result<u16, SimError> {
    s.trim()
        .strip_prefix("%pr")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected predicate %prN, got `{s}`")))
}

fn parse_address(s: &str, line: usize) -> Result<Address, SimError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [addr], got `{s}`")))?;
    let (base_s, off) = match inner.rfind('+') {
        Some(i) if i > 0 => {
            let off: i64 =
                inner[i + 1..].trim().parse().map_err(|_| err(line, "bad address offset"))?;
            (&inner[..i], off)
        }
        _ => (inner, 0),
    };
    let base = parse_operand(base_s.trim(), line)?;
    Ok(Address::new(base, off))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, SimError> {
    let s = s.trim();
    if s.starts_with("%pr") {
        return Err(err(line, format!("`{s}` cannot be used as a value operand")));
    }
    if let Some(n) = s.strip_prefix("%r") {
        return n.parse().map(Operand::Reg).map_err(|_| err(line, format!("bad register `{s}`")));
    }
    match s {
        "%tid.x" => return Ok(Operand::Sreg(Sreg::TidX)),
        "%ctaid.x" => return Ok(Operand::Sreg(Sreg::CtaIdX)),
        "%ntid.x" => return Ok(Operand::Sreg(Sreg::NtidX)),
        "%nctaid.x" => return Ok(Operand::Sreg(Sreg::NctaIdX)),
        "%laneid" => return Ok(Operand::Sreg(Sreg::LaneId)),
        "%warpid" => return Ok(Operand::Sreg(Sreg::WarpId)),
        "%warpsize" => return Ok(Operand::Sreg(Sreg::WarpSize)),
        _ => {}
    }
    if let Some(n) = s.strip_prefix("%p") {
        return n
            .parse()
            .map(Operand::Param)
            .map_err(|_| err(line, format!("bad parameter `{s}`")));
    }
    if s.contains('.') {
        if let Ok(f) = s.parse::<f64>() {
            return Ok(Operand::ImmF(f));
        }
    }
    if let Some(hex) = s.strip_prefix("0x") {
        if let Ok(v) = i64::from_str_radix(hex, 16) {
            return Ok(Operand::ImmI(v));
        }
    }
    s.parse::<i64>().map(Operand::ImmI).map_err(|_| err(line, format!("cannot parse operand `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::exec::{run_kernel, Arg, BlockSelection, LaunchDims};
    use crate::memory::LinearMemory;

    #[test]
    fn assembles_and_runs_a_reduction() {
        let src = r#"
            .kernel warp_sum
            .param ptr        // out
            entry:
              mov.u32  %r0, %tid.x
              shfl.down.u32 %r1, %r0, 16, 32
              add.u32  %r0, %r0, %r1
              shfl.down.u32 %r1, %r0, 8, 32
              add.u32  %r0, %r0, %r1
              shfl.down.u32 %r1, %r0, 4, 32
              add.u32  %r0, %r0, %r1
              shfl.down.u32 %r1, %r0, 2, 32
              add.u32  %r0, %r0, %r1
              shfl.down.u32 %r1, %r0, 1, 32
              add.u32  %r0, %r0, %r1
              setp.eq.u32 %pr0, %tid.x, 0
              @!%pr0 bra done
              st.global.u32 [%p0], %r0
            done:
              exit
        "#;
        let k = assemble(src).unwrap();
        assert_eq!(k.name, "warp_sum");
        assert_eq!(k.params.len(), 1);
        let mut mem = LinearMemory::new(4, "global");
        run_kernel(
            &k,
            &ArchConfig::pascal_p100(),
            LaunchDims::new(1, 32),
            &[Arg::Ptr(0)],
            &mut mem,
            BlockSelection::All,
        )
        .unwrap();
        assert_eq!(mem.read(Ty::U32, 0).unwrap(), (0..32).sum::<u64>());
    }

    #[test]
    fn parses_directives_and_addresses() {
        let src = r#"
            .kernel k
            .param ptr
            .param u32
            .smem 64
            .dsmem
              ld.shared.f32 %r0, [%r1+16]
              st.global.v4.f32 [%p0], %r2
              atom.global.gpu.add.f32 %r6, [%p0+8], %r0
              red.shared.cta.max.s32 [%r1], 42
              exit
        "#;
        let k = assemble(src).unwrap();
        assert_eq!(k.static_smem, 64);
        assert!(k.dynamic_smem);
        assert_eq!(k.params, vec![ParamKind::Ptr, ParamKind::Scalar(Ty::U32)]);
        match &k.instrs[0] {
            Instr::Ld { addr, .. } => assert_eq!(addr.offset, 16),
            other => panic!("unexpected {other:?}"),
        }
        match &k.instrs[1] {
            Instr::St { width, .. } => assert_eq!(*width, VecWidth::V4),
            other => panic!("unexpected {other:?}"),
        }
        // Vector store widens the inferred register file (r2..r5, r6).
        assert_eq!(k.num_regs, 7);
    }

    #[test]
    fn error_reports_line() {
        let src = ".kernel k\n  bogus.u32 %r0, %r1\n  exit";
        match assemble(src) {
            Err(SimError::Asm { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected asm error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_reported() {
        let src = ".kernel k\n  bra nowhere\n  exit";
        assert!(matches!(assemble(src), Err(SimError::Asm { line: 2, .. })));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let src = ".kernel k\nfoo:\nfoo:\n  exit";
        assert!(assemble(src).is_err());
    }

    #[test]
    fn register_counts_inferred() {
        let src = ".kernel k\n  mov.u32 %r7, 1\n  setp.eq.u32 %pr2, %r7, 1\n  exit";
        let k = assemble(src).unwrap();
        assert_eq!(k.num_regs, 8);
        assert_eq!(k.num_preds, 3);
    }

    #[test]
    fn float_and_hex_immediates() {
        let src = ".kernel k\n  mov.f32 %r0, 1.5\n  mov.u32 %r1, 0xff\n  exit";
        let k = assemble(src).unwrap();
        match k.instrs[0] {
            Instr::Mov { src: Operand::ImmF(f), .. } => assert_eq!(f, 1.5),
            ref other => panic!("unexpected {other:?}"),
        }
        match k.instrs[1] {
            Instr::Mov { src: Operand::ImmI(v), .. } => assert_eq!(v, 255),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cas_requires_compare() {
        let src = ".kernel k\n  atom.global.gpu.cas.u32 %r0, [%p0], %r1\n  exit";
        assert!(assemble(src).is_err());
    }

    #[test]
    fn semicolon_comments_are_stripped() {
        let src = ".kernel k ; named k\n  mov.u32 %r0, 1 ; set r0\n  exit ; done";
        let k = assemble(src).unwrap();
        assert_eq!(k.instrs.len(), 2);
    }
}
