//! Kernel container, parameter metadata and a programmatic builder.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::error::SimError;
use crate::isa::{
    Address, AtomOp, BinOp, CmpOp, Instr, Operand, PredId, RegId, Scope, ShflMode, Space,
    Ty, UnOp, VecWidth,
};

/// Kind of a kernel parameter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamKind {
    /// A device pointer (byte address into global memory).
    Ptr,
    /// A scalar value (bit pattern, interpreted by the instructions
    /// that read it).
    Scalar(Ty),
}

/// Lazily-initialized control-flow analysis slot attached to a
/// [`Kernel`].
///
/// The CFG depends only on the instruction stream, which is immutable
/// after construction, so it is computed at most once per kernel and
/// *shared by every clone*: a kernel handed to the parallel tuner's
/// worker threads is analyzed once, not once per `(arch, n, candidate)`
/// launch as the old `Cfg::build`-per-launch path did.
#[derive(Default)]
pub struct CfgCache(OnceLock<Arc<Cfg>>);

impl CfgCache {
    /// Whether the CFG has been computed yet (cache-behaviour tests).
    pub fn is_built(&self) -> bool {
        self.0.get().is_some()
    }
}

impl Clone for CfgCache {
    fn clone(&self) -> Self {
        let out = CfgCache::default();
        if let Some(cfg) = self.0.get() {
            let _ = out.0.set(Arc::clone(cfg));
        }
        out
    }
}

impl fmt::Debug for CfgCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_built() { "CfgCache(built)" } else { "CfgCache(empty)" })
    }
}

/// A compiled kernel: instructions with resolved branch targets plus
/// the static resource footprint the occupancy model needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name (diagnostics and reports).
    pub name: String,
    /// Flat instruction stream; branch targets are indices into it.
    pub instrs: Vec<Instr>,
    /// Parameter slots, in order.
    pub params: Vec<ParamKind>,
    /// Statically-declared shared memory, in bytes.
    pub static_smem: u64,
    /// Whether the kernel uses dynamically-sized shared memory
    /// (`extern __shared__`, sized at launch as in Listing 3).
    pub dynamic_smem: bool,
    /// Number of general-purpose registers used per thread.
    pub num_regs: u16,
    /// Number of predicate registers used per thread.
    pub num_preds: u16,
    /// Cached control-flow analysis (see [`Kernel::cfg`]). Not part of
    /// the kernel's serialized form.
    #[serde(skip)]
    pub cfg_cache: CfgCache,
    /// Cached predecoded µop program (see [`Kernel::uops`]). Not part
    /// of the kernel's serialized form.
    #[serde(skip)]
    pub uop_cache: crate::uop::UopCache,
    /// Cached closure-threaded compiled program (see [`Kernel::jit`]).
    /// Not part of the kernel's serialized form.
    #[serde(skip)]
    pub jit_cache: crate::jit::JitCache,
}

impl Kernel {
    /// Validate structural invariants: branch targets in range,
    /// register ids within the declared file, a terminating `exit`
    /// reachable at the end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKernel`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), SimError> {
        let n = self.instrs.len();
        if n == 0 {
            return Err(SimError::invalid_kernel(&self.name, "empty instruction stream"));
        }
        if !matches!(self.instrs[n - 1], Instr::Exit | Instr::Bra { .. }) {
            return Err(SimError::invalid_kernel(
                &self.name,
                "last instruction must be exit or an unconditional branch",
            ));
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Instr::Bra { target, .. } = i {
                if *target >= n {
                    return Err(SimError::invalid_kernel(
                        &self.name,
                        format!("branch at {pc} targets out-of-range index {target}"),
                    ));
                }
            }
            let check_reg = |r: RegId| -> Result<(), SimError> {
                if r >= self.num_regs {
                    Err(SimError::invalid_kernel(
                        &self.name,
                        format!("instruction {pc} uses %r{r} >= declared {}", self.num_regs),
                    ))
                } else {
                    Ok(())
                }
            };
            for r in i.defined_regs().into_iter().chain(i.used_regs()) {
                check_reg(r)?;
            }
            for p in i.used_preds() {
                if p >= self.num_preds {
                    return Err(SimError::invalid_kernel(
                        &self.name,
                        format!("instruction {pc} uses %pr{p} >= declared {}", self.num_preds),
                    ));
                }
            }
            for op in i.operands() {
                if let Operand::Param(idx) = op {
                    if idx as usize >= self.params.len() {
                        return Err(SimError::invalid_kernel(
                            &self.name,
                            format!("instruction {pc} reads undeclared param %p{idx}"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total shared memory for a launch with `dynamic` extra bytes.
    pub fn smem_bytes(&self, dynamic: u64) -> u64 {
        self.static_smem + if self.dynamic_smem { dynamic } else { 0 }
    }

    /// The kernel's control-flow graph and IPDOM reconvergence table,
    /// computed on first use and shared by every clone of this kernel
    /// (cheap to call from then on — the interpreter calls this once
    /// per launch instead of rebuilding the CFG).
    pub fn cfg(&self) -> &Cfg {
        self.cfg_cache.0.get_or_init(|| Arc::new(Cfg::build(self)))
    }

    /// The kernel's predecoded µop program (see [`crate::uop`]),
    /// decoded on first use and shared by every clone of this kernel —
    /// the interpreter's predecoded fast path fetches this once per
    /// launch.
    pub fn uops(&self) -> &crate::uop::UopProgram {
        self.uop_cache.get_or_decode(self)
    }

    /// The kernel's closure-threaded compiled program (see
    /// [`crate::jit`]), built on first use and shared by every clone
    /// of this kernel. The program is architecture-independent, so one
    /// compilation serves every `(arch, exec-config)` the kernel runs
    /// under.
    pub fn jit(&self) -> &crate::jit::JitProgram {
        self.jit_cache.get_or_compile(self)
    }
}

impl fmt::Display for Kernel {
    /// Renders the kernel in the [`crate::asm`] text format; the
    /// output re-assembles to an equivalent kernel (round-trip
    /// covered by tests).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {}", self.name)?;
        for p in &self.params {
            match p {
                ParamKind::Ptr => writeln!(f, ".param ptr")?,
                ParamKind::Scalar(t) => writeln!(f, ".param {t}")?,
            }
        }
        if self.static_smem > 0 {
            writeln!(f, ".smem {}", self.static_smem)?;
        }
        if self.dynamic_smem {
            writeln!(f, ".dsmem")?;
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "L{pc}: {i}")?;
        }
        Ok(())
    }
}

impl Instr {
    /// Registers written by this instruction.
    pub fn defined_regs(&self) -> Vec<RegId> {
        match self {
            Instr::Mov { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Mad { dst, .. }
            | Instr::Cvt { dst, .. }
            | Instr::Selp { dst, .. }
            | Instr::Shfl { dst, .. } => vec![*dst],
            Instr::Ld { dst, width, .. } => {
                (0..width.lanes()).map(|k| dst + k).collect()
            }
            Instr::Atom { dst, .. } => dst.map(|d| vec![d]).unwrap_or_default(),
            _ => vec![],
        }
    }

    /// Registers read by this instruction (operand registers plus the
    /// source registers of stores and vector stores).
    pub fn used_regs(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        for op in self.operands() {
            if let Operand::Reg(r) = op {
                out.push(r);
            }
        }
        if let Instr::St { src, width, .. } = self {
            out.extend((0..width.lanes()).map(|k| src + k));
        }
        out
    }

    /// Predicate registers read by this instruction.
    pub fn used_preds(&self) -> Vec<PredId> {
        let mut out = Vec::new();
        match self {
            Instr::Selp { pred, .. } => out.push(*pred),
            Instr::Plop { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::Bra { pred: Some((p, _)), .. } => out.push(*p),
            _ => {}
        }
        out
    }

    /// All value operands of this instruction (not including store
    /// sources, which are plain registers, or address components,
    /// which are included).
    pub fn operands(&self) -> Vec<Operand> {
        let mut out = Vec::new();
        let addr = |a: &Address, out: &mut Vec<Operand>| out.push(a.base);
        match self {
            Instr::Mov { src, .. } | Instr::Un { src, .. } | Instr::Cvt { src, .. } => {
                out.push(*src)
            }
            Instr::Bin { a, b, .. } | Instr::Setp { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::Mad { a, b, c, .. } => {
                out.push(*a);
                out.push(*b);
                out.push(*c);
            }
            Instr::Selp { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::Ld { addr: ad, .. } => addr(ad, &mut out),
            Instr::St { addr: ad, .. } => addr(ad, &mut out),
            Instr::Atom { addr: ad, src, cmp, .. } => {
                addr(ad, &mut out);
                out.push(*src);
                if let Some(c) = cmp {
                    out.push(*c);
                }
            }
            Instr::Shfl { src, lane, .. } => {
                out.push(*src);
                out.push(*lane);
            }
            Instr::Plop { .. } | Instr::Bar | Instr::Bra { .. } | Instr::Exit => {}
        }
        out
    }
}

/// A forward-referencing label handle issued by [`KernelBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Programmatic kernel builder with label patching and automatic
/// register accounting. Used by the code generator and by the
/// hand-written baselines.
///
/// # Examples
///
/// ```
/// use gpu_sim::kernel::KernelBuilder;
/// use gpu_sim::isa::{BinOp, Operand, Sreg, Ty};
///
/// let mut b = KernelBuilder::new("triple");
/// let t = b.reg();
/// b.mov(Ty::U32, t, Operand::Sreg(Sreg::TidX));
/// b.bin(BinOp::Mul, Ty::U32, t, Operand::Reg(t), Operand::ImmI(3));
/// b.exit();
/// let k = b.finish().unwrap();
/// assert_eq!(k.name, "triple");
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    params: Vec<ParamKind>,
    static_smem: u64,
    dynamic_smem: bool,
    next_reg: RegId,
    next_pred: PredId,
    labels: Vec<Option<usize>>,
    pending: HashMap<usize, Label>,
}

impl KernelBuilder {
    /// Start building a kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            params: Vec::new(),
            static_smem: 0,
            dynamic_smem: false,
            next_reg: 0,
            next_pred: 0,
            labels: Vec::new(),
            pending: HashMap::new(),
        }
    }

    /// Declare the next parameter slot; returns its index.
    pub fn param(&mut self, kind: ParamKind) -> u16 {
        self.params.push(kind);
        (self.params.len() - 1) as u16
    }

    /// Declare a pointer parameter.
    pub fn param_ptr(&mut self) -> u16 {
        self.param(ParamKind::Ptr)
    }

    /// Declare a scalar parameter of type `ty`.
    pub fn param_scalar(&mut self, ty: Ty) -> u16 {
        self.param(ParamKind::Scalar(ty))
    }

    /// Reserve `bytes` of statically-allocated shared memory; returns
    /// the byte offset of the allocation.
    pub fn smem_alloc(&mut self, bytes: u64) -> u64 {
        // Keep 8-byte alignment so mixed-width arrays never straddle.
        let off = (self.static_smem + 7) & !7;
        self.static_smem = off + bytes;
        off
    }

    /// Mark the kernel as using dynamically-sized shared memory,
    /// starting after the static allocations; returns the byte offset
    /// where the dynamic region begins.
    pub fn smem_dynamic(&mut self) -> u64 {
        self.dynamic_smem = true;
        (self.static_smem + 7) & !7
    }

    /// Allocate a fresh general-purpose register.
    pub fn reg(&mut self) -> RegId {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Allocate `n` consecutive registers (for vector loads); returns
    /// the first.
    pub fn reg_vec(&mut self, n: u16) -> RegId {
        let r = self.next_reg;
        self.next_reg += n;
        r
    }

    /// Allocate a fresh predicate register.
    pub fn pred(&mut self) -> PredId {
        let p = self.next_pred;
        self.next_pred += 1;
        p
    }

    /// Create a label to be placed later with [`KernelBuilder::place`].
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Place `label` at the current instruction position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    // ---- convenience emitters -------------------------------------

    /// Emit `mov`.
    pub fn mov(&mut self, ty: Ty, dst: RegId, src: Operand) {
        self.push(Instr::Mov { ty, dst, src });
    }

    /// Emit a binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Ty, dst: RegId, a: Operand, b: Operand) {
        self.push(Instr::Bin { op, ty, dst, a, b });
    }

    /// Emit a unary operation.
    pub fn un(&mut self, op: UnOp, ty: Ty, dst: RegId, src: Operand) {
        self.push(Instr::Un { op, ty, dst, src });
    }

    /// Emit `mad` (`dst = a*b + c`).
    pub fn mad(&mut self, ty: Ty, dst: RegId, a: Operand, b: Operand, c: Operand) {
        self.push(Instr::Mad { ty, dst, a, b, c });
    }

    /// Emit `cvt`.
    pub fn cvt(&mut self, from: Ty, to: Ty, dst: RegId, src: Operand) {
        self.push(Instr::Cvt { from, to, dst, src });
    }

    /// Emit `setp`.
    pub fn setp(&mut self, op: CmpOp, ty: Ty, dst: PredId, a: Operand, b: Operand) {
        self.push(Instr::Setp { op, ty, dst, a, b });
    }

    /// Emit `selp`.
    pub fn selp(&mut self, ty: Ty, dst: RegId, a: Operand, b: Operand, pred: PredId) {
        self.push(Instr::Selp { ty, dst, a, b, pred });
    }

    /// Emit a scalar load.
    pub fn ld(&mut self, space: Space, ty: Ty, dst: RegId, addr: Address) {
        self.push(Instr::Ld { space, ty, dst, addr, width: VecWidth::V1 });
    }

    /// Emit a vector load into consecutive registers starting at `dst`.
    pub fn ld_vec(&mut self, space: Space, ty: Ty, dst: RegId, addr: Address, width: VecWidth) {
        self.push(Instr::Ld { space, ty, dst, addr, width });
    }

    /// Emit a scalar store.
    pub fn st(&mut self, space: Space, ty: Ty, src: RegId, addr: Address) {
        self.push(Instr::St { space, ty, src, addr, width: VecWidth::V1 });
    }

    /// Emit an atomic read-modify-write without a return value (`red`).
    pub fn red(&mut self, space: Space, scope: Scope, op: AtomOp, ty: Ty, addr: Address, src: Operand) {
        self.push(Instr::Atom { space, scope, op, ty, dst: None, addr, src, cmp: None });
    }

    /// Emit an atomic read-modify-write returning the old value.
    #[allow(clippy::too_many_arguments)]
    pub fn atom(
        &mut self,
        space: Space,
        scope: Scope,
        op: AtomOp,
        ty: Ty,
        dst: RegId,
        addr: Address,
        src: Operand,
    ) {
        self.push(Instr::Atom { space, scope, op, ty, dst: Some(dst), addr, src, cmp: None });
    }

    /// Emit a warp shuffle.
    #[allow(clippy::too_many_arguments)]
    pub fn shfl(
        &mut self,
        mode: ShflMode,
        ty: Ty,
        dst: RegId,
        src: Operand,
        lane: Operand,
        width: u32,
    ) {
        self.push(Instr::Shfl { mode, ty, dst, src, lane, width, pred_out: None });
    }

    /// Emit a barrier.
    pub fn bar(&mut self) {
        self.push(Instr::Bar);
    }

    /// Emit an unconditional branch to `label`.
    pub fn bra(&mut self, label: Label) {
        self.pending.insert(self.instrs.len(), label);
        self.push(Instr::Bra { pred: None, target: usize::MAX });
    }

    /// Emit a branch taken when `p` has value `when`.
    pub fn bra_if(&mut self, p: PredId, when: bool, label: Label) {
        self.pending.insert(self.instrs.len(), label);
        self.push(Instr::Bra { pred: Some((p, when)), target: usize::MAX });
    }

    /// Emit `exit`.
    pub fn exit(&mut self) {
        self.push(Instr::Exit);
    }

    /// Resolve labels and produce the validated [`Kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidKernel`] when a label was never
    /// placed or the kernel fails [`Kernel::validate`].
    pub fn finish(mut self) -> Result<Kernel, SimError> {
        for (pc, label) in &self.pending {
            let Some(target) = self.labels[label.0] else {
                return Err(SimError::invalid_kernel(
                    &self.name,
                    format!("label {} used at {} but never placed", label.0, pc),
                ));
            };
            if let Instr::Bra { target: t, .. } = &mut self.instrs[*pc] {
                *t = target;
            }
        }
        let kernel = Kernel {
            name: self.name,
            instrs: self.instrs,
            params: self.params,
            static_smem: self.static_smem,
            dynamic_smem: self.dynamic_smem,
            num_regs: self.next_reg,
            num_preds: self.next_pred,
            cfg_cache: CfgCache::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_labels() {
        let mut b = KernelBuilder::new("loop");
        let i = b.reg();
        let p = b.pred();
        b.mov(Ty::U32, i, Operand::ImmI(0));
        let top = b.label();
        b.place(top);
        b.bin(BinOp::Add, Ty::U32, i, Operand::Reg(i), Operand::ImmI(1));
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Reg(i), Operand::ImmI(10));
        b.bra_if(p, true, top);
        b.exit();
        let k = b.finish().unwrap();
        match k.instrs[3] {
            Instr::Bra { target, .. } => assert_eq!(target, 1),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn unplaced_label_is_error() {
        let mut b = KernelBuilder::new("bad");
        let l = b.label();
        b.bra(l);
        b.exit();
        assert!(b.finish().is_err());
    }

    #[test]
    fn validate_rejects_oob_branch() {
        let k = Kernel {
            name: "k".into(),
            instrs: vec![Instr::Bra { pred: None, target: 99 }, Instr::Exit],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 0,
            num_preds: 0,
            cfg_cache: CfgCache::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_rejects_oob_register() {
        let k = Kernel {
            name: "k".into(),
            instrs: vec![
                Instr::Mov { ty: Ty::U32, dst: 5, src: Operand::ImmI(1) },
                Instr::Exit,
            ],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 1,
            num_preds: 0,
            cfg_cache: CfgCache::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn validate_requires_terminator() {
        let k = Kernel {
            name: "k".into(),
            instrs: vec![Instr::Bar],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 0,
            num_preds: 0,
            cfg_cache: CfgCache::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn cfg_is_cached_and_shared_across_clones() {
        let mut b = KernelBuilder::new("c");
        b.exit();
        let k = b.finish().unwrap();
        assert!(!k.cfg_cache.is_built());
        assert_eq!(k.cfg().blocks.len(), 1);
        assert!(k.cfg_cache.is_built());
        let c = k.clone();
        assert!(c.cfg_cache.is_built(), "clones must share the computed CFG");
        assert!(std::ptr::eq(k.cfg(), c.cfg()), "same Arc, not a rebuild");
    }

    #[test]
    fn smem_alloc_aligns() {
        let mut b = KernelBuilder::new("s");
        let a = b.smem_alloc(5);
        let c = b.smem_alloc(8);
        assert_eq!(a, 0);
        assert_eq!(c, 8);
    }

    #[test]
    fn param_bounds_checked() {
        let k = Kernel {
            name: "k".into(),
            instrs: vec![
                Instr::Mov { ty: Ty::U64, dst: 0, src: Operand::Param(2) },
                Instr::Exit,
            ],
            params: vec![ParamKind::Ptr],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 1,
            num_preds: 0,
            cfg_cache: CfgCache::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        assert!(k.validate().is_err());
    }
}
