//! Deterministic Fx-style hashing for interpreter hot paths.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed with
//! per-process random state and costs tens of cycles per `u64` key.
//! Both properties are wrong for the interpreter's per-address atomic
//! chain trackers, which hash on every atomic lane and must behave
//! identically across runs and across the parallel tuner's worker
//! threads. This module vendors the classic "Fx" multiply-xor hasher
//! (as used by Firefox and rustc) with a fixed seed: fast on small
//! integer keys and fully deterministic.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived multiplier (the 64-bit Fx constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx multiply-xor hasher with a fixed (non-random) seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hash a byte string with the fixed-seed Fx hasher.
///
/// This is the repo's content-hash primitive: because the seed is a
/// compile-time constant, the digest of a given byte string is stable
/// across processes, threads, and runs — suitable for on-disk record
/// checksums and corpus fingerprints (`tangram::store`), unlike
/// `std`'s randomly-keyed SipHash. It is *not* cryptographic; it
/// detects corruption (torn writes, bit flips), not adversaries.
#[must_use]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    // Mix in the length so `"ab" + "c"` and `"a" + "bc"` style
    // prefix/suffix rearrangements cannot collide trivially with the
    // zero-padded tail chunk.
    h.write_u64(bytes.len() as u64);
    h.write(bytes);
    h.finish()
}

/// [`fx_hash_bytes`] of a string, as a fixed-width lowercase hex
/// digest (the on-disk spelling used by record checksums).
#[must_use]
pub fn fx_hash_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fx_hash_bytes(bytes))
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` using the deterministic Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn hashes_are_stable_across_instances() {
        assert_eq!(hash_u64(0xdead_beef), hash_u64(0xdead_beef));
        assert_ne!(hash_u64(1), hash_u64(2));
    }

    #[test]
    fn byte_writes_match_word_writes_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_hash_is_stable_and_length_aware() {
        // Stable across calls (fixed seed — this exact value is what
        // on-disk checksums depend on being reproducible).
        assert_eq!(fx_hash_bytes(b"tangram"), fx_hash_bytes(b"tangram"));
        assert_ne!(fx_hash_bytes(b"tangram"), fx_hash_bytes(b"tangran"));
        // Zero-padded tail chunks must not collide with explicit
        // trailing zero bytes.
        assert_ne!(fx_hash_bytes(b"abc"), fx_hash_bytes(b"abc\0"));
        assert_eq!(fx_hash_hex(b""), format!("{:016x}", fx_hash_bytes(b"")));
        assert_eq!(fx_hash_hex(b"x").len(), 16);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            *m.entry(i % 37).or_insert(0) += 1;
        }
        assert_eq!(m.values().copied().max(), Some(28));
        assert_eq!(m.len(), 37);
    }
}
