//! Memory system: global (device) memory, per-block shared memory,
//! and the warp-level access analyses (coalescing, bank conflicts)
//! the timing model consumes.

use crate::error::SimError;
use crate::isa::Ty;

/// Width of a DRAM transaction segment in bytes (the 128-byte cache
/// line coalescing granularity of the modelled architectures).
pub const TRANSACTION_BYTES: u64 = 128;

/// Number of shared-memory banks (32 × 4-byte banks on all three
/// modelled generations).
pub const SMEM_BANKS: u64 = 32;

/// Byte-addressed linear memory with typed accessors and bounds
/// checking. Used for both global memory and per-block shared memory.
#[derive(Debug, Clone)]
pub struct LinearMemory {
    bytes: Vec<u8>,
    space: &'static str,
}

impl LinearMemory {
    /// Create a zero-initialized memory of `size` bytes labelled
    /// `space` for diagnostics.
    pub fn new(size: u64, space: &'static str) -> Self {
        LinearMemory { bytes: vec![0u8; size as usize], space }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Whether the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Grow to at least `size` bytes (new bytes zeroed).
    pub fn grow(&mut self, size: u64) {
        if size as usize > self.bytes.len() {
            self.bytes.resize(size as usize, 0);
        }
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), SimError> {
        if addr.checked_add(size).map(|end| end as usize <= self.bytes.len()) != Some(true) {
            return Err(SimError::MemoryFault {
                space: self.space,
                addr,
                size,
                capacity: self.bytes.len() as u64,
            });
        }
        Ok(())
    }

    /// Read a raw value of type `ty` at byte address `addr`, returned
    /// bit-extended into a `u64` register image.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] on out-of-bounds access.
    pub fn read(&self, ty: Ty, addr: u64) -> Result<u64, SimError> {
        let size = ty.size();
        self.check(addr, size)?;
        let a = addr as usize;
        Ok(match size {
            4 => u64::from(u32::from_le_bytes(self.bytes[a..a + 4].try_into().unwrap())),
            _ => u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap()),
        })
    }

    /// Write the low `ty.size()` bytes of `raw` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] on out-of-bounds access.
    pub fn write(&mut self, ty: Ty, addr: u64, raw: u64) -> Result<(), SimError> {
        let size = ty.size();
        self.check(addr, size)?;
        let a = addr as usize;
        match size {
            4 => self.bytes[a..a + 4].copy_from_slice(&(raw as u32).to_le_bytes()),
            _ => self.bytes[a..a + 8].copy_from_slice(&raw.to_le_bytes()),
        }
        Ok(())
    }

    /// Copy a byte slice into memory at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] on out-of-bounds access.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), SimError> {
        self.check(addr, data.len() as u64)?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copy `len` bytes out of memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] on out-of-bounds access.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, SimError> {
        self.check(addr, len)?;
        Ok(self.bytes[addr as usize..(addr + len) as usize].to_vec())
    }

    /// Borrow `len` raw bytes at `addr`, or `None` when out of bounds.
    /// Used by the compiled tier's whole-warp contiguous transfers.
    pub(crate) fn slice_at(&self, addr: u64, len: u64) -> Option<&[u8]> {
        let end = addr.checked_add(len)?;
        self.bytes.get(addr as usize..end as usize)
    }

    /// Mutable twin of [`LinearMemory::slice_at`].
    pub(crate) fn slice_at_mut(&mut self, addr: u64, len: u64) -> Option<&mut [u8]> {
        let end = addr.checked_add(len)?;
        self.bytes.get_mut(addr as usize..end as usize)
    }

    /// Zero the whole memory (shared memory reuse between blocks).
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }

    /// Flip one bit (fault injection). `bit_index` is reduced modulo
    /// the capacity in bits; returns the `(byte address, bit)` actually
    /// flipped, or `None` when the memory is empty.
    pub fn flip_bit(&mut self, bit_index: u64) -> Option<(u64, u8)> {
        if self.bytes.is_empty() {
            return None;
        }
        let b = bit_index % (self.bytes.len() as u64 * 8);
        let (addr, bit) = (b / 8, (b % 8) as u8);
        self.bytes[addr as usize] ^= 1 << bit;
        Some((addr, bit))
    }
}

/// Largest warp handled by the allocation-free fast paths below. The
/// modelled architectures all have 32 lanes; the slow path only exists
/// so the public functions stay correct for arbitrary inputs.
const MAX_WARP_ACCESSES: usize = 64;

/// Number of 128-byte segments touched by a warp's set of per-lane
/// byte accesses — the coalescing model. `accesses` holds
/// `(address, size)` pairs for the *active* lanes.
///
/// This runs once per warp load/store issue, so the common case
/// (a full warp of lanes or fewer) works on a stack array: each access
/// is a contiguous segment interval, and the union of sorted intervals
/// counts distinct segments without materializing them.
pub fn coalesced_transactions(accesses: &[(u64, u64)]) -> u64 {
    if accesses.len() > MAX_WARP_ACCESSES {
        return coalesced_transactions_slow(accesses);
    }
    let mut ranges = [(0u64, 0u64); MAX_WARP_ACCESSES];
    for (slot, &(addr, size)) in ranges.iter_mut().zip(accesses) {
        let first = addr / TRANSACTION_BYTES;
        let last = (addr + size.max(1) - 1) / TRANSACTION_BYTES;
        *slot = (first, last);
    }
    let ranges = &mut ranges[..accesses.len()];
    ranges.sort_unstable();
    let mut count = 0u64;
    let mut covered_to = u64::MAX; // highest segment counted so far
    for &(first, last) in ranges.iter() {
        if covered_to != u64::MAX && first <= covered_to {
            if last > covered_to {
                count += last - covered_to;
                covered_to = last;
            }
        } else {
            count += last - first + 1;
            covered_to = last;
        }
    }
    count
}

fn coalesced_transactions_slow(accesses: &[(u64, u64)]) -> u64 {
    let mut segs: Vec<u64> = accesses
        .iter()
        .flat_map(|&(addr, size)| {
            let first = addr / TRANSACTION_BYTES;
            let last = (addr + size.max(1) - 1) / TRANSACTION_BYTES;
            first..=last
        })
        .collect();
    segs.sort_unstable();
    segs.dedup();
    segs.len() as u64
}

/// Shared-memory bank-conflict degree for a warp access: the maximum
/// number of *distinct* 4-byte words mapped to the same bank. Degree
/// 1 means conflict-free; broadcasts (same word) do not conflict.
///
/// Like [`coalesced_transactions`], the per-warp case runs on stack
/// arrays: sort the word indices, then count distinct words per bank.
pub fn bank_conflict_degree(addresses: &[u64]) -> u64 {
    if addresses.len() > MAX_WARP_ACCESSES {
        return bank_conflict_degree_slow(addresses);
    }
    let mut words = [0u64; MAX_WARP_ACCESSES];
    for (slot, &a) in words.iter_mut().zip(addresses) {
        *slot = a / 4;
    }
    let words = &mut words[..addresses.len()];
    words.sort_unstable();
    let mut per_bank = [0u64; SMEM_BANKS as usize];
    let mut degree = 1u64;
    let mut prev = u64::MAX;
    for &word in words.iter() {
        if word == prev {
            continue; // broadcast: same word, no extra conflict
        }
        prev = word;
        let bank = (word % SMEM_BANKS) as usize;
        per_bank[bank] += 1;
        degree = degree.max(per_bank[bank]);
    }
    degree
}

fn bank_conflict_degree_slow(addresses: &[u64]) -> u64 {
    let mut per_bank: std::collections::HashMap<u64, Vec<u64>> = std::collections::HashMap::new();
    for &a in addresses {
        let word = a / 4;
        let bank = word % SMEM_BANKS;
        let words = per_bank.entry(bank).or_default();
        if !words.contains(&word) {
            words.push(word);
        }
    }
    per_bank.values().map(|w| w.len() as u64).max().unwrap_or(1).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = LinearMemory::new(64, "global");
        m.write(Ty::F32, 8, f32::to_bits(1.25) as u64).unwrap();
        let raw = m.read(Ty::F32, 8).unwrap();
        assert_eq!(f32::from_bits(raw as u32), 1.25);
        m.write(Ty::U64, 16, 0xdead_beef_cafe).unwrap();
        assert_eq!(m.read(Ty::U64, 16).unwrap(), 0xdead_beef_cafe);
    }

    #[test]
    fn oob_faults() {
        let m = LinearMemory::new(8, "shared");
        assert!(m.read(Ty::F32, 6).is_err());
        assert!(m.read(Ty::F32, 4).is_ok());
        let err = m.read(Ty::U64, 8).unwrap_err();
        match err {
            SimError::MemoryFault { space, .. } => assert_eq!(space, "shared"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn grow_preserves_and_zeroes() {
        let mut m = LinearMemory::new(4, "global");
        m.write(Ty::U32, 0, 7).unwrap();
        m.grow(16);
        assert_eq!(m.read(Ty::U32, 0).unwrap(), 7);
        assert_eq!(m.read(Ty::U32, 12).unwrap(), 0);
    }

    #[test]
    fn flip_bit_toggles_and_wraps() {
        let mut m = LinearMemory::new(4, "global");
        m.write(Ty::U32, 0, 0).unwrap();
        assert_eq!(m.flip_bit(1), Some((0, 1)));
        assert_eq!(m.read(Ty::U32, 0).unwrap(), 2);
        // Out-of-range index wraps modulo 32 bits.
        assert_eq!(m.flip_bit(33), Some((0, 1)));
        assert_eq!(m.read(Ty::U32, 0).unwrap(), 0);
        let mut empty = LinearMemory::new(0, "shared");
        assert_eq!(empty.flip_bit(5), None);
    }

    #[test]
    fn fully_coalesced_is_one_transaction() {
        // 32 lanes × 4B contiguous from a 128-aligned base = 1 segment.
        let acc: Vec<(u64, u64)> = (0..32).map(|i| (i * 4, 4)).collect();
        assert_eq!(coalesced_transactions(&acc), 1);
    }

    #[test]
    fn strided_access_spreads_transactions() {
        // 32 lanes × 4B with a 128-byte stride = 32 segments.
        let acc: Vec<(u64, u64)> = (0..32).map(|i| (i * 128, 4)).collect();
        assert_eq!(coalesced_transactions(&acc), 32);
    }

    #[test]
    fn misaligned_contiguous_takes_two() {
        let acc: Vec<(u64, u64)> = (0..32).map(|i| (64 + i * 4, 4)).collect();
        assert_eq!(coalesced_transactions(&acc), 2);
    }

    #[test]
    fn vector_loads_coalesce() {
        // 32 lanes × 16B contiguous = 512B = 4 segments.
        let acc: Vec<(u64, u64)> = (0..32).map(|i| (i * 16, 16)).collect();
        assert_eq!(coalesced_transactions(&acc), 4);
    }

    #[test]
    fn bank_conflicts() {
        // Conflict-free: consecutive words.
        let a: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(bank_conflict_degree(&a), 1);
        // 2-way: stride of 2 words.
        let b: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(bank_conflict_degree(&b), 2);
        // Broadcast: all lanes read the same word — no conflict.
        let c: Vec<u64> = (0..32).map(|_| 4).collect();
        assert_eq!(bank_conflict_degree(&c), 1);
        // 32-way: stride of 32 words.
        let d: Vec<u64> = (0..32).map(|i| i * 32 * 4).collect();
        assert_eq!(bank_conflict_degree(&d), 32);
    }

    #[test]
    fn empty_access_is_free() {
        assert_eq!(coalesced_transactions(&[]), 0);
        assert_eq!(bank_conflict_degree(&[]), 1);
    }

    #[test]
    fn overlapping_wide_accesses_count_distinct_segments() {
        // Two 128-byte accesses overlapping by half: segments {0,1}.
        assert_eq!(coalesced_transactions(&[(0, 128), (64, 128)]), 2);
        // Duplicate accesses collapse to one segment.
        assert_eq!(coalesced_transactions(&[(4, 4), (4, 4), (8, 4)]), 1);
        // A wide access nested inside a wider one adds nothing.
        assert_eq!(coalesced_transactions(&[(0, 512), (128, 128)]), 4);
    }

    /// Inputs beyond MAX_WARP_ACCESSES take the heap path; results
    /// must agree with the stack path's semantics.
    #[test]
    fn oversized_inputs_use_the_slow_path_consistently() {
        let acc: Vec<(u64, u64)> = (0..100).map(|i| (i * 128, 4)).collect();
        assert_eq!(coalesced_transactions(&acc), 100);
        // 100 distinct words, all on bank 0 (stride of 32 words).
        let addrs: Vec<u64> = (0..100).map(|i| i * 128).collect();
        assert_eq!(bank_conflict_degree(&addrs), 100);
    }
}
