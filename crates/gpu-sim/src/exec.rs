//! The functional SIMT interpreter.
//!
//! Warps execute in lock-step over the flat instruction stream with a
//! divergence stack that reconverges at immediate postdominators (see
//! [`crate::cfg`]). Blocks are executed one at a time (functional
//! behaviour does not depend on inter-block interleaving because the
//! only inter-block communication in the modelled workloads is via
//! atomics, which are linearizable under any serialization).
//!
//! While executing, the interpreter gathers the [`LaunchStats`] the
//! timing model needs: per-class instruction counts, coalescing
//! transactions, bank conflicts, atomic contention chains and
//! divergence counters.

use crate::arch::ArchConfig;
use crate::cfg::Cfg;
use crate::error::{SimError, TrapKind};
use crate::fault::{FaultKind, FaultSession, PendingFault};
use crate::hash::FxHashMap;
use crate::isa::{
    Address, AtomOp, BinOp, CmpOp, Instr, Operand, ShflMode, Space, Sreg, Ty, UnOp,
};
use crate::kernel::{Kernel, ParamKind};
use crate::memory::{bank_conflict_degree, coalesced_transactions, LinearMemory};
use crate::profile::LaunchProfile;
use crate::sanitize::{AccessKind, LaunchSanitizer};
use crate::stats::LaunchStats;

/// Maximum lanes per warp the interpreter's stack-allocated per-issue
/// buffers accommodate (active masks are `u32`, so this is a hard
/// architectural bound, not a tunable).
pub(crate) const MAX_LANES: usize = 32;

/// Default per-block dynamic instruction budget (runaway-loop guard).
pub const DEFAULT_BUDGET: u64 = 1 << 33;

/// A launch configuration (1-D grid and block, as in the paper's
/// kernels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchDims {
    /// Number of thread blocks.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Dynamic shared memory bytes (Listing 3's `extern __shared__`).
    pub dynamic_smem: u64,
}

impl LaunchDims {
    /// A launch of `grid` blocks of `block` threads with no dynamic
    /// shared memory.
    pub fn new(grid: u32, block: u32) -> Self {
        LaunchDims { grid, block, dynamic_smem: 0 }
    }

    /// Set the dynamic shared memory size.
    pub fn with_dynamic_smem(mut self, bytes: u64) -> Self {
        self.dynamic_smem = bytes;
        self
    }
}

/// A kernel argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Device pointer (byte address in global memory).
    Ptr(u64),
    /// 32-bit signed integer.
    I32(i32),
    /// 32-bit unsigned integer.
    U32(u32),
    /// 64-bit unsigned integer.
    U64(u64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Arg {
    /// Raw 64-bit register image of the argument.
    pub fn raw(self) -> u64 {
        match self {
            Arg::Ptr(p) => p,
            Arg::I32(v) => v as u32 as u64,
            Arg::U32(v) => u64::from(v),
            Arg::U64(v) => v,
            Arg::F32(v) => u64::from(v.to_bits()),
            Arg::F64(v) => v.to_bits(),
        }
    }

    fn matches(self, kind: ParamKind) -> bool {
        matches!(
            (self, kind),
            (Arg::Ptr(_), ParamKind::Ptr)
                | (Arg::I32(_), ParamKind::Scalar(Ty::I32))
                | (Arg::U32(_), ParamKind::Scalar(Ty::U32))
                | (Arg::U64(_), ParamKind::Scalar(Ty::U64 | Ty::I64))
                | (Arg::F32(_), ParamKind::Scalar(Ty::F32))
                | (Arg::F64(_), ParamKind::Scalar(Ty::F64))
        )
    }
}

/// Which blocks of a launch to execute functionally.
///
/// `All` gives exact results. `Sample` executes only representative
/// blocks and scales the statistics to the full grid — used by the
/// figure harness for the paper's largest arrays (up to 256M
/// elements), where full functional simulation would be prohibitive.
/// Homogeneous reduction grids make this accurate: every block except
/// the boundary block executes identical work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSelection {
    /// Execute every block (exact memory state and stats).
    All,
    /// Execute ~`max_blocks` representative blocks (always including
    /// the first and last) and scale stats to the full grid.
    Sample {
        /// Upper bound on functionally-executed blocks.
        max_blocks: u32,
    },
}

/// Outcome of a kernel execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Gathered (possibly scaled) statistics.
    pub stats: LaunchStats,
    /// Whether every block was executed (memory state is exact).
    pub exact: bool,
}

pub(crate) const RECONV_NONE: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct StackEntry {
    pub(crate) reconv: usize,
    pub(crate) pc: usize,
    pub(crate) mask: u32,
}

struct WarpExec {
    warp_id: u32,
    stack: Vec<StackEntry>,
    exited: u32,
}

pub(crate) enum WarpStop {
    Barrier,
    Done,
}

/// Per-block execution context.
///
/// Register/predicate files, shared memory and the per-address chain
/// tracker are *borrowed* from buffers owned by [`run_kernel`] and
/// reused (cleared, not reallocated) across every block of the launch.
pub(crate) struct BlockCtx<'a> {
    pub(crate) kernel: &'a Kernel,
    pub(crate) cfg: &'a Cfg,
    pub(crate) arch: &'a ArchConfig,
    pub(crate) params: &'a [u64],
    pub(crate) block_id: u32,
    pub(crate) block_dim: u32,
    pub(crate) grid_dim: u32,
    pub(crate) regs: &'a mut [u64],
    pub(crate) preds: &'a mut [bool],
    pub(crate) smem: &'a mut LinearMemory,
    pub(crate) stats: LaunchStats,
    pub(crate) budget: u64,
    /// The configured per-block budget, for accurate Timeout reports.
    pub(crate) budget_total: u64,
    /// Per-address shared atomic chains within this block.
    pub(crate) shared_chains: &'a mut FxHashMap<u64, u64>,
    /// Per-site profile shared across the launch's blocks; `None`
    /// keeps the hot paths free of profiling stores.
    pub(crate) profile: Option<&'a mut LaunchProfile>,
    /// Race-detection shadow state shared across the launch's blocks;
    /// `None` keeps the hot paths free of sanitizer stores.
    pub(crate) sanitize: Option<&'a mut LaunchSanitizer>,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn reg(&self, thread: u32, r: u16) -> u64 {
        self.regs[thread as usize * self.kernel.num_regs as usize + r as usize]
    }

    pub(crate) fn set_reg(&mut self, thread: u32, r: u16, v: u64) {
        self.regs[thread as usize * self.kernel.num_regs as usize + r as usize] = v;
    }

    pub(crate) fn pred(&self, thread: u32, p: u16) -> bool {
        self.preds[thread as usize * self.kernel.num_preds.max(1) as usize + p as usize]
    }

    pub(crate) fn set_pred(&mut self, thread: u32, p: u16, v: bool) {
        self.preds[thread as usize * self.kernel.num_preds.max(1) as usize + p as usize] = v;
    }

    fn sreg(&self, thread: u32, s: Sreg) -> u64 {
        let ws = u64::from(self.arch.warp_size);
        match s {
            Sreg::TidX => u64::from(thread),
            Sreg::CtaIdX => u64::from(self.block_id),
            Sreg::NtidX => u64::from(self.block_dim),
            Sreg::NctaIdX => u64::from(self.grid_dim),
            Sreg::LaneId => u64::from(thread) % ws,
            Sreg::WarpId => u64::from(thread) / ws,
            Sreg::WarpSize => ws,
        }
    }

    fn operand(&self, thread: u32, op: Operand, ty: Ty) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(thread, r),
            Operand::ImmI(v) => match ty {
                Ty::F32 => u64::from((v as f32).to_bits()),
                Ty::F64 => (v as f64).to_bits(),
                Ty::I32 | Ty::U32 => v as i32 as u32 as u64,
                _ => v as u64,
            },
            Operand::ImmF(v) => match ty {
                Ty::F32 => u64::from((v as f32).to_bits()),
                _ => v.to_bits(),
            },
            Operand::Sreg(s) => self.sreg(thread, s),
            Operand::Param(p) => self.params[p as usize],
        }
    }

    fn addr(&self, thread: u32, a: &Address) -> u64 {
        let base = self.operand(thread, a.base, Ty::U64);
        base.wrapping_add(a.offset as u64)
    }
}

// The float/int raw-image converters are total: callers guard on
// `ty.is_float()`, and for the off-type arms a defined identity-style
// fallback replaces what used to be an `unreachable!` — guest input
// must never be able to panic the interpreter.
pub(crate) fn to_f(ty: Ty, raw: u64) -> f64 {
    match ty {
        Ty::F32 => f64::from(f32::from_bits(raw as u32)),
        Ty::F64 => f64::from_bits(raw),
        _ => raw as f64,
    }
}

pub(crate) fn from_f(ty: Ty, v: f64) -> u64 {
    match ty {
        Ty::F32 => u64::from((v as f32).to_bits()),
        Ty::F64 => v.to_bits(),
        _ => v as u64,
    }
}

fn to_i(ty: Ty, raw: u64) -> i64 {
    match ty {
        Ty::I32 => raw as u32 as i32 as i64,
        Ty::U32 => i64::from(raw as u32),
        // F32/F64 land here only via the totality fallback; all
        // remaining types use the 64-bit image directly (comparisons
        // handle signedness).
        _ => raw as i64,
    }
}

pub(crate) fn truncate(ty: Ty, v: u64) -> u64 {
    match ty.size() {
        4 => v & 0xFFFF_FFFF,
        _ => v,
    }
}

/// Evaluate a binary op on raw register images interpreted as `ty`.
///
/// # Errors
///
/// [`TrapKind::IllegalOperandType`] for bitwise/shift ops on float
/// types (no defined semantics).
pub(crate) fn eval_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Result<u64, TrapKind> {
    if ty.is_float() {
        let (x, y) = (to_f(ty, a), to_f(ty, b));
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            _ => {
                return Err(TrapKind::IllegalOperandType {
                    detail: format!("bitwise op {op:?} on float type {ty:?}"),
                })
            }
        };
        Ok(from_f(ty, r))
    } else if ty.is_signed() {
        let (x, y) = (to_i(ty, a), to_i(ty, b));
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 { 0 } else { x.wrapping_div(y) }
            }
            BinOp::Rem => {
                if y == 0 { 0 } else { x.wrapping_rem(y) }
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        };
        Ok(truncate(ty, r as u64))
    } else {
        let (x, y) = (truncate(ty, a), truncate(ty, b));
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y).unwrap_or(0),
            BinOp::Rem => x.checked_rem(y).unwrap_or(0),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
        };
        Ok(truncate(ty, r))
    }
}

pub(crate) fn eval_cmp(op: CmpOp, ty: Ty, a: u64, b: u64) -> bool {
    use std::cmp::Ordering;
    let ord = if ty.is_float() {
        to_f(ty, a).partial_cmp(&to_f(ty, b))
    } else if ty.is_signed() {
        Some(to_i(ty, a).cmp(&to_i(ty, b)))
    } else {
        Some(truncate(ty, a).cmp(&truncate(ty, b)))
    };
    match (op, ord) {
        (_, None) => matches!(op, CmpOp::Ne), // NaN: only != holds
        (CmpOp::Eq, Some(o)) => o == Ordering::Equal,
        (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
        (CmpOp::Lt, Some(o)) => o == Ordering::Less,
        (CmpOp::Le, Some(o)) => o != Ordering::Greater,
        (CmpOp::Gt, Some(o)) => o == Ordering::Greater,
        (CmpOp::Ge, Some(o)) => o != Ordering::Less,
    }
}

pub(crate) fn eval_cvt(from: Ty, to: Ty, raw: u64) -> u64 {
    match (from.is_float(), to.is_float()) {
        (false, false) => {
            let v = if from.is_signed() { to_i(from, raw) as u64 } else { truncate(from, raw) };
            truncate(to, v)
        }
        (false, true) => {
            let v = if from.is_signed() {
                to_i(from, raw) as f64
            } else {
                truncate(from, raw) as f64
            };
            from_f(to, v)
        }
        (true, false) => {
            let v = to_f(from, raw);
            if to.is_signed() {
                truncate(to, v as i64 as u64)
            } else {
                truncate(to, v as u64)
            }
        }
        (true, true) => from_f(to, to_f(from, raw)),
    }
}

pub(crate) fn eval_atom(
    op: AtomOp,
    ty: Ty,
    old: u64,
    src: u64,
    cmp: Option<u64>,
) -> Result<u64, TrapKind> {
    match op {
        AtomOp::Add => eval_bin(BinOp::Add, ty, old, src),
        AtomOp::Sub => eval_bin(BinOp::Sub, ty, old, src),
        AtomOp::Min => eval_bin(BinOp::Min, ty, old, src),
        AtomOp::Max => eval_bin(BinOp::Max, ty, old, src),
        AtomOp::And => eval_bin(BinOp::And, ty, old, src),
        AtomOp::Or => eval_bin(BinOp::Or, ty, old, src),
        AtomOp::Xor => eval_bin(BinOp::Xor, ty, old, src),
        AtomOp::Exch => Ok(truncate(ty, src)),
        AtomOp::Cas => {
            let Some(cmp) = cmp else {
                return Err(TrapKind::CasWithoutCmp);
            };
            if truncate(ty, old) == truncate(ty, cmp) {
                Ok(truncate(ty, src))
            } else {
                Ok(truncate(ty, old))
            }
        }
    }
}

/// Which interpreter hot path executes the kernel.
///
/// All tiers are bit-identical in results, statistics and modelled
/// time (enforced by differential tests); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The predecoded µop path with warp-uniform scalarization
    /// (see [`crate::uop`]). The default.
    #[default]
    Predecoded,
    /// The original lane-wise instruction interpreter, kept as the
    /// differential-testing reference.
    Reference,
    /// The closure-threaded compiled tier (see [`crate::jit`]):
    /// the µop stream is lowered once per kernel into superinstruction
    /// closures. Launches carrying a profile, sanitizer or live fault
    /// session transparently fall back to the µop engine.
    Compiled,
}

impl ExecMode {
    /// Canonical identifier, the inverse of the [`std::str::FromStr`] parse
    /// (`uop` / `reference` / `compiled`).
    pub fn id(self) -> &'static str {
        match self {
            ExecMode::Predecoded => "uop",
            ExecMode::Reference => "reference",
            ExecMode::Compiled => "compiled",
        }
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "uop" | "predecoded" => Ok(ExecMode::Predecoded),
            "reference" | "lanewise" => Ok(ExecMode::Reference),
            "compiled" | "jit" => Ok(ExecMode::Compiled),
            other => Err(format!(
                "unknown interpreter `{other}` (accepted: uop|predecoded, \
                 reference|lanewise, compiled|jit)"
            )),
        }
    }
}

/// Per-launch execution configuration beyond the launch dims: the
/// instruction budget, an optional fault-injection session, the
/// interpreter path and an optional per-site profile.
///
/// Prefer [`ExecConfig::builder`] over filling the struct literal:
///
/// ```
/// use gpu_sim::exec::{ExecConfig, ExecMode};
///
/// let cfg = ExecConfig::builder()
///     .exec_mode(ExecMode::Reference)
///     .instr_budget(1 << 20)
///     .build();
/// assert_eq!(cfg.budget, Some(1 << 20));
/// ```
#[derive(Debug, Default)]
pub struct ExecConfig<'a> {
    /// Per-block dynamic instruction budget; `None` uses
    /// [`DEFAULT_BUDGET`].
    pub budget: Option<u64>,
    /// Fault-injection session shared across every block of the
    /// launch; `None` runs fault-free.
    pub faults: Option<&'a mut FaultSession>,
    /// Interpreter hot path ([`ExecMode::Predecoded`] by default).
    pub mode: ExecMode,
    /// Per-site profile to fill in (see [`crate::profile`]); `None`
    /// disables profiling (the zero-cost default).
    pub profile: Option<&'a mut LaunchProfile>,
    /// Race detector to feed (see [`crate::sanitize`]); `None`
    /// disables race checking (the zero-cost default).
    pub sanitize: Option<&'a mut LaunchSanitizer>,
}

impl<'a> ExecConfig<'a> {
    /// Start building an execution configuration.
    pub fn builder() -> ExecConfigBuilder<'a> {
        ExecConfigBuilder { cfg: ExecConfig::default() }
    }
}

/// Builder for [`ExecConfig`] (see [`ExecConfig::builder`]).
#[derive(Debug, Default)]
pub struct ExecConfigBuilder<'a> {
    cfg: ExecConfig<'a>,
}

impl<'a> ExecConfigBuilder<'a> {
    /// Select the interpreter hot path.
    #[must_use]
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Set the per-block dynamic instruction budget.
    #[must_use]
    pub fn instr_budget(mut self, budget: u64) -> Self {
        self.cfg.budget = Some(budget);
        self
    }

    /// Attach a fault-injection session.
    #[must_use]
    pub fn faults(mut self, session: &'a mut FaultSession) -> Self {
        self.cfg.faults = Some(session);
        self
    }

    /// Attach a per-site profile to fill in.
    #[must_use]
    pub fn profile(mut self, profile: &'a mut LaunchProfile) -> Self {
        self.cfg.profile = Some(profile);
        self
    }

    /// Attach a race detector to feed.
    #[must_use]
    pub fn sanitize(mut self, sanitizer: &'a mut LaunchSanitizer) -> Self {
        self.cfg.sanitize = Some(sanitizer);
        self
    }

    /// Finish the configuration.
    #[must_use]
    pub fn build(self) -> ExecConfig<'a> {
        self.cfg
    }
}

/// Execute `kernel` on `global` memory with the default budget and no
/// fault injection.
///
/// # Errors
///
/// Propagates [`SimError`] on validation failures, memory faults,
/// runtime traps, barrier deadlock or budget exhaustion.
pub fn run_kernel(
    kernel: &Kernel,
    arch: &ArchConfig,
    dims: LaunchDims,
    args: &[Arg],
    global: &mut LinearMemory,
    selection: BlockSelection,
) -> Result<ExecOutcome, SimError> {
    run_kernel_cfg(kernel, arch, dims, args, global, selection, ExecConfig::default())
}

/// Execute `kernel` on `global` memory under an explicit
/// [`ExecConfig`] (instruction budget, fault injection).
///
/// # Errors
///
/// Propagates [`SimError`] on validation failures, memory faults,
/// runtime traps, barrier deadlock or budget exhaustion.
pub fn run_kernel_cfg(
    kernel: &Kernel,
    arch: &ArchConfig,
    dims: LaunchDims,
    args: &[Arg],
    global: &mut LinearMemory,
    selection: BlockSelection,
    exec_cfg: ExecConfig<'_>,
) -> Result<ExecOutcome, SimError> {
    kernel.validate()?;
    if dims.grid == 0 || dims.block == 0 {
        return Err(SimError::InvalidLaunch("zero-sized grid or block".into()));
    }
    if dims.block > arch.max_threads_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "block of {} threads exceeds the architecture limit of {}",
            dims.block, arch.max_threads_per_block
        )));
    }
    if args.len() != kernel.params.len() {
        return Err(SimError::InvalidLaunch(format!(
            "kernel `{}` expects {} arguments, got {}",
            kernel.name,
            kernel.params.len(),
            args.len()
        )));
    }
    for (i, (a, k)) in args.iter().zip(&kernel.params).enumerate() {
        if !a.matches(*k) {
            return Err(SimError::InvalidLaunch(format!(
                "argument {i} of `{}` does not match declared kind {k:?}",
                kernel.name
            )));
        }
    }
    let smem_bytes = kernel.smem_bytes(dims.dynamic_smem);
    if smem_bytes > arch.smem_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "kernel `{}` needs {} bytes of shared memory, block limit is {}",
            kernel.name, smem_bytes, arch.smem_per_block
        )));
    }

    let cfg = kernel.cfg();
    let params: Vec<u64> = args.iter().map(|a| a.raw()).collect();

    // Decide which blocks to run.
    let (blocks_to_run, exact): (Vec<u32>, bool) = match selection {
        BlockSelection::All => ((0..dims.grid).collect(), true),
        BlockSelection::Sample { max_blocks } => {
            if dims.grid <= max_blocks.max(2) {
                ((0..dims.grid).collect(), true)
            } else {
                let k = max_blocks.max(2);
                let mut v: Vec<u32> = (0..k - 1)
                    .map(|i| (u64::from(i) * u64::from(dims.grid - 1) / u64::from(k - 1)) as u32)
                    .collect();
                v.push(dims.grid - 1);
                v.sort_unstable();
                v.dedup();
                (v, false)
            }
        }
    };

    let mut total = LaunchStats { block_size: dims.block, warps_per_block: dims.block.div_ceil(arch.warp_size), ..Default::default() };
    let mut global_chains: FxHashMap<u64, u64> = FxHashMap::default();
    let mut interior_stats: Option<LaunchStats> = None;

    // Buffers reused across every sampled block: allocated once per
    // launch, cleared (not reallocated) between blocks.
    let mut regs = vec![0u64; dims.block as usize * kernel.num_regs as usize];
    let mut preds = vec![false; dims.block as usize * kernel.num_preds.max(1) as usize];
    let mut smem = LinearMemory::new(smem_bytes, "shared");
    let mut shared_chains: FxHashMap<u64, u64> = FxHashMap::default();
    let mut warps: Vec<WarpExec> = Vec::new();

    let mut uop_warps: Vec<crate::uop::UopWarp> = Vec::new();
    let mut consts: Vec<u64> = Vec::new();

    let budget = exec_cfg.budget.unwrap_or(DEFAULT_BUDGET).max(1);
    // A disabled no-op session keeps the hot path branch-free when the
    // caller does not inject faults.
    let mut noop_session = FaultSession::disabled();
    let faults: &mut FaultSession = match exec_cfg.faults {
        Some(s) => s,
        None => &mut noop_session,
    };
    let mut profile = exec_cfg.profile;
    if let Some(p) = profile.as_deref_mut() {
        p.exact = exact;
    }
    let mut sanitize = exec_cfg.sanitize;
    if let Some(s) = sanitize.as_deref_mut() {
        s.exact = exact;
    }

    // Predecode / compile once per launch (both cached on the kernel
    // across launches); warp states and the per-block constant table
    // are reused across blocks like the buffers above. The compiled
    // tier carries no observation hooks, so a launch with a profile,
    // sanitizer or live fault session falls back to the µop engine —
    // results, stats and timing stay bit-identical either way.
    let jit_prog = (exec_cfg.mode == ExecMode::Compiled
        && profile.is_none()
        && sanitize.is_none()
        && !faults.is_live())
    .then(|| kernel.jit());
    let uop_prog = match exec_cfg.mode {
        ExecMode::Predecoded => Some(kernel.uops()),
        ExecMode::Compiled if jit_prog.is_none() => Some(kernel.uops()),
        _ => None,
    };

    for &block_id in &blocks_to_run {
        regs.fill(0);
        preds.fill(false);
        smem.clear();
        shared_chains.clear();
        if let Some(s) = sanitize.as_deref_mut() {
            s.begin_block(block_id);
        }
        let mut ctx = BlockCtx {
            kernel,
            cfg,
            arch,
            params: &params,
            block_id,
            block_dim: dims.block,
            grid_dim: dims.grid,
            regs: &mut regs,
            preds: &mut preds,
            smem: &mut smem,
            stats: LaunchStats::default(),
            budget,
            budget_total: budget,
            shared_chains: &mut shared_chains,
            profile: profile.as_deref_mut(),
            sanitize: sanitize.as_deref_mut(),
        };
        match (jit_prog, uop_prog) {
            (Some(prog), _) => crate::jit::run_block(
                &mut ctx,
                prog,
                global,
                &mut global_chains,
                &mut uop_warps,
                &mut consts,
            )?,
            (None, Some(prog)) => crate::uop::run_block(
                &mut ctx,
                prog,
                global,
                &mut global_chains,
                &mut uop_warps,
                faults,
                &mut consts,
            )?,
            (None, None) => run_block(&mut ctx, global, &mut global_chains, &mut warps, faults)?,
        }
        let block_chain = ctx.shared_chains.values().copied().max().unwrap_or(0);
        ctx.stats.shared_atomic_max_chain_per_block = block_chain;
        ctx.stats.blocks = 1;
        if !exact && block_id != dims.grid - 1 && block_id != 0 {
            interior_stats = Some(ctx.stats.clone());
        }
        total += &ctx.stats;
    }

    if !exact {
        // Scale: executed blocks stand in for the whole grid. Interior
        // blocks are homogeneous; use a middle block as the template
        // (falling back to block 0).
        let missing = u64::from(dims.grid) - blocks_to_run.len() as u64;
        if missing > 0 {
            let template = interior_stats.unwrap_or_else(|| {
                // Recompute a per-block average from the totals.
                let mut t = total.clone();
                let n = blocks_to_run.len() as u64;
                scale_stats(&mut t, 1.0 / n as f64);
                t
            });
            let mut extra = template;
            scale_stats(&mut extra, missing as f64);
            total += &extra;
        }
        // Global atomic chains scale with the grid when every block
        // hits the same accumulator.
        let max_chain = global_chains.values().copied().max().unwrap_or(0);
        let sampled = blocks_to_run.len() as f64;
        total.global_atomic_max_chain =
            ((max_chain as f64) * f64::from(dims.grid) / sampled).round() as u64;
        total.blocks = u64::from(dims.grid);
    } else {
        total.global_atomic_max_chain = global_chains.values().copied().max().unwrap_or(0);
    }
    total.block_size = dims.block;
    total.warps_per_block = dims.block.div_ceil(arch.warp_size);

    Ok(ExecOutcome { stats: total, exact })
}

fn scale_stats(s: &mut LaunchStats, f: f64) {
    let m = |v: &mut u64| *v = (*v as f64 * f).round() as u64;
    s.warp_instrs.scale(f);
    m(&mut s.thread_instrs);
    m(&mut s.divergent_issues);
    m(&mut s.divergent_branches);
    m(&mut s.global_load_transactions);
    m(&mut s.global_store_transactions);
    m(&mut s.global_load_bytes_useful);
    m(&mut s.global_store_bytes_useful);
    m(&mut s.global_vector_bytes);
    m(&mut s.shared_accesses);
    m(&mut s.shared_bank_conflict_cycles);
    m(&mut s.global_atomics);
    m(&mut s.shared_atomics);
    m(&mut s.shared_atomic_serial);
    m(&mut s.barriers);
    m(&mut s.fault_stall_cycles);
    m(&mut s.blocks);
}

pub(crate) fn full_mask(lanes: u32) -> u32 {
    if lanes >= 32 {
        u32::MAX
    } else {
        (1u32 << lanes) - 1
    }
}

fn run_block(
    ctx: &mut BlockCtx<'_>,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
    warps: &mut Vec<WarpExec>,
    faults: &mut FaultSession,
) -> Result<(), SimError> {
    let warp_size = ctx.arch.warp_size;
    let n_warps = ctx.block_dim.div_ceil(warp_size) as usize;

    // Reset the caller-owned warp buffer in place; the divergence
    // stacks keep their heap capacity across blocks.
    warps.truncate(n_warps);
    for (w, warp) in warps.iter_mut().enumerate() {
        let lanes_in_warp = (ctx.block_dim - w as u32 * warp_size).min(warp_size);
        warp.warp_id = w as u32;
        warp.exited = 0;
        warp.stack.clear();
        warp.stack.push(StackEntry { reconv: RECONV_NONE, pc: 0, mask: full_mask(lanes_in_warp) });
    }
    for w in warps.len() as u32..n_warps as u32 {
        let lanes_in_warp = (ctx.block_dim - w * warp_size).min(warp_size);
        warps.push(WarpExec {
            warp_id: w,
            stack: vec![StackEntry { reconv: RECONV_NONE, pc: 0, mask: full_mask(lanes_in_warp) }],
            exited: 0,
        });
    }

    // Each scheduling round runs every live warp until it either hits
    // a barrier or retires, so a round with zero barrier stops means
    // every warp has exited. Warps that stopped at a barrier resume on
    // the next round (their pc already points past the `Bar`), which
    // is exactly the barrier release.
    //
    // A round in which *some* of the warps that ran stopped at a
    // barrier while the rest retired is a barrier-divergence deadlock:
    // the waiting warps can never be released, because arrival of the
    // retired warps is impossible. Report it instead of releasing the
    // barrier anyway (silent corruption) or spinning until the budget
    // runs out (a misleading Timeout).
    loop {
        let mut waiting = 0usize;
        let mut ran = 0usize;
        for warp in warps.iter_mut() {
            if warp.stack.is_empty() {
                continue; // retired in an earlier round
            }
            ran += 1;
            if matches!(run_warp(ctx, warp, global, global_chains, faults)?, WarpStop::Barrier) {
                waiting += 1;
            }
        }
        if waiting == 0 {
            break;
        }
        if waiting < ran {
            let waiting_warps: Vec<u32> =
                warps.iter().filter(|w| !w.stack.is_empty()).map(|w| w.warp_id).collect();
            // A waiting warp's stack-top pc already points past the
            // `Bar` it stopped at.
            let barrier_pc = warps
                .iter()
                .find(|w| !w.stack.is_empty())
                .and_then(|w| w.stack.last())
                .map_or(0, |top| top.pc.saturating_sub(1));
            return Err(SimError::BarrierDeadlock {
                kernel: ctx.kernel.name.clone(),
                barrier_pc,
                waiting_warps,
            });
        }
        // Every live warp arrived: the barrier releases and orders
        // accesses across it.
        if let Some(s) = ctx.sanitize.as_deref_mut() {
            s.barrier_release();
        }
    }
    Ok(())
}

/// Build a [`SimError::Trap`] at a precise fault location.
pub(crate) fn trap_at(kernel: &Kernel, pc: usize, warp: u32, lane: u32, kind: TrapKind) -> SimError {
    SimError::Trap { kernel: kernel.name.clone(), pc, warp, lane, kind }
}

/// Map a drawn fault onto concrete simulator state. Cold: fires at
/// most `max_faults_per_launch` times per launch.
#[cold]
pub(crate) fn apply_fault(
    ctx: &mut BlockCtx<'_>,
    global: &mut LinearMemory,
    faults: &mut FaultSession,
    pending: PendingFault,
) {
    match pending {
        PendingFault::GlobalBitFlip { pos } => {
            if let Some((addr, bit)) = global.flip_bit(pos) {
                faults.record(FaultKind::GlobalBitFlip { addr, bit });
            }
        }
        PendingFault::SharedBitFlip { pos } => {
            if let Some((addr, bit)) = ctx.smem.flip_bit(pos) {
                faults.record(FaultKind::SharedBitFlip { addr, bit });
            } else if let Some((addr, bit)) = global.flip_bit(pos) {
                // Block without shared memory: land the upset in
                // global memory instead of losing the event.
                faults.record(FaultKind::GlobalBitFlip { addr, bit });
            }
        }
        PendingFault::AtomicRetryStorm { extra_serial } => {
            ctx.stats.shared_atomic_serial += extra_serial;
            faults.record(FaultKind::AtomicRetryStorm { extra_serial });
        }
        PendingFault::WarpStall { cycles } => {
            ctx.stats.fault_stall_cycles += cycles;
            faults.record(FaultKind::WarpStall { cycles });
        }
    }
}

/// Execute one warp until it hits a barrier or finishes.
fn run_warp(
    ctx: &mut BlockCtx<'_>,
    warp: &mut WarpExec,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
    faults: &mut FaultSession,
) -> Result<WarpStop, SimError> {
    let warp_size = ctx.arch.warp_size;
    let base_thread = warp.warp_id * warp_size;
    // Copy the `&Kernel` out of the context so instruction borrows do
    // not alias the `&mut ctx` the execution arms need.
    let kernel = ctx.kernel;
    let instrs = kernel.instrs.as_slice();
    loop {
        // Pop completed or emptied divergence entries.
        loop {
            let Some(top) = warp.stack.last() else {
                return Ok(WarpStop::Done);
            };
            if top.mask & !warp.exited == 0 || top.pc == top.reconv {
                warp.stack.pop();
                continue;
            }
            break;
        }
        let top = *warp.stack.last().unwrap();
        let active = top.mask & !warp.exited;
        let pc = top.pc;
        if pc >= instrs.len() {
            // Fell off the end (treated as exit for the active lanes).
            warp.exited |= active;
            warp.stack.pop();
            continue;
        }
        if ctx.budget == 0 {
            return Err(SimError::Timeout {
                kernel: kernel.name.clone(),
                budget: ctx.budget_total,
            });
        }
        ctx.budget -= 1;
        if let Some(pending) = faults.poll() {
            apply_fault(ctx, global, faults, pending);
        }

        let instr = &instrs[pc];
        let n_active = active.count_ones();
        ctx.stats.issue(instr.class(), n_active, warp_size);
        if let Some(p) = ctx.profile.as_deref_mut() {
            p.record_issue(pc, n_active, warp_size);
        }

        // Stack-allocated active-lane list (hot path: no heap).
        let mut lane_buf = [0u32; MAX_LANES];
        let mut n_lanes = 0usize;
        for l in 0..warp_size {
            if active & (1 << l) != 0 {
                lane_buf[n_lanes] = l;
                n_lanes += 1;
            }
        }
        let lanes = &lane_buf[..n_lanes];
        let thread_of = |lane: u32| base_thread + lane;

        let mut next_pc = pc + 1;
        match instr {
            Instr::Mov { ty, dst, src } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let v = ctx.operand(t, *src, *ty);
                    ctx.set_reg(t, *dst, truncate(*ty, v));
                }
            }
            Instr::Un { op, ty, dst, src } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let v = ctx.operand(t, *src, *ty);
                    let r = match op {
                        UnOp::Neg => {
                            if ty.is_float() {
                                from_f(*ty, -to_f(*ty, v))
                            } else {
                                eval_bin(BinOp::Sub, *ty, 0, v)
                                    .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?
                            }
                        }
                        UnOp::Not => truncate(*ty, !v),
                    };
                    ctx.set_reg(t, *dst, r);
                }
            }
            Instr::Bin { op, ty, dst, a, b } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let (x, y) = (ctx.operand(t, *a, *ty), ctx.operand(t, *b, *ty));
                    let r = eval_bin(*op, *ty, x, y)
                        .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?;
                    ctx.set_reg(t, *dst, r);
                }
            }
            Instr::Mad { ty, dst, a, b, c } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let x = ctx.operand(t, *a, *ty);
                    let y = ctx.operand(t, *b, *ty);
                    let z = ctx.operand(t, *c, *ty);
                    let m = eval_bin(BinOp::Mul, *ty, x, y)
                        .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?;
                    let r = eval_bin(BinOp::Add, *ty, m, z)
                        .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?;
                    ctx.set_reg(t, *dst, r);
                }
            }
            Instr::Cvt { from, to, dst, src } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let v = ctx.operand(t, *src, *from);
                    ctx.set_reg(t, *dst, eval_cvt(*from, *to, v));
                }
            }
            Instr::Setp { op, ty, dst, a, b } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let (x, y) = (ctx.operand(t, *a, *ty), ctx.operand(t, *b, *ty));
                    ctx.set_pred(t, *dst, eval_cmp(*op, *ty, x, y));
                }
            }
            Instr::Plop { op, dst, a, b } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let (x, y) = (ctx.pred(t, *a), ctx.pred(t, *b));
                    let r = match op {
                        BinOp::And => x && y,
                        BinOp::Or => x || y,
                        BinOp::Xor => x ^ y,
                        other => {
                            return Err(trap_at(
                                kernel,
                                pc,
                                warp.warp_id,
                                l,
                                TrapKind::IllegalInstruction {
                                    detail: format!("plop with non-logical op {other:?}"),
                                },
                            ))
                        }
                    };
                    ctx.set_pred(t, *dst, r);
                }
            }
            Instr::Selp { ty, dst, a, b, pred } => {
                for &l in lanes {
                    let t = thread_of(l);
                    let v = if ctx.pred(t, *pred) {
                        ctx.operand(t, *a, *ty)
                    } else {
                        ctx.operand(t, *b, *ty)
                    };
                    ctx.set_reg(t, *dst, truncate(*ty, v));
                }
            }
            Instr::Ld { space, ty, dst, addr, width } => {
                let elem = ty.size();
                let n = u64::from(width.lanes());
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                for (i, &l) in lanes.iter().enumerate() {
                    let t = thread_of(l);
                    let a = ctx.addr(t, addr);
                    if !a.is_multiple_of(elem * n) {
                        return Err(trap_at(
                            kernel,
                            pc,
                            warp.warp_id,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: elem * n },
                        ));
                    }
                    access_buf[i] = (a, elem * n);
                    for k in 0..width.lanes() {
                        let v = match space {
                            Space::Global => global.read(*ty, a + u64::from(k) * elem)?,
                            Space::Shared => ctx.smem.read(*ty, a + u64::from(k) * elem)?,
                        };
                        ctx.set_reg(t, dst + k, v);
                    }
                }
                let accesses = &access_buf[..lanes.len()];
                record_mem(ctx, pc, *space, true, accesses);
                if *space == Space::Global && width.lanes() > 1 {
                    ctx.stats.global_vector_bytes +=
                        accesses.iter().map(|&(_, s)| s).sum::<u64>();
                }
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    s.record_warp(*space, pc, warp.warp_id, AccessKind::Read, active, accesses);
                }
            }
            Instr::St { space, ty, src, addr, width } => {
                let elem = ty.size();
                let n = u64::from(width.lanes());
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                for (i, &l) in lanes.iter().enumerate() {
                    let t = thread_of(l);
                    let a = ctx.addr(t, addr);
                    if !a.is_multiple_of(elem * n) {
                        return Err(trap_at(
                            kernel,
                            pc,
                            warp.warp_id,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: elem * n },
                        ));
                    }
                    access_buf[i] = (a, elem * n);
                    for k in 0..width.lanes() {
                        let v = ctx.reg(t, src + k);
                        match space {
                            Space::Global => global.write(*ty, a + u64::from(k) * elem, v)?,
                            Space::Shared => ctx.smem.write(*ty, a + u64::from(k) * elem, v)?,
                        }
                    }
                }
                record_mem(ctx, pc, *space, false, &access_buf[..lanes.len()]);
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    s.record_warp(
                        *space,
                        pc,
                        warp.warp_id,
                        AccessKind::Write,
                        active,
                        &access_buf[..lanes.len()],
                    );
                }
            }
            Instr::Atom { space, scope, op, ty, dst, addr, src, cmp } => {
                // Linearize lanes in order; gather contention stats.
                let mut addr_buf = [0u64; MAX_LANES];
                for (i, &l) in lanes.iter().enumerate() {
                    let t = thread_of(l);
                    let a = ctx.addr(t, addr);
                    if !a.is_multiple_of(ty.size()) {
                        return Err(trap_at(
                            kernel,
                            pc,
                            warp.warp_id,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: ty.size() },
                        ));
                    }
                    addr_buf[i] = a;
                    let s = ctx.operand(t, *src, *ty);
                    let c = cmp.map(|c| ctx.operand(t, c, *ty));
                    let old = match space {
                        Space::Global => {
                            let old = global.read(*ty, a)?;
                            let new = eval_atom(*op, *ty, old, s, c)
                                .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?;
                            global.write(*ty, a, new)?;
                            old
                        }
                        Space::Shared => {
                            let old = ctx.smem.read(*ty, a)?;
                            let new = eval_atom(*op, *ty, old, s, c)
                                .map_err(|k| trap_at(kernel, pc, warp.warp_id, l, k))?;
                            ctx.smem.write(*ty, a, new)?;
                            old
                        }
                    };
                    if let Some(d) = dst {
                        ctx.set_reg(t, *d, old);
                    }
                    let depth = match space {
                        Space::Global => {
                            let e = global_chains.entry(a).or_insert(0);
                            *e += 1;
                            *e - 1
                        }
                        Space::Shared => {
                            let e = ctx.shared_chains.entry(a).or_insert(0);
                            *e += 1;
                            *e - 1
                        }
                    };
                    if let Some(p) = ctx.profile.as_deref_mut() {
                        p.sites[pc].atomic_serial += depth;
                    }
                }
                // Worst same-address contention across the warp; O(n^2)
                // over at most 32 lanes beats hashing on the hot path.
                let addrs = &addr_buf[..lanes.len()];
                let mut worst = 0u64;
                for (i, &a) in addrs.iter().enumerate() {
                    if addrs[..i].contains(&a) {
                        continue;
                    }
                    let c = addrs[i..].iter().filter(|&&b| b == a).count() as u64;
                    worst = worst.max(c);
                }
                match space {
                    Space::Global => {
                        ctx.stats.global_atomics += lanes.len() as u64;
                    }
                    Space::Shared => {
                        ctx.stats.shared_atomics += lanes.len() as u64;
                        ctx.stats.shared_atomic_serial += worst;
                    }
                }
                if let Some(p) = ctx.profile.as_deref_mut() {
                    p.sites[pc].atomic_ops += lanes.len() as u64;
                }
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    let mut buf = [(0u64, 0u64); MAX_LANES];
                    for (i, &a) in addrs.iter().enumerate() {
                        buf[i] = (a, ty.size());
                    }
                    let kind = AccessKind::Atomic { scope: *scope };
                    s.record_warp(*space, pc, warp.warp_id, kind, active, &buf[..addrs.len()]);
                }
            }
            Instr::Shfl { mode, ty, dst, src, lane, width, pred_out } => {
                // Snapshot source values across the whole warp first.
                let ws = warp_size;
                let mut snapshot = [0u64; MAX_LANES];
                for l in 0..ws {
                    let t = base_thread + l;
                    if t < ctx.block_dim {
                        snapshot[l as usize] = ctx.operand(t, *src, *ty);
                    }
                }
                for &l in lanes {
                    let t = thread_of(l);
                    let b = ctx.operand(t, *lane, Ty::U32) as u32;
                    let w = (*width).clamp(1, ws);
                    let seg = l / w * w; // sub-warp segment start
                    let pos = l % w;
                    let (src_lane, in_range) = match mode {
                        ShflMode::Up => {
                            if pos >= b {
                                (seg + pos - b, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Down => {
                            if pos + b < w {
                                (seg + pos + b, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Bfly => {
                            let j = pos ^ b;
                            if j < w {
                                (seg + j, true)
                            } else {
                                (l, false)
                            }
                        }
                        ShflMode::Idx => {
                            let j = b % w;
                            (seg + j, true)
                        }
                    };
                    let v = snapshot[src_lane.min(ws - 1) as usize];
                    ctx.set_reg(t, *dst, truncate(*ty, v));
                    if let Some(p) = pred_out {
                        ctx.set_pred(t, *p, in_range);
                    }
                }
                if let Some(p) = ctx.profile.as_deref_mut() {
                    p.sites[pc].shuffle_exchanges += u64::from(n_active);
                }
            }
            Instr::Bar => {
                ctx.stats.barriers += 1;
                if let Some(s) = ctx.sanitize.as_deref_mut() {
                    let lanes_in_warp = (ctx.block_dim - base_thread).min(warp_size);
                    s.record_bar(pc, warp.warp_id, active, full_mask(lanes_in_warp));
                }
                if let Some(top) = warp.stack.last_mut() {
                    top.pc = next_pc;
                }
                return Ok(WarpStop::Barrier);
            }
            Instr::Bra { pred, target } => {
                match pred {
                    None => next_pc = *target,
                    Some((p, when)) => {
                        let mut taken = 0u32;
                        for &l in lanes {
                            let t = thread_of(l);
                            if ctx.pred(t, *p) == *when {
                                taken |= 1 << l;
                            }
                        }
                        if taken == active {
                            next_pc = *target;
                        } else if taken == 0 {
                            // fall through
                        } else {
                            // Divergence: split via the SIMT stack.
                            ctx.stats.divergent_branches += 1;
                            if let Some(p) = ctx.profile.as_deref_mut() {
                                p.sites[pc].divergence_splits += 1;
                            }
                            let reconv = ctx.cfg.reconvergence(pc).unwrap_or(RECONV_NONE);
                            let outer = warp.stack.pop().unwrap();
                            if reconv != RECONV_NONE {
                                warp.stack.push(StackEntry {
                                    reconv: outer.reconv,
                                    pc: reconv,
                                    mask: outer.mask,
                                });
                            }
                            let not_taken = active & !taken;
                            warp.stack.push(StackEntry { reconv, pc: pc + 1, mask: not_taken });
                            warp.stack.push(StackEntry { reconv, pc: *target, mask: taken });
                            continue;
                        }
                    }
                }
            }
            Instr::Exit => {
                warp.exited |= active;
                // The pop loop at the top will clean up.
            }
        }
        if let Some(top) = warp.stack.last_mut() {
            top.pc = next_pc;
        }
    }
}

pub(crate) fn record_mem(
    ctx: &mut BlockCtx<'_>,
    pc: usize,
    space: Space,
    is_load: bool,
    accesses: &[(u64, u64)],
) {
    match space {
        Space::Global => {
            let tx = coalesced_transactions(accesses);
            let useful: u64 = accesses.iter().map(|&(_, s)| s).sum();
            if is_load {
                ctx.stats.global_load_transactions += tx;
                ctx.stats.global_load_bytes_useful += useful;
            } else {
                ctx.stats.global_store_transactions += tx;
                ctx.stats.global_store_bytes_useful += useful;
            }
            if let Some(p) = ctx.profile.as_deref_mut() {
                let s = &mut p.sites[pc];
                s.global_transactions += tx;
                s.global_bytes_useful += useful;
            }
        }
        Space::Shared => {
            ctx.stats.shared_accesses += 1;
            let mut addr_buf = [0u64; MAX_LANES];
            for (i, &(a, _)) in accesses.iter().enumerate() {
                addr_buf[i] = a;
            }
            let degree = bank_conflict_degree(&addr_buf[..accesses.len()]);
            ctx.stats.shared_bank_conflict_cycles += degree.saturating_sub(1);
            if let Some(p) = ctx.profile.as_deref_mut() {
                let s = &mut p.sites[pc];
                s.shared_accesses += 1;
                s.shared_bank_conflicts += degree.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{InstrClass, Scope};
    use crate::kernel::KernelBuilder;

    fn arch() -> ArchConfig {
        ArchConfig::maxwell_gtx980()
    }

    /// out[i] = i * 2 across a grid.
    #[test]
    fn elementwise_kernel() {
        let mut b = KernelBuilder::new("twice");
        let out = b.param_ptr();
        let gidx = b.reg();
        let addr = b.reg();
        let val = b.reg();
        // gidx = ctaid * ntid + tid
        b.mad(Ty::U32, gidx, Operand::Sreg(Sreg::CtaIdX), Operand::Sreg(Sreg::NtidX), Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U32, val, Operand::Reg(gidx), Operand::ImmI(2));
        // addr = out + gidx*4
        b.cvt(Ty::U32, Ty::U64, addr, Operand::Reg(gidx));
        b.bin(BinOp::Mul, Ty::U64, addr, Operand::Reg(addr), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, addr, Operand::Reg(addr), Operand::Param(out));
        b.st(Space::Global, Ty::U32, val, Address::reg(addr));
        b.exit();
        let k = b.finish().unwrap();

        let mut mem = LinearMemory::new(4 * 64, "global");
        let out = run_kernel(&k, &arch(), LaunchDims::new(2, 32), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        assert!(out.exact);
        for i in 0..64u64 {
            assert_eq!(mem.read(Ty::U32, i * 4).unwrap(), i * 2);
        }
        // One fully-coalesced store per warp → 2 transactions.
        assert_eq!(out.stats.global_store_transactions, 2);
    }

    /// Divergent if/else writes different values and reconverges.
    #[test]
    fn divergent_branch_reconverges() {
        let mut b = KernelBuilder::new("div");
        let out = b.param_ptr();
        let r = b.reg();
        let addr = b.reg();
        let p = b.pred();
        let else_l = b.label();
        let join_l = b.label();
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(7));
        b.bra_if(p, false, else_l);
        b.mov(Ty::U32, r, Operand::ImmI(111));
        b.bra(join_l);
        b.place(else_l);
        b.mov(Ty::U32, r, Operand::ImmI(222));
        b.place(join_l);
        // r += 1 on the reconverged path: proves both sides rejoined.
        b.bin(BinOp::Add, Ty::U32, r, Operand::Reg(r), Operand::ImmI(1));
        b.cvt(Ty::U32, Ty::U64, addr, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, addr, Operand::Reg(addr), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, addr, Operand::Reg(addr), Operand::Param(out));
        b.st(Space::Global, Ty::U32, r, Address::reg(addr));
        b.exit();
        let k = b.finish().unwrap();

        let mut mem = LinearMemory::new(4 * 32, "global");
        let out = run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        for i in 0..32u64 {
            let expect = if i < 7 { 112 } else { 223 };
            assert_eq!(mem.read(Ty::U32, i * 4).unwrap(), expect, "lane {i}");
        }
        assert_eq!(out.stats.divergent_branches, 1);
        assert!(out.stats.divergent_issues > 0);
    }

    /// Shared-memory tree reduction with barriers across 2 warps.
    #[test]
    fn shared_tree_reduction_with_barriers() {
        let n: u32 = 64;
        let mut b = KernelBuilder::new("tree");
        let inp = b.param_ptr();
        let outp = b.param_ptr();
        let smem_off = b.smem_alloc(u64::from(n) * 4);
        let tid = b.reg();
        let a = b.reg();
        let v = b.reg();
        let w = b.reg();
        let sa = b.reg();
        let sb = b.reg();
        let stride = b.reg();
        let p = b.pred();
        let pw = b.pred();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        // load input[tid] into smem[tid]
        b.cvt(Ty::U32, Ty::U64, a, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(inp));
        b.ld(Space::Global, Ty::U32, v, Address::reg(a));
        b.cvt(Ty::U32, Ty::U64, sa, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(smem_off as i64));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bar();
        // for stride = n/2; stride > 0; stride >>= 1
        b.mov(Ty::U32, stride, Operand::ImmI(i64::from(n / 2)));
        let top = b.label();
        let body_end = b.label();
        let done = b.label();
        b.place(top);
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(stride), Operand::ImmI(0));
        b.bra_if(p, true, done);
        //   if tid < stride: smem[tid] += smem[tid+stride]
        b.setp(CmpOp::Lt, Ty::U32, pw, Operand::Reg(tid), Operand::Reg(stride));
        b.bra_if(pw, false, body_end);
        b.bin(BinOp::Add, Ty::U32, w, Operand::Reg(tid), Operand::Reg(stride));
        b.cvt(Ty::U32, Ty::U64, sb, Operand::Reg(w));
        b.bin(BinOp::Mul, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(smem_off as i64));
        b.ld(Space::Shared, Ty::U32, w, Address::reg(sb));
        b.ld(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::Reg(w));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.place(body_end);
        b.bar();
        b.bin(BinOp::Shr, Ty::U32, stride, Operand::Reg(stride), Operand::ImmI(1));
        b.bra(top);
        b.place(done);
        // thread 0 writes smem[0] to out
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(tid), Operand::ImmI(0));
        let skip = b.label();
        b.bra_if(p, false, skip);
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(smem_off as i64), 0));
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(outp), 0));
        b.place(skip);
        b.exit();
        let k = b.finish().unwrap();

        let mut mem = LinearMemory::new(4 * u64::from(n) + 4, "global");
        for i in 0..n {
            mem.write(Ty::U32, u64::from(i) * 4, u64::from(i + 1)).unwrap();
        }
        let outp_addr = 4 * u64::from(n);
        run_kernel(
            &k,
            &arch(),
            LaunchDims::new(1, n),
            &[Arg::Ptr(0), Arg::Ptr(outp_addr)],
            &mut mem,
            BlockSelection::All,
        )
        .unwrap();
        assert_eq!(mem.read(Ty::U32, outp_addr).unwrap(), u64::from(n * (n + 1) / 2));
    }

    /// Warp shuffle-down reduction of one warp.
    #[test]
    fn shuffle_down_reduction() {
        let mut b = KernelBuilder::new("shfl");
        let outp = b.param_ptr();
        let v = b.reg();
        let tmp = b.reg();
        let p = b.pred();
        b.mov(Ty::U32, v, Operand::Sreg(Sreg::TidX)); // v = lane
        for offset in [16, 8, 4, 2, 1] {
            b.shfl(ShflMode::Down, Ty::U32, tmp, Operand::Reg(v), Operand::ImmI(offset), 32);
            b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::Reg(tmp));
        }
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(0));
        let skip = b.label();
        b.bra_if(p, false, skip);
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(outp), 0));
        b.place(skip);
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(4, "global");
        let out = run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        assert_eq!(mem.read(Ty::U32, 0).unwrap(), (0..32).sum::<u64>());
        assert_eq!(out.stats.class(InstrClass::Shfl), 5);
    }

    /// Sub-warp (width 8) shuffle keeps exchanges within segments.
    #[test]
    fn subwarp_shuffle_segments() {
        let mut b = KernelBuilder::new("sub");
        let outp = b.param_ptr();
        let v = b.reg();
        let t = b.reg();
        let a = b.reg();
        b.mov(Ty::U32, v, Operand::Sreg(Sreg::TidX));
        b.shfl(ShflMode::Down, Ty::U32, t, Operand::Reg(v), Operand::ImmI(4), 8);
        b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(outp));
        b.st(Space::Global, Ty::U32, t, Address::reg(a));
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(4 * 32, "global");
        run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        for i in 0..32u64 {
            let pos = i % 8;
            let expect = if pos + 4 < 8 { i + 4 } else { i }; // out-of-segment keeps own value
            assert_eq!(mem.read(Ty::U32, i * 4).unwrap(), expect, "lane {i}");
        }
    }

    /// Global and shared atomics accumulate correctly and report
    /// contention chains.
    #[test]
    fn atomics_accumulate() {
        let mut b = KernelBuilder::new("atom");
        let outp = b.param_ptr();
        let one = b.reg();
        b.mov(Ty::U32, one, Operand::ImmI(1));
        b.red(Space::Global, Scope::Gpu, AtomOp::Add, Ty::U32, Address::new(Operand::Param(outp), 0), Operand::Reg(one));
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(4, "global");
        let out = run_kernel(&k, &arch(), LaunchDims::new(4, 64), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        assert_eq!(mem.read(Ty::U32, 0).unwrap(), 256);
        assert_eq!(out.stats.global_atomics, 256);
        assert_eq!(out.stats.global_atomic_max_chain, 256);
    }

    #[test]
    fn shared_atomic_contention_tracked() {
        let mut b = KernelBuilder::new("satom");
        let outp = b.param_ptr();
        let acc = b.smem_alloc(4);
        let one = b.reg();
        let v = b.reg();
        let p = b.pred();
        b.mov(Ty::U32, one, Operand::ImmI(1));
        b.red(Space::Shared, Scope::Cta, AtomOp::Add, Ty::U32, Address::new(Operand::ImmI(acc as i64), 0), Operand::Reg(one));
        b.bar();
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(0));
        let skip = b.label();
        b.bra_if(p, false, skip);
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(acc as i64), 0));
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(outp), 0));
        b.place(skip);
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(4, "global");
        let out = run_kernel(&k, &arch(), LaunchDims::new(1, 128), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        assert_eq!(mem.read(Ty::U32, 0).unwrap(), 128);
        assert_eq!(out.stats.shared_atomics, 128);
        // 4 warps × fully-conflicting (32 per warp issue).
        assert_eq!(out.stats.shared_atomic_serial, 128);
        assert_eq!(out.stats.shared_atomic_max_chain_per_block, 128);
    }

    /// Sampled execution scales statistics to the full grid.
    #[test]
    fn sampling_scales_stats() {
        let mut b = KernelBuilder::new("samp");
        let outp = b.param_ptr();
        let one = b.reg();
        b.mov(Ty::U32, one, Operand::ImmI(1));
        b.red(Space::Global, Scope::Gpu, AtomOp::Add, Ty::U32, Address::new(Operand::Param(outp), 0), Operand::Reg(one));
        b.exit();
        let k = b.finish().unwrap();

        let mut mem_full = LinearMemory::new(4, "global");
        let full = run_kernel(&k, &arch(), LaunchDims::new(256, 64), &[Arg::Ptr(0)], &mut mem_full, BlockSelection::All)
            .unwrap();
        let mut mem_s = LinearMemory::new(4, "global");
        let sampled = run_kernel(
            &k,
            &arch(),
            LaunchDims::new(256, 64),
            &[Arg::Ptr(0)],
            &mut mem_s,
            BlockSelection::Sample { max_blocks: 8 },
        )
        .unwrap();
        assert!(full.exact);
        assert!(!sampled.exact);
        let f = full.stats.total_warp_instrs() as f64;
        let s = sampled.stats.total_warp_instrs() as f64;
        assert!((f - s).abs() / f < 0.02, "scaled {s} vs exact {f}");
        assert!(
            (sampled.stats.global_atomic_max_chain as f64 - 256.0 * 64.0).abs() < 0.05 * 256.0 * 64.0
        );
    }

    #[test]
    fn launch_validation() {
        let mut b = KernelBuilder::new("v");
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(0, "global");
        let a = arch();
        assert!(run_kernel(&k, &a, LaunchDims::new(0, 32), &[], &mut mem, BlockSelection::All).is_err());
        assert!(run_kernel(&k, &a, LaunchDims::new(1, 2048), &[], &mut mem, BlockSelection::All).is_err());
        assert!(
            run_kernel(&k, &a, LaunchDims::new(1, 32), &[Arg::U32(1)], &mut mem, BlockSelection::All)
                .is_err()
        );
    }

    /// Vector loads read consecutive elements into consecutive regs.
    #[test]
    fn vector_load() {
        let mut b = KernelBuilder::new("v4");
        let inp = b.param_ptr();
        let outp = b.param_ptr();
        let base = b.reg_vec(4);
        let a = b.reg();
        let sum = b.reg();
        // addr = in + tid*16
        b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(16));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(inp));
        b.ld_vec(Space::Global, Ty::U32, base, Address::reg(a), crate::isa::VecWidth::V4);
        b.bin(BinOp::Add, Ty::U32, sum, Operand::Reg(base), Operand::Reg(base + 1));
        b.bin(BinOp::Add, Ty::U32, sum, Operand::Reg(sum), Operand::Reg(base + 2));
        b.bin(BinOp::Add, Ty::U32, sum, Operand::Reg(sum), Operand::Reg(base + 3));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(outp));
        b.st(Space::Global, Ty::U32, sum, Address::reg(a));
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(16 * 32 + 4 * 32, "global");
        for i in 0..128u64 {
            mem.write(Ty::U32, i * 4, i).unwrap();
        }
        run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[Arg::Ptr(0), Arg::Ptr(512)], &mut mem, BlockSelection::All)
            .unwrap();
        for t in 0..32u64 {
            let expect: u64 = (4 * t..4 * t + 4).sum();
            assert_eq!(mem.read(Ty::U32, 512 + t * 4).unwrap(), expect & 0xFFFF_FFFF);
        }
    }

    #[test]
    fn f32_arithmetic() {
        assert_eq!(
            f32::from_bits(eval_bin(BinOp::Add, Ty::F32, u64::from(2.5f32.to_bits()), u64::from(0.25f32.to_bits())).unwrap() as u32),
            2.75
        );
        assert_eq!(
            f32::from_bits(eval_bin(BinOp::Max, Ty::F32, u64::from((-1.0f32).to_bits()), u64::from(3.0f32.to_bits())).unwrap() as u32),
            3.0
        );
    }

    #[test]
    fn signed_compare_and_div() {
        assert!(eval_cmp(CmpOp::Lt, Ty::I32, (-5i32) as u32 as u64, 3));
        assert!(!eval_cmp(CmpOp::Lt, Ty::U32, (-5i32) as u32 as u64, 3));
        assert_eq!(eval_bin(BinOp::Div, Ty::I32, (-6i32) as u32 as u64, 2).unwrap() as u32 as i32, -3);
        assert_eq!(eval_bin(BinOp::Div, Ty::U32, 7, 0).unwrap(), 0);
    }

    #[test]
    fn bitwise_on_float_traps_not_panics() {
        let err = eval_bin(BinOp::And, Ty::F32, 1, 2).unwrap_err();
        assert!(matches!(err, TrapKind::IllegalOperandType { .. }));
        // Through the interpreter: a directly-constructed kernel (the
        // builder and assembler cannot emit this) must trap with a
        // precise location, not panic.
        let k = Kernel {
            name: "badop".into(),
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Xor,
                    ty: Ty::F32,
                    dst: 0,
                    a: Operand::ImmF(1.0),
                    b: Operand::ImmF(2.0),
                },
                Instr::Exit,
            ],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 1,
            num_preds: 0,
            cfg_cache: Default::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        let mut mem = LinearMemory::new(0, "global");
        let err = run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[], &mut mem, BlockSelection::All)
            .unwrap_err();
        match err {
            SimError::Trap { pc, warp, kind, .. } => {
                assert_eq!(pc, 0);
                assert_eq!(warp, 0);
                assert!(matches!(kind, TrapKind::IllegalOperandType { .. }));
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn cas_without_cmp_traps() {
        assert!(matches!(
            eval_atom(AtomOp::Cas, Ty::U32, 0, 1, None).unwrap_err(),
            TrapKind::CasWithoutCmp
        ));
        let k = Kernel {
            name: "badcas".into(),
            instrs: vec![
                Instr::Atom {
                    space: Space::Global,
                    scope: Scope::Gpu,
                    op: AtomOp::Cas,
                    ty: Ty::U32,
                    dst: None,
                    addr: Address::new(Operand::ImmI(0), 0),
                    src: Operand::ImmI(1),
                    cmp: None,
                },
                Instr::Exit,
            ],
            params: vec![],
            static_smem: 0,
            dynamic_smem: false,
            num_regs: 1,
            num_preds: 0,
            cfg_cache: Default::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        };
        let mut mem = LinearMemory::new(64, "global");
        let err = run_kernel(&k, &arch(), LaunchDims::new(1, 1), &[], &mut mem, BlockSelection::All)
            .unwrap_err();
        assert!(matches!(err, SimError::Trap { kind: TrapKind::CasWithoutCmp, .. }), "{err:?}");
    }

    #[test]
    fn misaligned_access_traps() {
        // A 4-byte load from address 2.
        let mut b = KernelBuilder::new("mis");
        let inp = b.param_ptr();
        let v = b.reg();
        b.ld(Space::Global, Ty::U32, v, Address::new(Operand::Param(inp), 2));
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(64, "global");
        let err = run_kernel(&k, &arch(), LaunchDims::new(1, 1), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap_err();
        match err {
            SimError::Trap { kind: TrapKind::Misaligned { space, addr, required }, .. } => {
                assert_eq!(space, "global");
                assert_eq!(addr, 2);
                assert_eq!(required, 4);
            }
            other => panic!("expected misaligned trap, got {other:?}"),
        }
    }

    #[test]
    fn barrier_deadlock_detected() {
        // Warp 0 reaches a barrier; warp 1 exits first: classic
        // barrier-divergence deadlock across warps.
        let mut b = KernelBuilder::new("dead");
        let p = b.pred();
        let skip = b.label();
        b.setp(CmpOp::Lt, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(32));
        b.bra_if(p, false, skip);
        b.bar();
        b.place(skip);
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(0, "global");
        let err = run_kernel(&k, &arch(), LaunchDims::new(1, 64), &[], &mut mem, BlockSelection::All)
            .unwrap_err();
        match err {
            SimError::BarrierDeadlock { barrier_pc, waiting_warps, .. } => {
                assert_eq!(waiting_warps, vec![0]);
                // pc 0 = setp, pc 1 = bra, pc 2 = bar.
                assert_eq!(barrier_pc, 2);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn uniform_barriers_still_release() {
        // Sanity check against false positives: both warps barrier
        // twice, then exit together.
        let mut b = KernelBuilder::new("ok");
        b.bar();
        b.bar();
        b.exit();
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(0, "global");
        run_kernel(&k, &arch(), LaunchDims::new(1, 64), &[], &mut mem, BlockSelection::All).unwrap();
    }

    #[test]
    fn timeout_reports_configured_budget() {
        // An infinite loop under a tiny explicit budget.
        let mut b = KernelBuilder::new("spin");
        let top = b.label();
        b.place(top);
        b.bra(top);
        let k = b.finish().unwrap();
        let mut mem = LinearMemory::new(0, "global");
        let err = run_kernel_cfg(
            &k,
            &arch(),
            LaunchDims::new(1, 32),
            &[],
            &mut mem,
            BlockSelection::All,
            ExecConfig::builder().instr_budget(1000).build(),
        )
        .unwrap_err();
        assert_eq!(err, SimError::Timeout { kernel: "spin".into(), budget: 1000 });
    }

    #[test]
    fn fault_session_is_deterministic_and_logged() {
        use crate::fault::FaultPlan;
        // A kernel long enough for a high-rate plan to fire.
        let mut b = KernelBuilder::new("loopy");
        let outp = b.param_ptr();
        let i = b.reg();
        let a = b.reg();
        let p = b.pred();
        let top = b.label();
        let done = b.label();
        b.mov(Ty::U32, i, Operand::ImmI(0));
        b.place(top);
        b.setp(CmpOp::Ge, Ty::U32, p, Operand::Reg(i), Operand::ImmI(2000));
        b.bra_if(p, true, done);
        b.bin(BinOp::Add, Ty::U32, i, Operand::Reg(i), Operand::ImmI(1));
        b.bra(top);
        b.place(done);
        b.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(outp));
        b.st(Space::Global, Ty::U32, i, Address::reg(a));
        b.exit();
        let k = b.finish().unwrap();

        let run = |seed: u64| {
            let mut mem = LinearMemory::new(4 * 32, "global");
            let mut session = FaultSession::new(&FaultPlan::seeded(seed, 2_000), false);
            run_kernel_cfg(
                &k,
                &arch(),
                LaunchDims::new(1, 32),
                &[Arg::Ptr(0)],
                &mut mem,
                BlockSelection::All,
                ExecConfig::builder().faults(&mut session).build(),
            )
            .unwrap();
            (session.take_log(), mem.read_bytes(0, 4 * 32).unwrap())
        };
        let (log_a, mem_a) = run(42);
        let (log_b, mem_b) = run(42);
        assert!(!log_a.is_empty(), "2000ppm over ~10k instrs should inject");
        assert_eq!(log_a, log_b, "same seed must inject identical faults");
        assert_eq!(mem_a, mem_b, "corrupted memory must be bit-identical");
        let (log_c, _) = run(43);
        assert_ne!(log_a, log_c, "different seed should differ");
    }
}
