//! The device API: memory management, kernel launches and a modelled
//! wall clock — the simulator's equivalent of the CUDA runtime.

use crate::arch::ArchConfig;
use crate::error::SimError;
use crate::exec::{
    run_kernel_cfg, Arg, BlockSelection, ExecConfig, ExecMode, LaunchDims, DEFAULT_BUDGET,
};
use crate::fault::{FaultPlan, FaultSession, InjectedFault};
use crate::isa::Ty;
use crate::kernel::Kernel;
use crate::memory::LinearMemory;
use crate::profile::{LaunchProfile, Trace};
use crate::sanitize::{LaunchSanitizer, RaceReport};
use crate::stats::LaunchStats;
use crate::timing::{time_launch, LaunchTiming, TimingOptions};

/// A device memory allocation handle (byte address + length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DevicePtr {
    /// Byte address in device global memory.
    pub addr: u64,
    /// Allocation length in bytes.
    pub len: u64,
}

impl DevicePtr {
    /// The address as a launch argument.
    pub fn arg(self) -> Arg {
        Arg::Ptr(self.addr)
    }

    /// A pointer displaced `bytes` into the allocation.
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr { addr: self.addr + bytes, len: self.len.saturating_sub(bytes) }
    }
}

/// Report for one launch: the gathered statistics and the modelled
/// timing.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Execution statistics (scaled when sampled).
    pub stats: LaunchStats,
    /// Modelled timing breakdown.
    pub timing: LaunchTiming,
    /// Whether every block was executed functionally.
    pub exact: bool,
    /// Per-site profile, present when [`Device::set_profiling`] was
    /// enabled for this launch.
    pub profile: Option<LaunchProfile>,
    /// Race-detection verdict, present when
    /// [`Device::set_sanitizing`] was enabled for this launch.
    pub races: Option<RaceReport>,
}

/// A simulated GPU device.
///
/// # Examples
///
/// ```
/// use gpu_sim::{ArchConfig, Device};
///
/// let mut dev = Device::new(ArchConfig::pascal_p100());
/// let buf = dev.alloc_f32(1024).unwrap();
/// dev.upload_f32(buf, &vec![1.0; 1024]).unwrap();
/// let back = dev.download_f32(buf, 1024).unwrap();
/// assert_eq!(back[17], 1.0);
/// ```
#[derive(Debug)]
pub struct Device {
    arch: ArchConfig,
    global: LinearMemory,
    next_alloc: u64,
    elapsed_ns: f64,
    launches: Vec<LaunchReport>,
    instr_budget: u64,
    fault_plan: Option<FaultPlan>,
    fault_launch_index: u64,
    fault_log: Vec<InjectedFault>,
    exec_mode: ExecMode,
    profiling: bool,
    sanitizing: bool,
    trace: Trace,
}

const ALLOC_ALIGN: u64 = 256;

impl Device {
    /// Create a device with the given architecture.
    pub fn new(arch: ArchConfig) -> Self {
        Device {
            arch,
            global: LinearMemory::new(0, "global"),
            next_alloc: ALLOC_ALIGN, // keep address 0 unused (null)
            elapsed_ns: 0.0,
            launches: Vec::new(),
            instr_budget: DEFAULT_BUDGET,
            fault_plan: None,
            fault_launch_index: 0,
            fault_log: Vec::new(),
            exec_mode: ExecMode::default(),
            profiling: false,
            sanitizing: false,
            trace: Trace::new(),
        }
    }

    /// The device's architecture.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Set the per-block dynamic instruction budget for subsequent
    /// launches (the runaway-loop guard reported by
    /// [`SimError::Timeout`]). Values are clamped to at least 1.
    pub fn set_instr_budget(&mut self, budget: u64) {
        self.instr_budget = budget.max(1);
    }

    /// The configured per-block instruction budget.
    pub fn instr_budget(&self) -> u64 {
        self.instr_budget
    }

    /// Select the interpreter hot path for subsequent launches
    /// (default [`ExecMode::Predecoded`]; [`ExecMode::Reference`] is
    /// the lane-wise path kept for differential testing, and
    /// [`ExecMode::Compiled`] the closure-threaded fast tier).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The configured interpreter hot path.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Enable or disable profiling for subsequent launches. When on,
    /// every launch gathers a per-site [`LaunchProfile`] (stored on
    /// its [`LaunchReport`]) and appends launch/block/warp events to
    /// the device [`Trace`]. Off by default: the interpreters stay on
    /// their zero-cost paths and results/stats/timing are
    /// bit-identical either way.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Enable or disable race checking for subsequent launches. When
    /// on, every launch runs the happens-before sanitizer (see
    /// [`crate::sanitize`]) and stores its [`RaceReport`] on the
    /// [`LaunchReport`]. Off by default: like profiling, the sanitizer
    /// is purely observational and results/stats/timing are
    /// bit-identical either way.
    pub fn set_sanitizing(&mut self, on: bool) {
        self.sanitizing = on;
    }

    /// Whether race checking is enabled.
    pub fn sanitizing(&self) -> bool {
        self.sanitizing
    }

    /// The scheduler trace accumulated by profiled launches.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Drain the accumulated scheduler trace.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Install (or clear) a fault-injection plan. Each subsequent
    /// launch derives its own sub-plan from the plan seed and a
    /// per-device launch counter, so a fixed plan on a fresh device
    /// replays bit-for-bit. Installing a plan resets that counter.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
        self.fault_launch_index = 0;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_plan
    }

    /// Faults injected since the last [`Device::take_fault_log`], in
    /// injection order across launches.
    pub fn fault_log(&self) -> &[InjectedFault] {
        &self.fault_log
    }

    /// Drain the accumulated fault log.
    pub fn take_fault_log(&mut self) -> Vec<InjectedFault> {
        std::mem::take(&mut self.fault_log)
    }

    /// Allocate `bytes` of global memory (256-byte aligned). Fresh
    /// arena bytes are zeroed; space reclaimed with [`Device::free_to`]
    /// is handed out again with its previous contents, like a real
    /// `cudaMalloc` pool.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice (host memory is the limit),
    /// but returns `Result` to keep the CUDA-like contract.
    pub fn alloc(&mut self, bytes: u64) -> Result<DevicePtr, SimError> {
        let addr = (self.next_alloc + ALLOC_ALIGN - 1) & !(ALLOC_ALIGN - 1);
        self.next_alloc = addr + bytes;
        self.global.grow(self.next_alloc);
        Ok(DevicePtr { addr, len: bytes })
    }

    /// Current watermark of the bump allocator; pass it to
    /// [`Device::free_to`] to release every allocation made after this
    /// point.
    pub fn alloc_mark(&self) -> u64 {
        self.next_alloc
    }

    /// Roll the bump allocator back to an earlier [`Device::alloc_mark`],
    /// releasing every allocation made since. The arena keeps its
    /// capacity, so subsequent allocations reuse the space instead of
    /// growing (and re-zeroing) it — a measurement context releases its
    /// per-run scratch buffers this way, which at sweep scale would
    /// otherwise grow the arena by the whole partials footprint per
    /// job. Reused bytes keep their previous contents (see
    /// [`Device::alloc`]); callers that need zeroed scratch after a
    /// rollback must clear it themselves.
    pub fn free_to(&mut self, mark: u64) {
        self.next_alloc = mark.min(self.next_alloc);
    }

    /// Allocate space for `n` `f32` elements.
    pub fn alloc_f32(&mut self, n: u64) -> Result<DevicePtr, SimError> {
        self.alloc(n * 4)
    }

    /// Copy `data` to the device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the allocation is too small.
    pub fn upload_f32(&mut self, ptr: DevicePtr, data: &[f32]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.global.write_bytes(ptr.addr, &bytes)
    }

    /// Copy raw bytes to the device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the allocation is too small.
    pub fn upload_bytes(&mut self, ptr: DevicePtr, data: &[u8]) -> Result<(), SimError> {
        self.global.write_bytes(ptr.addr, data)
    }

    /// Copy `len` raw bytes back from the device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the range is out of bounds.
    pub fn download_bytes(&self, ptr: DevicePtr, len: u64) -> Result<Vec<u8>, SimError> {
        self.global.read_bytes(ptr.addr, len)
    }

    /// Copy `n` `f32` elements back from the device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the range is out of bounds.
    pub fn download_f32(&self, ptr: DevicePtr, n: u64) -> Result<Vec<f32>, SimError> {
        let bytes = self.global.read_bytes(ptr.addr, n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read one scalar of type `ty` from the device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the address is out of bounds.
    pub fn read_scalar(&self, ty: Ty, ptr: DevicePtr) -> Result<u64, SimError> {
        self.global.read(ty, ptr.addr)
    }

    /// Write one scalar of type `ty` (raw register image) to the
    /// device.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the address is out of bounds.
    pub fn write_scalar(&mut self, ty: Ty, ptr: DevicePtr, raw: u64) -> Result<(), SimError> {
        self.global.write(ty, ptr.addr, raw)
    }

    /// Zero `bytes` at `ptr` (like `cudaMemset`).
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryFault`] if the range is out of bounds.
    pub fn memset_zero(&mut self, ptr: DevicePtr, bytes: u64) -> Result<(), SimError> {
        self.global.write_bytes(ptr.addr, &vec![0u8; bytes as usize])
    }

    /// Launch a kernel, execute it functionally, and advance the
    /// modelled clock.
    ///
    /// # Errors
    ///
    /// Propagates validation and execution errors from the
    /// interpreter.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        dims: LaunchDims,
        args: &[Arg],
        selection: BlockSelection,
        opts: TimingOptions,
    ) -> Result<&LaunchReport, SimError> {
        let mut session = match &self.fault_plan {
            Some(plan) if !plan.is_empty() => FaultSession::new(
                &plan.derive(self.fault_launch_index),
                self.arch.shared_atomic.is_software(),
            ),
            _ => FaultSession::disabled(),
        };
        self.fault_launch_index += 1;
        let mut profile = self.profiling.then(|| LaunchProfile::for_kernel(kernel));
        let mut sanitizer = self.sanitizing.then(|| LaunchSanitizer::for_kernel(kernel));
        let mut cfg = ExecConfig::builder()
            .exec_mode(self.exec_mode)
            .instr_budget(self.instr_budget)
            .faults(&mut session);
        if let Some(p) = profile.as_mut() {
            cfg = cfg.profile(p);
        }
        if let Some(s) = sanitizer.as_mut() {
            cfg = cfg.sanitize(s);
        }
        let outcome = run_kernel_cfg(
            kernel,
            &self.arch,
            dims,
            args,
            &mut self.global,
            selection,
            cfg.build(),
        );
        // Keep the injection record even when the launch errored — a
        // trap caused by an injected fault must stay attributable.
        self.fault_log.extend(session.take_log());
        let outcome = outcome?;
        let timing = time_launch(&self.arch, kernel, dims, &outcome.stats, opts);
        if self.profiling {
            self.trace.push_launch(
                &kernel.name,
                self.elapsed_ns,
                timing.time_ns,
                crate::profile::LaunchShape {
                    blocks: outcome.stats.blocks,
                    warps_per_block: outcome.stats.warps_per_block,
                    sm_count: self.arch.sm_count,
                },
                profile.as_ref(),
            );
        }
        self.elapsed_ns += timing.time_ns;
        self.launches.push(LaunchReport {
            kernel: kernel.name.clone(),
            stats: outcome.stats,
            timing,
            exact: outcome.exact,
            profile,
            races: sanitizer.map(LaunchSanitizer::into_report),
        });
        Ok(self.launches.last().unwrap())
    }

    /// Launch with exact (all-blocks) execution and default options.
    ///
    /// # Errors
    ///
    /// See [`Device::launch`].
    pub fn launch_simple(
        &mut self,
        kernel: &Kernel,
        dims: LaunchDims,
        args: &[Arg],
    ) -> Result<&LaunchReport, SimError> {
        self.launch(kernel, dims, args, BlockSelection::All, TimingOptions::default())
    }

    /// Add host-side time to the modelled clock (e.g. a baseline's
    /// temp-storage allocation or a device synchronization).
    pub fn host_overhead(&mut self, ns: f64) {
        self.elapsed_ns += ns;
    }

    /// Modelled time elapsed since creation or the last
    /// [`Device::reset_clock`].
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Reset the modelled clock (the launch log is kept). The
    /// scheduler trace is anchored to the clock, so it restarts too.
    pub fn reset_clock(&mut self) {
        self.elapsed_ns = 0.0;
        self.trace.events.clear();
    }

    /// Reports for every launch so far, in order.
    pub fn launches(&self) -> &[LaunchReport] {
        &self.launches
    }

    /// Clear the launch log.
    pub fn clear_launches(&mut self) {
        self.launches.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Address, AtomOp, BinOp, Operand, Scope, Space, Sreg};
    use crate::kernel::KernelBuilder;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut d = Device::new(ArchConfig::kepler_k40c());
        let a = d.alloc(100).unwrap();
        let b = d.alloc(100).unwrap();
        assert_eq!(a.addr % ALLOC_ALIGN, 0);
        assert_eq!(b.addr % ALLOC_ALIGN, 0);
        assert!(b.addr >= a.addr + 100);
    }

    #[test]
    fn upload_download_round_trip() {
        let mut d = Device::new(ArchConfig::maxwell_gtx980());
        let p = d.alloc_f32(8).unwrap();
        let data = [0.5f32, -1.0, 2.0, 3.5, 0.0, 9.25, -7.5, 1e-3];
        d.upload_f32(p, &data).unwrap();
        assert_eq!(d.download_f32(p, 8).unwrap(), data);
    }

    #[test]
    fn launch_advances_clock_and_logs() {
        let mut d = Device::new(ArchConfig::pascal_p100());
        let out = d.alloc_f32(1).unwrap();
        let mut b = KernelBuilder::new("one");
        let pp = b.param_ptr();
        let r = b.reg();
        b.mov(Ty::F32, r, Operand::ImmF(1.0));
        b.red(
            Space::Global,
            Scope::Gpu,
            AtomOp::Add,
            Ty::F32,
            Address::new(Operand::Param(pp), 0),
            Operand::Reg(r),
        );
        b.exit();
        let k = b.finish().unwrap();
        let t0 = d.elapsed_ns();
        d.launch_simple(&k, LaunchDims::new(2, 32), &[out.arg()]).unwrap();
        assert!(d.elapsed_ns() > t0);
        assert_eq!(d.launches().len(), 1);
        let total = f32::from_bits(d.read_scalar(Ty::F32, out).unwrap() as u32);
        assert_eq!(total, 64.0);
    }

    #[test]
    fn host_overhead_and_reset() {
        let mut d = Device::new(ArchConfig::kepler_k40c());
        d.host_overhead(123.0);
        assert_eq!(d.elapsed_ns(), 123.0);
        d.reset_clock();
        assert_eq!(d.elapsed_ns(), 0.0);
    }

    #[test]
    fn offset_pointer() {
        let p = DevicePtr { addr: 256, len: 64 };
        let q = p.offset(16);
        assert_eq!(q.addr, 272);
        assert_eq!(q.len, 48);
    }

    #[test]
    fn elementwise_sum_kernel_matches_host() {
        // out = a + b, then check values: exercises Device end-to-end.
        let mut d = Device::new(ArchConfig::maxwell_gtx980());
        let n = 256u64;
        let a = d.alloc_f32(n).unwrap();
        let bb = d.alloc_f32(n).unwrap();
        let o = d.alloc_f32(n).unwrap();
        let av: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let bv: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        d.upload_f32(a, &av).unwrap();
        d.upload_f32(bb, &bv).unwrap();

        let mut kb = KernelBuilder::new("vadd");
        let pa = kb.param_ptr();
        let pb = kb.param_ptr();
        let po = kb.param_ptr();
        let g = kb.reg();
        let ad = kb.reg();
        let x = kb.reg();
        let y = kb.reg();
        kb.mad(Ty::U32, g, Operand::Sreg(Sreg::CtaIdX), Operand::Sreg(Sreg::NtidX), Operand::Sreg(Sreg::TidX));
        kb.cvt(Ty::U32, Ty::U64, ad, Operand::Reg(g));
        kb.bin(BinOp::Mul, Ty::U64, ad, Operand::Reg(ad), Operand::ImmI(4));
        let a1 = kb.reg();
        kb.bin(BinOp::Add, Ty::U64, a1, Operand::Reg(ad), Operand::Param(pa));
        kb.ld(Space::Global, Ty::F32, x, Address::reg(a1));
        kb.bin(BinOp::Add, Ty::U64, a1, Operand::Reg(ad), Operand::Param(pb));
        kb.ld(Space::Global, Ty::F32, y, Address::reg(a1));
        kb.bin(BinOp::Add, Ty::F32, x, Operand::Reg(x), Operand::Reg(y));
        kb.bin(BinOp::Add, Ty::U64, a1, Operand::Reg(ad), Operand::Param(po));
        kb.st(Space::Global, Ty::F32, x, Address::reg(a1));
        kb.exit();
        let k = kb.finish().unwrap();
        d.launch_simple(&k, LaunchDims::new(4, 64), &[a.arg(), bb.arg(), o.arg()]).unwrap();
        let out = d.download_f32(o, n).unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32);
        }
    }
}
