//! Closure-threaded compilation tier on top of the predecoded µop
//! stream.
//!
//! The µop engine ([`crate::uop`]) already removed per-issue operand
//! resolution, but every issue still pays a Rust `match` over the µop
//! enum plus the per-issue budget/fault/statistics bookkeeping. This
//! module lowers a kernel's [`UopProgram`] once more — once per kernel,
//! shared across clones via the same `OnceLock` seam as the µop cache —
//! into a flat array of monomorphic `Fn(&mut JitCtx) -> Result<..>`
//! closures:
//!
//! * **Pre-resolved operands.** Each closure captures its operands
//!   (`Src` values with immediates already converted to raw register
//!   images at decode time) by value; executing a µop is one indirect
//!   call with no enum dispatch. Hot ALU µops go further: the operand
//!   kinds and the `(op, ty)` pair are monomorphized into the closure
//!   type, so the per-lane body is a branch-free arithmetic kernel the
//!   compiler can unroll and vectorize.
//! * **Register-major register file.** Within a compiled block the
//!   register and predicate files are *reinterpreted* in register-major
//!   layout (`regs[r * block_dim + t]` instead of the engine-shared
//!   `regs[t * num_regs + r]`): a warp's view of one register is a
//!   contiguous row, so fully-active lane loops stream over adjacent
//!   memory and uniform broadcasts become a single `fill`. The layout
//!   is private to the tier — the buffers are zero-filled per block and
//!   never read across the engine boundary — so the reinterpretation is
//!   invisible to every other tier.
//! * **Superinstructions.** Straight-line runs of compute/memory µops
//!   execute as one dispatch: entering a run at any pc walks the flat
//!   closure array from that pc to the next boundary (one indirect
//!   call per µop over contiguous `Arc`s — no nested call frames, no
//!   per-node chain allocations), and the per-issue budget +
//!   statistics bookkeeping for the run is batched into one update
//!   (exact because the active mask cannot change inside a run). Runs
//!   end at control µops (`Bar`/`Bra`/`BraIf`/`Exit`/`Trap`) *and* at
//!   every branch reconvergence target, because the divergence-stack
//!   pop loop must observe `pc == reconv` before the µop at the
//!   reconvergence point issues.
//! * **Uniformity-lattice specialization.** Compute µops whose sources
//!   are statically uniform (immediates, constants, the warp id)
//!   compile to scalar once-per-warp closures with no runtime check;
//!   µops with statically lane-varying sources (`%tid`, `%laneid`)
//!   compile to per-lane loops; only µops with register sources keep
//!   the dynamic uniformity test. All variants maintain the dynamic
//!   lattice exactly as the µop engine does.
//!
//! The compiled tier carries **no observability hooks**: profiling,
//! race sanitizing and live fault-injection sessions fall back to the
//! µop engine at launch granularity (see `run_kernel_cfg`), so every
//! existing instrumentation layer keeps working unchanged. Results,
//! statistics and modelled time are bit-identical to both other tiers
//! by construction, enforced by the same differential suites.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::error::{SimError, TrapKind};
use crate::exec::{
    eval_atom, eval_bin, eval_cmp, eval_cvt, from_f, record_mem, to_f, trap_at, truncate, BlockCtx,
    StackEntry, WarpStop, MAX_LANES, RECONV_NONE,
};
use crate::hash::FxHashMap;
use crate::isa::{BinOp, InstrClass, PredId, RegId, ShflMode, Space, Ty};
use crate::kernel::Kernel;
use crate::memory::{LinearMemory, SMEM_BANKS, TRANSACTION_BYTES};
use crate::stats::ClassCounts;
use crate::uop::{
    pred_uniform, set_pred_uni, set_reg_uni, src_uniform, Src, StaticTrap, Uop, UopProgram, UopWarp,
};

/// Everything a compiled µop closure may touch, bundled so the closure
/// signature stays a single-argument `Fn` (one indirect call).
pub(crate) struct JitCtx<'c, 'a> {
    pub(crate) ctx: &'c mut BlockCtx<'a>,
    pub(crate) global: &'c mut LinearMemory,
    pub(crate) global_chains: &'c mut FxHashMap<u64, u64>,
    pub(crate) consts: &'c [u64],
    pub(crate) warp: &'c mut UopWarp,
    /// Active-lane mask for the current run (invariant within it).
    pub(crate) active: u32,
    /// First thread index of the warp (`warp_id * warp_size`).
    pub(crate) base: u32,
    /// Row stride of the register-major reinterpretation (`block_dim`).
    pub(crate) stride: usize,
}

impl JitCtx<'_, '_> {
    /// Read register `r` of thread `t` (register-major layout).
    #[inline(always)]
    fn reg(&self, t: u32, r: RegId) -> u64 {
        self.ctx.regs[r as usize * self.stride + t as usize]
    }

    /// Write register `r` of thread `t` (register-major layout).
    #[inline(always)]
    fn set_reg(&mut self, t: u32, r: RegId, v: u64) {
        self.ctx.regs[r as usize * self.stride + t as usize] = v;
    }

    /// Read predicate `p` of thread `t` (register-major layout).
    #[inline(always)]
    fn pred(&self, t: u32, p: PredId) -> bool {
        self.ctx.preds[p as usize * self.stride + t as usize]
    }

    /// Write predicate `p` of thread `t` (register-major layout).
    #[inline(always)]
    fn set_pred(&mut self, t: u32, p: PredId, v: bool) {
        self.ctx.preds[p as usize * self.stride + t as usize] = v;
    }

    /// Evaluate a [`Src`] for lane `l` of the current warp.
    #[inline(always)]
    fn src(&self, l: u32, s: Src) -> u64 {
        match s {
            Src::Reg(r) => self.reg(self.base + l, r),
            Src::Imm(v) => v,
            Src::Const(i) => self.consts[i as usize],
            Src::Tid => u64::from(self.base + l),
            Src::Lane => u64::from(l),
            Src::WarpId => u64::from(self.warp.warp_id),
        }
    }

    /// Broadcast a scalarized register result to every active lane and
    /// update the uniformity bit, exactly like the µop engine's
    /// `write_reg_all`; a fully-active warp writes one contiguous row
    /// slice.
    #[inline]
    fn write_reg_all(&mut self, dst: RegId, v: u64) {
        let full = self.active == self.warp.full;
        if full {
            let s = dst as usize * self.stride + self.base as usize;
            let k = self.warp.full.count_ones() as usize;
            self.ctx.regs[s..s + k].fill(v);
        } else {
            let mut m = self.active;
            while m != 0 {
                let l = m.trailing_zeros();
                self.set_reg(self.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_reg_uni(self.warp, dst, full);
    }

    /// Broadcast a scalarized predicate result to every active lane
    /// (see [`JitCtx::write_reg_all`]).
    #[inline]
    fn write_pred_all(&mut self, dst: PredId, v: bool) {
        let full = self.active == self.warp.full;
        if full {
            let s = dst as usize * self.stride + self.base as usize;
            let k = self.warp.full.count_ones() as usize;
            self.ctx.preds[s..s + k].fill(v);
        } else {
            let mut m = self.active;
            while m != 0 {
                let l = m.trailing_zeros();
                self.set_pred(self.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_pred_uni(self.warp, dst, full);
    }
}

/// Sort-free twin of [`crate::memory::coalesced_transactions`] for
/// accesses already in non-decreasing `(address, size)` order. The
/// shared helper sorts its `(first, last)` segment ranges before the
/// union scan; per-issue sizes are constant here and the lowering
/// checked the addresses while filling the buffer, so the ranges are
/// already sorted and the scan alone is bit-identical.
fn coalesced_transactions_ascending(accesses: &[(u64, u64)]) -> u64 {
    let mut count = 0u64;
    let mut covered_to = u64::MAX; // highest segment counted so far
    for &(addr, size) in accesses {
        let first = addr / TRANSACTION_BYTES;
        let last = (addr + size.max(1) - 1) / TRANSACTION_BYTES;
        if covered_to != u64::MAX && first <= covered_to {
            if last > covered_to {
                count += last - covered_to;
                covered_to = last;
            }
        } else {
            count += last - first + 1;
            covered_to = last;
        }
    }
    count
}

/// Sort-free twin of [`crate::memory::bank_conflict_degree`] for
/// addresses already in non-decreasing order: word indices are then
/// non-decreasing too, so duplicates are adjacent and the sorted
/// dedup-scan of the shared helper runs unchanged on the raw input.
fn bank_conflict_degree_ascending(accesses: &[(u64, u64)]) -> u64 {
    let mut per_bank = [0u64; SMEM_BANKS as usize];
    let mut degree = 1u64;
    let mut prev = u64::MAX;
    for &(a, _) in accesses {
        let word = a / 4;
        if word == prev {
            continue; // broadcast: same word, no extra conflict
        }
        prev = word;
        let bank = (word % SMEM_BANKS) as usize;
        per_bank[bank] += 1;
        degree = degree.max(per_bank[bank]);
    }
    degree
}

/// Jit-side [`record_mem`]: when the lowering observed the per-lane
/// addresses in non-decreasing order (every generated reduction — lanes
/// index consecutive elements), the sorts inside the shared analyses
/// are identities and are skipped. The per-site profile update is
/// statically absent under this tier (hook-fallback rule), so only the
/// launch-wide counters are touched; any non-monotone access pattern
/// falls back to the shared helper unchanged.
fn record_mem_jit(
    ctx: &mut BlockCtx<'_>,
    pc: usize,
    space: Space,
    is_load: bool,
    accesses: &[(u64, u64)],
    ascending: bool,
) {
    if !ascending {
        record_mem(ctx, pc, space, is_load, accesses);
        return;
    }
    match space {
        Space::Global => {
            let tx = coalesced_transactions_ascending(accesses);
            let useful: u64 = accesses.iter().map(|&(_, s)| s).sum();
            if is_load {
                ctx.stats.global_load_transactions += tx;
                ctx.stats.global_load_bytes_useful += useful;
            } else {
                ctx.stats.global_store_transactions += tx;
                ctx.stats.global_store_bytes_useful += useful;
            }
        }
        Space::Shared => {
            ctx.stats.shared_accesses += 1;
            let degree = bank_conflict_degree_ascending(accesses);
            ctx.stats.shared_bank_conflict_cycles += degree.saturating_sub(1);
        }
    }
}

/// Closed-form memory statistics for a whole-warp unit-stride access
/// (`k` lanes at `a0 + l*req`, `req ∈ {4, 8}`, `a0` `req`-aligned), as
/// computed by the whole-warp fast paths below. Bit-identical to
/// [`record_mem`] on the same access list:
///
/// * Coalescing: the accesses cover `[a0, a0 + k*req)` without gaps,
///   so the segment union is one interval and the transaction count is
///   its segment span.
/// * Bank conflicts: the word indices `a0/4 + l*req/4` are distinct
///   and consecutive (stride 1 or 2), so with at most 32 lanes each
///   bank sees at most one word for 4-byte accesses and at most
///   `ceil(k/16)` words for 8-byte accesses.
#[allow(clippy::too_many_arguments)]
fn strided_mem_stats(
    ctx: &mut BlockCtx<'_>,
    pc: usize,
    space: Space,
    is_load: bool,
    a0: u64,
    k: usize,
    stride: u64,
    req: u64,
) {
    if stride == req {
        // Unit stride: the warp reads one contiguous range, so the
        // transaction count is the range's segment span and the bank
        // conflict degree has a closed form.
        let bytes = k as u64 * req;
        match space {
            Space::Global => {
                let tx = (a0 + bytes - 1) / TRANSACTION_BYTES - a0 / TRANSACTION_BYTES + 1;
                if is_load {
                    ctx.stats.global_load_transactions += tx;
                    ctx.stats.global_load_bytes_useful += bytes;
                } else {
                    ctx.stats.global_store_transactions += tx;
                    ctx.stats.global_store_bytes_useful += bytes;
                }
            }
            Space::Shared => {
                ctx.stats.shared_accesses += 1;
                let degree = if req == 4 { 1 } else { (k as u64).div_ceil(16) };
                ctx.stats.shared_bank_conflict_cycles += degree - 1;
            }
        }
        return;
    }
    // Any other stride: replay the per-lane access list through the
    // sort-free ascending scan (lane addresses are non-decreasing by
    // construction of the fast path).
    let mut buf = [(0u64, 0u64); MAX_LANES];
    for (l, slot) in buf[..k].iter_mut().enumerate() {
        *slot = (a0 + l as u64 * stride, req);
    }
    record_mem_jit(ctx, pc, space, is_load, &buf[..k], true);
}

/// Byte span of `k` lane accesses of `elem` bytes placed `stride`
/// apart from `a0`, or `None` when the range wraps the address space
/// (the per-lane path then reproduces the exact trap).
fn strided_span(a0: u64, k: usize, stride: u64, elem: u64) -> Option<u64> {
    let last = stride.checked_mul(k as u64 - 1).and_then(|d| a0.checked_add(d))?;
    (last - a0).checked_add(elem)
}

/// Whole-warp strided load: `k` `elem`-byte values `stride` bytes
/// apart starting at `a0` into `vals`, bit-extended exactly like
/// [`LinearMemory::read`]. Returns `false` (leaving `vals` untouched)
/// when the range is out of bounds — the caller then replays the
/// engine's per-lane path for exact partial-effect and trap behavior.
/// `stride == elem` is the coalesced unit-stride shape; larger strides
/// cover thread-distributed (coarsened) access rows.
fn load_row(mem: &LinearMemory, a0: u64, k: usize, stride: u64, elem: u64, vals: &mut [u64]) -> bool {
    let Some(span) = strided_span(a0, k, stride, elem) else { return false };
    let Some(bytes) = mem.slice_at(a0, span) else { return false };
    if elem == 4 {
        for (l, v) in vals[..k].iter_mut().enumerate() {
            let o = l * stride as usize;
            *v = u64::from(u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap()));
        }
    } else {
        for (l, v) in vals[..k].iter_mut().enumerate() {
            let o = l * stride as usize;
            *v = u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        }
    }
    true
}

/// Whole-warp strided store (see [`load_row`]): the low `elem` bytes
/// of each value in `vals`, matching [`LinearMemory::write`]. Lanes
/// scatter in ascending order, so a zero stride (every lane hitting
/// one address) resolves to the last lane exactly like the engine's
/// lane-order writes.
fn store_row(mem: &mut LinearMemory, a0: u64, k: usize, stride: u64, elem: u64, vals: &[u64]) -> bool {
    let Some(span) = strided_span(a0, k, stride, elem) else { return false };
    let Some(bytes) = mem.slice_at_mut(a0, span) else { return false };
    if elem == 4 {
        for (l, &v) in vals[..k].iter().enumerate() {
            let o = l * stride as usize;
            bytes[o..o + 4].copy_from_slice(&(v as u32).to_le_bytes());
        }
    } else {
        for (l, &v) in vals[..k].iter().enumerate() {
            let o = l * stride as usize;
            bytes[o..o + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
    true
}

/// A compiled µop (or fused run of µops): one monomorphic closure with
/// pre-resolved operands.
type OpFn = Arc<dyn Fn(&mut JitCtx<'_, '_>) -> Result<(), SimError> + Send + Sync>;

/// A fused straight-line region entered at a specific pc. The region's
/// body lives in [`JitProgram::ops`]`[pc..end]`; the executor walks
/// that slice directly.
pub(crate) struct RunStep {
    /// Number of µops in the run (`end - pc`).
    pub(crate) len: u64,
    /// First pc past the run (a boundary: control µop, reconvergence
    /// target, or the end of the program).
    pub(crate) end: usize,
    /// Per-class issue counts of the run, pre-summed for the batched
    /// statistics update.
    pub(crate) counts: ClassCounts,
}

/// One compiled execution step, indexed by pc. Control µops keep their
/// data-driven form (the divergence stack needs their fields); every
/// other pc is the entry point of a [`RunStep`].
pub(crate) enum Step {
    /// A fused straight-line region starting at this pc.
    Run(RunStep),
    /// Block-wide barrier.
    Bar,
    /// Unconditional branch.
    Bra {
        /// Branch target pc.
        target: usize,
    },
    /// Conditional branch with pre-linked reconvergence.
    BraIf {
        /// Guarding predicate register.
        pred: PredId,
        /// Branch when the predicate equals this value.
        when: bool,
        /// Branch target pc.
        target: usize,
        /// Reconvergence pc (`RECONV_NONE` if none).
        reconv: usize,
    },
    /// Thread exit.
    Exit,
    /// Statically-certain illegal combination.
    Trap {
        /// What made the µop statically illegal.
        what: StaticTrap,
    },
}

/// A kernel compiled to closure-threaded form.
///
/// Built once per kernel by [`Kernel::jit`] and shared by every clone
/// (see [`JitCache`]). The program is architecture-independent: the
/// warp size enters execution through the per-block constant table and
/// runtime masks, so one compilation serves every [`crate::arch::ArchConfig`]
/// and exec-config — the `(kernel, arch, exec-config)` cache key
/// degenerates to the kernel alone.
pub struct JitProgram {
    pub(crate) steps: Vec<Step>,
    /// The compiled closure per pc (`None` at control pcs, which
    /// execute as [`Step`]s). Runs execute by walking `ops[pc..end]`.
    pub(crate) ops: Vec<Option<OpFn>>,
    /// Instruction class per pc (for per-µop statistics on the slow
    /// path).
    pub(crate) classes: Vec<InstrClass>,
    /// Parameter count (constant-table layout, as in [`UopProgram`]).
    pub(crate) n_params: u16,
}

impl JitProgram {
    /// Number of compiled steps (equal to the kernel's instruction
    /// count).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program is empty (an invalid kernel; retained for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let runs = self.steps.iter().filter(|s| matches!(s, Step::Run(_))).count();
        write!(f, "JitProgram({} steps, {} run entries)", self.steps.len(), runs)
    }
}

/// Lazily-initialized compiled program attached to a [`Kernel`].
///
/// Like [`UopCache`](crate::uop::UopCache), the compiled form depends
/// only on the immutable instruction stream, so it is built at most
/// once per kernel and shared by every clone.
#[derive(Default)]
pub struct JitCache(OnceLock<Arc<JitProgram>>);

impl JitCache {
    /// Whether the compiled program has been built yet.
    pub fn is_built(&self) -> bool {
        self.0.get().is_some()
    }

    pub(crate) fn get_or_compile(&self, kernel: &Kernel) -> &JitProgram {
        self.0.get_or_init(|| Arc::new(compile(kernel.uops())))
    }
}

impl Clone for JitCache {
    fn clone(&self) -> Self {
        let out = JitCache::default();
        if let Some(prog) = self.0.get() {
            let _ = out.0.set(Arc::clone(prog));
        }
        out
    }
}

impl fmt::Debug for JitCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_built() { "JitCache(built)" } else { "JitCache(empty)" })
    }
}

/// Static uniformity of one operand reader, folded into the closure
/// type so the always/never cases carry no runtime check.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StaticUni {
    /// Uniform for every warp state (immediate, constant, warp id).
    Always,
    /// Lane-varying for every warp state (`%tid`, `%laneid`).
    Never,
    /// Depends on the dynamic lattice (register sources).
    Dynamic,
}

/// Meet of two operand classifications: any lane-varying operand makes
/// the µop lane-varying; all-uniform stays uniform; otherwise the
/// dynamic lattice decides.
const fn combine(a: StaticUni, b: StaticUni) -> StaticUni {
    match (a, b) {
        (StaticUni::Never, _) | (_, StaticUni::Never) => StaticUni::Never,
        (StaticUni::Always, StaticUni::Always) => StaticUni::Always,
        _ => StaticUni::Dynamic,
    }
}

/// A monomorphic operand reader: one [`Src`] kind lifted to a type so
/// the per-lane load compiles to a direct array index (or a constant)
/// instead of an enum dispatch.
trait Rd: Copy + Send + Sync + 'static {
    /// Static uniformity classification of this operand kind.
    const UNI: StaticUni;

    /// The operand's raw image for lane `l`.
    fn at(self, j: &JitCtx<'_, '_>, l: u32) -> u64;

    /// Whether the operand is uniform under the current lattice.
    fn uniform(self, warp: &UopWarp) -> bool;

    /// Gather the operand's images for lanes `0..k` of a fully-active
    /// warp into `buf` (contiguous fast path).
    #[inline(always)]
    fn load(self, j: &JitCtx<'_, '_>, k: u32, buf: &mut [u64; MAX_LANES]) {
        for (l, slot) in buf.iter_mut().take(k as usize).enumerate() {
            *slot = self.at(j, l as u32);
        }
    }

    /// Gather the operand's images for all [`MAX_LANES`] lanes of a
    /// full-width warp. Unlike [`Rd::load`] the array is built whole —
    /// no zero-fill pass, and downstream loops get a constant trip
    /// count the compiler can unroll and vectorize.
    #[inline(always)]
    fn arr(self, j: &JitCtx<'_, '_>) -> [u64; MAX_LANES] {
        std::array::from_fn(|l| self.at(j, l as u32))
    }
}

#[derive(Clone, Copy)]
struct RdReg(RegId);

impl Rd for RdReg {
    const UNI: StaticUni = StaticUni::Dynamic;

    #[inline(always)]
    fn at(self, j: &JitCtx<'_, '_>, l: u32) -> u64 {
        j.reg(j.base + l, self.0)
    }

    #[inline(always)]
    fn uniform(self, warp: &UopWarp) -> bool {
        src_uniform(warp, Src::Reg(self.0))
    }

    #[inline(always)]
    fn load(self, j: &JitCtx<'_, '_>, k: u32, buf: &mut [u64; MAX_LANES]) {
        let s = self.0 as usize * j.stride + j.base as usize;
        buf[..k as usize].copy_from_slice(&j.ctx.regs[s..s + k as usize]);
    }

    #[inline(always)]
    fn arr(self, j: &JitCtx<'_, '_>) -> [u64; MAX_LANES] {
        let s = self.0 as usize * j.stride + j.base as usize;
        j.ctx.regs[s..s + MAX_LANES].try_into().expect("full-width register row")
    }
}

#[derive(Clone, Copy)]
struct RdImm(u64);

impl Rd for RdImm {
    const UNI: StaticUni = StaticUni::Always;

    #[inline(always)]
    fn at(self, _j: &JitCtx<'_, '_>, _l: u32) -> u64 {
        self.0
    }

    #[inline(always)]
    fn uniform(self, _warp: &UopWarp) -> bool {
        true
    }

    #[inline(always)]
    fn load(self, _j: &JitCtx<'_, '_>, k: u32, buf: &mut [u64; MAX_LANES]) {
        buf[..k as usize].fill(self.0);
    }

    #[inline(always)]
    fn arr(self, _j: &JitCtx<'_, '_>) -> [u64; MAX_LANES] {
        [self.0; MAX_LANES]
    }
}

#[derive(Clone, Copy)]
struct RdConst(u16);

impl Rd for RdConst {
    const UNI: StaticUni = StaticUni::Always;

    #[inline(always)]
    fn at(self, j: &JitCtx<'_, '_>, _l: u32) -> u64 {
        j.consts[self.0 as usize]
    }

    #[inline(always)]
    fn uniform(self, _warp: &UopWarp) -> bool {
        true
    }

    #[inline(always)]
    fn load(self, j: &JitCtx<'_, '_>, k: u32, buf: &mut [u64; MAX_LANES]) {
        buf[..k as usize].fill(j.consts[self.0 as usize]);
    }

    #[inline(always)]
    fn arr(self, j: &JitCtx<'_, '_>) -> [u64; MAX_LANES] {
        [j.consts[self.0 as usize]; MAX_LANES]
    }
}

#[derive(Clone, Copy)]
struct RdTid;

impl Rd for RdTid {
    const UNI: StaticUni = StaticUni::Never;

    #[inline(always)]
    fn at(self, j: &JitCtx<'_, '_>, l: u32) -> u64 {
        u64::from(j.base + l)
    }

    #[inline(always)]
    fn uniform(self, _warp: &UopWarp) -> bool {
        false
    }
}

#[derive(Clone, Copy)]
struct RdLane;

impl Rd for RdLane {
    const UNI: StaticUni = StaticUni::Never;

    #[inline(always)]
    fn at(self, _j: &JitCtx<'_, '_>, l: u32) -> u64 {
        u64::from(l)
    }

    #[inline(always)]
    fn uniform(self, _warp: &UopWarp) -> bool {
        false
    }
}

#[derive(Clone, Copy)]
struct RdWid;

impl Rd for RdWid {
    const UNI: StaticUni = StaticUni::Always;

    #[inline(always)]
    fn at(self, j: &JitCtx<'_, '_>, _l: u32) -> u64 {
        u64::from(j.warp.warp_id)
    }

    #[inline(always)]
    fn uniform(self, _warp: &UopWarp) -> bool {
        true
    }
}

/// Fallback reader for operand-kind combinations not worth their own
/// monomorphization; keeps the enum dispatch but still benefits from
/// the contiguous row layout.
#[derive(Clone, Copy)]
struct RdAny(Src);

impl Rd for RdAny {
    const UNI: StaticUni = StaticUni::Dynamic;

    #[inline(always)]
    fn at(self, j: &JitCtx<'_, '_>, l: u32) -> u64 {
        j.src(l, self.0)
    }

    #[inline(always)]
    fn uniform(self, warp: &UopWarp) -> bool {
        src_uniform(warp, self.0)
    }
}

/// Dispatch one [`Src`] to its monomorphic reader.
macro_rules! rd {
    ($s:expr, |$a:ident| $body:expr) => {
        match $s {
            Src::Reg(r) => {
                let $a = RdReg(r);
                $body
            }
            Src::Imm(v) => {
                let $a = RdImm(v);
                $body
            }
            Src::Const(i) => {
                let $a = RdConst(i);
                $body
            }
            Src::Tid => {
                let $a = RdTid;
                $body
            }
            Src::Lane => {
                let $a = RdLane;
                $body
            }
            Src::WarpId => {
                let $a = RdWid;
                $body
            }
        }
    };
}

/// Dispatch a source pair to monomorphic readers. Only the combinations
/// that dominate generated reduction kernels get their own types; the
/// rest fall back to [`RdAny`] (correct, just not branch-free).
macro_rules! rd2 {
    ($sa:expr, $sb:expr, |$a:ident, $b:ident| $body:expr) => {
        match ($sa, $sb) {
            (Src::Reg(ra), Src::Reg(rb)) => {
                let $a = RdReg(ra);
                let $b = RdReg(rb);
                $body
            }
            (Src::Reg(ra), Src::Imm(ib)) => {
                let $a = RdReg(ra);
                let $b = RdImm(ib);
                $body
            }
            (Src::Reg(ra), Src::Const(cb)) => {
                let $a = RdReg(ra);
                let $b = RdConst(cb);
                $body
            }
            (Src::Const(ca), Src::Reg(rb)) => {
                let $a = RdConst(ca);
                let $b = RdReg(rb);
                $body
            }
            (sa, sb) => {
                let $a = RdAny(sa);
                let $b = RdAny(sb);
                $body
            }
        }
    };
}

/// Dispatch a source triple (multiply-add) to monomorphic readers.
macro_rules! rd3 {
    ($sa:expr, $sb:expr, $sc:expr, |$a:ident, $b:ident, $c:ident| $body:expr) => {
        match ($sa, $sb, $sc) {
            (Src::Reg(ra), Src::Reg(rb), Src::Reg(rc)) => {
                let $a = RdReg(ra);
                let $b = RdReg(rb);
                let $c = RdReg(rc);
                $body
            }
            (Src::Reg(ra), Src::Const(cb), Src::Reg(rc)) => {
                let $a = RdReg(ra);
                let $b = RdConst(cb);
                let $c = RdReg(rc);
                $body
            }
            (Src::Reg(ra), Src::Imm(ib), Src::Reg(rc)) => {
                let $a = RdReg(ra);
                let $b = RdImm(ib);
                let $c = RdReg(rc);
                $body
            }
            (sa, sb, sc) => {
                let $a = RdAny(sa);
                let $b = RdAny(sb);
                let $c = RdAny(sc);
                $body
            }
        }
    };
}

/// Infallible [`eval_bin`]: the only fallible combinations (bitwise or
/// shift ops on float types) are value-independent and are lowered to
/// [`Step::Trap`] at decode time, so a compiled ALU body can never
/// observe an error. Division and remainder by zero are defined (zero).
#[inline(always)]
fn bin_inf(op: BinOp, ty: Ty, x: u64, y: u64) -> u64 {
    match eval_bin(op, ty, x, y) {
        Ok(v) => v,
        Err(_) => unreachable!("float-bitwise µops decode to Step::Trap"),
    }
}

/// Compile a register-writing µop with one source through the
/// uniformity classifier; `f` maps a lane's source image to the value
/// written (infallible, see [`bin_inf`]).
fn unary_build<A, F>(a: A, dst: RegId, f: F) -> OpFn
where
    A: Rd,
    F: Fn(u64) -> u64 + Send + Sync + 'static,
{
    let scalar = move |j: &mut JitCtx<'_, '_>, f: &F| {
        let l0 = j.active.trailing_zeros();
        let v = f(a.at(j, l0));
        j.write_reg_all(dst, v);
    };
    let lanes = move |j: &mut JitCtx<'_, '_>, f: &F| {
        if j.active == j.warp.full {
            let k = j.warp.full.count_ones();
            let s = dst as usize * j.stride + j.base as usize;
            if k as usize == MAX_LANES {
                let xa = a.arr(j);
                let out: &mut [u64; MAX_LANES] =
                    (&mut j.ctx.regs[s..s + MAX_LANES]).try_into().expect("full-width row");
                for (o, &x) in out.iter_mut().zip(&xa) {
                    *o = f(x);
                }
                set_reg_uni(j.warp, dst, false);
                return;
            }
            let mut xa = [0u64; MAX_LANES];
            a.load(j, k, &mut xa);
            for (o, &x) in j.ctx.regs[s..s + k as usize].iter_mut().zip(&xa) {
                *o = f(x);
            }
        } else {
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let v = f(a.at(j, l));
                j.set_reg(j.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_reg_uni(j.warp, dst, false);
    };
    match A::UNI {
        StaticUni::Always => Arc::new(move |j| {
            scalar(j, &f);
            Ok(())
        }),
        StaticUni::Never => Arc::new(move |j| {
            lanes(j, &f);
            Ok(())
        }),
        StaticUni::Dynamic => Arc::new(move |j| {
            if a.uniform(j.warp) {
                scalar(j, &f);
            } else {
                lanes(j, &f);
            }
            Ok(())
        }),
    }
}

/// Compile a register-writing µop with two sources (see
/// [`unary_build`]). The fully-active path stages both operand rows
/// into stack buffers and streams the result into the destination row,
/// which vectorizes when `f` is branch-free.
fn bin_build<A, B, F>(a: A, b: B, dst: RegId, f: F) -> OpFn
where
    A: Rd,
    B: Rd,
    F: Fn(u64, u64) -> u64 + Send + Sync + 'static,
{
    let scalar = move |j: &mut JitCtx<'_, '_>, f: &F| {
        let l0 = j.active.trailing_zeros();
        let v = f(a.at(j, l0), b.at(j, l0));
        j.write_reg_all(dst, v);
    };
    let lanes = move |j: &mut JitCtx<'_, '_>, f: &F| {
        if j.active == j.warp.full {
            let k = j.warp.full.count_ones();
            let s = dst as usize * j.stride + j.base as usize;
            if k as usize == MAX_LANES {
                let xa = a.arr(j);
                let xb = b.arr(j);
                let out: &mut [u64; MAX_LANES] =
                    (&mut j.ctx.regs[s..s + MAX_LANES]).try_into().expect("full-width row");
                for (o, (&x, &y)) in out.iter_mut().zip(xa.iter().zip(&xb)) {
                    *o = f(x, y);
                }
                set_reg_uni(j.warp, dst, false);
                return;
            }
            let mut xa = [0u64; MAX_LANES];
            let mut xb = [0u64; MAX_LANES];
            a.load(j, k, &mut xa);
            b.load(j, k, &mut xb);
            let out = &mut j.ctx.regs[s..s + k as usize];
            for (o, (&x, &y)) in out.iter_mut().zip(xa.iter().zip(&xb)) {
                *o = f(x, y);
            }
        } else {
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let v = f(a.at(j, l), b.at(j, l));
                j.set_reg(j.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_reg_uni(j.warp, dst, false);
    };
    match combine(A::UNI, B::UNI) {
        StaticUni::Always => Arc::new(move |j| {
            scalar(j, &f);
            Ok(())
        }),
        StaticUni::Never => Arc::new(move |j| {
            lanes(j, &f);
            Ok(())
        }),
        StaticUni::Dynamic => Arc::new(move |j| {
            if a.uniform(j.warp) && b.uniform(j.warp) {
                scalar(j, &f);
            } else {
                lanes(j, &f);
            }
            Ok(())
        }),
    }
}

/// Compile a multiply-add µop (see [`bin_build`]).
fn mad_build<A, B, C, F>(a: A, b: B, c: C, dst: RegId, f: F) -> OpFn
where
    A: Rd,
    B: Rd,
    C: Rd,
    F: Fn(u64, u64, u64) -> u64 + Send + Sync + 'static,
{
    let scalar = move |j: &mut JitCtx<'_, '_>, f: &F| {
        let l0 = j.active.trailing_zeros();
        let v = f(a.at(j, l0), b.at(j, l0), c.at(j, l0));
        j.write_reg_all(dst, v);
    };
    let lanes = move |j: &mut JitCtx<'_, '_>, f: &F| {
        if j.active == j.warp.full {
            let k = j.warp.full.count_ones();
            let s = dst as usize * j.stride + j.base as usize;
            if k as usize == MAX_LANES {
                let xa = a.arr(j);
                let xb = b.arr(j);
                let xc = c.arr(j);
                let out: &mut [u64; MAX_LANES] =
                    (&mut j.ctx.regs[s..s + MAX_LANES]).try_into().expect("full-width row");
                for (o, ((&x, &y), &z)) in out.iter_mut().zip(xa.iter().zip(&xb).zip(&xc)) {
                    *o = f(x, y, z);
                }
                set_reg_uni(j.warp, dst, false);
                return;
            }
            let mut xa = [0u64; MAX_LANES];
            let mut xb = [0u64; MAX_LANES];
            let mut xc = [0u64; MAX_LANES];
            a.load(j, k, &mut xa);
            b.load(j, k, &mut xb);
            c.load(j, k, &mut xc);
            let out = &mut j.ctx.regs[s..s + k as usize];
            for (o, ((&x, &y), &z)) in out.iter_mut().zip(xa.iter().zip(&xb).zip(&xc)) {
                *o = f(x, y, z);
            }
        } else {
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let v = f(a.at(j, l), b.at(j, l), c.at(j, l));
                j.set_reg(j.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_reg_uni(j.warp, dst, false);
    };
    match combine(combine(A::UNI, B::UNI), C::UNI) {
        StaticUni::Always => Arc::new(move |j| {
            scalar(j, &f);
            Ok(())
        }),
        StaticUni::Never => Arc::new(move |j| {
            lanes(j, &f);
            Ok(())
        }),
        StaticUni::Dynamic => Arc::new(move |j| {
            if a.uniform(j.warp) && b.uniform(j.warp) && c.uniform(j.warp) {
                scalar(j, &f);
            } else {
                lanes(j, &f);
            }
            Ok(())
        }),
    }
}

/// Compile a predicate-writing comparison (see [`bin_build`]).
fn setp_build<A, B, F>(a: A, b: B, dst: PredId, f: F) -> OpFn
where
    A: Rd,
    B: Rd,
    F: Fn(u64, u64) -> bool + Send + Sync + 'static,
{
    let scalar = move |j: &mut JitCtx<'_, '_>, f: &F| {
        let l0 = j.active.trailing_zeros();
        let v = f(a.at(j, l0), b.at(j, l0));
        j.write_pred_all(dst, v);
    };
    let lanes = move |j: &mut JitCtx<'_, '_>, f: &F| {
        if j.active == j.warp.full {
            let k = j.warp.full.count_ones();
            let s = dst as usize * j.stride + j.base as usize;
            if k as usize == MAX_LANES {
                let xa = a.arr(j);
                let xb = b.arr(j);
                let out: &mut [bool; MAX_LANES] =
                    (&mut j.ctx.preds[s..s + MAX_LANES]).try_into().expect("full-width row");
                for (o, (&x, &y)) in out.iter_mut().zip(xa.iter().zip(&xb)) {
                    *o = f(x, y);
                }
                set_pred_uni(j.warp, dst, false);
                return;
            }
            let mut xa = [0u64; MAX_LANES];
            let mut xb = [0u64; MAX_LANES];
            a.load(j, k, &mut xa);
            b.load(j, k, &mut xb);
            let out = &mut j.ctx.preds[s..s + k as usize];
            for (o, (&x, &y)) in out.iter_mut().zip(xa.iter().zip(&xb)) {
                *o = f(x, y);
            }
        } else {
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let v = f(a.at(j, l), b.at(j, l));
                j.set_pred(j.base + l, dst, v);
                m &= m - 1;
            }
        }
        set_pred_uni(j.warp, dst, false);
    };
    match combine(A::UNI, B::UNI) {
        StaticUni::Always => Arc::new(move |j| {
            scalar(j, &f);
            Ok(())
        }),
        StaticUni::Never => Arc::new(move |j| {
            lanes(j, &f);
            Ok(())
        }),
        StaticUni::Dynamic => Arc::new(move |j| {
            if a.uniform(j.warp) && b.uniform(j.warp) {
                scalar(j, &f);
            } else {
                lanes(j, &f);
            }
            Ok(())
        }),
    }
}

/// Lower a unary register µop through the operand dispatcher.
fn lower_unary<F>(src: Src, dst: RegId, f: F) -> OpFn
where
    F: Fn(u64) -> u64 + Send + Sync + 'static,
{
    rd!(src, |a| unary_build(a, dst, f))
}

/// Lower a binary ALU µop. The `(op, ty)` pairs generated reduction
/// kernels actually issue get fully monomorphic, branch-free per-lane
/// bodies ([`eval_bin`] constant-folds under a known pair); everything
/// else shares one generic body per operand-kind combination.
fn lower_bin(op: BinOp, ty: Ty, a: Src, b: Src, dst: RegId) -> OpFn {
    macro_rules! hot {
        ($(($O:ident, $T:ident)),* $(,)?) => {
            match (op, ty) {
                $((BinOp::$O, Ty::$T) => rd2!(a, b, |x, y| {
                    bin_build(x, y, dst, |p, q| bin_inf(BinOp::$O, Ty::$T, p, q))
                }),)*
                _ => rd2!(a, b, |x, y| bin_build(x, y, dst, move |p, q| bin_inf(op, ty, p, q))),
            }
        };
    }
    hot!(
        (Add, I32),
        (Add, U32),
        (Add, I64),
        (Add, U64),
        (Add, F32),
        (Add, F64),
        (Sub, I32),
        (Sub, U32),
        (Sub, U64),
        (Sub, F32),
        (Mul, I32),
        (Mul, U32),
        (Mul, I64),
        (Mul, U64),
        (Mul, F32),
        (Min, I32),
        (Min, U32),
        (Min, F32),
        (Max, I32),
        (Max, U32),
        (Max, F32),
        (Div, U32),
        (Rem, U32),
        (And, U32),
        (And, U64),
        (Or, U32),
        (Xor, U32),
        (Shl, U32),
        (Shl, U64),
        (Shr, I32),
        (Shr, U32),
        (Shr, U64),
    )
}

/// Lower a multiply-add µop with a per-type monomorphic body.
fn lower_mad(ty: Ty, a: Src, b: Src, c: Src, dst: RegId) -> OpFn {
    macro_rules! per_ty {
        ($($T:ident),*) => {
            match ty {
                $(Ty::$T => rd3!(a, b, c, |x, y, z| {
                    mad_build(x, y, z, dst, |p, q, r| {
                        bin_inf(BinOp::Add, Ty::$T, bin_inf(BinOp::Mul, Ty::$T, p, q), r)
                    })
                }),)*
            }
        };
    }
    per_ty!(I32, U32, I64, U64, F32, F64)
}

/// Lower one non-control µop at `pc` to its closure. Control µops
/// (`Bar`/`Bra`/`BraIf`/`Exit`/`Trap`) are executed as [`Step`]s and
/// never reach this function.
#[allow(clippy::too_many_lines)]
fn lower(uop: Uop, pc: usize) -> OpFn {
    match uop {
        Uop::Mov { ty, dst, src } => lower_unary(src, dst, move |v| truncate(ty, v)),
        Uop::Neg { ty, dst, src } => {
            if ty.is_float() {
                lower_unary(src, dst, move |v| from_f(ty, -to_f(ty, v)))
            } else {
                lower_unary(src, dst, move |v| bin_inf(BinOp::Sub, ty, 0, v))
            }
        }
        Uop::Not { ty, dst, src } => lower_unary(src, dst, move |v| truncate(ty, !v)),
        Uop::Bin { op, ty, dst, a, b } => lower_bin(op, ty, a, b, dst),
        Uop::Mad { ty, dst, a, b, c } => lower_mad(ty, a, b, c, dst),
        Uop::Cvt { from, to, dst, src } => lower_unary(src, dst, move |v| eval_cvt(from, to, v)),
        Uop::Setp { op, ty, dst, a, b } => {
            rd2!(a, b, |x, y| setp_build(x, y, dst, move |p, q| eval_cmp(op, ty, p, q)))
        }
        Uop::Plop { op, dst, a, b } => Arc::new(move |j| {
            let apply = |x: bool, y: bool| match op {
                BinOp::And => x && y,
                BinOp::Or => x || y,
                // Decode validated op ∈ {And, Or, Xor}.
                _ => x ^ y,
            };
            if pred_uniform(j.warp, a) && pred_uniform(j.warp, b) {
                let l0 = j.active.trailing_zeros();
                let v = apply(j.pred(j.base + l0, a), j.pred(j.base + l0, b));
                j.write_pred_all(dst, v);
            } else {
                let mut m = j.active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let v = apply(j.pred(j.base + l, a), j.pred(j.base + l, b));
                    j.set_pred(j.base + l, dst, v);
                    m &= m - 1;
                }
                set_pred_uni(j.warp, dst, false);
            }
            Ok(())
        }),
        Uop::Selp { ty, dst, a, b, pred } => Arc::new(move |j| {
            // The predicate's uniformity is only known dynamically, so
            // the select never gets a check-free scalar form.
            if src_uniform(j.warp, a) && src_uniform(j.warp, b) && pred_uniform(j.warp, pred) {
                let l0 = j.active.trailing_zeros();
                let s = if j.pred(j.base + l0, pred) { a } else { b };
                let v = truncate(ty, j.src(l0, s));
                j.write_reg_all(dst, v);
            } else {
                let mut m = j.active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let s = if j.pred(j.base + l, pred) { a } else { b };
                    let v = truncate(ty, j.src(l, s));
                    j.set_reg(j.base + l, dst, v);
                    m &= m - 1;
                }
                set_reg_uni(j.warp, dst, false);
            }
            Ok(())
        }),
        Uop::Ld { space, ty, dst, base, offset, vlanes } => {
            let elem = ty.size();
            let req = elem * u64::from(vlanes);
            // Register sizes are 4 or 8 bytes and vector widths powers
            // of two, so the alignment test is a mask; the guard keeps
            // the lowering correct should that ever change.
            let pow2 = req.is_power_of_two();
            let amask = req.wrapping_sub(1);
            Arc::new(move |j| {
                let wid = j.warp.warp_id;
                let base_row = match base {
                    Src::Reg(r) => Some(r as usize * j.stride + j.base as usize),
                    _ => None,
                };
                // Whole-warp fast path: full warp, scalar element, and
                // a constant-stride address row (lane `l` at `a0 +
                // l*s` for aligned `s ≥ 0`) — unit stride is every
                // coalesced reduction load, larger strides the
                // thread-distributed (coarsened) rows. One bounds
                // check covers the warp and lanes gather without
                // per-lane checks; any other shape, or an
                // out-of-bounds range, takes the per-lane path below,
                // which preserves exact partial-effect trap behavior.
                if vlanes == 1 && j.active == j.warp.full && pow2 && (elem == 4 || elem == 8) {
                    if let Some(row) = base_row {
                        let k = j.active.count_ones() as usize;
                        let a0 = j.ctx.regs[row].wrapping_add(offset as u64);
                        let s = if k > 1 {
                            j.ctx.regs[row + 1].wrapping_add(offset as u64).wrapping_sub(a0)
                        } else {
                            0
                        };
                        let mut strided = a0 & amask == 0 && s & amask == 0;
                        for l in 2..k {
                            strided &= j.ctx.regs[row + l].wrapping_add(offset as u64)
                                == a0.wrapping_add((l as u64).wrapping_mul(s));
                        }
                        if strided {
                            let mut vals = [0u64; MAX_LANES];
                            let loaded = match space {
                                Space::Global => load_row(j.global, a0, k, s, elem, &mut vals),
                                Space::Shared => load_row(j.ctx.smem, a0, k, s, elem, &mut vals),
                            };
                            if loaded {
                                let d0 = dst as usize * j.stride + j.base as usize;
                                j.ctx.regs[d0..d0 + k].copy_from_slice(&vals[..k]);
                                set_reg_uni(j.warp, dst, false);
                                strided_mem_stats(j.ctx, pc, space, true, a0, k, s, req);
                                return Ok(());
                            }
                        }
                    }
                }
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                let mut i = 0usize;
                let mut ascending = true;
                let mut prev = 0u64;
                let mut m = j.active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = j.base + l;
                    let raw = match base_row {
                        Some(row) => j.ctx.regs[row + l as usize],
                        None => j.src(l, base),
                    };
                    let a = raw.wrapping_add(offset as u64);
                    let misaligned =
                        if pow2 { a & amask != 0 } else { !a.is_multiple_of(req) };
                    if misaligned {
                        return Err(trap_at(
                            j.ctx.kernel,
                            pc,
                            wid,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: req },
                        ));
                    }
                    ascending &= a >= prev;
                    prev = a;
                    access_buf[i] = (a, req);
                    i += 1;
                    for k in 0..vlanes {
                        let v = match space {
                            Space::Global => j.global.read(ty, a + u64::from(k) * elem)?,
                            Space::Shared => j.ctx.smem.read(ty, a + u64::from(k) * elem)?,
                        };
                        j.set_reg(t, dst + k, v);
                    }
                    m &= m - 1;
                }
                for k in 0..vlanes {
                    set_reg_uni(j.warp, dst + k, false);
                }
                let accesses = &access_buf[..i];
                record_mem_jit(j.ctx, pc, space, true, accesses, ascending);
                if space == Space::Global && vlanes > 1 {
                    j.ctx.stats.global_vector_bytes +=
                        accesses.iter().map(|&(_, s)| s).sum::<u64>();
                }
                Ok(())
            })
        }
        Uop::St { space, ty, src, base, offset, vlanes } => {
            let elem = ty.size();
            let req = elem * u64::from(vlanes);
            let pow2 = req.is_power_of_two();
            let amask = req.wrapping_sub(1);
            Arc::new(move |j| {
                let wid = j.warp.warp_id;
                let base_row = match base {
                    Src::Reg(r) => Some(r as usize * j.stride + j.base as usize),
                    _ => None,
                };
                // Whole-warp constant-stride fast path; see the load
                // twin.
                if vlanes == 1 && j.active == j.warp.full && pow2 && (elem == 4 || elem == 8) {
                    if let Some(row) = base_row {
                        let k = j.active.count_ones() as usize;
                        let a0 = j.ctx.regs[row].wrapping_add(offset as u64);
                        let s = if k > 1 {
                            j.ctx.regs[row + 1].wrapping_add(offset as u64).wrapping_sub(a0)
                        } else {
                            0
                        };
                        let mut strided = a0 & amask == 0 && s & amask == 0;
                        for l in 2..k {
                            strided &= j.ctx.regs[row + l].wrapping_add(offset as u64)
                                == a0.wrapping_add((l as u64).wrapping_mul(s));
                        }
                        if strided {
                            let s0 = src as usize * j.stride + j.base as usize;
                            let stored = match space {
                                Space::Global => {
                                    store_row(j.global, a0, k, s, elem, &j.ctx.regs[s0..s0 + k])
                                }
                                Space::Shared => {
                                    let (mem, regs) = (&mut *j.ctx.smem, &*j.ctx.regs);
                                    store_row(mem, a0, k, s, elem, &regs[s0..s0 + k])
                                }
                            };
                            if stored {
                                strided_mem_stats(j.ctx, pc, space, false, a0, k, s, req);
                                return Ok(());
                            }
                        }
                    }
                }
                let mut access_buf = [(0u64, 0u64); MAX_LANES];
                let mut i = 0usize;
                let mut ascending = true;
                let mut prev = 0u64;
                let mut m = j.active;
                while m != 0 {
                    let l = m.trailing_zeros();
                    let t = j.base + l;
                    let raw = match base_row {
                        Some(row) => j.ctx.regs[row + l as usize],
                        None => j.src(l, base),
                    };
                    let a = raw.wrapping_add(offset as u64);
                    let misaligned =
                        if pow2 { a & amask != 0 } else { !a.is_multiple_of(req) };
                    if misaligned {
                        return Err(trap_at(
                            j.ctx.kernel,
                            pc,
                            wid,
                            l,
                            TrapKind::Misaligned { space: space.label(), addr: a, required: req },
                        ));
                    }
                    ascending &= a >= prev;
                    prev = a;
                    access_buf[i] = (a, req);
                    i += 1;
                    for k in 0..vlanes {
                        let v = j.reg(t, src + k);
                        match space {
                            Space::Global => j.global.write(ty, a + u64::from(k) * elem, v)?,
                            Space::Shared => j.ctx.smem.write(ty, a + u64::from(k) * elem, v)?,
                        }
                    }
                    m &= m - 1;
                }
                record_mem_jit(j.ctx, pc, space, false, &access_buf[..i], ascending);
                Ok(())
            })
        }
        Uop::Atom { space, scope: _, op, ty, dst, base, offset, src, cmp } => {
            let req = ty.size();
            let pow2 = req.is_power_of_two();
            let amask = req.wrapping_sub(1);
            Arc::new(move |j| {
            let wid = j.warp.warp_id;
            let mut addr_buf = [0u64; MAX_LANES];
            let mut i = 0usize;
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let t = j.base + l;
                let a = j.src(l, base).wrapping_add(offset as u64);
                let misaligned = if pow2 { a & amask != 0 } else { !a.is_multiple_of(req) };
                if misaligned {
                    return Err(trap_at(
                        j.ctx.kernel,
                        pc,
                        wid,
                        l,
                        TrapKind::Misaligned { space: space.label(), addr: a, required: req },
                    ));
                }
                addr_buf[i] = a;
                i += 1;
                let s = j.src(l, src);
                let c = cmp.map(|c| j.src(l, c));
                let old = match space {
                    Space::Global => {
                        let old = j.global.read(ty, a)?;
                        let new = eval_atom(op, ty, old, s, c)
                            .map_err(|k| trap_at(j.ctx.kernel, pc, wid, l, k))?;
                        j.global.write(ty, a, new)?;
                        old
                    }
                    Space::Shared => {
                        let old = j.ctx.smem.read(ty, a)?;
                        let new = eval_atom(op, ty, old, s, c)
                            .map_err(|k| trap_at(j.ctx.kernel, pc, wid, l, k))?;
                        j.ctx.smem.write(ty, a, new)?;
                        old
                    }
                };
                if let Some(d) = dst {
                    j.set_reg(t, d, old);
                }
                // Chain accounting feeds the timing model; the per-site
                // profile is absent by the hook-fallback rule.
                match space {
                    Space::Global => *j.global_chains.entry(a).or_insert(0) += 1,
                    Space::Shared => *j.ctx.shared_chains.entry(a).or_insert(0) += 1,
                }
                m &= m - 1;
            }
            if let Some(d) = dst {
                set_reg_uni(j.warp, d, false);
            }
            match space {
                Space::Global => {
                    j.ctx.stats.global_atomics += i as u64;
                }
                Space::Shared => {
                    // The worst per-address chain only feeds the shared
                    // serialization counter, so it is skipped for
                    // global atomics.
                    let addrs = &addr_buf[..i];
                    let mut worst = 0u64;
                    for (idx, &a) in addrs.iter().enumerate() {
                        if addrs[..idx].contains(&a) {
                            continue;
                        }
                        let c = addrs[idx..].iter().filter(|&&b| b == a).count() as u64;
                        worst = worst.max(c);
                    }
                    j.ctx.stats.shared_atomics += i as u64;
                    j.ctx.stats.shared_atomic_serial += worst;
                }
            }
            Ok(())
        })
        }
        Uop::Shfl { mode, ty, dst, src, lane, width, pred_out } => Arc::new(move |j| {
            let ws = j.ctx.arch.warp_size;
            let w = width.clamp(1, ws);
            let last = (ws - 1) as usize;
            let kf = ws.min(j.ctx.block_dim - j.base) as usize;
            let mut snapshot = [0u64; MAX_LANES];
            if let Src::Reg(r) = src {
                let s = r as usize * j.stride + j.base as usize;
                snapshot[..kf].copy_from_slice(&j.ctx.regs[s..s + kf]);
            } else {
                for (l, slot) in snapshot.iter_mut().enumerate().take(kf) {
                    *slot = j.src(l as u32, src);
                }
            }
            // Fast path: full warp, uniform shift amount (an immediate
            // in every generated reduction), power-of-two segment
            // width, no in-range predicate — the per-lane source index
            // reduces to mask arithmetic over a contiguous row write.
            if j.active == j.warp.full
                && pred_out.is_none()
                && w.is_power_of_two()
                && src_uniform(j.warp, lane)
            {
                let b = j.src(j.active.trailing_zeros(), lane) as u32;
                let k = j.active.count_ones();
                let pm = w - 1;
                let d0 = dst as usize * j.stride + j.base as usize;
                match mode {
                    ShflMode::Up => {
                        for l in 0..k {
                            let sl = if (l & pm) >= b { l - b } else { l };
                            j.ctx.regs[d0 + l as usize] =
                                truncate(ty, snapshot[(sl as usize).min(last)]);
                        }
                    }
                    ShflMode::Down => {
                        for l in 0..k {
                            let sl = if (l & pm) + b < w { l + b } else { l };
                            j.ctx.regs[d0 + l as usize] =
                                truncate(ty, snapshot[(sl as usize).min(last)]);
                        }
                    }
                    ShflMode::Bfly => {
                        for l in 0..k {
                            let x = (l & pm) ^ b;
                            let sl = if x < w { (l & !pm) + x } else { l };
                            j.ctx.regs[d0 + l as usize] =
                                truncate(ty, snapshot[(sl as usize).min(last)]);
                        }
                    }
                    ShflMode::Idx => {
                        for l in 0..k {
                            let sl = (l & !pm) + (b & pm);
                            j.ctx.regs[d0 + l as usize] =
                                truncate(ty, snapshot[(sl as usize).min(last)]);
                        }
                    }
                }
                set_reg_uni(j.warp, dst, false);
                return Ok(());
            }
            let mut m = j.active;
            while m != 0 {
                let l = m.trailing_zeros();
                let t = j.base + l;
                let b = j.src(l, lane) as u32;
                let seg = l / w * w;
                let pos = l % w;
                let (src_lane, in_range) = match mode {
                    ShflMode::Up => {
                        if pos >= b {
                            (seg + pos - b, true)
                        } else {
                            (l, false)
                        }
                    }
                    ShflMode::Down => {
                        if pos + b < w {
                            (seg + pos + b, true)
                        } else {
                            (l, false)
                        }
                    }
                    ShflMode::Bfly => {
                        let x = pos ^ b;
                        if x < w {
                            (seg + x, true)
                        } else {
                            (l, false)
                        }
                    }
                    ShflMode::Idx => (seg + b % w, true),
                };
                let v = snapshot[src_lane.min(ws - 1) as usize];
                j.set_reg(t, dst, truncate(ty, v));
                if let Some(p) = pred_out {
                    j.set_pred(t, p, in_range);
                }
                m &= m - 1;
            }
            set_reg_uni(j.warp, dst, false);
            if let Some(p) = pred_out {
                set_pred_uni(j.warp, p, false);
            }
            Ok(())
        }),
        Uop::Bar | Uop::Bra { .. } | Uop::BraIf { .. } | Uop::Exit | Uop::Trap { .. } => {
            unreachable!("control µops execute as Steps, not closures")
        }
    }
}

/// Whether the µop at a pc terminates straight-line fusion.
fn is_control(u: &Uop) -> bool {
    matches!(u, Uop::Bar | Uop::Bra { .. } | Uop::BraIf { .. } | Uop::Exit | Uop::Trap { .. })
}

/// Lower a predecoded program into its closure-threaded form.
pub(crate) fn compile(prog: &UopProgram) -> JitProgram {
    let n = prog.uops.len();

    // A pc cannot sit in the middle of a run if (a) it is a control
    // µop, or (b) it is a reconvergence target of any conditional
    // branch: the divergence-stack pop loop tests `pc == reconv`
    // before each issue, so execution must surface at such a pc.
    let mut boundary = vec![false; n + 1];
    boundary[n] = true;
    for (p, u) in prog.uops.iter().enumerate() {
        if is_control(u) {
            boundary[p] = true;
        }
        if let Uop::BraIf { reconv, .. } = *u {
            if reconv <= n {
                boundary[reconv] = true;
            }
        }
    }

    let ops: Vec<Option<OpFn>> = prog
        .uops
        .iter()
        .enumerate()
        .map(|(pc, u)| if is_control(u) { None } else { Some(lower(*u, pc)) })
        .collect();

    // Pre-sum each run suffix in reverse: entering a run at any pc
    // (straight-line successor or branch target alike) knows its end
    // and batched class counts without walking forward first.
    let mut end = vec![0usize; n];
    let mut counts = vec![ClassCounts::default(); n];
    for pc in (0..n).rev() {
        if ops[pc].is_none() {
            continue;
        }
        let mut c = ClassCounts::default();
        c.add(prog.classes[pc], 1);
        if boundary[pc + 1] {
            end[pc] = pc + 1;
        } else {
            end[pc] = end[pc + 1];
            c.merge(&counts[pc + 1]);
        }
        counts[pc] = c;
    }

    let steps = prog
        .uops
        .iter()
        .enumerate()
        .map(|(pc, u)| match *u {
            Uop::Bar => Step::Bar,
            Uop::Bra { target } => Step::Bra { target },
            Uop::BraIf { pred, when, target, reconv } => Step::BraIf { pred, when, target, reconv },
            Uop::Exit => Step::Exit,
            Uop::Trap { what } => Step::Trap { what },
            _ => Step::Run(RunStep {
                len: (end[pc] - pc) as u64,
                end: end[pc],
                counts: counts[pc],
            }),
        })
        .collect();

    JitProgram { steps, ops, classes: prog.classes.clone(), n_params: prog.n_params }
}

/// Execute one block through the compiled path. Mirrors
/// [`crate::uop::run_block`]'s scheduling exactly; the sanitizer
/// release hook is absent because sanitized launches fall back to the
/// µop engine.
pub(crate) fn run_block(
    ctx: &mut BlockCtx<'_>,
    prog: &JitProgram,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
    warps: &mut Vec<UopWarp>,
    consts: &mut Vec<u64>,
) -> Result<(), SimError> {
    crate::uop::build_consts(ctx, prog.n_params, consts);
    crate::uop::reset_warps(warps, ctx.block_dim, ctx.arch.warp_size);

    loop {
        let mut waiting = 0usize;
        let mut ran = 0usize;
        for warp in warps.iter_mut() {
            if warp.stack.is_empty() {
                continue;
            }
            ran += 1;
            if matches!(
                run_warp(ctx, prog, consts, warp, global, global_chains)?,
                WarpStop::Barrier
            ) {
                waiting += 1;
            }
        }
        if waiting == 0 {
            break;
        }
        if waiting < ran {
            let waiting_warps: Vec<u32> =
                warps.iter().filter(|w| !w.stack.is_empty()).map(|w| w.warp_id).collect();
            let barrier_pc = warps
                .iter()
                .find(|w| !w.stack.is_empty())
                .and_then(|w| w.stack.last())
                .map_or(0, |top| top.pc.saturating_sub(1));
            return Err(SimError::BarrierDeadlock {
                kernel: ctx.kernel.name.clone(),
                barrier_pc,
                waiting_warps,
            });
        }
    }
    Ok(())
}

/// Execute one warp of compiled steps until it hits a barrier or
/// finishes.
fn run_warp(
    ctx: &mut BlockCtx<'_>,
    prog: &JitProgram,
    consts: &[u64],
    warp: &mut UopWarp,
    global: &mut LinearMemory,
    global_chains: &mut FxHashMap<u64, u64>,
) -> Result<WarpStop, SimError> {
    let warp_size = ctx.arch.warp_size;
    let stride = ctx.block_dim as usize;
    let base = warp.warp_id * warp_size;
    let wid = warp.warp_id;
    loop {
        // Pop completed or emptied divergence entries.
        loop {
            let Some(top) = warp.stack.last() else {
                return Ok(WarpStop::Done);
            };
            if top.mask & !warp.exited == 0 || top.pc == top.reconv {
                warp.stack.pop();
                continue;
            }
            break;
        }
        let top = *warp.stack.last().unwrap();
        let active = top.mask & !warp.exited;
        let pc = top.pc;
        if pc >= prog.steps.len() {
            warp.exited |= active;
            warp.stack.pop();
            continue;
        }
        let n_active = active.count_ones();

        // Per-issue bookkeeping for a single control step: the same
        // budget + statistics sequence the µop engine performs. Fault
        // polls are absent by the hook-fallback rule (the session is
        // not live when the compiled tier runs).
        macro_rules! issue_one {
            () => {
                if ctx.budget == 0 {
                    return Err(SimError::Timeout {
                        kernel: ctx.kernel.name.clone(),
                        budget: ctx.budget_total,
                    });
                }
                ctx.budget -= 1;
                ctx.stats.issue(prog.classes[pc], n_active, warp_size);
            };
        }

        match &prog.steps[pc] {
            Step::Run(run) => {
                if ctx.budget >= run.len {
                    // Fast path: the whole run is within budget, so the
                    // per-µop budget checks cannot fire and the
                    // statistics fold into one batched update (the
                    // active mask is invariant across the run).
                    ctx.budget -= run.len;
                    ctx.stats.warp_instrs.merge(&run.counts);
                    ctx.stats.thread_instrs += run.len * u64::from(n_active);
                    if n_active < warp_size {
                        ctx.stats.divergent_issues += run.len;
                    }
                    {
                        let mut j = JitCtx {
                            ctx: &mut *ctx,
                            global,
                            global_chains,
                            consts,
                            warp: &mut *warp,
                            active,
                            base,
                            stride,
                        };
                        for op in &prog.ops[pc..run.end] {
                            (op.as_ref().expect("run pcs have ops"))(&mut j)?;
                        }
                    }
                    warp.stack.last_mut().unwrap().pc = run.end;
                } else {
                    // Budget-starved slow path: per-µop issue sequence
                    // so a Timeout fires at exactly the µop (and with
                    // exactly the partial memory state) the µop engine
                    // would report.
                    for p in pc..run.end {
                        if ctx.budget == 0 {
                            return Err(SimError::Timeout {
                                kernel: ctx.kernel.name.clone(),
                                budget: ctx.budget_total,
                            });
                        }
                        ctx.budget -= 1;
                        ctx.stats.issue(prog.classes[p], n_active, warp_size);
                        let mut j = JitCtx {
                            ctx: &mut *ctx,
                            global,
                            global_chains,
                            consts,
                            warp: &mut *warp,
                            active,
                            base,
                            stride,
                        };
                        (prog.ops[p].as_ref().expect("run pcs have ops"))(&mut j)?;
                    }
                    warp.stack.last_mut().unwrap().pc = run.end;
                }
            }
            Step::Bar => {
                issue_one!();
                ctx.stats.barriers += 1;
                warp.stack.last_mut().unwrap().pc = pc + 1;
                return Ok(WarpStop::Barrier);
            }
            Step::Bra { target } => {
                issue_one!();
                warp.stack.last_mut().unwrap().pc = *target;
            }
            Step::BraIf { pred, when, target, reconv } => {
                issue_one!();
                let (pred, when, target, reconv) = (*pred, *when, *target, *reconv);
                // Predicate reads use the tier's register-major layout.
                let row = pred as usize * stride + base as usize;
                let taken = if pred_uniform(warp, pred) {
                    let l0 = active.trailing_zeros();
                    if ctx.preds[row + l0 as usize] == when {
                        active
                    } else {
                        0
                    }
                } else {
                    let mut taken = 0u32;
                    let mut m = active;
                    while m != 0 {
                        let l = m.trailing_zeros();
                        if ctx.preds[row + l as usize] == when {
                            taken |= 1 << l;
                        }
                        m &= m - 1;
                    }
                    taken
                };
                if taken == active {
                    warp.stack.last_mut().unwrap().pc = target;
                } else if taken == 0 {
                    warp.stack.last_mut().unwrap().pc = pc + 1;
                } else {
                    ctx.stats.divergent_branches += 1;
                    let outer = warp.stack.pop().unwrap();
                    if reconv != RECONV_NONE {
                        warp.stack.push(StackEntry {
                            reconv: outer.reconv,
                            pc: reconv,
                            mask: outer.mask,
                        });
                    }
                    let not_taken = active & !taken;
                    warp.stack.push(StackEntry { reconv, pc: pc + 1, mask: not_taken });
                    warp.stack.push(StackEntry { reconv, pc: target, mask: taken });
                }
            }
            Step::Exit => {
                issue_one!();
                warp.exited |= active;
                warp.stack.last_mut().unwrap().pc = pc + 1;
            }
            Step::Trap { what } => {
                issue_one!();
                let l0 = active.trailing_zeros();
                return Err(trap_at(ctx.kernel, pc, wid, l0, what.kind()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchConfig;
    use crate::exec::{run_kernel_cfg, Arg, BlockSelection, ExecConfig, ExecMode, LaunchDims};
    use crate::isa::{Address, BinOp, CmpOp, Operand, Sreg, Ty};
    use crate::kernel::KernelBuilder;

    fn arch() -> ArchConfig {
        ArchConfig::maxwell_gtx980()
    }

    /// A kernel exercising fused runs, divergence, barriers, shared
    /// memory and a reconvergence target in the middle of what would
    /// otherwise be a straight-line region.
    fn tree_kernel() -> Kernel {
        let n: u32 = 64;
        let mut b = KernelBuilder::new("jit-tree");
        let inp = b.param_ptr();
        let outp = b.param_ptr();
        let smem_off = b.smem_alloc(u64::from(n) * 4);
        let tid = b.reg();
        let a = b.reg();
        let v = b.reg();
        let w = b.reg();
        let sa = b.reg();
        let sb = b.reg();
        let stride = b.reg();
        let p = b.pred();
        let pw = b.pred();
        b.mov(Ty::U32, tid, Operand::Sreg(Sreg::TidX));
        b.cvt(Ty::U32, Ty::U64, a, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(inp));
        b.ld(Space::Global, Ty::U32, v, Address::reg(a));
        b.cvt(Ty::U32, Ty::U64, sa, Operand::Reg(tid));
        b.bin(BinOp::Mul, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sa, Operand::Reg(sa), Operand::ImmI(smem_off as i64));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bar();
        b.mov(Ty::U32, stride, Operand::ImmI(i64::from(n / 2)));
        let top = b.label();
        let body_end = b.label();
        let done = b.label();
        b.place(top);
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(stride), Operand::ImmI(0));
        b.bra_if(p, true, done);
        b.setp(CmpOp::Lt, Ty::U32, pw, Operand::Reg(tid), Operand::Reg(stride));
        b.bra_if(pw, false, body_end);
        b.bin(BinOp::Add, Ty::U32, w, Operand::Reg(tid), Operand::Reg(stride));
        b.cvt(Ty::U32, Ty::U64, sb, Operand::Reg(w));
        b.bin(BinOp::Mul, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(4));
        b.bin(BinOp::Add, Ty::U64, sb, Operand::Reg(sb), Operand::ImmI(smem_off as i64));
        b.ld(Space::Shared, Ty::U32, w, Address::reg(sb));
        b.ld(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::Reg(w));
        b.st(Space::Shared, Ty::U32, v, Address::reg(sa));
        b.place(body_end);
        b.bar();
        b.bin(BinOp::Shr, Ty::U32, stride, Operand::Reg(stride), Operand::ImmI(1));
        b.bra(top);
        b.place(done);
        b.setp(CmpOp::Eq, Ty::U32, p, Operand::Reg(tid), Operand::ImmI(0));
        let skip = b.label();
        b.bra_if(p, false, skip);
        b.ld(Space::Shared, Ty::U32, v, Address::new(Operand::ImmI(smem_off as i64), 0));
        b.st(Space::Global, Ty::U32, v, Address::new(Operand::Param(outp), 0));
        b.place(skip);
        b.exit();
        b.finish().unwrap()
    }

    fn run(k: &Kernel, mode: ExecMode) -> (Vec<u8>, String) {
        let n: u32 = 64;
        let mut mem = LinearMemory::new(4 * u64::from(n) + 4, "global");
        for i in 0..n {
            mem.write(Ty::U32, u64::from(i) * 4, u64::from(i + 1)).unwrap();
        }
        let out = run_kernel_cfg(
            k,
            &arch(),
            LaunchDims::new(2, n),
            &[Arg::Ptr(0), Arg::Ptr(4 * u64::from(n))],
            &mut mem,
            BlockSelection::All,
            ExecConfig::builder().exec_mode(mode).build(),
        )
        .unwrap();
        (mem.read_bytes(0, 4 * u64::from(n) + 4).unwrap(), format!("{:?}", out.stats))
    }

    #[test]
    fn compiled_matches_reference_and_uop_bitwise() {
        let k = tree_kernel();
        let (mem_ref, stats_ref) = run(&k, ExecMode::Reference);
        let (mem_uop, stats_uop) = run(&k, ExecMode::Predecoded);
        let (mem_jit, stats_jit) = run(&k, ExecMode::Compiled);
        assert_eq!(mem_ref, mem_jit, "memory must be bit-identical to reference");
        assert_eq!(stats_ref, stats_jit, "stats must be identical to reference");
        assert_eq!(mem_uop, mem_jit);
        assert_eq!(stats_uop, stats_jit);
    }

    #[test]
    fn compilation_is_cached_and_shared_across_clones() {
        let k = tree_kernel();
        assert!(!k.jit_cache.is_built());
        assert_eq!(k.jit().len(), k.instrs.len());
        assert!(k.jit_cache.is_built());
        let c = k.clone();
        assert!(c.jit_cache.is_built(), "clones must share the compiled program");
        assert!(std::ptr::eq(k.jit(), c.jit()), "same Arc, not a re-compile");
    }

    #[test]
    fn runs_split_at_reconvergence_targets() {
        let k = tree_kernel();
        let prog = k.jit();
        let uops = &k.uops().uops;
        for (pc, step) in prog.steps.iter().enumerate() {
            let Step::Run(run) = step else { continue };
            assert!(run.len >= 1 && run.end > pc);
            // No control µop or reconvergence target strictly inside.
            for p in pc + 1..run.end {
                assert!(!is_control(&uops[p]), "control µop inside run at {p}");
                for u in uops.iter() {
                    if let Uop::BraIf { reconv, .. } = *u {
                        assert_ne!(reconv, p, "reconvergence target inside run at {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn timeout_fires_at_the_same_budget_as_the_uop_engine() {
        let k = tree_kernel();
        let n: u32 = 64;
        let run_budget = |mode: ExecMode, budget: u64| {
            let mut mem = LinearMemory::new(4 * u64::from(n) + 4, "global");
            run_kernel_cfg(
                &k,
                &arch(),
                LaunchDims::new(1, n),
                &[Arg::Ptr(0), Arg::Ptr(4 * u64::from(n))],
                &mut mem,
                BlockSelection::All,
                ExecConfig::builder().exec_mode(mode).instr_budget(budget).build(),
            )
            .map(|_| ())
        };
        for budget in [1u64, 2, 3, 5, 17, 100, 1000] {
            let a = run_budget(ExecMode::Predecoded, budget);
            let b = run_budget(ExecMode::Compiled, budget);
            match (a, b) {
                (Ok(()), Ok(())) => {}
                (
                    Err(SimError::Timeout { budget: ba, .. }),
                    Err(SimError::Timeout { budget: bb, .. }),
                ) => {
                    assert_eq!(ba, bb);
                }
                (x, y) => panic!("budget {budget}: uop={x:?} jit={y:?}"),
            }
        }
    }
}
