//! # gpu-sim — a functional + timing SIMT GPU simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Automatic Generation of Warp-Level Primitives and Atomic
//! Instructions for Fast and Portable Parallel Reduction on GPUs"*
//! (CGO 2019). The paper evaluates generated CUDA kernels on three
//! NVIDIA GPU generations; with no GPU available, this simulator
//! executes an equivalent virtual ISA ([`isa`]) warp-synchronously and
//! converts gathered statistics into modelled time under per-
//! generation cost models ([`arch`], [`timing`]).
//!
//! The simulator models exactly the microarchitectural mechanisms the
//! paper's results depend on:
//!
//! * warp-synchronous SIMT execution with IPDOM reconvergence
//!   ([`mod@cfg`], [`exec`]) and divergence accounting;
//! * warp shuffle exchanges, including sub-warp widths;
//! * global/shared atomics with scopes, contention chains, and the
//!   Kepler software-lock vs Maxwell/Pascal native shared-atomic
//!   implementations;
//! * memory coalescing (128-byte transactions), shared-memory bank
//!   conflicts, and vectorized-load bandwidth efficiency;
//! * occupancy (threads/blocks/shared-memory/register limits) and
//!   latency hiding;
//! * kernel-launch overhead.
//!
//! ## Quick start
//!
//! ```
//! use gpu_sim::{ArchConfig, Device, LaunchDims};
//! use gpu_sim::kernel::KernelBuilder;
//! use gpu_sim::isa::{Address, AtomOp, Operand, Scope, Space, Ty};
//!
//! // A kernel in which every thread atomically adds 1.0 to out[0].
//! let mut b = KernelBuilder::new("count");
//! let out = b.param_ptr();
//! let one = b.reg();
//! b.mov(Ty::F32, one, Operand::ImmF(1.0));
//! b.red(Space::Global, Scope::Gpu, AtomOp::Add, Ty::F32,
//!       Address::new(Operand::Param(out), 0), Operand::Reg(one));
//! b.exit();
//! let kernel = b.finish().unwrap();
//!
//! let mut dev = Device::new(ArchConfig::maxwell_gtx980());
//! let buf = dev.alloc_f32(1).unwrap();
//! dev.launch_simple(&kernel, LaunchDims::new(4, 128), &[buf.arg()]).unwrap();
//! let total = f32::from_bits(dev.read_scalar(Ty::F32, buf).unwrap() as u32);
//! assert_eq!(total, 512.0);
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod asm;
pub mod cfg;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod isa;
pub mod jit;
pub mod kernel;
pub mod memory;
pub mod profile;
pub mod sanitize;
pub mod stats;
pub mod timing;
pub mod uop;

pub use arch::{ArchConfig, SharedAtomicImpl};
pub use device::{Device, DevicePtr, LaunchReport};
pub use error::{SimError, TrapKind};
pub use exec::{Arg, BlockSelection, ExecConfig, ExecConfigBuilder, ExecMode, LaunchDims};
pub use fault::{FaultKind, FaultPlan, FaultSession, InjectedFault};
pub use kernel::{Kernel, KernelBuilder, ParamKind};
pub use profile::{LaunchProfile, SiteCounters, Trace, TraceEvent};
pub use sanitize::{
    negative_corpus, run_negative, AccessSite, HazardKind, LaunchSanitizer, NegativeKernel,
    RaceFinding, RaceReport,
};
pub use stats::LaunchStats;
pub use timing::{LaunchTiming, Limiter, TimingOptions};
