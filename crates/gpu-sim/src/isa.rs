//! The VIR (Virtual ISA for Reduction) instruction set.
//!
//! VIR is a small, PTX-flavoured, register-based virtual ISA that the
//! simulator executes warp-synchronously. It covers the instruction
//! classes the paper's code variants exercise: integer/float
//! arithmetic, predication, scalar and vector global/shared memory
//! accesses, scoped atomic operations, warp shuffle exchanges,
//! barriers, and (possibly divergent) branches.
//!
//! Instructions are stored in a flat `Vec<Instr>`; branch targets are
//! resolved instruction indices (the assembler and the builder patch
//! labels). Reconvergence points for divergent branches are computed
//! from the control-flow graph (see [`crate::cfg`]), so arbitrary —
//! not just structured — control flow executes correctly.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a general-purpose virtual register (per-thread, 64-bit raw).
pub type RegId = u16;
/// Index of a predicate register (per-thread, boolean).
pub type PredId = u16;

/// Scalar machine types. Values are stored bit-cast inside a `u64`
/// register; the type on each instruction selects the interpretation,
/// exactly as PTX does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit signed integer.
    I64,
    /// 64-bit unsigned integer (also the address type).
    U64,
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
}

impl Ty {
    /// Size of a value of this type in bytes.
    pub fn size(self) -> u64 {
        match self {
            Ty::I32 | Ty::U32 | Ty::F32 => 4,
            Ty::I64 | Ty::U64 | Ty::F64 => 8,
        }
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// Whether the type is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(self, Ty::I32 | Ty::I64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I32 => "s32",
            Ty::U32 => "u32",
            Ty::I64 => "s64",
            Ty::U64 => "u64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// Special (read-only) registers, mirroring the CUDA built-ins the
/// paper's `Vector` primitive maps onto (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sreg {
    /// `threadIdx.x`
    TidX,
    /// `blockIdx.x`
    CtaIdX,
    /// `blockDim.x`
    NtidX,
    /// `gridDim.x`
    NctaIdX,
    /// `threadIdx.x % warpSize`
    LaneId,
    /// `threadIdx.x / warpSize`
    WarpId,
    /// The warp width (always 32).
    WarpSize,
}

impl fmt::Display for Sreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sreg::TidX => "%tid.x",
            Sreg::CtaIdX => "%ctaid.x",
            Sreg::NtidX => "%ntid.x",
            Sreg::NctaIdX => "%nctaid.x",
            Sreg::LaneId => "%laneid",
            Sreg::WarpId => "%warpid",
            Sreg::WarpSize => "%warpsize",
        };
        f.write_str(s)
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A general-purpose register.
    Reg(RegId),
    /// An integer immediate (bit pattern used according to the
    /// instruction type).
    ImmI(i64),
    /// A floating-point immediate.
    ImmF(f64),
    /// A special register.
    Sreg(Sreg),
    /// A kernel parameter slot (bound at launch).
    Param(u16),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "%r{r}"),
            Operand::ImmI(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "{v:?}"),
            Operand::Sreg(s) => write!(f, "{s}"),
            Operand::Param(p) => write!(f, "%p{p}"),
        }
    }
}

/// Memory spaces addressable by loads, stores and atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Space {
    /// Device (global) memory, byte-addressed across the whole device.
    Global,
    /// Per-block scratchpad (shared) memory, byte-addressed within the
    /// block's allocation.
    Shared,
}

impl Space {
    /// Static diagnostic label (matches the `LinearMemory` space tag).
    pub fn label(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Atomic visibility scopes (Pascal introduced `_block`/`_system`
/// variants; earlier architectures implicitly use device scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Visibility within the issuing thread block (`atomicAdd_block`).
    Cta,
    /// Visibility within the device (the default CUDA scope).
    Gpu,
    /// Visibility across the system (`atomicAdd_system`).
    Sys,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Cta => "cta",
            Scope::Gpu => "gpu",
            Scope::Sys => "sys",
        })
    }
}

/// Binary arithmetic/logic operations.
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        })
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integer types only).
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
        })
    }
}

/// Comparison operators for `setp`.
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        })
    }
}

/// Atomic read-modify-write operations.
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomOp {
    Add,
    Sub,
    Min,
    Max,
    And,
    Or,
    Xor,
    /// Atomic exchange.
    Exch,
    /// Compare-and-swap (uses the extra `cmp` operand).
    Cas,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AtomOp::Add => "add",
            AtomOp::Sub => "sub",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::And => "and",
            AtomOp::Or => "or",
            AtomOp::Xor => "xor",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
        })
    }
}

/// Warp shuffle modes (Kepler's `__shfl_*` family, §II-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShflMode {
    /// `__shfl_up`: lane *i* reads lane *i − delta*.
    Up,
    /// `__shfl_down`: lane *i* reads lane *i + delta*.
    Down,
    /// `__shfl_xor`: lane *i* reads lane *i ^ mask* (butterfly).
    Bfly,
    /// `__shfl`: lane *i* reads the indexed lane.
    Idx,
}

impl fmt::Display for ShflMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShflMode::Up => "up",
            ShflMode::Down => "down",
            ShflMode::Bfly => "bfly",
            ShflMode::Idx => "idx",
        })
    }
}

/// A memory address: `base + offset` in bytes. `base` is evaluated per
/// thread, so strided and indexed accesses are expressed by computing
/// the base in registers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Address {
    /// Base byte address (global) or byte offset (shared).
    pub base: Operand,
    /// Constant byte displacement.
    pub offset: i64,
}

impl Address {
    /// An address formed from a register with no displacement.
    pub fn reg(r: RegId) -> Self {
        Address { base: Operand::Reg(r), offset: 0 }
    }

    /// An address formed from an operand with a byte displacement.
    pub fn new(base: Operand, offset: i64) -> Self {
        Address { base, offset }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else {
            write!(f, "[{}+{}]", self.base, self.offset)
        }
    }
}

/// Vector width of a load/store (matching CUDA `ld.global.v2/.v4`,
/// which CUB uses for its bandwidth optimization, §IV-C1).
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VecWidth {
    V1,
    V2,
    V4,
}

impl VecWidth {
    /// Number of elements.
    pub fn lanes(self) -> u16 {
        match self {
            VecWidth::V1 => 1,
            VecWidth::V2 => 2,
            VecWidth::V4 => 4,
        }
    }
}

/// A VIR instruction.
///
/// Destination registers come first, sources after, as in PTX.
#[allow(missing_docs)] // operand fields follow the PTX convention documented per variant
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = src`
    Mov { ty: Ty, dst: RegId, src: Operand },
    /// `dst = op src`
    Un { op: UnOp, ty: Ty, dst: RegId, src: Operand },
    /// `dst = a op b`
    Bin { op: BinOp, ty: Ty, dst: RegId, a: Operand, b: Operand },
    /// Fused multiply-add: `dst = a * b + c` (indexing workhorse).
    Mad { ty: Ty, dst: RegId, a: Operand, b: Operand, c: Operand },
    /// Convert `src` interpreted as `from` into `to`, store in `dst`.
    Cvt { from: Ty, to: Ty, dst: RegId, src: Operand },
    /// Set predicate: `dst = a cmp b`.
    Setp { op: CmpOp, ty: Ty, dst: PredId, a: Operand, b: Operand },
    /// Predicate logic: `dst = a op b` on predicate registers
    /// (`op` restricted to And/Or/Xor).
    Plop { op: BinOp, dst: PredId, a: PredId, b: PredId },
    /// Select: `dst = pred ? a : b` (branch-free ternary).
    Selp { ty: Ty, dst: RegId, a: Operand, b: Operand, pred: PredId },
    /// Load `width` consecutive elements into consecutive registers
    /// starting at `dst`.
    Ld { space: Space, ty: Ty, dst: RegId, addr: Address, width: VecWidth },
    /// Store `width` consecutive registers starting at `src`.
    St { space: Space, ty: Ty, src: RegId, addr: Address, width: VecWidth },
    /// Atomic read-modify-write. `dst`, when present, receives the old
    /// value (PTX `atom`); when absent this is a reduction (`red`).
    Atom {
        space: Space,
        scope: Scope,
        op: AtomOp,
        ty: Ty,
        dst: Option<RegId>,
        addr: Address,
        src: Operand,
        /// Comparison source for [`AtomOp::Cas`].
        cmp: Option<Operand>,
    },
    /// Warp shuffle of the 32-bit (or 64-bit) register `src`.
    Shfl {
        mode: ShflMode,
        ty: Ty,
        dst: RegId,
        src: Operand,
        /// Delta / xor mask / source-lane operand.
        lane: Operand,
        /// Logical sub-warp width (a power of two ≤ 32).
        width: u32,
        /// Optional predicate set when the source lane was in range.
        pred_out: Option<PredId>,
    },
    /// Block-wide barrier (`__syncthreads`).
    Bar,
    /// Branch to `target` (resolved instruction index). `pred` of
    /// `(p, true)` means branch when `p` is set, `(p, false)` when
    /// clear. `None` is an unconditional branch.
    Bra { pred: Option<(PredId, bool)>, target: usize },
    /// Terminate the thread.
    Exit,
}

impl Instr {
    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::Bra { .. } | Instr::Exit)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { ty, dst, src } => write!(f, "mov.{ty} %r{dst}, {src}"),
            Instr::Un { op, ty, dst, src } => write!(f, "{op}.{ty} %r{dst}, {src}"),
            Instr::Bin { op, ty, dst, a, b } => write!(f, "{op}.{ty} %r{dst}, {a}, {b}"),
            Instr::Mad { ty, dst, a, b, c } => write!(f, "mad.{ty} %r{dst}, {a}, {b}, {c}"),
            Instr::Cvt { from, to, dst, src } => write!(f, "cvt.{to}.{from} %r{dst}, {src}"),
            Instr::Setp { op, ty, dst, a, b } => write!(f, "setp.{op}.{ty} %pr{dst}, {a}, {b}"),
            Instr::Plop { op, dst, a, b } => write!(f, "{op}.pred %pr{dst}, %pr{a}, %pr{b}"),
            Instr::Selp { ty, dst, a, b, pred } => {
                write!(f, "selp.{ty} %r{dst}, {a}, {b}, %pr{pred}")
            }
            Instr::Ld { space, ty, dst, addr, width } => match width {
                VecWidth::V1 => write!(f, "ld.{space}.{ty} %r{dst}, {addr}"),
                w => write!(f, "ld.{space}.v{}.{ty} %r{dst}, {addr}", w.lanes()),
            },
            Instr::St { space, ty, src, addr, width } => match width {
                VecWidth::V1 => write!(f, "st.{space}.{ty} {addr}, %r{src}"),
                w => write!(f, "st.{space}.v{}.{ty} {addr}, %r{src}", w.lanes()),
            },
            Instr::Atom { space, scope, op, ty, dst, addr, src, cmp } => {
                match dst {
                    Some(d) => write!(f, "atom.{space}.{scope}.{op}.{ty} %r{d}, {addr}, {src}")?,
                    None => write!(f, "red.{space}.{scope}.{op}.{ty} {addr}, {src}")?,
                }
                if let Some(c) = cmp {
                    write!(f, ", {c}")?;
                }
                Ok(())
            }
            Instr::Shfl { mode, ty, dst, src, lane, width, pred_out } => {
                write!(f, "shfl.{mode}.{ty} %r{dst}", )?;
                if let Some(p) = pred_out {
                    write!(f, "|%pr{p}")?;
                }
                write!(f, ", {src}, {lane}, {width}")
            }
            Instr::Bar => write!(f, "bar.sync 0"),
            Instr::Bra { pred, target } => match pred {
                None => write!(f, "bra L{target}"),
                Some((p, true)) => write!(f, "@%pr{p} bra L{target}"),
                Some((p, false)) => write!(f, "@!%pr{p} bra L{target}"),
            },
            Instr::Exit => write!(f, "exit"),
        }
    }
}

/// Rough instruction classes used by the timing model.
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    Alu,
    Fp,
    LdGlobal,
    StGlobal,
    LdShared,
    StShared,
    AtomGlobal,
    AtomShared,
    Shfl,
    Bar,
    Branch,
    Other,
}

impl InstrClass {
    /// Number of instruction classes.
    pub const COUNT: usize = 12;

    /// Every class in a fixed canonical order. Statistics counters and
    /// the timing model iterate this array (never a hash map), so
    /// per-class accumulation order — and therefore floating-point
    /// rounding — is identical on every run and every thread.
    pub const ALL: [InstrClass; InstrClass::COUNT] = [
        InstrClass::Alu,
        InstrClass::Fp,
        InstrClass::LdGlobal,
        InstrClass::StGlobal,
        InstrClass::LdShared,
        InstrClass::StShared,
        InstrClass::AtomGlobal,
        InstrClass::AtomShared,
        InstrClass::Shfl,
        InstrClass::Bar,
        InstrClass::Branch,
        InstrClass::Other,
    ];

    /// Dense index of this class within [`InstrClass::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Instr {
    /// Classify the instruction for the cost model.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Bin { ty, .. } | Instr::Mad { ty, .. } | Instr::Un { ty, .. } => {
                if ty.is_float() {
                    InstrClass::Fp
                } else {
                    InstrClass::Alu
                }
            }
            Instr::Mov { .. } | Instr::Cvt { .. } | Instr::Setp { .. } | Instr::Plop { .. }
            | Instr::Selp { .. } => InstrClass::Alu,
            Instr::Ld { space: Space::Global, .. } => InstrClass::LdGlobal,
            Instr::St { space: Space::Global, .. } => InstrClass::StGlobal,
            Instr::Ld { space: Space::Shared, .. } => InstrClass::LdShared,
            Instr::St { space: Space::Shared, .. } => InstrClass::StShared,
            Instr::Atom { space: Space::Global, .. } => InstrClass::AtomGlobal,
            Instr::Atom { space: Space::Shared, .. } => InstrClass::AtomShared,
            Instr::Shfl { .. } => InstrClass::Shfl,
            Instr::Bar => InstrClass::Bar,
            Instr::Bra { .. } => InstrClass::Branch,
            Instr::Exit => InstrClass::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ty_sizes() {
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::U32.size(), 4);
        assert_eq!(Ty::F32.size(), 4);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::U64.size(), 8);
        assert_eq!(Ty::F64.size(), 8);
    }

    #[test]
    fn ty_predicates() {
        assert!(Ty::F32.is_float());
        assert!(!Ty::I32.is_float());
        assert!(Ty::I64.is_signed());
        assert!(!Ty::U64.is_signed());
    }

    #[test]
    fn display_round_trip_smoke() {
        let i = Instr::Bin {
            op: BinOp::Add,
            ty: Ty::F32,
            dst: 3,
            a: Operand::Reg(1),
            b: Operand::ImmF(1.5),
        };
        assert_eq!(i.to_string(), "add.f32 %r3, %r1, 1.5");
        let l = Instr::Ld {
            space: Space::Global,
            ty: Ty::F32,
            dst: 2,
            addr: Address::new(Operand::Reg(9), 4),
            width: VecWidth::V4,
        };
        assert_eq!(l.to_string(), "ld.global.v4.f32 %r2, [%r9+4]");
    }

    #[test]
    fn instr_classes() {
        let a = Instr::Atom {
            space: Space::Shared,
            scope: Scope::Cta,
            op: AtomOp::Add,
            ty: Ty::F32,
            dst: None,
            addr: Address::reg(0),
            src: Operand::Reg(1),
            cmp: None,
        };
        assert_eq!(a.class(), InstrClass::AtomShared);
        assert_eq!(Instr::Bar.class(), InstrClass::Bar);
        assert!(Instr::Exit.is_control());
        assert!(!Instr::Bar.is_control());
    }

    #[test]
    fn vec_width_lanes() {
        assert_eq!(VecWidth::V1.lanes(), 1);
        assert_eq!(VecWidth::V2.lanes(), 2);
        assert_eq!(VecWidth::V4.lanes(), 4);
    }
}
