//! Opt-in profiling: per-site dynamic counters and a structured event
//! tracer.
//!
//! The paper's evaluation (§IV) explains *why* each synthesized
//! reduction wins or loses on each GPU generation with hardware
//! counters — atomic conflicts, shared-memory transactions, warp issue
//! efficiency. The flat [`crate::stats::LaunchStats`] totals are
//! enough for the timing model but not for attribution, so this module
//! adds the profiling layer: a [`LaunchProfile`] attributes every
//! dynamic counter to the *static instruction site* (`pc`) that
//! produced it, and a [`Trace`] records launch/block/warp scheduler
//! events exportable as Chrome `trace_event` JSON (load
//! `chrome://tracing` or <https://ui.perfetto.dev> and drop the file).
//!
//! Profiling is strictly opt-in and zero-cost when off: both
//! interpreter hot paths ([`crate::exec`] and [`crate::uop`]) guard
//! every profiling store behind a single well-predicted
//! `Option::is_some` branch, and the differential test suite asserts
//! that results, statistics and modelled time are bit-identical with
//! profiling on and off.
//!
//! The counter names map onto the `nvprof` metrics the paper cites:
//! `atomic_serial` ↔ atomic replays/conflicts (§IV-C3),
//! `shared_bank_conflicts` ↔ `shared_ld/st_bank_conflict`,
//! `global_transactions` ↔ `gld/gst_transactions`,
//! `divergent_issues` ↔ (1 − `warp_execution_efficiency`),
//! `shuffle_exchanges` counts warp-level data movement that replaces
//! shared-memory traffic after the shuffle rewrite.

use crate::isa::{Instr, InstrClass};
use crate::kernel::Kernel;

/// Dynamic counters attributed to one static instruction site.
///
/// All counts are totals over the functionally-executed blocks of the
/// launch (when blocks were sampled, sites hold the *unscaled* counts
/// of the executed sample; [`LaunchProfile::exact`] records which).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Warp-instruction issues at this site.
    pub issues: u64,
    /// Active lanes summed over issues (thread-instructions).
    pub active_threads: u64,
    /// Issues with at least one inactive lane.
    pub divergent_issues: u64,
    /// Divergent branch splits at this site (each split later
    /// re-converges at the immediate postdominator, so this also
    /// counts re-convergences attributable to the site).
    pub divergence_splits: u64,
    /// 128-byte global-memory transactions generated here.
    pub global_transactions: u64,
    /// Bytes actually requested by global accesses here.
    pub global_bytes_useful: u64,
    /// Warp-level shared-memory accesses here.
    pub shared_accesses: u64,
    /// Extra shared-memory cycles from bank conflicts here.
    pub shared_bank_conflicts: u64,
    /// Atomic operations (thread level) issued here.
    pub atomic_ops: u64,
    /// Serialized same-address atomic conflicts here: for each atomic
    /// op, the number of earlier atomics in its contention scope
    /// (shared: this block; global: the whole launch) that hit the
    /// same address — the per-site view of the chain lengths the
    /// timing model charges for.
    pub atomic_serial: u64,
    /// Lane-to-lane shuffle exchanges here (active lanes per issue).
    pub shuffle_exchanges: u64,
}

impl SiteCounters {
    /// True when every counter is zero (site never executed).
    pub fn is_zero(&self) -> bool {
        *self == SiteCounters::default()
    }

    /// Merge another site's counters into this one.
    pub fn merge(&mut self, rhs: &SiteCounters) {
        self.issues += rhs.issues;
        self.active_threads += rhs.active_threads;
        self.divergent_issues += rhs.divergent_issues;
        self.divergence_splits += rhs.divergence_splits;
        self.global_transactions += rhs.global_transactions;
        self.global_bytes_useful += rhs.global_bytes_useful;
        self.shared_accesses += rhs.shared_accesses;
        self.shared_bank_conflicts += rhs.shared_bank_conflicts;
        self.atomic_ops += rhs.atomic_ops;
        self.atomic_serial += rhs.atomic_serial;
        self.shuffle_exchanges += rhs.shuffle_exchanges;
    }
}

impl serde::Serialize for SiteCounters {
    fn to_value(&self) -> serde::Value {
        let mut m = Vec::new();
        let mut f = |k: &str, v: u64| {
            if v != 0 {
                m.push((k.to_string(), serde::Value::UInt(v)));
            }
        };
        f("issues", self.issues);
        f("active_threads", self.active_threads);
        f("divergent_issues", self.divergent_issues);
        f("divergence_splits", self.divergence_splits);
        f("global_transactions", self.global_transactions);
        f("global_bytes_useful", self.global_bytes_useful);
        f("shared_accesses", self.shared_accesses);
        f("shared_bank_conflicts", self.shared_bank_conflicts);
        f("atomic_ops", self.atomic_ops);
        f("atomic_serial", self.atomic_serial);
        f("shuffle_exchanges", self.shuffle_exchanges);
        serde::Value::Map(m)
    }
}

/// Per-launch, per-instruction-site profile gathered by either
/// interpreter when profiling is enabled (see
/// [`crate::exec::ExecConfig::profile`] and
/// [`crate::Device::set_profiling`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchProfile {
    /// Kernel name the profile belongs to.
    pub kernel: String,
    /// Static instruction class of each site (index = `pc`). The µop
    /// stream is 1:1 with the instruction stream, so the same `pc`
    /// indexes both interpreters identically.
    pub classes: Vec<InstrClass>,
    /// Dynamic counters per site (index = `pc`).
    pub sites: Vec<SiteCounters>,
    /// Whether every block of the launch was executed functionally.
    /// When `false` (sampled execution) the site counters cover only
    /// the executed sample and are not scaled to the grid.
    pub exact: bool,
}

impl LaunchProfile {
    /// An empty profile shaped for `kernel` (one site per static
    /// instruction).
    pub fn for_kernel(kernel: &Kernel) -> Self {
        LaunchProfile {
            kernel: kernel.name.clone(),
            classes: kernel.instrs.iter().map(Instr::class).collect(),
            sites: vec![SiteCounters::default(); kernel.instrs.len()],
            exact: true,
        }
    }

    /// Record one warp issue at `pc`.
    #[inline]
    pub fn record_issue(&mut self, pc: usize, active: u32, warp_size: u32) {
        let s = &mut self.sites[pc];
        s.issues += 1;
        s.active_threads += u64::from(active);
        if active < warp_size {
            s.divergent_issues += 1;
        }
    }

    /// Total atomic contention retries across all sites.
    pub fn total_atomic_serial(&self) -> u64 {
        self.sites.iter().map(|s| s.atomic_serial).sum()
    }

    /// Total shuffle exchanges across all sites.
    pub fn total_shuffle_exchanges(&self) -> u64 {
        self.sites.iter().map(|s| s.shuffle_exchanges).sum()
    }

    /// Sites with at least one nonzero counter, as `(pc, class,
    /// counters)` in pc order.
    pub fn hot_sites(&self) -> impl Iterator<Item = (usize, InstrClass, &SiteCounters)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_zero())
            .map(move |(pc, s)| (pc, self.classes[pc], s))
    }
}

impl serde::Serialize for LaunchProfile {
    /// Serializes as `{kernel, exact, sites: [{pc, class, …counters}]}`
    /// over the nonzero sites in pc order (deterministic).
    fn to_value(&self) -> serde::Value {
        let sites = self
            .hot_sites()
            .map(|(pc, class, s)| {
                let mut m = vec![
                    ("pc".to_string(), serde::Value::UInt(pc as u64)),
                    ("class".to_string(), serde::Value::Str(format!("{class:?}"))),
                ];
                if let serde::Value::Map(rest) = s.to_value() {
                    m.extend(rest);
                }
                serde::Value::Map(m)
            })
            .collect();
        serde::Value::Map(vec![
            ("kernel".to_string(), serde::Value::Str(self.kernel.clone())),
            ("exact".to_string(), serde::Value::Bool(self.exact)),
            ("sites".to_string(), serde::Value::Seq(sites)),
        ])
    }
}

/// One Chrome `trace_event` record (complete event, `ph: "X"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the timeline slice).
    pub name: String,
    /// Category string (`launch`, `block`, `warp`).
    pub cat: String,
    /// Start timestamp in microseconds (Chrome's native unit).
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id lane (one per device).
    pub pid: u32,
    /// Thread id lane (0 = launch row, then one row per modelled SM).
    pub tid: u32,
    /// Extra key→value payload shown in the details pane.
    pub args: Vec<(String, serde::Value)>,
}

impl serde::Serialize for TraceEvent {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("name".to_string(), serde::Value::Str(self.name.clone())),
            ("cat".to_string(), serde::Value::Str(self.cat.clone())),
            ("ph".to_string(), serde::Value::Str("X".to_string())),
            ("ts".to_string(), serde::Value::Float(self.ts)),
            ("dur".to_string(), serde::Value::Float(self.dur)),
            ("pid".to_string(), serde::Value::UInt(u64::from(self.pid))),
            ("tid".to_string(), serde::Value::UInt(u64::from(self.tid))),
            ("args".to_string(), serde::Value::Map(self.args.clone())),
        ])
    }
}

/// A structured scheduler trace: launch, block and warp events on the
/// modelled timeline, exportable as Chrome `trace_event` JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in emission order (monotonic `ts` per `tid` by
    /// construction: each lane is a serial timeline).
    pub events: Vec<TraceEvent>,
}

/// Block events per launch are capped so a 256M-element sweep cannot
/// produce a gigabyte trace; the elided count is recorded on the
/// launch event.
pub const MAX_BLOCK_EVENTS: u64 = 64;

/// Warp events are emitted for the first modelled block only, capped.
pub const MAX_WARP_EVENTS: u32 = 8;

/// Grid geometry of one launch, for [`Trace::push_launch`].
#[derive(Debug, Clone, Copy)]
pub struct LaunchShape {
    /// Blocks in the grid.
    pub blocks: u64,
    /// Warps per block.
    pub warps_per_block: u32,
    /// SMs the blocks are laid out over (one trace lane per SM).
    pub sm_count: u32,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append the deterministic event timeline of one launch.
    ///
    /// `start_ns` is the modelled clock at launch entry and `timing`
    /// the modelled breakdown `time_launch` produced. Blocks are laid
    /// out round-robin over the architecture's SMs (one `tid` lane per
    /// SM), each lane a serial sequence of equal slots — the same
    /// static schedule the occupancy model assumes.
    pub fn push_launch(
        &mut self,
        kernel: &str,
        start_ns: f64,
        time_ns: f64,
        shape: LaunchShape,
        profile: Option<&LaunchProfile>,
    ) {
        let LaunchShape { blocks, warps_per_block, sm_count } = shape;
        let to_us = 1e-3; // modelled ns → Chrome µs
        let ts = start_ns * to_us;
        let dur = time_ns * to_us;
        let shown_blocks = blocks.min(MAX_BLOCK_EVENTS);
        let mut args = vec![
            ("blocks".to_string(), serde::Value::UInt(blocks)),
            ("warps_per_block".to_string(), serde::Value::UInt(u64::from(warps_per_block))),
        ];
        if blocks > shown_blocks {
            args.push(("block_events_elided".to_string(), serde::Value::UInt(blocks - shown_blocks)));
        }
        if let Some(p) = profile {
            args.push(("atomic_serial".to_string(), serde::Value::UInt(p.total_atomic_serial())));
            args.push((
                "shuffle_exchanges".to_string(),
                serde::Value::UInt(p.total_shuffle_exchanges()),
            ));
        }
        self.events.push(TraceEvent {
            name: kernel.to_string(),
            cat: "launch".to_string(),
            ts,
            dur,
            pid: 0,
            tid: 0,
            args,
        });

        // Block lanes: tid 1..=sm_count, blocks round-robin, serial
        // equal-duration slots per lane.
        let sms = u64::from(sm_count.max(1));
        if shown_blocks > 0 {
            let slots_per_lane = shown_blocks.div_ceil(sms);
            let slot_dur = dur / slots_per_lane as f64;
            for b in 0..shown_blocks {
                let lane = b % sms;
                let slot = b / sms;
                self.events.push(TraceEvent {
                    name: format!("block {b}"),
                    cat: "block".to_string(),
                    ts: ts + slot as f64 * slot_dur,
                    dur: slot_dur,
                    pid: 0,
                    tid: 1 + lane as u32,
                    args: Vec::new(),
                });
            }
        }

        // Warp-scheduler lanes for block 0 only: tid sm_count+1….
        let warps = warps_per_block.min(MAX_WARP_EVENTS);
        if warps > 0 {
            let wdur = dur / f64::from(warps);
            for w in 0..warps {
                self.events.push(TraceEvent {
                    name: format!("block 0 warp {w}"),
                    cat: "warp".to_string(),
                    ts: ts + f64::from(w) * wdur,
                    dur: wdur,
                    pid: 0,
                    tid: sm_count.max(1) + 1 + w,
                    args: Vec::new(),
                });
            }
        }
    }

    /// Render the trace as Chrome `trace_event` JSON
    /// (`{"traceEvents": […], "displayTimeUnit": "ns"}`).
    pub fn to_chrome_json(&self) -> String {
        let v = serde::Value::Map(vec![
            (
                "traceEvents".to_string(),
                serde::Value::Seq(self.events.iter().map(serde::Serialize::to_value).collect()),
            ),
            ("displayTimeUnit".to_string(), serde::Value::Str("ns".to_string())),
        ]);
        serde_json::to_string_pretty(&v).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_counters_merge_and_zero() {
        let mut a = SiteCounters { issues: 1, atomic_serial: 3, ..Default::default() };
        let b = SiteCounters { issues: 2, shuffle_exchanges: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.issues, 3);
        assert_eq!(a.atomic_serial, 3);
        assert_eq!(a.shuffle_exchanges, 5);
        assert!(!a.is_zero());
        assert!(SiteCounters::default().is_zero());
    }

    #[test]
    fn trace_ts_monotonic_per_tid() {
        let mut t = Trace::new();
        let shape = |blocks, warps_per_block| LaunchShape { blocks, warps_per_block, sm_count: 16 };
        t.push_launch("k", 0.0, 1000.0, shape(130, 4), None);
        t.push_launch("k2", 1000.0, 500.0, shape(2, 1), None);
        let mut last: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for e in &t.events {
            if let Some(&prev) = last.get(&e.tid) {
                assert!(e.ts >= prev, "tid {} ts {} < {}", e.tid, e.ts, prev);
            }
            last.insert(e.tid, e.ts);
        }
        // Block events were capped.
        let blocks = t.events.iter().filter(|e| e.cat == "block").count() as u64;
        assert_eq!(blocks, MAX_BLOCK_EVENTS + 2);
        let json = t.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"displayTimeUnit\""));
    }
}
