//! Analytic timing model.
//!
//! The functional interpreter gathers [`LaunchStats`]; this module
//! converts them into nanoseconds under an architecture's cost
//! parameters. The model is a calibrated roofline with first-class
//! treatment of the effects the paper's evaluation hinges on:
//!
//! * **kernel-launch overhead** — dominates small arrays and
//!   penalizes the pruned two-kernel versions (§IV-B);
//! * **occupancy and latency hiding** — smaller shared-memory
//!   footprints (shuffle / shared-atomic variants) admit more resident
//!   blocks and hide latency better (§III-B, §III-C);
//! * **shared-atomic microarchitecture** — Kepler's software
//!   lock-update-unlock loop vs Maxwell/Pascal native units (§II-A2);
//! * **global-atomic serialization** — same-address chains run at the
//!   L2 atomic-unit rate;
//! * **achieved DRAM bandwidth** — scalar vs vectorized (CUB-style)
//!   access streams (§IV-C1).

use serde::{Deserialize, Serialize};

use crate::arch::ArchConfig;
use crate::exec::LaunchDims;
use crate::isa::InstrClass;
use crate::kernel::Kernel;
use crate::stats::LaunchStats;

/// What bound a launch's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Instruction-issue throughput.
    Compute,
    /// DRAM bandwidth.
    Memory,
    /// Global atomic serialization.
    Atomics,
}

/// Timing breakdown for one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchTiming {
    /// Total modelled wall time in nanoseconds, including the launch
    /// overhead.
    pub time_ns: f64,
    /// Launch (driver + hardware dispatch) overhead.
    pub launch_ns: f64,
    /// Instruction-issue component.
    pub compute_ns: f64,
    /// DRAM component.
    pub memory_ns: f64,
    /// Global-atomic serialization component.
    pub atomic_ns: f64,
    /// Exposed memory latency on the critical path.
    pub latency_ns: f64,
    /// Resident blocks per SM (occupancy model).
    pub blocks_per_sm: u32,
    /// Achieved occupancy: resident warps / maximum warps.
    pub occupancy: f64,
    /// Which roofline term dominated.
    pub limiter: Limiter,
}

/// Per-launch modelling options.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingOptions {
    /// Override the achieved-bandwidth efficiency factor. Used by the
    /// Kokkos-like baseline to model the paper's observation that its
    /// staged, compute-bound kernels outrun a plain streaming kernel
    /// on very large inputs (§IV-C2); see DESIGN.md for why this is a
    /// modelled input rather than a derived quantity.
    pub bw_efficiency_override: Option<f64>,
    /// Extra issue-cycles per warp-instruction (models heavier
    /// per-instruction kernels without emitting every instruction).
    pub extra_issue_cycles: f64,
}

/// Issue-cycle cost of one warp instruction of a class (excluding the
/// contention terms handled separately).
fn issue_cost(class: InstrClass) -> f64 {
    match class {
        InstrClass::Alu | InstrClass::Fp => 1.0,
        InstrClass::Shfl => 1.0,
        InstrClass::LdShared | InstrClass::StShared => 2.0,
        InstrClass::LdGlobal | InstrClass::StGlobal => 4.0,
        InstrClass::AtomGlobal => 4.0,
        // Base handled here; contention added from the arch model.
        InstrClass::AtomShared => 0.0,
        InstrClass::Bar => 8.0,
        InstrClass::Branch => 1.0,
        InstrClass::Other => 1.0,
    }
}

/// Compute the modelled execution time of a launch.
///
/// `stats` must come from executing `kernel` with `dims` (scaled stats
/// from sampled execution are fine — the model is linear in them).
pub fn time_launch(
    arch: &ArchConfig,
    kernel: &Kernel,
    dims: LaunchDims,
    stats: &LaunchStats,
    opts: TimingOptions,
) -> LaunchTiming {
    let smem = kernel.smem_bytes(dims.dynamic_smem);
    // Virtual registers are SSA-like and overstate pressure; clamp to
    // a plausible allocated range.
    let regs = u32::from(kernel.num_regs).clamp(16, 128);
    let blocks_per_sm = arch.blocks_per_sm(dims.block, smem, regs).max(1);
    let warps_per_block = dims.block.div_ceil(arch.warp_size);
    let active_warps = (blocks_per_sm * warps_per_block).min(arch.max_threads_per_sm / arch.warp_size);
    let occupancy = f64::from(active_warps) / f64::from(arch.max_threads_per_sm / arch.warp_size);
    let hide = (f64::from(active_warps) / arch.hide_warps).clamp(arch.min_hide, 1.0);

    // ---- compute term -------------------------------------------------
    // Accumulate in the canonical class order (ClassCounts::iter) so
    // the floating-point sum is bit-identical across runs — hash-map
    // iteration here used to make modelled times nondeterministic in
    // the last few ulps.
    let mut issue_cycles = 0.0f64;
    for (class, count) in stats.warp_instrs.iter() {
        issue_cycles += count as f64 * issue_cost(class);
    }
    issue_cycles += stats.total_warp_instrs() as f64 * opts.extra_issue_cycles;
    issue_cycles += stats.shared_bank_conflict_cycles as f64;
    issue_cycles += stats.fault_stall_cycles as f64;
    // Shared atomics: per-issue base plus serialization, under the
    // generation's implementation.
    let shared_issues = stats.class(InstrClass::AtomShared) as f64;
    if shared_issues > 0.0 {
        let base = arch.shared_atomic.warp_cost(1) as f64;
        let per_conflict = arch.shared_atomic.warp_cost(2) as f64 - base;
        let extra_conflicts = (stats.shared_atomic_serial as f64 - shared_issues).max(0.0);
        issue_cycles += shared_issues * base + extra_conflicts * per_conflict;
    }
    let sms_used = f64::from(arch.sm_count.min(dims.grid.max(1)));
    let per_sm_throughput = arch.issue_width * hide;
    let compute_ns = issue_cycles / (sms_used * per_sm_throughput) / arch.cycles_per_ns();

    // ---- memory term --------------------------------------------------
    let bw_eff = opts.bw_efficiency_override.unwrap_or_else(|| {
        let frac_vec = stats.vector_load_fraction();
        arch.bw_eff_scalar + (arch.bw_eff_vector - arch.bw_eff_scalar) * frac_vec
    });
    let eff_bw_bytes_per_ns = arch.dram_bw_gbps * bw_eff; // GB/s == bytes/ns
    let memory_ns = if eff_bw_bytes_per_ns > 0.0 {
        stats.dram_bytes() as f64 / eff_bw_bytes_per_ns
    } else {
        0.0
    };

    // ---- global-atomic term --------------------------------------------
    let scope_discount = if arch.has_scoped_atomics { arch.cta_scope_discount } else { 1.0 };
    let chain_ns = stats.global_atomic_max_chain as f64 / arch.global_atomic_chain_rate;
    let thru_ns = stats.global_atomics as f64 / arch.global_atomic_rate * scope_discount;
    let atomic_ns = chain_ns.max(thru_ns);

    // ---- latency exposure ----------------------------------------------
    let touches_memory = stats.global_load_transactions
        + stats.global_store_transactions
        + stats.global_atomics
        > 0;
    let latency_ns = if touches_memory { arch.mem_latency_ns } else { 0.0 };

    let body = compute_ns.max(memory_ns).max(atomic_ns);
    let limiter = if body == memory_ns && memory_ns >= compute_ns {
        Limiter::Memory
    } else if body == atomic_ns {
        Limiter::Atomics
    } else {
        Limiter::Compute
    };
    LaunchTiming {
        time_ns: arch.launch_overhead_ns + body + latency_ns,
        launch_ns: arch.launch_overhead_ns,
        compute_ns,
        memory_ns,
        atomic_ns,
        latency_ns,
        blocks_per_sm,
        occupancy,
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Ty;
    use crate::kernel::{Kernel, ParamKind};

    fn kernel_with_smem(smem: u64) -> Kernel {
        Kernel {
            name: "k".into(),
            instrs: vec![crate::isa::Instr::Exit],
            params: vec![ParamKind::Scalar(Ty::U32)],
            static_smem: smem,
            dynamic_smem: false,
            num_regs: 16,
            num_preds: 1,
            cfg_cache: Default::default(),
            uop_cache: Default::default(),
            jit_cache: Default::default(),
        }
    }

    fn stats_with(f: impl FnOnce(&mut LaunchStats)) -> LaunchStats {
        let mut s = LaunchStats::default();
        f(&mut s);
        s
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let arch = ArchConfig::pascal_p100();
        let k = kernel_with_smem(0);
        let t = time_launch(&arch, &k, LaunchDims::new(1, 32), &LaunchStats::default(), TimingOptions::default());
        assert!((t.time_ns - arch.launch_overhead_ns).abs() < 1.0);
        assert_eq!(t.latency_ns, 0.0);
    }

    #[test]
    fn memory_bound_large_stream() {
        let arch = ArchConfig::maxwell_gtx980();
        let k = kernel_with_smem(0);
        // 64 MiB of perfectly coalesced scalar loads.
        let s = stats_with(|s| {
            s.global_load_transactions = 64 * 1024 * 1024 / 128;
            s.global_load_bytes_useful = 64 * 1024 * 1024;
            s.issue(InstrClass::LdGlobal, 32, 32);
        });
        let t = time_launch(&arch, &k, LaunchDims::new(65536, 256), &s, TimingOptions::default());
        assert_eq!(t.limiter, Limiter::Memory);
        let expect = 64.0 * 1024.0 * 1024.0 / (224.0 * arch.bw_eff_scalar);
        assert!((t.memory_ns - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn vectorized_loads_reach_higher_bandwidth() {
        let arch = ArchConfig::kepler_k40c();
        let k = kernel_with_smem(0);
        let scalar = stats_with(|s| {
            s.global_load_transactions = 1 << 20;
            s.global_load_bytes_useful = 128 << 20;
        });
        let vector = stats_with(|s| {
            s.global_load_transactions = 1 << 20;
            s.global_load_bytes_useful = 128 << 20;
            s.global_vector_bytes = 128 << 20;
        });
        let dims = LaunchDims::new(4096, 256);
        let ts = time_launch(&arch, &k, dims, &scalar, TimingOptions::default());
        let tv = time_launch(&arch, &k, dims, &vector, TimingOptions::default());
        assert!(tv.memory_ns < ts.memory_ns);
        let ratio = ts.memory_ns / tv.memory_ns;
        let expect = arch.bw_eff_vector / arch.bw_eff_scalar;
        assert!((ratio - expect).abs() < 1e-9);
    }

    #[test]
    fn kepler_shared_atomics_cost_more_than_maxwell() {
        let kep = ArchConfig::kepler_k40c();
        let max = ArchConfig::maxwell_gtx980();
        let k = kernel_with_smem(4);
        // 1000 fully-conflicting warp atomics.
        let s = stats_with(|s| {
            for _ in 0..1000 {
                s.issue(InstrClass::AtomShared, 32, 32);
            }
            s.shared_atomics = 32_000;
            s.shared_atomic_serial = 32_000;
        });
        let dims = LaunchDims::new(32, 256);
        let tk = time_launch(&kep, &k, dims, &s, TimingOptions::default());
        let tm = time_launch(&max, &k, dims, &s, TimingOptions::default());
        assert!(tk.compute_ns > 5.0 * tm.compute_ns, "kepler {} vs maxwell {}", tk.compute_ns, tm.compute_ns);
    }

    #[test]
    fn global_atomic_chain_serializes() {
        let arch = ArchConfig::kepler_k40c();
        let k = kernel_with_smem(0);
        let s = stats_with(|s| {
            s.global_atomics = 100_000;
            s.global_atomic_max_chain = 100_000;
        });
        let t = time_launch(&arch, &k, LaunchDims::new(1024, 128), &s, TimingOptions::default());
        assert_eq!(t.limiter, Limiter::Atomics);
        assert!(t.atomic_ns >= 100_000.0 / arch.global_atomic_chain_rate);
    }

    #[test]
    fn smaller_smem_footprint_improves_occupancy_and_time() {
        let arch = ArchConfig::maxwell_gtx980();
        let fat = kernel_with_smem(24 * 1024);
        let slim = kernel_with_smem(256);
        let s = stats_with(|s| {
            for _ in 0..200_000 {
                s.issue(InstrClass::Alu, 32, 32);
            }
        });
        let dims = LaunchDims::new(64, 128);
        let tf = time_launch(&arch, &fat, dims, &s, TimingOptions::default());
        let tsl = time_launch(&arch, &slim, dims, &s, TimingOptions::default());
        assert!(tsl.blocks_per_sm > tf.blocks_per_sm);
        assert!(tsl.compute_ns < tf.compute_ns);
    }

    #[test]
    fn bw_override_used_by_kokkos_model() {
        let arch = ArchConfig::kepler_k40c();
        let k = kernel_with_smem(0);
        let s = stats_with(|s| {
            s.global_load_transactions = 1 << 20;
            s.global_load_bytes_useful = 128 << 20;
        });
        let dims = LaunchDims::new(4096, 256);
        let base = time_launch(&arch, &k, dims, &s, TimingOptions::default());
        let boosted = time_launch(
            &arch,
            &k,
            dims,
            &s,
            TimingOptions { bw_efficiency_override: Some(2.0), ..Default::default() },
        );
        assert!(boosted.memory_ns < base.memory_ns / 2.5);
    }
}
