//! Simulator error type.

use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel failed structural validation.
    InvalidKernel {
        /// Kernel name.
        kernel: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An out-of-bounds or misaligned memory access at runtime.
    MemoryFault {
        /// Memory space name (`"global"` / `"shared"`).
        space: &'static str,
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Capacity of the addressed space.
        capacity: u64,
    },
    /// A launch was configured inconsistently (wrong parameter count,
    /// zero-sized grid, shared memory over the per-block limit, …).
    InvalidLaunch(String),
    /// The interpreter exceeded its dynamic instruction budget — a
    /// runaway loop guard, not a modelled limit.
    Timeout {
        /// Kernel name.
        kernel: String,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// An assembler diagnostic.
    Asm {
        /// 1-based source line of the error.
        line: usize,
        /// Description.
        reason: String,
    },
}

impl SimError {
    pub(crate) fn invalid_kernel(kernel: &str, reason: impl Into<String>) -> Self {
        SimError::InvalidKernel { kernel: kernel.to_string(), reason: reason.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidKernel { kernel, reason } => {
                write!(f, "invalid kernel `{kernel}`: {reason}")
            }
            SimError::MemoryFault { space, addr, size, capacity } => write!(
                f,
                "{space} memory fault: {size}-byte access at {addr:#x} (capacity {capacity:#x})"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::Timeout { kernel, budget } => {
                write!(f, "kernel `{kernel}` exceeded the {budget}-instruction budget")
            }
            SimError::Asm { line, reason } => write!(f, "asm error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = SimError::MemoryFault { space: "global", addr: 64, size: 4, capacity: 32 };
        assert!(e.to_string().contains("global memory fault"));
        let e = SimError::invalid_kernel("k", "broken");
        assert!(e.to_string().contains("`k`"));
    }
}
