//! Simulator error types: validation failures, runtime traps and the
//! deadlock/timeout guards.
//!
//! The interpreter never panics on guest kernel input: every malformed
//! instruction mix that slips past static validation surfaces as a
//! [`SimError::Trap`] carrying the faulting kernel/pc/warp/lane, and a
//! barrier that can never be released reports
//! [`SimError::BarrierDeadlock`] instead of silently releasing or
//! spinning until the instruction budget runs out.

use std::fmt;

/// What a runtime trap was about — the taxonomy of guest-input faults
/// the interpreter detects instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrapKind {
    /// An instruction encoding the interpreter cannot execute (e.g. a
    /// `plop` with a non-logical operation).
    IllegalInstruction {
        /// Human-readable description of the encoding problem.
        detail: String,
    },
    /// An operand/type combination with no defined semantics (e.g. a
    /// bitwise operation on a floating-point type).
    IllegalOperandType {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An `atom.cas` without a compare operand.
    CasWithoutCmp,
    /// A memory access that is not naturally aligned for its width.
    Misaligned {
        /// Memory space name (`"global"` / `"shared"`).
        space: &'static str,
        /// Faulting byte address.
        addr: u64,
        /// Required alignment in bytes.
        required: u64,
    },
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::IllegalInstruction { detail } => {
                write!(f, "illegal instruction: {detail}")
            }
            TrapKind::IllegalOperandType { detail } => {
                write!(f, "illegal operand type: {detail}")
            }
            TrapKind::CasWithoutCmp => f.write_str("atom.cas without a compare operand"),
            TrapKind::Misaligned { space, addr, required } => write!(
                f,
                "misaligned {space} access at {addr:#x} (requires {required}-byte alignment)"
            ),
        }
    }
}

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A kernel failed structural validation.
    InvalidKernel {
        /// Kernel name.
        kernel: String,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An out-of-bounds or misaligned memory access at runtime.
    MemoryFault {
        /// Memory space name (`"global"` / `"shared"`).
        space: &'static str,
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
        /// Capacity of the addressed space.
        capacity: u64,
    },
    /// A launch was configured inconsistently (wrong parameter count,
    /// zero-sized grid, shared memory over the per-block limit, …).
    InvalidLaunch(String),
    /// The interpreter exceeded its dynamic instruction budget — a
    /// runaway loop guard, not a modelled limit.
    Timeout {
        /// Kernel name.
        kernel: String,
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A runtime trap: the interpreter hit guest input it cannot
    /// execute and stopped at a precise location instead of panicking.
    Trap {
        /// Kernel name.
        kernel: String,
        /// Program counter of the faulting instruction.
        pc: usize,
        /// Warp id within the block.
        warp: u32,
        /// Lane id within the warp.
        lane: u32,
        /// What went wrong.
        kind: TrapKind,
    },
    /// Barrier-divergence deadlock: at the end of a scheduling round
    /// some warps of a block wait at a barrier that the remaining,
    /// already-retired warps can never arrive at.
    BarrierDeadlock {
        /// Kernel name.
        kernel: String,
        /// Program counter of the barrier the stuck warps wait at.
        barrier_pc: usize,
        /// Ids of the warps parked at the barrier.
        waiting_warps: Vec<u32>,
    },
    /// An assembler diagnostic.
    Asm {
        /// 1-based source line of the error.
        line: usize,
        /// Description.
        reason: String,
    },
}

impl SimError {
    pub(crate) fn invalid_kernel(kernel: &str, reason: impl Into<String>) -> Self {
        SimError::InvalidKernel { kernel: kernel.to_string(), reason: reason.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidKernel { kernel, reason } => {
                write!(f, "invalid kernel `{kernel}`: {reason}")
            }
            SimError::MemoryFault { space, addr, size, capacity } => write!(
                f,
                "{space} memory fault: {size}-byte access at {addr:#x} (capacity {capacity:#x})"
            ),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::Timeout { kernel, budget } => {
                write!(f, "kernel `{kernel}` exceeded the {budget}-instruction budget")
            }
            SimError::Trap { kernel, pc, warp, lane, kind } => {
                write!(f, "trap in kernel `{kernel}` at pc {pc} (warp {warp}, lane {lane}): {kind}")
            }
            SimError::BarrierDeadlock { kernel, barrier_pc, waiting_warps } => write!(
                f,
                "barrier deadlock in kernel `{kernel}`: {} warp(s) {waiting_warps:?} wait at the \
                 barrier at pc {barrier_pc} but the other warps of the block have retired",
                waiting_warps.len()
            ),
            SimError::Asm { line, reason } => write!(f, "asm error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = SimError::MemoryFault { space: "global", addr: 64, size: 4, capacity: 32 };
        assert!(e.to_string().contains("global memory fault"));
        let e = SimError::invalid_kernel("k", "broken");
        assert!(e.to_string().contains("`k`"));
    }
}
