//! Property tests for the SIMT interpreter: arithmetic semantics
//! against a host-side model, shuffle semantics against an explicit
//! permutation, atomic linearizability, and sampled-vs-exact
//! statistics consistency.

use gpu_sim::exec::{run_kernel, Arg, BlockSelection, LaunchDims};
use gpu_sim::isa::{Address, AtomOp, BinOp, CmpOp, Operand, Scope, ShflMode, Space, Sreg, Ty};
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::memory::LinearMemory;
use gpu_sim::ArchConfig;
use proptest::prelude::*;

fn arch() -> ArchConfig {
    ArchConfig::maxwell_gtx980()
}

/// Evaluate `a op b` on the device for one thread; compare with host.
fn device_bin_u32(op: BinOp, a: u32, b: u32) -> u32 {
    let mut kb = KernelBuilder::new("bin");
    let out = kb.param_ptr();
    let ra = kb.reg();
    let rb = kb.reg();
    kb.mov(Ty::U32, ra, Operand::ImmI(i64::from(a)));
    kb.mov(Ty::U32, rb, Operand::ImmI(i64::from(b)));
    kb.bin(op, Ty::U32, ra, Operand::Reg(ra), Operand::Reg(rb));
    kb.st(Space::Global, Ty::U32, ra, Address::new(Operand::Param(out), 0));
    kb.exit();
    let k = kb.finish().unwrap();
    let mut mem = LinearMemory::new(4, "global");
    run_kernel(&k, &arch(), LaunchDims::new(1, 1), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
        .unwrap();
    mem.read(Ty::U32, 0).unwrap() as u32
}

fn host_bin_u32(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Rem => a.checked_rem(b).unwrap_or(0),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b & 63),
        BinOp::Shr => a.wrapping_shr(b & 63),
    }
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn u32_arithmetic_matches_host(op in binop_strategy(), a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(device_bin_u32(op, a, b), host_bin_u32(op, a, b));
    }

    /// shfl.down/up/bfly write exactly the host-modelled permutation.
    #[test]
    fn shuffle_matches_permutation(
        mode in prop_oneof![Just(ShflMode::Down), Just(ShflMode::Up), Just(ShflMode::Bfly)],
        delta in 0u32..32,
        width_exp in 0u32..6, // 1..32
    ) {
        let width = 1u32 << width_exp;
        let mut kb = KernelBuilder::new("shfl");
        let out = kb.param_ptr();
        let v = kb.reg();
        let r = kb.reg();
        let a = kb.reg();
        kb.mov(Ty::U32, v, Operand::Sreg(Sreg::TidX));
        kb.bin(BinOp::Mul, Ty::U32, v, Operand::Reg(v), Operand::ImmI(10));
        kb.shfl(mode, Ty::U32, r, Operand::Reg(v), Operand::ImmI(i64::from(delta)), width);
        kb.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::TidX));
        kb.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        kb.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(out));
        kb.st(Space::Global, Ty::U32, r, Address::reg(a));
        kb.exit();
        let k = kb.finish().unwrap();
        let mut mem = LinearMemory::new(4 * 32, "global");
        run_kernel(&k, &arch(), LaunchDims::new(1, 32), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        for lane in 0u32..32 {
            let seg = lane / width * width;
            let pos = lane % width;
            let src = match mode {
                ShflMode::Down => {
                    if pos + delta < width { seg + pos + delta } else { lane }
                }
                ShflMode::Up => {
                    if pos >= delta { seg + pos - delta } else { lane }
                }
                ShflMode::Bfly => {
                    let j = pos ^ delta;
                    if j < width { seg + j } else { lane }
                }
                ShflMode::Idx => unreachable!(),
            };
            let got = mem.read(Ty::U32, u64::from(lane) * 4).unwrap() as u32;
            prop_assert_eq!(got, src * 10, "lane {} mode {:?} d={} w={}", lane, mode, delta, width);
        }
    }

    /// Atomic add from every thread is linearizable: the final value
    /// is the exact sum regardless of grid/block shape.
    #[test]
    fn atomics_linearizable(grid in 1u32..8, warps in 1u32..8) {
        let block = warps * 32;
        let mut kb = KernelBuilder::new("atom");
        let out = kb.param_ptr();
        let g = kb.reg();
        kb.mad(Ty::U32, g, Operand::Sreg(Sreg::CtaIdX), Operand::Sreg(Sreg::NtidX), Operand::Sreg(Sreg::TidX));
        kb.red(Space::Global, Scope::Gpu, AtomOp::Add, Ty::U32, Address::new(Operand::Param(out), 0), Operand::Reg(g));
        kb.exit();
        let k = kb.finish().unwrap();
        let mut mem = LinearMemory::new(4, "global");
        run_kernel(&k, &arch(), LaunchDims::new(grid, block), &[Arg::Ptr(0)], &mut mem, BlockSelection::All)
            .unwrap();
        let total = u64::from(grid * block);
        let expect = (total * (total - 1) / 2) as u32;
        prop_assert_eq!(mem.read(Ty::U32, 0).unwrap() as u32, expect);
    }

    /// Sampled execution scales homogeneous-grid statistics to within
    /// a few percent of the exact counts.
    #[test]
    fn sampled_stats_close_to_exact(grid in 32u32..200) {
        let mut kb = KernelBuilder::new("work");
        let out = kb.param_ptr();
        let v = kb.reg();
        let a = kb.reg();
        kb.mov(Ty::U32, v, Operand::Sreg(Sreg::TidX));
        for _ in 0..4 {
            kb.bin(BinOp::Add, Ty::U32, v, Operand::Reg(v), Operand::ImmI(3));
        }
        kb.cvt(Ty::U32, Ty::U64, a, Operand::Sreg(Sreg::CtaIdX));
        kb.bin(BinOp::Mul, Ty::U64, a, Operand::Reg(a), Operand::ImmI(4));
        kb.bin(BinOp::Add, Ty::U64, a, Operand::Reg(a), Operand::Param(out));
        let p = kb.pred();
        kb.setp(CmpOp::Eq, Ty::U32, p, Operand::Sreg(Sreg::TidX), Operand::ImmI(0));
        let skip = kb.label();
        kb.bra_if(p, false, skip);
        kb.st(Space::Global, Ty::U32, v, Address::reg(a));
        kb.place(skip);
        kb.exit();
        let k = kb.finish().unwrap();
        let dims = LaunchDims::new(grid, 64);
        let mut m1 = LinearMemory::new(u64::from(grid) * 4, "global");
        let exact = run_kernel(&k, &arch(), dims, &[Arg::Ptr(0)], &mut m1, BlockSelection::All).unwrap();
        let mut m2 = LinearMemory::new(u64::from(grid) * 4, "global");
        let sampled = run_kernel(&k, &arch(), dims, &[Arg::Ptr(0)], &mut m2, BlockSelection::Sample { max_blocks: 6 })
            .unwrap();
        let a = exact.stats.total_warp_instrs() as f64;
        let b = sampled.stats.total_warp_instrs() as f64;
        prop_assert!((a - b).abs() / a < 0.05, "exact {} sampled {}", a, b);
    }
}

/// Display → assemble round trip over all synthesized kernels is
/// covered in the workspace-level tests; here, a targeted case.
#[test]
fn display_assemble_round_trip() {
    let mut kb = KernelBuilder::new("rt");
    let p0 = kb.param_ptr();
    let p1 = kb.param_scalar(Ty::U32);
    kb.smem_alloc(64);
    let v = kb.reg();
    let p = kb.pred();
    kb.mov(Ty::F32, v, Operand::ImmF(1.5));
    kb.setp(CmpOp::Lt, Ty::U32, p, Operand::Param(p1), Operand::ImmI(7));
    let l = kb.label();
    kb.bra_if(p, false, l);
    kb.st(Space::Global, Ty::F32, v, Address::new(Operand::Param(p0), 0));
    kb.place(l);
    kb.exit();
    let k = kb.finish().unwrap();
    let text = k.to_string();
    let k2 = gpu_sim::asm::assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(k.instrs, k2.instrs, "text:\n{text}");
    assert_eq!(k.params, k2.params);
    assert_eq!(k.static_smem, k2.static_smem);
    assert_eq!(k.dynamic_smem, k2.dynamic_smem);
}
