//! Reduction-operator specialization.
//!
//! The paper's new APIs and qualifiers cover the whole atomic family —
//! `atomicAdd`, `atomicSub`, `atomicMax`, `atomicMin` (§III-A, §III-B:
//! "Parallel reduction can take advantage of different atomic
//! instructions because different applications require different types
//! of reductions"). The canonical corpus is written for `sum`; this
//! pass retargets a codelet to another reduction operator by rewriting
//!
//! * reduction accumulations (`val += X` where `X` reads data) into
//!   the operator's fold (`val = max(val, X)`),
//! * the atomic qualifiers and `Map` atomic APIs,
//! * the spectrum name and recursive spectrum calls,
//! * literal `0` identities in guards and initializers into the
//!   operator's identity element.

use serde::{Deserialize, Serialize};
use tangram_ir::ast::{BinOp, Block, Expr, Stmt};
use tangram_ir::ty::AtomicKind;
use tangram_ir::visit::{walk_expr, Visitor};
use tangram_ir::Codelet;

/// A reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Sum (`+`, `atomicAdd`, identity 0).
    Sum,
    /// Maximum (`max`, `atomicMax`, identity −∞).
    Max,
    /// Minimum (`min`, `atomicMin`, identity +∞).
    Min,
}

impl ReduceOp {
    /// The spectrum name.
    pub fn spectrum(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        }
    }

    /// The matching atomic kind (§III-A table).
    pub fn atomic_kind(self) -> AtomicKind {
        match self {
            ReduceOp::Sum => AtomicKind::Add,
            ReduceOp::Max => AtomicKind::Max,
            ReduceOp::Min => AtomicKind::Min,
        }
    }

    /// The identity element for `f32` data.
    pub fn identity_f32(self) -> f32 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Max => f32::MIN,
            ReduceOp::Min => f32::MAX,
        }
    }

    /// Fold two host values.
    pub fn fold_f32(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Fold expression in the codelet language.
    fn dsl_fold(self, acc: Expr, x: Expr) -> (Option<BinOp>, Expr) {
        match self {
            ReduceOp::Sum => (Some(BinOp::Add), x),
            ReduceOp::Max => (None, Expr::call("max", vec![acc, x])),
            ReduceOp::Min => (None, Expr::call("min", vec![acc, x])),
        }
    }
}

/// Whether a value expression is a *data* read (part of a reduction
/// accumulation, as opposed to index arithmetic): it touches an array
/// element, a shuffle exchange, or a shared accumulator.
fn reads_data(e: &Expr) -> bool {
    struct R(bool);
    impl Visitor for R {
        fn visit_expr(&mut self, e: &Expr) {
            match e {
                Expr::Index { .. } => self.0 = true,
                Expr::Call { callee, .. } if callee.starts_with("__shfl") => self.0 = true,
                _ => {}
            }
            walk_expr(self, e);
        }
    }
    let mut r = R(false);
    r.visit_expr(e);
    r.0
}

/// Replace literal integer `0` identities with the operator identity.
fn retarget_identity(e: &mut Expr, op: ReduceOp) {
    if op == ReduceOp::Sum {
        return;
    }
    match e {
        Expr::Int(0) => *e = Expr::Float(f64::from(op.identity_f32())),
        Expr::Ternary { then_e, else_e, .. } => {
            // Guards of the form `(cond) ? data : 0`.
            if reads_data(then_e) {
                retarget_identity(else_e, op);
            }
            if reads_data(else_e) {
                retarget_identity(then_e, op);
            }
        }
        _ => {}
    }
}

fn specialize_block(b: &mut Block, op: ReduceOp) {
    for s in &mut b.0 {
        specialize_stmt(s, op);
    }
}

fn specialize_stmt(s: &mut Stmt, op: ReduceOp) {
    match s {
        Stmt::Decl { quals, init, .. } => {
            if quals.atomic == Some(AtomicKind::Add) {
                quals.atomic = Some(op.atomic_kind());
            }
            if let Some(e) = init {
                retarget_identity(e, op);
            }
        }
        Stmt::CompoundAssign { op: BinOp::Add, target, value } if reads_data(value) => {
            let mut v = value.clone();
            retarget_identity(&mut v, op);
            let (bin, folded) = op.dsl_fold(target.clone(), v);
            *s = match bin {
                Some(b) => Stmt::CompoundAssign { op: b, target: target.clone(), value: folded },
                None => Stmt::Assign { target: target.clone(), value: folded },
            };
        }
        Stmt::Assign { value, .. } => retarget_identity(value, op),
        Stmt::Expr(e) => {
            // `map.atomicAdd()` → `map.atomicMax()` etc.
            if let Expr::Method { method, .. } = e {
                if method == "atomicAdd" {
                    *method = op.atomic_kind().cuda_name();
                }
            }
        }
        Stmt::For { body, .. } => specialize_block(body, op),
        Stmt::If { then_b, else_b, .. } => {
            specialize_block(then_b, op);
            if let Some(e) = else_b {
                specialize_block(e, op);
            }
        }
        Stmt::Return(e) => retarget_identity(e, op),
        Stmt::CompoundAssign { .. } => {}
    }
}

/// Retarget a `sum` codelet to another reduction operator.
pub fn specialize_codelet(codelet: &Codelet, op: ReduceOp) -> Codelet {
    let mut out = codelet.clone();
    if op == ReduceOp::Sum {
        return out;
    }
    out.name = op.spectrum().to_string();
    // Recursive spectrum calls `sum(map)` follow the new name.
    rename_spectrum_calls(&mut out.body, op.spectrum());
    specialize_block(&mut out.body, op);
    out
}

fn rename_spectrum_calls(b: &mut Block, name: &str) {
    use tangram_ir::visit::{rewrite_expr_children, Rewriter};
    struct Rn<'a>(&'a str);
    impl Rewriter for Rn<'_> {
        fn rewrite_expr(&mut self, e: &mut Expr) {
            rewrite_expr_children(self, e);
            if let Expr::Call { callee, args } = e {
                if callee == "sum" && args.len() == 1 {
                    *callee = self.0.to_string();
                }
            }
        }
    }
    let mut rn = Rn(name);
    let mut body = std::mem::take(b);
    rn.rewrite_block(&mut body);
    *b = body;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use tangram_ir::print::codelet_to_string;

    #[test]
    fn sum_is_a_noop() {
        let c = corpus::parse_canonical(corpus::FIG1C, "float");
        assert_eq!(specialize_codelet(&c, ReduceOp::Sum), c);
    }

    #[test]
    fn max_rewrites_accumulations_not_counters() {
        let c = corpus::parse_canonical(corpus::FIG1A, "float");
        let m = specialize_codelet(&c, ReduceOp::Max);
        let src = codelet_to_string(&m);
        assert!(src.contains("accum = max(accum, in[i]);"), "src:\n{src}");
        // The loop counter step is untouched.
        assert!(src.contains("i += in.Stride()"));
        assert_eq!(m.name, "max");
    }

    #[test]
    fn max_retargets_guard_identities() {
        let c = corpus::parse_canonical(corpus::FIG1C, "float");
        let m = specialize_codelet(&c, ReduceOp::Max);
        let src = codelet_to_string(&m);
        // The `? in[...] : 0` guard must use the identity, not 0.
        assert!(!src.contains(": 0)"), "zero identity must be retargeted:\n{src}");
        assert!(src.contains("max(val,"));
    }

    #[test]
    fn min_retargets_qualifiers_and_map_api() {
        let c = corpus::parse_canonical(corpus::FIG3B, "float");
        let m = specialize_codelet(&c, ReduceOp::Min);
        let src = codelet_to_string(&m);
        assert!(src.contains("_atomicMin"), "qualifier retargeted:\n{src}");
        let cb = corpus::parse_canonical(corpus::FIG1B_TILED, "float");
        let mb = specialize_codelet(&cb, ReduceOp::Min);
        let srcb = codelet_to_string(&mb);
        assert!(srcb.contains("map.atomicMin();"), "Map API retargeted:\n{srcb}");
        assert!(srcb.contains("return min(map);"), "spectrum call renamed:\n{srcb}");
    }

    #[test]
    fn identities() {
        assert_eq!(ReduceOp::Sum.identity_f32(), 0.0);
        assert!(ReduceOp::Max.identity_f32() < -1e38);
        assert!(ReduceOp::Min.identity_f32() > 1e38);
        assert_eq!(ReduceOp::Max.fold_f32(2.0, 5.0), 5.0);
        assert_eq!(ReduceOp::Min.fold_f32(2.0, 5.0), 2.0);
    }
}
