//! §III-B — enabling atomic instructions on shared memory.
//!
//! The paper adds data qualifiers (`_atomicAdd`, `_atomicSub`,
//! `_atomicMax`, `_atomicMin`) used together with `__shared`
//! (Fig. 3). An AST pass identifies shared variables carrying an
//! atomic qualifier; every *write* to such a variable is lowered to an
//! atomic operation on shared memory (Listing 3 line 27:
//! `atomicAdd(partial, val)`).
//!
//! This is a lowering (every codelet that declares atomic shared
//! variables needs it before code generation), not a variant
//! generator: the new code versions come from the new cooperative
//! codelets the qualifier makes expressible (Fig. 3a / Fig. 3b).

use tangram_ir::ast::{Block, Expr, Stmt};
use tangram_ir::ty::AtomicKind;
use tangram_ir::visit::{walk_block, Visitor};
use tangram_ir::Codelet;

/// Collect the shared variables declared with an atomic qualifier:
/// `(name, kind)`.
pub fn atomic_shared_vars(codelet: &Codelet) -> Vec<(String, AtomicKind)> {
    struct C(Vec<(String, AtomicKind)>);
    impl Visitor for C {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let Stmt::Decl { quals, name, .. } = s {
                if quals.shared {
                    if let Some(kind) = quals.atomic {
                        self.0.push((name.clone(), kind));
                    }
                }
            }
            tangram_ir::visit::walk_stmt(self, s);
        }
    }
    let mut c = C(Vec::new());
    walk_block(&mut c, &codelet.body);
    c.0
}

/// Whether an lvalue expression writes the variable `name` (either the
/// scalar itself or an element of the array).
fn targets_var(target: &Expr, name: &str) -> bool {
    match target {
        Expr::Var(v) => v == name,
        Expr::Index { base, .. } => matches!(base.as_ref(), Expr::Var(v) if v == name),
        _ => false,
    }
}

/// Lower writes to atomic shared variables into atomic-operation
/// calls. Returns the lowered codelet and the number of rewritten
/// writes. A codelet without atomic shared variables is returned
/// unchanged with count 0.
///
/// `partial = val;` becomes `atomicAdd(partial, val);` — under the
/// qualifier, a write *is* an atomic accumulation (Fig. 3b line 16 →
/// Listing 3 line 27). Compound assignments (`partial += val`) lower
/// the same way.
pub fn lower_shared_atomics(codelet: &Codelet) -> (Codelet, usize) {
    let vars = atomic_shared_vars(codelet);
    if vars.is_empty() {
        return (codelet.clone(), 0);
    }
    let mut out = codelet.clone();
    let mut count = 0;
    lower_block(&mut out.body, &vars, &mut count);
    (out, count)
}

fn lower_block(b: &mut Block, vars: &[(String, AtomicKind)], count: &mut usize) {
    for s in &mut b.0 {
        match s {
            Stmt::Assign { target, value } | Stmt::CompoundAssign { target, value, .. } => {
                if let Some((_, kind)) =
                    vars.iter().find(|(n, _)| targets_var(target, n))
                {
                    *count += 1;
                    *s = Stmt::Expr(Expr::Call {
                        callee: kind.cuda_name(),
                        args: vec![target.clone(), value.clone()],
                    });
                }
            }
            Stmt::For { body, .. } => lower_block(body, vars, count),
            Stmt::If { then_b, else_b, .. } => {
                lower_block(then_b, vars, count);
                if let Some(e) = else_b {
                    lower_block(e, vars, count);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::print::codelet_to_string;
    use tangram_lang::parse_codelets;

    /// Fig. 3a: single shared accumulator updated by all threads.
    pub const FIG3A: &str = r#"
        __codelet __coop __tag(shared_V1)
        int sum(const Array<1,int> in) {
            Vector vthread();
            __shared _atomicAdd int tmp;
            int val = 0;
            val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
            tmp = val;
            return tmp;
        }
    "#;

    #[test]
    fn finds_qualified_vars() {
        let c = parse_codelets(FIG3A).unwrap().remove(0);
        assert_eq!(atomic_shared_vars(&c), vec![("tmp".to_string(), AtomicKind::Add)]);
    }

    #[test]
    fn lowers_write_to_atomic_call() {
        let c = parse_codelets(FIG3A).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 1);
        let src = codelet_to_string(&lowered);
        assert!(src.contains("atomicAdd(tmp, val);"), "got:\n{src}");
        // Reads are untouched.
        assert!(src.contains("return tmp;"));
    }

    #[test]
    fn lowers_writes_inside_nested_blocks() {
        let src = r#"
            __codelet __coop __tag(shared_V2)
            int sum(const Array<1,int> in) {
                Vector vthread();
                __shared _atomicAdd int partial;
                int val = 0;
                if (in.Size() != vthread.MaxSize()) {
                    if (vthread.LaneId() == 0) {
                        partial = val;
                    }
                    if (vthread.VectorId() == 0) {
                        val = partial;
                    }
                }
                return val;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 1);
        let out = codelet_to_string(&lowered);
        assert!(out.contains("atomicAdd(partial, val);"));
        assert!(out.contains("val = partial;"), "reads stay plain loads");
    }

    #[test]
    fn other_atomic_kinds_lower_to_their_intrinsics() {
        let src = FIG3A.replace("_atomicAdd", "_atomicMax");
        let c = parse_codelets(&src).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 1);
        assert!(codelet_to_string(&lowered).contains("atomicMax(tmp, val);"));
    }

    #[test]
    fn compound_assign_lowers_too() {
        let src = FIG3A.replace("tmp = val;", "tmp += val;");
        let c = parse_codelets(&src).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 1);
        assert!(codelet_to_string(&lowered).contains("atomicAdd(tmp, val);"));
    }

    #[test]
    fn unqualified_codelets_are_untouched() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                __shared int tmp[in.Size()];
                tmp[0] = 1;
                return tmp[0];
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 0);
        assert_eq!(lowered, c);
    }

    #[test]
    fn array_element_writes_lower() {
        let src = r#"
            __codelet __coop
            int sum(const Array<1,int> in) {
                Vector vthread();
                __shared _atomicAdd int bins[64];
                bins[vthread.LaneId()] = 1;
                return bins[0];
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let (lowered, n) = lower_shared_atomics(&c);
        assert_eq!(n, 1);
        assert!(codelet_to_string(&lowered).contains("atomicAdd(bins[vthread.LaneId()], 1);"));
    }
}
