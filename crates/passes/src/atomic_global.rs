//! §III-A — enabling atomic instructions on global memory.
//!
//! The paper adds atomic APIs to the `Map` primitive
//! (`map.atomicAdd()`, `atomicSub()`, `atomicMax()`, `atomicMin()`;
//! Fig. 1b line 10). The atomic API and the non-atomic spectrum call
//! that accumulates the map's partial results (Fig. 1b line 11) are
//! mutually exclusive, so a pre-processing AST pass generates two code
//! versions:
//!
//! * the **non-atomic** version drops the atomic API call and keeps
//!   the spectrum call (partials go to an array reduced by a second
//!   spectrum invocation — Listing 1);
//! * the **atomic** version keeps the atomic API call and disables the
//!   spectrum call, so partials accumulate into a single variable with
//!   `atomicAdd`/`atomicAdd_block` (Listing 2).
//!
//! The pass only disables the spectrum call after checking that it
//! applies the *same computation* as the atomic API (`sum` ↔
//! `atomicAdd`, `max` ↔ `atomicMax`, …); on a mismatch no atomic
//! version is generated.

use tangram_ir::ast::{Expr, Stmt};
use tangram_ir::ty::AtomicKind;
use tangram_ir::visit::{rewrite_expr_children, Rewriter};
use tangram_ir::Codelet;

use crate::pass::{Pass, PassVariant};

/// The §III-A pass.
#[derive(Debug, Default)]
pub struct AtomicGlobalPass;

/// Whether a spectrum named `callee` computes the same reduction as
/// the atomic API `kind` (the pass's "same computation" check).
pub fn spectrum_matches_atomic(callee: &str, kind: AtomicKind) -> bool {
    matches!(
        (callee, kind),
        ("sum", AtomicKind::Add)
            | ("sum", AtomicKind::Sub)
            | ("max", AtomicKind::Max)
            | ("min", AtomicKind::Min)
    )
}

/// Find `map.atomicX()` statements: returns `(map variable, kind)`
/// for each, in order.
fn atomic_api_calls(codelet: &Codelet) -> Vec<(String, AtomicKind)> {
    let mut out = Vec::new();
    for s in &codelet.body {
        if let Stmt::Expr(e) = s {
            if let Some((recv, method, args)) = e.as_var_method() {
                if args.is_empty() {
                    if let Some(kind) = method.strip_prefix("atomic").and_then(AtomicKind::from_suffix)
                    {
                        out.push((recv.to_string(), kind));
                    }
                }
            }
        }
    }
    out
}

/// Remove the `map.atomicX()` statement for `map_var` from the body.
fn drop_atomic_api(codelet: &Codelet, map_var: &str) -> Codelet {
    let mut out = codelet.clone();
    out.body.0.retain(|s| {
        if let Stmt::Expr(e) = s {
            if let Some((recv, method, _)) = e.as_var_method() {
                if recv == map_var && method.starts_with("atomic") {
                    return false;
                }
            }
        }
        true
    });
    out
}

/// Replace spectrum calls `f(map_var)` with `map_var` (the disabled
/// spectrum call of the atomic version — the accumulated scalar *is*
/// the result). Returns how many calls were replaced.
fn disable_spectrum_calls(codelet: &mut Codelet, map_var: &str, kind: AtomicKind) -> usize {
    struct D<'a> {
        map_var: &'a str,
        kind: AtomicKind,
        replaced: usize,
    }
    impl Rewriter for D<'_> {
        fn rewrite_expr(&mut self, e: &mut Expr) {
            rewrite_expr_children(self, e);
            if let Expr::Call { callee, args } = e {
                let takes_map = args.len() == 1
                    && matches!(&args[0], Expr::Var(v) if v == self.map_var);
                if takes_map && spectrum_matches_atomic(callee, self.kind) {
                    *e = Expr::Var(self.map_var.to_string());
                    self.replaced += 1;
                }
            }
        }
    }
    let mut d = D { map_var, kind, replaced: 0 };
    let mut body = std::mem::take(&mut codelet.body);
    d.rewrite_block(&mut body);
    codelet.body = body;
    d.replaced
}

impl Pass for AtomicGlobalPass {
    fn name(&self) -> &'static str {
        "atomic-global"
    }

    fn run(&self, input: &Codelet) -> Vec<PassVariant> {
        let calls = atomic_api_calls(input);
        let Some((map_var, kind)) = calls.first().cloned() else {
            return vec![];
        };
        let mut variants = Vec::new();

        // Non-atomic version: remove the atomic API call.
        let non_atomic = drop_atomic_api(input, &map_var);
        variants.push(PassVariant { label: "nonatomic".into(), codelet: non_atomic });

        // Atomic version: disable the matching spectrum call, keep
        // the API call as the marker codegen lowers to atomics.
        let mut atomic = input.clone();
        let replaced = disable_spectrum_calls(&mut atomic, &map_var, kind);
        if replaced > 0 {
            variants.push(PassVariant { label: "atomic-global".into(), codelet: atomic });
        }
        variants
    }
}

/// Query used by codegen: the map variables whose results are
/// accumulated atomically in this (already-transformed) codelet,
/// i.e. `map.atomicX()` statements that survived the pass.
pub fn atomic_maps(codelet: &Codelet) -> Vec<(String, AtomicKind)> {
    atomic_api_calls(codelet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_lang::parse_codelets;
    use tangram_ir::print::codelet_to_string;

    const FIG1B: &str = r#"
        __codelet
        int sum(const Array<1,int> in) {
            __tunable unsigned p;
            unsigned len = in.Size();
            unsigned tile = (len + p - 1) / p;
            Sequence start(0, tile, len);
            Sequence end(tile, tile, len);
            Sequence inc(1, 1, 1);
            Map map(sum, partition(in, p, start, inc, end));
            map.atomicAdd();
            return sum(map);
        }
    "#;

    fn fig1b() -> Codelet {
        parse_codelets(FIG1B).unwrap().remove(0)
    }

    #[test]
    fn generates_both_versions() {
        let vs = AtomicGlobalPass.run(&fig1b());
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].label, "nonatomic");
        assert_eq!(vs[1].label, "atomic-global");
    }

    #[test]
    fn non_atomic_drops_api_and_keeps_spectrum_call() {
        let vs = AtomicGlobalPass.run(&fig1b());
        let src = codelet_to_string(&vs[0].codelet);
        assert!(!src.contains("atomicAdd"));
        assert!(src.contains("return sum(map);"));
    }

    #[test]
    fn atomic_disables_spectrum_call_and_keeps_api() {
        let vs = AtomicGlobalPass.run(&fig1b());
        let src = codelet_to_string(&vs[1].codelet);
        assert!(src.contains("map.atomicAdd();"));
        assert!(src.contains("return map;"));
        assert!(!src.contains("sum(map)"));
        assert_eq!(atomic_maps(&vs[1].codelet), vec![("map".to_string(), AtomicKind::Add)]);
    }

    #[test]
    fn mismatched_computation_yields_no_atomic_version() {
        // atomicMax over a `sum` spectrum call: different computation,
        // the spectrum call must not be disabled (§III-A).
        let src = FIG1B.replace("map.atomicAdd()", "map.atomicMax()");
        let c = parse_codelets(&src).unwrap().remove(0);
        let vs = AtomicGlobalPass.run(&c);
        assert_eq!(vs.len(), 1, "only the non-atomic version is generated");
        assert_eq!(vs[0].label, "nonatomic");
    }

    #[test]
    fn no_atomic_api_is_a_noop() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int accum = 0;
                return accum;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        assert!(AtomicGlobalPass.run(&c).is_empty());
    }

    #[test]
    fn match_table() {
        assert!(spectrum_matches_atomic("sum", AtomicKind::Add));
        assert!(spectrum_matches_atomic("max", AtomicKind::Max));
        assert!(spectrum_matches_atomic("min", AtomicKind::Min));
        assert!(!spectrum_matches_atomic("sum", AtomicKind::Max));
        assert!(!spectrum_matches_atomic("histogram", AtomicKind::Add));
    }
}
