//! §III-C — detecting opportunities for warp shuffle instructions.
//!
//! Implements the seven-step AST analysis of Fig. 4 over `for` loops
//! of cooperative codelets:
//!
//! 1. the loop bounds are based on a `Vector` primitive member
//!    function (e.g. `vthread.MaxSize()/2`);
//! 2. the iterator decreases by a constant every iteration;
//! 3. the body reads a `__shared` array and reduces the values into a
//!    local accumulator;
//! 4. the shared-array read index is a function of
//!    `Vector::ThreadId()` *and* the loop iterator;
//! 5. (and 6.) the accumulator is written back to the same shared array;
//! 7. the write index is a function of `ThreadId()` only.
//!
//! A matching loop body is replaced by a warp shuffle exchange
//! (`val += __shfl_down(val, offset, 32)`; `__shfl_up` when the loop
//! walks the positive direction of the vector). Shared arrays whose
//! remaining uses are only the staging stores of the exchanged
//! accumulator are *disabled* — their declarations and stores are
//! removed, shrinking the shared-memory footprint (Listing 4 keeps
//! `partial`, which has a producer-consumer relation between the two
//! loops, but drops `tmp`).

use tangram_ir::ast::{BinOp, Block, DeclTy, Expr, Stmt};
use tangram_ir::visit::{walk_expr, Visitor};
use tangram_ir::Codelet;

use crate::pass::{Pass, PassVariant};

/// The §III-C pass.
#[derive(Debug, Default)]
pub struct ShufflePass;

/// Warp width used for generated shuffles (the `Vector::MaxSize()` of
/// the modelled GPUs).
pub const WARP_WIDTH: i64 = 32;

/// Names of `Vector` variables declared in the codelet.
fn vector_vars(codelet: &Codelet) -> Vec<String> {
    let mut out = Vec::new();
    collect_vectors(&codelet.body, &mut out);
    out
}

fn collect_vectors(b: &Block, out: &mut Vec<String>) {
    for s in b {
        match s {
            Stmt::Decl { ty: DeclTy::Vector, name, .. } => out.push(name.clone()),
            Stmt::For { body, .. } => collect_vectors(body, out),
            Stmt::If { then_b, else_b, .. } => {
                collect_vectors(then_b, out);
                if let Some(e) = else_b {
                    collect_vectors(e, out);
                }
            }
            _ => {}
        }
    }
}

/// Names of `__shared` arrays declared in the codelet (without atomic
/// qualifiers — those are handled by the §III-B lowering).
fn shared_arrays(codelet: &Codelet) -> Vec<String> {
    let mut out = Vec::new();
    collect_shared(&codelet.body, &mut out);
    out
}

fn collect_shared(b: &Block, out: &mut Vec<String>) {
    for s in b {
        match s {
            Stmt::Decl { quals, ty: DeclTy::Array { .. }, name, .. }
                if quals.shared && quals.atomic.is_none() =>
            {
                out.push(name.clone())
            }
            Stmt::For { body, .. } => collect_shared(body, out),
            Stmt::If { then_b, else_b, .. } => {
                collect_shared(then_b, out);
                if let Some(e) = else_b {
                    collect_shared(e, out);
                }
            }
            _ => {}
        }
    }
}

/// Whether `e` contains a method call on one of `vectors` with any of
/// the given method names.
fn mentions_vector_method(e: &Expr, vectors: &[String], methods: &[&str]) -> bool {
    struct M<'a> {
        vectors: &'a [String],
        methods: &'a [&'a str],
        found: bool,
    }
    impl Visitor for M<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((recv, m, _)) = e.as_var_method() {
                if self.vectors.iter().any(|v| v == recv) && self.methods.contains(&m) {
                    self.found = true;
                }
            }
            walk_expr(self, e);
        }
    }
    let mut m = M { vectors, methods, found: false };
    m.visit_expr(e);
    m.found
}

/// Whether `e` references the plain variable `name`.
fn mentions_var(e: &Expr, name: &str) -> bool {
    struct M<'a> {
        name: &'a str,
        found: bool,
    }
    impl Visitor for M<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if matches!(e, Expr::Var(v) if v == self.name) {
                self.found = true;
            }
            walk_expr(self, e);
        }
    }
    let mut m = M { name, found: false };
    m.visit_expr(e);
    m.found
}

/// The direction a matched loop exchanges data in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleDir {
    /// `tmp[ThreadId() + offset]` → `__shfl_down`.
    Down,
    /// `tmp[ThreadId() - offset]` → `__shfl_up`.
    Up,
}

impl ShuffleDir {
    /// The CUDA intrinsic name.
    pub fn intrinsic(self) -> &'static str {
        match self {
            ShuffleDir::Down => "__shfl_down",
            ShuffleDir::Up => "__shfl_up",
        }
    }
}

/// How the matched loop folds values into the accumulator.
#[derive(Debug, Clone)]
enum Fold {
    /// `acc op= x` (e.g. `val += x`).
    Bin(BinOp),
    /// `acc = f(acc, x)` for an intrinsic fold like `max`/`min`
    /// (produced by operator specialization).
    Call(String),
}

/// Outcome of matching one `for` loop against the Fig. 4 pattern.
#[derive(Debug, Clone)]
struct LoopMatch {
    iter: String,
    accumulator: Expr,
    fold: Fold,
    array: String,
    dir: ShuffleDir,
}

/// Steps (1)–(7) of Fig. 4 for one loop.
fn match_loop(
    init: &Stmt,
    cond: &Expr,
    step: &Stmt,
    body: &Block,
    vectors: &[String],
    shared: &[String],
) -> Option<LoopMatch> {
    // (1) Bounds from the Vector primitive.
    let (iter, init_expr) = match init {
        Stmt::Decl { name, init: Some(e), .. } => (name.clone(), e),
        Stmt::Assign { target: Expr::Var(name), value } => (name.clone(), value),
        _ => return None,
    };
    if !mentions_vector_method(init_expr, vectors, &["MaxSize", "Size"]) {
        return None;
    }
    // Loop must count down to zero.
    match cond {
        Expr::Binary { op: BinOp::Gt, lhs, rhs } => {
            if !matches!(lhs.as_ref(), Expr::Var(v) if *v == iter)
                || !matches!(rhs.as_ref(), Expr::Int(0))
            {
                return None;
            }
        }
        _ => return None,
    }
    // (2) Iterator decreases by a constant every iteration.
    match step {
        Stmt::CompoundAssign { op: BinOp::Div | BinOp::Sub | BinOp::Shr, target, value } => {
            if !matches!(target, Expr::Var(v) if *v == iter) || !matches!(value, Expr::Int(_)) {
                return None;
            }
        }
        _ => return None,
    }
    // Body shape: reduce-read then write-back.
    if body.len() != 2 {
        return None;
    }
    // (3)+(4): `val += (guard) ? tmp[f(ThreadId, iter)] : 0`, the
    // unguarded `val += tmp[...]`, or the operator-specialized
    // `val = max(val, ...)` form.
    let (accumulator, fold, read_expr) = match &body.0[0] {
        Stmt::CompoundAssign { op, target, value } => (target.clone(), Fold::Bin(*op), value),
        Stmt::Assign { target, value } => match value {
            Expr::Call { callee, args }
                if (callee == "max" || callee == "min")
                    && args.len() == 2
                    && args[0] == *target =>
            {
                (target.clone(), Fold::Call(callee.clone()), &args[1])
            }
            _ => return None,
        },
        _ => return None,
    };
    let read_core = match read_expr {
        Expr::Ternary { then_e, .. } => then_e.as_ref(),
        other => other,
    };
    let (array, read_idx) = read_core.as_var_index()?;
    if !shared.iter().any(|s| s == array) {
        return None;
    }
    if !mentions_vector_method(read_idx, vectors, &["ThreadId", "LaneId"])
        || !mentions_var(read_idx, &iter)
    {
        return None;
    }
    // Exchange direction from the index arithmetic.
    let dir = shuffle_direction(read_idx, &iter)?;
    // (5)(6)(7): accumulator stored to the same array at an index that
    // is a function of ThreadId() only.
    let Stmt::Assign { target, value } = &body.0[1] else {
        return None;
    };
    if *value != accumulator {
        return None;
    }
    let (warray, widx) = target.as_var_index()?;
    if warray != array {
        return None;
    }
    if !mentions_vector_method(widx, vectors, &["ThreadId", "LaneId"]) || mentions_var(widx, &iter)
    {
        return None;
    }
    Some(LoopMatch { iter, accumulator, fold, array: array.to_string(), dir })
}

/// Determine the shuffle direction from the read index: an index of
/// the form `f(ThreadId) + iter` exchanges downward, `f(ThreadId) -
/// iter` upward.
fn shuffle_direction(idx: &Expr, iter: &str) -> Option<ShuffleDir> {
    match idx {
        Expr::Binary { op, lhs, rhs } => {
            let rhs_is_iter = matches!(rhs.as_ref(), Expr::Var(v) if v == iter);
            let lhs_is_iter = matches!(lhs.as_ref(), Expr::Var(v) if v == iter);
            match op {
                BinOp::Add if rhs_is_iter || lhs_is_iter => Some(ShuffleDir::Down),
                BinOp::Sub if rhs_is_iter => Some(ShuffleDir::Up),
                _ => {
                    if rhs_is_iter || lhs_is_iter {
                        None
                    } else {
                        // Recurse: ThreadId() may be nested, e.g.
                        // `(base + ThreadId()) + offset`.
                        shuffle_direction(lhs, iter).or_else(|| shuffle_direction(rhs, iter))
                    }
                }
            }
        }
        _ => None,
    }
}

/// Rewrite every matching loop in the block; returns how many loops
/// were rewritten and records the arrays they exchanged through.
fn rewrite_block(
    b: &mut Block,
    vectors: &[String],
    shared: &[String],
    exchanged: &mut Vec<String>,
) -> usize {
    let mut n = 0;
    for s in &mut b.0 {
        match s {
            Stmt::For { init, cond, step, body } => {
                if let Some(m) = match_loop(init, cond, step, body, vectors, shared) {
                    let shfl = Expr::Call {
                        callee: m.dir.intrinsic().to_string(),
                        args: vec![
                            m.accumulator.clone(),
                            Expr::var(m.iter.clone()),
                            Expr::Int(WARP_WIDTH),
                        ],
                    };
                    body.0 = vec![match m.fold {
                        Fold::Bin(op) => Stmt::CompoundAssign {
                            op,
                            target: m.accumulator.clone(),
                            value: shfl,
                        },
                        Fold::Call(f) => Stmt::Assign {
                            target: m.accumulator.clone(),
                            value: Expr::Call {
                                callee: f,
                                args: vec![m.accumulator.clone(), shfl],
                            },
                        },
                    }];
                    exchanged.push(m.array.clone());
                    n += 1;
                } else {
                    n += rewrite_block(body, vectors, shared, exchanged);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                n += rewrite_block(then_b, vectors, shared, exchanged);
                if let Some(e) = else_b {
                    n += rewrite_block(e, vectors, shared, exchanged);
                }
            }
            _ => {}
        }
    }
    n
}

/// Count the *reads* of array `name` in the codelet body (index
/// expressions appearing anywhere except as a store target).
fn count_reads(b: &Block, name: &str) -> usize {
    fn expr_reads(e: &Expr, name: &str) -> usize {
        struct C<'a> {
            name: &'a str,
            n: usize,
        }
        impl Visitor for C<'_> {
            fn visit_expr(&mut self, e: &Expr) {
                if let Some((base, _)) = e.as_var_index() {
                    if base == self.name {
                        self.n += 1;
                    }
                }
                walk_expr(self, e);
            }
        }
        let mut c = C { name, n: 0 };
        c.visit_expr(e);
        c.n
    }
    let mut n = 0;
    for s in b {
        match s {
            Stmt::Assign { target, value } => {
                // The target's *index expression* may read, the target
                // element itself is a write.
                if let Some((base, idx)) = target.as_var_index() {
                    if base != name {
                        n += expr_reads(target, name);
                    } else {
                        n += expr_reads(idx, name);
                    }
                } else {
                    n += expr_reads(target, name);
                }
                n += expr_reads(value, name);
            }
            Stmt::CompoundAssign { target, value, .. } => {
                // `arr[i] op= v` reads the element too.
                n += expr_reads(target, name) + expr_reads(value, name);
            }
            Stmt::Decl { init: Some(e), .. } => n += expr_reads(e, name),
            Stmt::Decl { .. } => {}
            Stmt::Expr(e) | Stmt::Return(e) => n += expr_reads(e, name),
            Stmt::For { init, cond, step, body } => {
                n += count_reads(&Block(vec![(**init).clone()]), name);
                n += expr_reads(cond, name);
                n += count_reads(&Block(vec![(**step).clone()]), name);
                n += count_reads(body, name);
            }
            Stmt::If { cond, then_b, else_b } => {
                n += expr_reads(cond, name);
                n += count_reads(then_b, name);
                if let Some(e) = else_b {
                    n += count_reads(e, name);
                }
            }
        }
    }
    n
}

/// Remove the declaration of `name` and every store to it (the
/// "disable array" step for exchange-only arrays).
fn remove_array(b: &mut Block, name: &str) {
    b.0.retain(|s| match s {
        Stmt::Decl { name: n, ty: DeclTy::Array { .. }, .. } => n != name,
        Stmt::Assign { target, .. } => {
            !matches!(target.as_var_index(), Some((base, _)) if base == name)
        }
        _ => true,
    });
    for s in &mut b.0 {
        match s {
            Stmt::For { body, .. } => remove_array(body, name),
            Stmt::If { then_b, else_b, .. } => {
                remove_array(then_b, name);
                if let Some(e) = else_b {
                    remove_array(e, name);
                }
            }
            _ => {}
        }
    }
}

impl Pass for ShufflePass {
    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn run(&self, input: &Codelet) -> Vec<PassVariant> {
        let vectors = vector_vars(input);
        if vectors.is_empty() {
            return vec![];
        }
        let shared = shared_arrays(input);
        let mut out = input.clone();
        let mut exchanged = Vec::new();
        let n = rewrite_block(&mut out.body, &vectors, &shared, &mut exchanged);
        if n == 0 {
            return vec![];
        }
        // Disable arrays whose remaining uses are only staging stores
        // (no reads survive the rewrite).
        exchanged.sort();
        exchanged.dedup();
        for arr in &exchanged {
            if count_reads(&out.body, arr) == 0 {
                remove_array(&mut out.body, arr);
            }
        }
        // Distinguish the variant in reports.
        out.tag = Some(match &input.tag {
            Some(t) => format!("{t}_shfl"),
            None => "shfl".to_string(),
        });
        vec![PassVariant { label: "shfl".into(), codelet: out }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::print::codelet_to_string;
    use tangram_lang::parse_codelets;

    /// The paper's Fig. 1c cooperative codelet (canonical source).
    pub const FIG1C: &str = r#"
        __codelet __coop
        int sum(const Array<1,int> in) {
            Vector vthread();
            __shared int partial[vthread.MaxSize()];
            __shared int tmp[in.Size()];
            int val = 0;
            val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
            tmp[vthread.ThreadId()] = val;
            for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                val += ((vthread.LaneId() + offset) < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : 0;
                tmp[vthread.ThreadId()] = val;
            }
            if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {
                if (vthread.LaneId() == 0) {
                    partial[vthread.VectorId()] = val;
                }
                if (vthread.VectorId() == 0) {
                    val = (vthread.ThreadId() <= in.Size() / vthread.MaxSize()) ? partial[vthread.LaneId()] : 0;
                    for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                        val += ((vthread.LaneId() + offset) < vthread.Size()) ? partial[vthread.ThreadId() + offset] : 0;
                        partial[vthread.ThreadId()] = val;
                    }
                }
            }
            return val;
        }
    "#;

    fn fig1c() -> Codelet {
        parse_codelets(FIG1C).unwrap().remove(0)
    }

    #[test]
    fn rewrites_both_tree_loops() {
        let vs = ShufflePass.run(&fig1c());
        assert_eq!(vs.len(), 1);
        let src = codelet_to_string(&vs[0].codelet);
        assert_eq!(src.matches("__shfl_down(val, offset, 32)").count(), 2, "src:\n{src}");
    }

    #[test]
    fn disables_exchange_only_array_keeps_producer_consumer() {
        let vs = ShufflePass.run(&fig1c());
        let src = codelet_to_string(&vs[0].codelet);
        // `tmp` only staged the exchanged value → removed entirely.
        assert!(!src.contains("tmp"), "tmp should be disabled:\n{src}");
        // `partial` carries per-warp partials between the loops → kept.
        assert!(src.contains("__shared int partial[vthread.MaxSize()];"));
        assert!(src.contains("partial[vthread.VectorId()] = val;"));
    }

    #[test]
    fn variant_is_tagged() {
        let vs = ShufflePass.run(&fig1c());
        assert_eq!(vs[0].codelet.tag.as_deref(), Some("shfl"));
        assert_eq!(vs[0].label, "shfl");
    }

    #[test]
    fn negative_direction_generates_shfl_up() {
        let src = FIG1C.replace(
            "tmp[vthread.ThreadId() + offset]",
            "tmp[vthread.ThreadId() - offset]",
        );
        let c = parse_codelets(&src).unwrap().remove(0);
        let vs = ShufflePass.run(&c);
        let out = codelet_to_string(&vs[0].codelet);
        assert!(out.contains("__shfl_up(val, offset, 32)"), "got:\n{out}");
    }

    #[test]
    fn loop_without_vector_bounds_is_not_matched() {
        let src = r#"
            __codelet __coop
            int sum(const Array<1,int> in) {
                Vector vthread();
                __shared int tmp[in.Size()];
                int val = 0;
                for (int offset = 16; offset > 0; offset /= 2) {
                    val += tmp[vthread.ThreadId() + offset];
                    tmp[vthread.ThreadId()] = val;
                }
                return val;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        assert!(ShufflePass.run(&c).is_empty(), "step (1) must reject constant bounds");
    }

    #[test]
    fn write_index_using_iterator_is_not_matched() {
        // Violates step (7): the write index depends on the iterator.
        let src = FIG1C.replace(
            "tmp[vthread.ThreadId()] = val;\n            }",
            "tmp[vthread.ThreadId() + offset] = val;\n            }",
        );
        let c = parse_codelets(&src).unwrap().remove(0);
        let vs = ShufflePass.run(&c);
        // The first loop no longer matches; the second still does.
        let src_out = codelet_to_string(&vs[0].codelet);
        assert_eq!(src_out.matches("__shfl_down").count(), 1);
    }

    #[test]
    fn non_shared_array_is_not_matched() {
        let src = r#"
            __codelet __coop
            int sum(const Array<1,int> in) {
                Vector vthread();
                int val = 0;
                for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                    val += in[vthread.ThreadId() + offset];
                    in[vthread.ThreadId()] = val;
                }
                return val;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        assert!(ShufflePass.run(&c).is_empty(), "step (3) requires a __shared array");
    }

    #[test]
    fn autonomous_codelet_is_skipped() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int accum = 0;
                for (unsigned i = 0; i < in.Size(); i += 1) {
                    accum += in[i];
                }
                return accum;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        assert!(ShufflePass.run(&c).is_empty());
    }
}
