//! General (architecture-neutral) transformations of Tangram's
//! pre-processing stage (Fig. 5): constant folding and the metadata
//! gathering that later CUDA-specific transformations rely on.

use tangram_ir::ast::{BinOp, Block, DeclTy, Expr, Stmt, UnOp};
use tangram_ir::ty::AtomicKind;
use tangram_ir::visit::{rewrite_expr_children, walk_stmt, Rewriter, Visitor};
use tangram_ir::Codelet;

/// Fold constant integer arithmetic throughout a codelet. Returns the
/// number of folds performed.
pub fn const_fold(codelet: &mut Codelet) -> usize {
    struct F(usize);
    impl Rewriter for F {
        fn rewrite_expr(&mut self, e: &mut Expr) {
            rewrite_expr_children(self, e);
            let folded = match e {
                Expr::Binary { op, lhs, rhs } => match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Int(a), Expr::Int(b)) => fold_int(*op, *a, *b),
                    _ => None,
                },
                Expr::Unary { op: UnOp::Neg, expr } => match expr.as_ref() {
                    Expr::Int(a) => Some(Expr::Int(-a)),
                    _ => None,
                },
                Expr::Ternary { cond, then_e, else_e } => match cond.as_ref() {
                    Expr::Int(0) => Some((**else_e).clone()),
                    Expr::Int(_) => Some((**then_e).clone()),
                    _ => None,
                },
                _ => None,
            };
            if let Some(new) = folded {
                *e = new;
                self.0 += 1;
            }
        }
    }
    let mut f = F(0);
    let mut body = std::mem::take(&mut codelet.body);
    f.rewrite_block(&mut body);
    codelet.body = body;
    f.0
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<Expr> {
    let v = match op {
        BinOp::Add => a.checked_add(b)?,
        BinOp::Sub => a.checked_sub(b)?,
        BinOp::Mul => a.checked_mul(b)?,
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
        BinOp::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::And => i64::from(a != 0 && b != 0),
        BinOp::Or => i64::from(a != 0 || b != 0),
    };
    Some(Expr::Int(v))
}

/// A shared-array declaration found in a codelet body.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedArrayInfo {
    /// Variable name.
    pub name: String,
    /// Size expression (`None` = dynamically sized / extern).
    pub size: Option<Expr>,
    /// Atomic qualifier, when present.
    pub atomic: Option<AtomicKind>,
}

/// Metadata gathered from a codelet by the Fig. 5 "general
/// transformations" stage, consumed by code generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeletMeta {
    /// Names of `__tunable` declarations (autotuner parameters).
    pub tunables: Vec<String>,
    /// Names of declared `Vector` primitives.
    pub vectors: Vec<String>,
    /// Shared arrays (with sizes and atomic qualifiers).
    pub shared_arrays: Vec<SharedArrayInfo>,
    /// Shared *scalars* (with atomic qualifiers).
    pub shared_scalars: Vec<SharedArrayInfo>,
    /// `Map` declarations: `(name, ctor args)`.
    pub maps: Vec<(String, Vec<Expr>)>,
    /// `Sequence` declarations.
    pub sequences: Vec<String>,
}

/// Gather [`CodeletMeta`] from a codelet.
pub fn gather_meta(codelet: &Codelet) -> CodeletMeta {
    struct G(CodeletMeta);
    impl Visitor for G {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let Stmt::Decl { quals, ty, name, ctor_args, .. } = s {
                if quals.tunable {
                    self.0.tunables.push(name.clone());
                }
                match ty {
                    DeclTy::Vector => self.0.vectors.push(name.clone()),
                    DeclTy::Map => self.0.maps.push((name.clone(), ctor_args.clone())),
                    DeclTy::Sequence => self.0.sequences.push(name.clone()),
                    DeclTy::Array { size, .. } if quals.shared => {
                        self.0.shared_arrays.push(SharedArrayInfo {
                            name: name.clone(),
                            size: size.as_deref().cloned(),
                            atomic: quals.atomic,
                        });
                    }
                    DeclTy::Scalar(_) if quals.shared => {
                        self.0.shared_scalars.push(SharedArrayInfo {
                            name: name.clone(),
                            size: None,
                            atomic: quals.atomic,
                        });
                    }
                    _ => {}
                }
            }
            walk_stmt(self, s);
        }
    }
    let mut g = G(CodeletMeta::default());
    for s in &codelet.body {
        g.visit_stmt(s);
    }
    let _ = &codelet.body; // body borrowed above via iterator only
    g.0
}

/// Remove declarations that are never referenced afterwards (dead
/// `Sequence`s left behind by other passes, unused scalars). Returns
/// the number of removed declarations. Declarations with side effects
/// (`Map`, `Vector`, shared arrays) are never removed.
pub fn dead_decl_elim(codelet: &mut Codelet) -> usize {
    use tangram_ir::visit::referenced_vars;
    let mut refs: Vec<String> = Vec::new();
    struct R<'a>(&'a mut Vec<String>);
    impl Visitor for R<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            for v in referenced_vars(e) {
                if !self.0.contains(&v) {
                    self.0.push(v);
                }
            }
        }
    }
    let mut r = R(&mut refs);
    for s in &codelet.body {
        // Collect references from everything except the declaration
        // names themselves.
        walk_stmt(&mut r, s);
    }
    let before = count_stmts(&codelet.body);
    retain_live(&mut codelet.body, &refs);
    before - count_stmts(&codelet.body)
}

fn count_stmts(b: &Block) -> usize {
    b.0.len()
}

fn retain_live(b: &mut Block, refs: &[String]) {
    b.0.retain(|s| match s {
        Stmt::Decl { ty: DeclTy::Scalar(_) | DeclTy::Sequence, name, init, .. } => {
            refs.contains(name) || init.as_ref().is_some_and(has_call)
        }
        _ => true,
    });
}

fn has_call(e: &Expr) -> bool {
    struct H(bool);
    impl Visitor for H {
        fn visit_expr(&mut self, e: &Expr) {
            if matches!(e, Expr::Call { .. } | Expr::Method { .. }) {
                self.0 = true;
            }
            tangram_ir::visit::walk_expr(self, e);
        }
    }
    let mut h = H(false);
    h.visit_expr(e);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::print::codelet_to_string;
    use tangram_lang::parse_codelets;

    #[test]
    fn folds_arithmetic() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int x = (4 + 4) / 2;
                int y = (1 < 2) ? 10 * 3 : 0;
                return x + y;
            }
        "#;
        let mut c = parse_codelets(src).unwrap().remove(0);
        let n = const_fold(&mut c);
        assert!(n >= 4, "folded {n}");
        let out = codelet_to_string(&c);
        assert!(out.contains("int x = 4;"));
        assert!(out.contains("int y = 30;"));
    }

    #[test]
    fn fold_preserves_div_by_zero() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                return 1 / 0;
            }
        "#;
        let mut c = parse_codelets(src).unwrap().remove(0);
        const_fold(&mut c);
        assert!(codelet_to_string(&c).contains("1 / 0"));
    }

    #[test]
    fn gathers_metadata_from_fig1b() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                __tunable unsigned p;
                Sequence start(0, 1, 2);
                Map map(sum, partition(in, p, start, start, start));
                __shared int tmp[in.Size()];
                __shared _atomicAdd int acc;
                Vector vthread();
                return sum(map);
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let m = gather_meta(&c);
        assert_eq!(m.tunables, vec!["p"]);
        assert_eq!(m.vectors, vec!["vthread"]);
        assert_eq!(m.sequences, vec!["start"]);
        assert_eq!(m.maps.len(), 1);
        assert_eq!(m.shared_arrays.len(), 1);
        assert_eq!(m.shared_arrays[0].name, "tmp");
        assert_eq!(m.shared_scalars.len(), 1);
        assert_eq!(m.shared_scalars[0].atomic, Some(AtomicKind::Add));
    }

    #[test]
    fn dead_decls_are_removed_live_kept() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int unused = 3;
                int used = 4;
                Sequence dead(1, 2, 3);
                return used;
            }
        "#;
        let mut c = parse_codelets(src).unwrap().remove(0);
        let n = dead_decl_elim(&mut c);
        assert_eq!(n, 2);
        let out = codelet_to_string(&c);
        assert!(!out.contains("unused"));
        assert!(!out.contains("dead"));
        assert!(out.contains("used"));
    }

    #[test]
    fn initializer_calls_keep_decl() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int effectful = in.Size();
                return 0;
            }
        "#;
        let mut c = parse_codelets(src).unwrap().remove(0);
        assert_eq!(dead_decl_elim(&mut c), 0);
    }
}
