//! # tangram-passes — the paper's AST transformation passes
//!
//! This crate implements the compiler-side contribution of
//! *"Automatic Generation of Warp-Level Primitives and Atomic
//! Instructions for Fast and Portable Parallel Reduction on GPUs"*
//! (CGO 2019):
//!
//! * [`atomic_global`] — the §III-A pass that generates atomic and
//!   non-atomic versions from the new `Map` atomic APIs;
//! * [`atomic_shared`] — the §III-B lowering that turns writes to
//!   `__shared _atomicX` variables into shared-memory atomics;
//! * [`shuffle`] — the §III-C pass implementing the Fig. 4 detection
//!   algorithm that rewrites tree-reduction loops into warp shuffles
//!   and disables exchange-only shared arrays;
//! * [`general`] — the architecture-neutral stage of Fig. 5 (constant
//!   folding, dead-declaration elimination, metadata gathering);
//! * [`pass`] — the variant-generating driver loop of Fig. 5;
//! * [`planner`] — the §IV-B search-space enumeration (10 original →
//!   extended space → 30 pruned versions; the 16 Fig. 6 versions with
//!   their labels);
//! * [`corpus`] — the paper's five canonical `sum` codelets as
//!   parseable sources;
//! * [`specialize`] — retargeting the corpus to the other reduction
//!   operators of the atomic API family (`max`/`min`);
//! * [`workload`] — the typed workload vocabulary (reduce, argmin/
//!   argmax with index payloads, histogram) the tuner keys on.

#![warn(missing_docs)]

pub mod atomic_global;
pub mod atomic_shared;
pub mod corpus;
pub mod general;
pub mod pass;
pub mod planner;
pub mod semck;
pub mod shuffle;
pub mod specialize;
pub mod workload;

pub use atomic_global::AtomicGlobalPass;
pub use atomic_shared::lower_shared_atomics;
pub use pass::{generate_variants, Pass, PassVariant, TrackedVariant};
pub use planner::{CodeVersion, SearchSpaceReport};
pub use semck::{check_codelet, check_spectrum, Diagnostic, Severity};
pub use shuffle::ShufflePass;
pub use specialize::{specialize_codelet, ReduceOp};
pub use workload::{
    enumerate_workload_variants, Dtype, PassFamily, WlVariant, WorkloadKey, WorkloadKind,
};
