//! The canonical codelet corpus: the paper's five `sum` codelets
//! (Fig. 1a, 1b, 1c, 3a, 3b) as parseable sources.
//!
//! The figures elide the `Sequence` constructor arguments ("…"); the
//! canonical sources spell out tiled and strided patterns. The element
//! type is a substitution parameter because the evaluation (§IV-A)
//! reduces 32-bit single-precision arrays while the figures are
//! written over `int`.

use tangram_ir::{Codelet, Spectrum};
use tangram_lang::parse_codelets;

/// Fig. 1a — atomic autonomous codelet: sequential sum.
pub const FIG1A: &str = r#"
__codelet
ELEM sum(const Array<1,ELEM> in) {
    unsigned len = in.Size();
    ELEM accum = 0;
    for (unsigned i = 0; i < len; i += in.Stride()) {
        accum += in[i];
    }
    return accum;
}
"#;

/// Fig. 1b — compound codelet with tiled access pattern: partition
/// the input, map `sum` over the partitions, and accumulate either
/// with the atomic API (line 10) or a second spectrum call (line 11).
pub const FIG1B_TILED: &str = r#"
__codelet __tag(tiled)
ELEM sum(const Array<1,ELEM> in) {
    __tunable unsigned p;
    unsigned len = in.Size();
    unsigned tile = (len + p - 1) / p;
    Sequence start(0, tile, len);
    Sequence end(tile, tile, len);
    Sequence inc(1, 0, 0);
    Map map(sum, partition(in, p, start, inc, end));
    map.atomicAdd();
    return sum(map);
}
"#;

/// Fig. 1b with the strided access pattern (the bottom-right diagram
/// of Fig. 1b): partition *i* covers elements `i, i+p, i+2p, …`,
/// which enables thread coarsening at the block level (§IV-C2).
pub const FIG1B_STRIDED: &str = r#"
__codelet __tag(strided)
ELEM sum(const Array<1,ELEM> in) {
    __tunable unsigned p;
    unsigned len = in.Size();
    Sequence start(0, 1, p);
    Sequence end(len, 0, 0);
    Sequence inc(p, 0, 0);
    Map map(sum, partition(in, p, start, inc, end));
    map.atomicAdd();
    return sum(map);
}
"#;

/// Fig. 1c — atomic cooperative codelet: two-level tree-based
/// summation through shared memory.
pub const FIG1C: &str = r#"
__codelet __coop __tag(coop_v)
ELEM sum(const Array<1,ELEM> in) {
    Vector vthread();
    __shared ELEM partial[vthread.MaxSize()];
    __shared ELEM tmp[in.Size()];
    ELEM val = 0;
    val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
    tmp[vthread.ThreadId()] = val;
    for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
        val += ((vthread.LaneId() + offset) < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : 0;
        tmp[vthread.ThreadId()] = val;
    }
    if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {
        if (vthread.LaneId() == 0) {
            partial[vthread.VectorId()] = val;
        }
        if (vthread.VectorId() == 0) {
            val = (vthread.ThreadId() <= in.Size() / vthread.MaxSize()) ? partial[vthread.LaneId()] : 0;
            for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                val += ((vthread.LaneId() + offset) < vthread.Size()) ? partial[vthread.ThreadId() + offset] : 0;
                partial[vthread.ThreadId()] = val;
            }
        }
    }
    return val;
}
"#;

/// Fig. 3a — cooperative codelet with a single shared accumulator
/// updated atomically by all threads of all vectors (`shared_V1`).
pub const FIG3A: &str = r#"
__codelet __coop __tag(shared_V1)
ELEM sum(const Array<1,ELEM> in) {
    Vector vthread();
    __shared _atomicAdd ELEM tmp;
    ELEM val = 0;
    val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
    tmp = val;
    return tmp;
}
"#;

/// Fig. 3b — cooperative codelet: per-vector tree summation, then the
/// first lane of each vector updates a shared accumulator atomically
/// (`shared_V2`).
pub const FIG3B: &str = r#"
__codelet __coop __tag(shared_V2)
ELEM sum(const Array<1,ELEM> in) {
    Vector vthread();
    __shared _atomicAdd ELEM partial;
    __shared ELEM tmp[in.Size()];
    ELEM val = 0;
    val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
    tmp[vthread.ThreadId()] = val;
    for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
        val += ((vthread.LaneId() + offset) < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : 0;
        tmp[vthread.ThreadId()] = val;
    }
    if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {
        if (vthread.LaneId() == 0) {
            partial = val;
        }
        if (vthread.VectorId() == 0) {
            val = partial;
        }
    }
    return val;
}
"#;

/// Parse one canonical source with `elem` as the element type
/// (`"int"`, `"float"`, …).
///
/// # Panics
///
/// Panics if the canonical source fails to parse — a bug in this
/// crate, covered by tests.
pub fn parse_canonical(src: &str, elem: &str) -> Codelet {
    let substituted = src.replace("ELEM", elem);
    parse_codelets(&substituted)
        .expect("canonical codelet must parse")
        .remove(0)
}

/// The full `sum` spectrum over element type `elem`: the five paper
/// codelets (Fig. 1a, 1b tiled, 1b strided, 1c, 3a, 3b).
pub fn sum_spectrum(elem: &str) -> Spectrum {
    let mut s = Spectrum::new("sum");
    for src in [FIG1A, FIG1B_TILED, FIG1B_STRIDED, FIG1C, FIG3A, FIG3B] {
        s.add(parse_canonical(src, elem));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::CodeletKind;

    #[test]
    fn all_canonical_sources_parse() {
        let s = sum_spectrum("float");
        assert_eq!(s.codelets.len(), 6);
    }

    #[test]
    fn kinds_match_the_paper() {
        let s = sum_spectrum("int");
        assert_eq!(s.codelets[0].kind(), CodeletKind::AtomicAutonomous); // 1a
        assert_eq!(s.codelets[1].kind(), CodeletKind::Compound); // 1b tiled
        assert_eq!(s.codelets[2].kind(), CodeletKind::Compound); // 1b strided
        assert_eq!(s.codelets[3].kind(), CodeletKind::Cooperative); // 1c
        assert_eq!(s.codelets[4].kind(), CodeletKind::Cooperative); // 3a
        assert_eq!(s.codelets[5].kind(), CodeletKind::Cooperative); // 3b
    }

    #[test]
    fn tags_are_present() {
        let s = sum_spectrum("float");
        assert!(s.by_tag("tiled").is_some());
        assert!(s.by_tag("strided").is_some());
        assert!(s.by_tag("coop_v").is_some());
        assert!(s.by_tag("shared_V1").is_some());
        assert!(s.by_tag("shared_V2").is_some());
    }

    #[test]
    fn element_type_substitution() {
        let c = parse_canonical(FIG1A, "double");
        assert_eq!(c.ret, tangram_ir::DslTy::Scalar(tangram_ir::ScalarTy::Double));
    }
}
