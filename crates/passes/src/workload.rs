//! First-class workload descriptions (ROADMAP item 3).
//!
//! The pass pipeline was written against the single-reduction corpus;
//! this module names the *workloads* the tuner keys on instead of a
//! bare [`ReduceOp`]: plain reductions, argmin/argmax with index
//! payloads (a pair-payload reduction exchanged as packed 64-bit lane
//! values) and bin-indexed histograms (an atomic scatter). Every layer
//! above — the synthesis cache, the tuning store, the serve wire
//! protocol, the CLI — identifies a sweep by a [`WorkloadKey`], whose
//! [`WorkloadKey::id`] string is the one canonical spelling.
//!
//! The non-reduce workloads do not go through the AST pass driver;
//! they are synthesized directly per *pass family*
//! ([`PassFamily`]) — atomic-global, atomic-shared privatization, and
//! warp-shuffle — crossed with the planner's two grid distributions,
//! which is exactly the axis the paper's rewrites explore.

use std::fmt;
use std::str::FromStr;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::planner::Dist;
use crate::specialize::ReduceOp;

/// Element dtype of a workload's input array. The corpus is `f32`
/// today; the dtype is part of the key so wider elements can land
/// without another key-schema migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dtype {
    /// IEEE-754 binary32 elements.
    #[default]
    F32,
}

impl Dtype {
    /// Canonical identifier (`f32`), the inverse of [`FromStr`].
    pub fn id(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            Dtype::F32 => 4,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for Dtype {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Dtype::F32),
            other => Err(format!("unknown dtype `{other}` (want f32)")),
        }
    }
}

/// Bin-count bounds for histogram workloads: at least 2 bins (1 would
/// be a plain count) and at most 4096 (16 KiB of `u32` counters, the
/// smallest modelled shared memory).
pub const HISTOGRAM_MIN_BINS: u32 = 2;
/// Upper bin-count bound (see [`HISTOGRAM_MIN_BINS`]).
pub const HISTOGRAM_MAX_BINS: u32 = 4096;
/// Bin count of the shorthand `hist` spelling.
pub const HISTOGRAM_DEFAULT_BINS: u32 = 64;

/// What a workload computes over its input array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A scalar reduction under one of the paper's operators.
    Reduce(ReduceOp),
    /// Index of the maximum element (pair-payload reduction: the
    /// value and its index travel together as one packed 64-bit
    /// quantity; ties resolve to the smallest index).
    ArgMax,
    /// Index of the minimum element (same payload shape as
    /// [`WorkloadKind::ArgMax`]).
    ArgMin,
    /// Bin-indexed histogram: each element increments one of `bins`
    /// `u32` counters (an atomic scatter rather than an atomic
    /// funnel).
    Histogram {
        /// Number of bins (within
        /// [`HISTOGRAM_MIN_BINS`]..=[`HISTOGRAM_MAX_BINS`]).
        bins: u32,
    },
}

impl WorkloadKind {
    /// Canonical identifier: `sum` / `max` / `min` / `argmax` /
    /// `argmin` / `hist<bins>`. The inverse of [`FromStr`].
    pub fn id(self) -> String {
        match self {
            WorkloadKind::Reduce(ReduceOp::Sum) => "sum".to_string(),
            WorkloadKind::Reduce(ReduceOp::Max) => "max".to_string(),
            WorkloadKind::Reduce(ReduceOp::Min) => "min".to_string(),
            WorkloadKind::ArgMax => "argmax".to_string(),
            WorkloadKind::ArgMin => "argmin".to_string(),
            WorkloadKind::Histogram { bins } => format!("hist{bins}"),
        }
    }

    /// Whether this kind reuses the reduction corpus and its planner
    /// search space (the original `CodeVersion` sweep).
    pub fn is_reduce(self) -> bool {
        matches!(self, WorkloadKind::Reduce(_))
    }

    /// Number of output elements and their width in bytes:
    /// reductions and arg-reductions produce one scalar, histograms
    /// one counter per bin.
    pub fn output_shape(self) -> (u64, u64) {
        match self {
            WorkloadKind::Reduce(_) => (1, 4),
            WorkloadKind::ArgMax | WorkloadKind::ArgMin => (1, 8),
            WorkloadKind::Histogram { bins } => (u64::from(bins), 4),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// The accepted spellings, quoted in every parse error so a typo on
/// the CLI or the wire names its own fix.
const KIND_MENU: &str = "sum, max, min, argmax, argmin, hist (64 bins), or hist<bins> \
     (e.g. hist16, bins 2..=4096)";

impl FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sum" => return Ok(WorkloadKind::Reduce(ReduceOp::Sum)),
            "max" => return Ok(WorkloadKind::Reduce(ReduceOp::Max)),
            "min" => return Ok(WorkloadKind::Reduce(ReduceOp::Min)),
            "argmax" => return Ok(WorkloadKind::ArgMax),
            "argmin" => return Ok(WorkloadKind::ArgMin),
            "hist" | "histogram" => {
                return Ok(WorkloadKind::Histogram { bins: HISTOGRAM_DEFAULT_BINS })
            }
            _ => {}
        }
        if let Some(tail) = s.strip_prefix("hist") {
            let bins: u32 = tail
                .parse()
                .map_err(|_| format!("unknown workload `{s}` (want {KIND_MENU})"))?;
            if !(HISTOGRAM_MIN_BINS..=HISTOGRAM_MAX_BINS).contains(&bins) {
                return Err(format!(
                    "histogram bin count {bins} out of range \
                     {HISTOGRAM_MIN_BINS}..={HISTOGRAM_MAX_BINS}"
                ));
            }
            return Ok(WorkloadKind::Histogram { bins });
        }
        Err(format!("unknown workload `{s}` (want {KIND_MENU})"))
    }
}

/// The typed key a tuning result is filed under: what is computed
/// ([`WorkloadKind`]) over which element dtype. Replaces the stringly
/// `(op, dtype)` pairs the store and the serve protocol used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// What the workload computes.
    pub kind: WorkloadKind,
    /// Element dtype of the input array.
    pub dtype: Dtype,
}

impl WorkloadKey {
    /// The default sweep key: `sum` over `f32`.
    pub fn sum() -> Self {
        WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Sum), dtype: Dtype::F32 }
    }

    /// A plain-reduction key over `f32` for `op`.
    pub fn reduce(op: ReduceOp) -> Self {
        WorkloadKey { kind: WorkloadKind::Reduce(op), dtype: Dtype::F32 }
    }

    /// An `argmax` key over `f32`.
    pub fn argmax() -> Self {
        WorkloadKey { kind: WorkloadKind::ArgMax, dtype: Dtype::F32 }
    }

    /// An `argmin` key over `f32`.
    pub fn argmin() -> Self {
        WorkloadKey { kind: WorkloadKind::ArgMin, dtype: Dtype::F32 }
    }

    /// A histogram key over `f32` with `bins` counters.
    pub fn histogram(bins: u32) -> Self {
        WorkloadKey { kind: WorkloadKind::Histogram { bins }, dtype: Dtype::F32 }
    }

    /// Canonical identifier, e.g. `sum-f32` or `hist64-f32` — used in
    /// store file names and on the serve wire. The inverse of
    /// [`FromStr`].
    pub fn id(&self) -> String {
        format!("{}-{}", self.kind.id(), self.dtype.id())
    }

    /// Slash-separated display form for log labels (`sum/f32`).
    pub fn label(&self) -> String {
        format!("{}/{}", self.kind.id(), self.dtype.id())
    }
}

impl Default for WorkloadKey {
    fn default() -> Self {
        WorkloadKey::sum()
    }
}

impl fmt::Display for WorkloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

impl FromStr for WorkloadKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // A bare kind defaults the dtype, so `argmax` and
        // `argmax-f32` are the same key.
        let (kind, dtype) = match s.rsplit_once('-') {
            Some((kind, dtype)) => (kind.parse::<WorkloadKind>()?, dtype.parse::<Dtype>()?),
            None => (s.parse::<WorkloadKind>()?, Dtype::default()),
        };
        Ok(WorkloadKey { kind, dtype })
    }
}

impl Serialize for WorkloadKey {
    fn to_value(&self) -> Value {
        Value::Str(self.id())
    }
}

impl Deserialize for WorkloadKey {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError("workload key must be a string".to_string()))?;
        s.parse().map_err(DeError)
    }
}

/// The pass family a non-reduce workload variant was generated by —
/// the same three rewrite strategies the paper's pipeline applies to
/// reduction codelets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassFamily {
    /// Combine directly in global memory with device-scope atomics.
    AtomicGlobal,
    /// Privatize the combine state in shared memory with block-scope
    /// atomics, then flush once per block.
    AtomicShared,
    /// Exchange partial state across warp lanes with shuffles before
    /// touching memory.
    Shuffle,
}

impl PassFamily {
    /// Display tag (`AG`/`AS`/`SH`), the same style the planner uses
    /// for code-version components.
    pub fn tag(self) -> &'static str {
        match self {
            PassFamily::AtomicGlobal => "AG",
            PassFamily::AtomicShared => "AS",
            PassFamily::Shuffle => "SH",
        }
    }
}

impl fmt::Display for PassFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One synthesizable variant of a non-reduce workload: a pass family
/// crossed with a grid distribution. Plays the role [`crate::planner::CodeVersion`]
/// plays for reductions — the unit the tuner enumerates, measures,
/// and names in winner lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WlVariant {
    /// The rewrite strategy.
    pub family: PassFamily,
    /// How elements are distributed over threads (the planner's
    /// tiled/strided axis).
    pub dist: Dist,
}

impl fmt::Display for WlVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors CodeVersion's "DT,A / DS+S+V" style: distribution
        // first, then the combine strategy.
        write!(f, "{} / {}", self.dist, self.family)
    }
}

impl WlVariant {
    /// Compact identifier without spaces (`DT-AG`), used in winner-line
    /// tokens and tuning-store records. The inverse of [`FromStr`].
    pub fn id(&self) -> String {
        format!("{}-{}", self.dist, self.family)
    }
}

impl FromStr for WlVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("unknown workload variant `{s}` (want e.g. DT-AG, DS-SH)");
        let (dist, family) = s.split_once('-').ok_or_else(err)?;
        let dist = match dist {
            "DT" => Dist::Tiled,
            "DS" => Dist::Strided,
            _ => return Err(err()),
        };
        let family = match family {
            "AG" => PassFamily::AtomicGlobal,
            "AS" => PassFamily::AtomicShared,
            "SH" => PassFamily::Shuffle,
            _ => return Err(err()),
        };
        Ok(WlVariant { family, dist })
    }
}

/// The canonical variant corpus for any non-reduce workload: all
/// three pass families crossed with both grid distributions, in
/// deterministic (family-major) order.
pub fn enumerate_workload_variants() -> Vec<WlVariant> {
    let mut out = Vec::with_capacity(6);
    for family in [PassFamily::AtomicGlobal, PassFamily::AtomicShared, PassFamily::Shuffle] {
        for dist in [Dist::Tiled, Dist::Strided] {
            out.push(WlVariant { family, dist });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_fromstr() {
        let keys = [
            WorkloadKey::sum(),
            WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Max), dtype: Dtype::F32 },
            WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Min), dtype: Dtype::F32 },
            WorkloadKey::argmax(),
            WorkloadKey::argmin(),
            WorkloadKey::histogram(16),
            WorkloadKey::histogram(4096),
        ];
        for key in keys {
            assert_eq!(key.id().parse::<WorkloadKey>().unwrap(), key, "{}", key.id());
            // The bare kind spelling (no dtype suffix) also parses.
            assert_eq!(key.kind.id().parse::<WorkloadKey>().unwrap(), key);
        }
    }

    #[test]
    fn serde_round_trips_typed_keys() {
        for key in [WorkloadKey::sum(), WorkloadKey::argmin(), WorkloadKey::histogram(128)] {
            let v = key.to_value();
            assert_eq!(WorkloadKey::deserialize(&v).unwrap(), key);
        }
        assert!(WorkloadKey::deserialize(&Value::Str("warp9".into())).is_err());
        assert!(WorkloadKey::deserialize(&Value::UInt(3)).is_err());
    }

    #[test]
    fn unknown_spellings_list_the_menu() {
        let err = "hostogram".parse::<WorkloadKind>().unwrap_err();
        for accepted in ["sum", "max", "min", "argmax", "argmin", "hist"] {
            assert!(err.contains(accepted), "error must list `{accepted}`: {err}");
        }
        assert!(err.contains("hostogram"), "error must quote the offender: {err}");
    }

    #[test]
    fn histogram_bins_are_bounded() {
        assert_eq!(
            "hist".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Histogram { bins: HISTOGRAM_DEFAULT_BINS }
        );
        assert_eq!("hist2".parse::<WorkloadKind>().unwrap(), WorkloadKind::Histogram { bins: 2 });
        assert!("hist1".parse::<WorkloadKind>().unwrap_err().contains("out of range"));
        assert!("hist4097".parse::<WorkloadKind>().unwrap_err().contains("out of range"));
        assert!("histx".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn variant_corpus_is_the_full_cross_product() {
        let all = enumerate_workload_variants();
        assert_eq!(all.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for v in &all {
            assert!(seen.insert(v.to_string()), "duplicate variant {v}");
        }
        assert_eq!(all[0].to_string(), "DT / AG");
        assert_eq!(all[5].to_string(), "DS / SH");
    }

    #[test]
    fn variant_ids_round_trip_and_stay_token_safe() {
        for v in enumerate_workload_variants() {
            let id = v.id();
            assert!(!id.contains(' '), "variant id must be token-safe: {id}");
            assert_eq!(id.parse::<WlVariant>().unwrap(), v);
        }
        assert!("DT/AG".parse::<WlVariant>().is_err());
        assert!("DT-XX".parse::<WlVariant>().is_err());
    }

    #[test]
    fn output_shapes() {
        assert_eq!(WorkloadKind::Reduce(ReduceOp::Sum).output_shape(), (1, 4));
        assert_eq!(WorkloadKind::ArgMax.output_shape(), (1, 8));
        assert_eq!(WorkloadKind::Histogram { bins: 20 }.output_shape(), (20, 4));
    }
}
