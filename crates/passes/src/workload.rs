//! First-class workload descriptions (ROADMAP item 3).
//!
//! The pass pipeline was written against the single-reduction corpus;
//! this module names the *workloads* the tuner keys on instead of a
//! bare [`ReduceOp`]: plain reductions, argmin/argmax with index
//! payloads (a pair-payload reduction exchanged as packed 64-bit lane
//! values) and bin-indexed histograms (an atomic scatter). Every layer
//! above — the synthesis cache, the tuning store, the serve wire
//! protocol, the CLI — identifies a sweep by a [`WorkloadKey`], whose
//! [`WorkloadKey::id`] string is the one canonical spelling.
//!
//! The non-reduce workloads do not go through the AST pass driver;
//! they are synthesized directly per *pass family*
//! ([`PassFamily`]) — atomic-global, atomic-shared privatization, and
//! warp-shuffle — crossed with the planner's two grid distributions,
//! which is exactly the axis the paper's rewrites explore.

use std::fmt;
use std::str::FromStr;

use serde::{DeError, Deserialize, Serialize, Value};

use crate::planner::Dist;
use crate::specialize::ReduceOp;

/// Element dtype of a workload's input array. The uploaded corpus is
/// `f32` storage for every dtype; a `u32` workload maps each element
/// through the same saturating `f32 → i64 → u32` conversion the
/// histogram binning uses, so integer workloads (where addition is
/// exact and order-independent mod 2³²) share one input pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dtype {
    /// IEEE-754 binary32 elements.
    #[default]
    F32,
    /// 32-bit unsigned integers (wrapping arithmetic), derived from
    /// the `f32` corpus by the histogram conversion.
    U32,
}

impl Dtype {
    /// Canonical identifier (`f32`/`u32`), the inverse of [`FromStr`].
    pub fn id(self) -> &'static str {
        match self {
            Dtype::F32 => "f32",
            Dtype::U32 => "u32",
        }
    }

    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            Dtype::F32 | Dtype::U32 => 4,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for Dtype {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Dtype::F32),
            "u32" => Ok(Dtype::U32),
            other => Err(format!("unknown dtype `{other}` (want f32 or u32)")),
        }
    }
}

/// Bin-count bounds for histogram workloads: at least 2 bins (1 would
/// be a plain count) and at most 4096 (16 KiB of `u32` counters, the
/// smallest modelled shared memory).
pub const HISTOGRAM_MIN_BINS: u32 = 2;
/// Upper bin-count bound (see [`HISTOGRAM_MIN_BINS`]).
pub const HISTOGRAM_MAX_BINS: u32 = 4096;
/// Bin count of the shorthand `hist` spelling.
pub const HISTOGRAM_DEFAULT_BINS: u32 = 64;

/// Deterministic segment-length cycle of the segmented-reduction
/// corpus: Fibonacci-flavoured run lengths (including two length-1
/// runs per cycle) so every descriptor set mixes tiny and long
/// segments. The pattern is shared by [`segments_for`] (which only
/// needs the count) and the descriptor expansion in `tangram::workload`.
pub const SEGMENT_PATTERN: [u64; 8] = [1, 1, 2, 3, 5, 8, 13, 21];

/// Number of segments the deterministic descriptor generator carves an
/// `n`-element array into: whole [`SEGMENT_PATTERN`] cycles plus the
/// partial cycle covering the tail (a short tail still closes its
/// in-progress segment). `segments_for(0) == 0`.
pub fn segments_for(n: u64) -> u64 {
    let cycle: u64 = SEGMENT_PATTERN.iter().sum();
    let mut segs = (n / cycle) * SEGMENT_PATTERN.len() as u64;
    let mut rem = n % cycle;
    for &len in &SEGMENT_PATTERN {
        if rem == 0 {
            break;
        }
        segs += 1;
        rem = rem.saturating_sub(len);
    }
    segs
}

/// What a workload computes over its input array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// A scalar reduction under one of the paper's operators.
    Reduce(ReduceOp),
    /// Index of the maximum element (pair-payload reduction: the
    /// value and its index travel together as one packed 64-bit
    /// quantity; ties resolve to the smallest index).
    ArgMax,
    /// Index of the minimum element (same payload shape as
    /// [`WorkloadKind::ArgMax`]).
    ArgMin,
    /// Bin-indexed histogram: each element increments one of `bins`
    /// `u32` counters (an atomic scatter rather than an atomic
    /// funnel).
    Histogram {
        /// Number of bins (within
        /// [`HISTOGRAM_MIN_BINS`]..=[`HISTOGRAM_MAX_BINS`]).
        bins: u32,
    },
    /// Prefix sum: the output carries one running total per input
    /// element (`n` outputs, not a scalar — the first vector-valued
    /// workload shape).
    Scan {
        /// `false` → inclusive (`out[i] = Σ x[0..=i]`), `true` →
        /// exclusive (`out[i] = Σ x[0..i]`, `out[0] = 0`).
        exclusive: bool,
    },
    /// Segmented sum: the input rides with a second buffer of sorted
    /// per-element segment ids (the deterministic
    /// [`SEGMENT_PATTERN`] descriptors), and the output carries one
    /// total per segment.
    SegSum,
}

impl WorkloadKind {
    /// Canonical identifier: `sum` / `max` / `min` / `argmax` /
    /// `argmin` / `hist<bins>` / `scan` / `exscan` / `segsum`. The
    /// inverse of [`FromStr`].
    pub fn id(self) -> String {
        match self {
            WorkloadKind::Reduce(ReduceOp::Sum) => "sum".to_string(),
            WorkloadKind::Reduce(ReduceOp::Max) => "max".to_string(),
            WorkloadKind::Reduce(ReduceOp::Min) => "min".to_string(),
            WorkloadKind::ArgMax => "argmax".to_string(),
            WorkloadKind::ArgMin => "argmin".to_string(),
            WorkloadKind::Histogram { bins } => format!("hist{bins}"),
            WorkloadKind::Scan { exclusive: false } => "scan".to_string(),
            WorkloadKind::Scan { exclusive: true } => "exscan".to_string(),
            WorkloadKind::SegSum => "segsum".to_string(),
        }
    }

    /// Whether this kind reuses the reduction corpus and its planner
    /// search space (the original `CodeVersion` sweep).
    pub fn is_reduce(self) -> bool {
        matches!(self, WorkloadKind::Reduce(_))
    }

    /// Number of output elements and their width in bytes for an
    /// `n`-element input: reductions and arg-reductions produce one
    /// scalar, histograms one counter per bin, scans one element per
    /// input element, and segmented sums one total per segment.
    pub fn output_shape(self, n: u64) -> (u64, u64) {
        match self {
            WorkloadKind::Reduce(_) => (1, 4),
            WorkloadKind::ArgMax | WorkloadKind::ArgMin => (1, 8),
            WorkloadKind::Histogram { bins } => (u64::from(bins), 4),
            WorkloadKind::Scan { .. } => (n, 4),
            WorkloadKind::SegSum => (segments_for(n), 4),
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// The accepted spellings, quoted in every parse error so a typo on
/// the CLI or the wire names its own fix.
const KIND_MENU: &str = "sum, max, min, argmax, argmin, hist (64 bins), hist<bins> \
     (e.g. hist16, bins 2..=4096), scan, exscan, or segsum";

impl FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sum" => return Ok(WorkloadKind::Reduce(ReduceOp::Sum)),
            "max" => return Ok(WorkloadKind::Reduce(ReduceOp::Max)),
            "min" => return Ok(WorkloadKind::Reduce(ReduceOp::Min)),
            "argmax" => return Ok(WorkloadKind::ArgMax),
            "argmin" => return Ok(WorkloadKind::ArgMin),
            "hist" | "histogram" => {
                return Ok(WorkloadKind::Histogram { bins: HISTOGRAM_DEFAULT_BINS })
            }
            "scan" => return Ok(WorkloadKind::Scan { exclusive: false }),
            "exscan" => return Ok(WorkloadKind::Scan { exclusive: true }),
            "segsum" => return Ok(WorkloadKind::SegSum),
            _ => {}
        }
        if let Some(tail) = s.strip_prefix("hist") {
            let bins: u32 = tail
                .parse()
                .map_err(|_| format!("unknown workload `{s}` (want {KIND_MENU})"))?;
            if !(HISTOGRAM_MIN_BINS..=HISTOGRAM_MAX_BINS).contains(&bins) {
                return Err(format!(
                    "histogram bin count {bins} out of range \
                     {HISTOGRAM_MIN_BINS}..={HISTOGRAM_MAX_BINS}"
                ));
            }
            return Ok(WorkloadKind::Histogram { bins });
        }
        Err(format!("unknown workload `{s}` (want {KIND_MENU})"))
    }
}

/// The typed key a tuning result is filed under: what is computed
/// ([`WorkloadKind`]) over which element dtype. Replaces the stringly
/// `(op, dtype)` pairs the store and the serve protocol used to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadKey {
    /// What the workload computes.
    pub kind: WorkloadKind,
    /// Element dtype of the input array.
    pub dtype: Dtype,
}

impl WorkloadKey {
    /// The default sweep key: `sum` over `f32`.
    pub fn sum() -> Self {
        WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Sum), dtype: Dtype::F32 }
    }

    /// A plain-reduction key over `f32` for `op`.
    pub fn reduce(op: ReduceOp) -> Self {
        WorkloadKey { kind: WorkloadKind::Reduce(op), dtype: Dtype::F32 }
    }

    /// An `argmax` key over `f32`.
    pub fn argmax() -> Self {
        WorkloadKey { kind: WorkloadKind::ArgMax, dtype: Dtype::F32 }
    }

    /// An `argmin` key over `f32`.
    pub fn argmin() -> Self {
        WorkloadKey { kind: WorkloadKind::ArgMin, dtype: Dtype::F32 }
    }

    /// A histogram key over `f32` with `bins` counters.
    pub fn histogram(bins: u32) -> Self {
        WorkloadKey { kind: WorkloadKind::Histogram { bins }, dtype: Dtype::F32 }
    }

    /// An inclusive prefix-sum key over `dtype` elements.
    pub fn scan(dtype: Dtype) -> Self {
        WorkloadKey { kind: WorkloadKind::Scan { exclusive: false }, dtype }
    }

    /// An exclusive prefix-sum key over `dtype` elements.
    pub fn exscan(dtype: Dtype) -> Self {
        WorkloadKey { kind: WorkloadKind::Scan { exclusive: true }, dtype }
    }

    /// A segmented-sum key over `dtype` elements.
    pub fn segsum(dtype: Dtype) -> Self {
        WorkloadKey { kind: WorkloadKind::SegSum, dtype }
    }

    /// Canonical identifier, e.g. `sum-f32` or `hist64-f32` — used in
    /// store file names and on the serve wire. The inverse of
    /// [`FromStr`].
    pub fn id(&self) -> String {
        format!("{}-{}", self.kind.id(), self.dtype.id())
    }

    /// Slash-separated display form for log labels (`sum/f32`).
    pub fn label(&self) -> String {
        format!("{}/{}", self.kind.id(), self.dtype.id())
    }
}

impl Default for WorkloadKey {
    fn default() -> Self {
        WorkloadKey::sum()
    }
}

impl fmt::Display for WorkloadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

impl FromStr for WorkloadKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // A bare kind defaults the dtype, so `argmax` and
        // `argmax-f32` are the same key.
        let (kind, dtype) = match s.rsplit_once('-') {
            Some((kind, dtype)) => (kind.parse::<WorkloadKind>()?, dtype.parse::<Dtype>()?),
            None => (s.parse::<WorkloadKind>()?, Dtype::default()),
        };
        Ok(WorkloadKey { kind, dtype })
    }
}

impl Serialize for WorkloadKey {
    fn to_value(&self) -> Value {
        Value::Str(self.id())
    }
}

impl Deserialize for WorkloadKey {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError("workload key must be a string".to_string()))?;
        s.parse().map_err(DeError)
    }
}

/// The pass family a non-reduce workload variant was generated by.
/// The first three are the paper's rewrite strategies for reduction
/// codelets; the scan-specific families name the block-scan schedule
/// the kernel runs between its loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassFamily {
    /// Combine directly in global memory with device-scope atomics.
    AtomicGlobal,
    /// Privatize the combine state in shared memory with block-scope
    /// atomics, then flush once per block.
    AtomicShared,
    /// Exchange partial state across warp lanes with shuffles before
    /// touching memory.
    Shuffle,
    /// Shared-memory Hillis–Steele block scan: log₂(block) doubling
    /// steps, each reading and rewriting the whole array (step-
    /// efficient, not work-efficient).
    HillisSteele,
    /// Shared-memory Blelloch block scan: balanced up-sweep /
    /// down-sweep tree (work-efficient, twice the steps).
    Blelloch,
}

impl PassFamily {
    /// Display tag (`AG`/`AS`/`SH`/`HS`/`BL`), the same style the
    /// planner uses for code-version components.
    pub fn tag(self) -> &'static str {
        match self {
            PassFamily::AtomicGlobal => "AG",
            PassFamily::AtomicShared => "AS",
            PassFamily::Shuffle => "SH",
            PassFamily::HillisSteele => "HS",
            PassFamily::Blelloch => "BL",
        }
    }
}

impl fmt::Display for PassFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One synthesizable variant of a non-reduce workload: a pass family
/// crossed with a grid distribution. Plays the role [`crate::planner::CodeVersion`]
/// plays for reductions — the unit the tuner enumerates, measures,
/// and names in winner lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WlVariant {
    /// The rewrite strategy.
    pub family: PassFamily,
    /// How elements are distributed over threads (the planner's
    /// tiled/strided axis).
    pub dist: Dist,
}

impl fmt::Display for WlVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Mirrors CodeVersion's "DT,A / DS+S+V" style: distribution
        // first, then the combine strategy.
        write!(f, "{} / {}", self.dist, self.family)
    }
}

impl WlVariant {
    /// Compact identifier without spaces (`DT-AG`), used in winner-line
    /// tokens and tuning-store records. The inverse of [`FromStr`].
    pub fn id(&self) -> String {
        format!("{}-{}", self.dist, self.family)
    }
}

impl FromStr for WlVariant {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("unknown workload variant `{s}` (want e.g. DT-AG, DS-SH, DT-HS)");
        let (dist, family) = s.split_once('-').ok_or_else(err)?;
        let dist = match dist {
            "DT" => Dist::Tiled,
            "DS" => Dist::Strided,
            _ => return Err(err()),
        };
        let family = match family {
            "AG" => PassFamily::AtomicGlobal,
            "AS" => PassFamily::AtomicShared,
            "SH" => PassFamily::Shuffle,
            "HS" => PassFamily::HillisSteele,
            "BL" => PassFamily::Blelloch,
            _ => return Err(err()),
        };
        Ok(WlVariant { family, dist })
    }
}

fn cross(families: &[PassFamily]) -> Vec<WlVariant> {
    let mut out = Vec::with_capacity(families.len() * 2);
    for &family in families {
        for dist in [Dist::Tiled, Dist::Strided] {
            out.push(WlVariant { family, dist });
        }
    }
    out
}

/// The canonical variant corpus of the scalar (argmin/argmax/
/// histogram) workloads: all three atomic/shuffle pass families
/// crossed with both grid distributions, in deterministic
/// (family-major) order.
pub fn enumerate_workload_variants() -> Vec<WlVariant> {
    cross(&[PassFamily::AtomicGlobal, PassFamily::AtomicShared, PassFamily::Shuffle])
}

/// The variant corpus of `kind`, in deterministic family-major order —
/// the unit the tuner enumerates, measures, and names in winner lines.
///
/// * Scalar scatter/funnel kinds sweep the classic
///   {AG, AS, SH} × {DT, DS} space ([`enumerate_workload_variants`]).
/// * Scans sweep three *block-scan schedules* —
///   shared-memory Hillis–Steele (`HS`), shared-memory Blelloch (`BL`),
///   and warp-shuffle scan with a cross-warp combine (`SH`) — crossed
///   with both distributions (here tile-local: `DT` gives each thread a
///   contiguous run, `DS` interleaves the tile round by round).
/// * Segmented sums sweep per-segment global atomics (`AG`, both
///   distributions), sorted-run shared privatization (`AS`, both), and
///   the warp-shuffle head-flag segmented scan (`SH`, strided only —
///   the head-flag exchange needs warp-contiguous element windows).
pub fn enumerate_variants_for(kind: WorkloadKind) -> Vec<WlVariant> {
    match kind {
        WorkloadKind::Scan { .. } => cross(&[
            PassFamily::HillisSteele,
            PassFamily::Blelloch,
            PassFamily::Shuffle,
        ]),
        WorkloadKind::SegSum => vec![
            WlVariant { family: PassFamily::AtomicGlobal, dist: Dist::Tiled },
            WlVariant { family: PassFamily::AtomicGlobal, dist: Dist::Strided },
            WlVariant { family: PassFamily::AtomicShared, dist: Dist::Tiled },
            WlVariant { family: PassFamily::AtomicShared, dist: Dist::Strided },
            WlVariant { family: PassFamily::Shuffle, dist: Dist::Strided },
        ],
        _ => enumerate_workload_variants(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_fromstr() {
        let keys = [
            WorkloadKey::sum(),
            WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Max), dtype: Dtype::F32 },
            WorkloadKey { kind: WorkloadKind::Reduce(ReduceOp::Min), dtype: Dtype::F32 },
            WorkloadKey::argmax(),
            WorkloadKey::argmin(),
            WorkloadKey::histogram(16),
            WorkloadKey::histogram(4096),
            WorkloadKey::scan(Dtype::F32),
            WorkloadKey::exscan(Dtype::F32),
            WorkloadKey::segsum(Dtype::F32),
        ];
        for key in keys {
            assert_eq!(key.id().parse::<WorkloadKey>().unwrap(), key, "{}", key.id());
            // The bare kind spelling (no dtype suffix) also parses.
            assert_eq!(key.kind.id().parse::<WorkloadKey>().unwrap(), key);
        }
        // u32 keys round-trip but never default (the bare spelling is f32).
        for key in [
            WorkloadKey::scan(Dtype::U32),
            WorkloadKey::exscan(Dtype::U32),
            WorkloadKey::segsum(Dtype::U32),
        ] {
            assert_eq!(key.id().parse::<WorkloadKey>().unwrap(), key, "{}", key.id());
            assert_ne!(key.kind.id().parse::<WorkloadKey>().unwrap(), key);
        }
        assert_eq!("scan-u32".parse::<WorkloadKey>().unwrap(), WorkloadKey::scan(Dtype::U32));
    }

    #[test]
    fn serde_round_trips_typed_keys() {
        for key in [WorkloadKey::sum(), WorkloadKey::argmin(), WorkloadKey::histogram(128)] {
            let v = key.to_value();
            assert_eq!(WorkloadKey::deserialize(&v).unwrap(), key);
        }
        assert!(WorkloadKey::deserialize(&Value::Str("warp9".into())).is_err());
        assert!(WorkloadKey::deserialize(&Value::UInt(3)).is_err());
    }

    #[test]
    fn unknown_spellings_list_the_menu() {
        let err = "hostogram".parse::<WorkloadKind>().unwrap_err();
        for accepted in
            ["sum", "max", "min", "argmax", "argmin", "hist", "scan", "exscan", "segsum"]
        {
            assert!(err.contains(accepted), "error must list `{accepted}`: {err}");
        }
        assert!(err.contains("hostogram"), "error must quote the offender: {err}");
    }

    #[test]
    fn histogram_bins_are_bounded() {
        assert_eq!(
            "hist".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Histogram { bins: HISTOGRAM_DEFAULT_BINS }
        );
        assert_eq!("hist2".parse::<WorkloadKind>().unwrap(), WorkloadKind::Histogram { bins: 2 });
        assert!("hist1".parse::<WorkloadKind>().unwrap_err().contains("out of range"));
        assert!("hist4097".parse::<WorkloadKind>().unwrap_err().contains("out of range"));
        assert!("histx".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn variant_corpus_is_the_full_cross_product() {
        let all = enumerate_workload_variants();
        assert_eq!(all.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for v in &all {
            assert!(seen.insert(v.to_string()), "duplicate variant {v}");
        }
        assert_eq!(all[0].to_string(), "DT / AG");
        assert_eq!(all[5].to_string(), "DS / SH");
    }

    #[test]
    fn per_kind_corpora_are_deterministic_and_distinct() {
        // Scalar kinds keep the classic six-variant corpus.
        for kind in [WorkloadKind::ArgMax, WorkloadKind::Histogram { bins: 64 }] {
            assert_eq!(enumerate_variants_for(kind), enumerate_workload_variants());
        }
        let scan = enumerate_variants_for(WorkloadKind::Scan { exclusive: false });
        assert_eq!(
            scan.iter().map(WlVariant::id).collect::<Vec<_>>(),
            ["DT-HS", "DS-HS", "DT-BL", "DS-BL", "DT-SH", "DS-SH"]
        );
        assert_eq!(scan, enumerate_variants_for(WorkloadKind::Scan { exclusive: true }));
        let seg = enumerate_variants_for(WorkloadKind::SegSum);
        assert_eq!(
            seg.iter().map(WlVariant::id).collect::<Vec<_>>(),
            ["DT-AG", "DS-AG", "DT-AS", "DS-AS", "DS-SH"]
        );
    }

    #[test]
    fn variant_ids_round_trip_and_stay_token_safe() {
        let mut all = enumerate_workload_variants();
        all.extend(enumerate_variants_for(WorkloadKind::Scan { exclusive: false }));
        all.extend(enumerate_variants_for(WorkloadKind::SegSum));
        for v in all {
            let id = v.id();
            assert!(!id.contains(' '), "variant id must be token-safe: {id}");
            assert_eq!(id.parse::<WlVariant>().unwrap(), v);
        }
        assert!("DT/AG".parse::<WlVariant>().is_err());
        assert!("DT-XX".parse::<WlVariant>().is_err());
    }

    #[test]
    fn output_shapes() {
        assert_eq!(WorkloadKind::Reduce(ReduceOp::Sum).output_shape(4096), (1, 4));
        assert_eq!(WorkloadKind::ArgMax.output_shape(4096), (1, 8));
        assert_eq!(WorkloadKind::Histogram { bins: 20 }.output_shape(4096), (20, 4));
        assert_eq!(WorkloadKind::Scan { exclusive: false }.output_shape(4096), (4096, 4));
        assert_eq!(WorkloadKind::Scan { exclusive: true }.output_shape(0), (0, 4));
        assert_eq!(WorkloadKind::SegSum.output_shape(4096), (segments_for(4096), 4));
    }

    #[test]
    fn segment_counts_track_the_pattern() {
        assert_eq!(segments_for(0), 0);
        assert_eq!(segments_for(1), 1, "a single element is a single segment");
        assert_eq!(segments_for(2), 2, "the pattern opens with two length-1 runs");
        let cycle: u64 = SEGMENT_PATTERN.iter().sum();
        assert_eq!(segments_for(cycle), SEGMENT_PATTERN.len() as u64);
        assert_eq!(segments_for(cycle + 1), SEGMENT_PATTERN.len() as u64 + 1);
        // Monotone in n, and a partial tail closes its open segment.
        let mut prev = 0;
        for n in 0..4 * cycle {
            let s = segments_for(n);
            assert!(s >= prev, "segments_for must be monotone at n={n}");
            prev = s;
        }
    }
}
