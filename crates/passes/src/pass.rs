//! Pass infrastructure: the `Pass` trait and the variant-generating
//! driver loop of Fig. 5.
//!
//! Tangram's pre-processing applies general transformations and then
//! CUDA-specific transformations; when a pass discovers a new code
//! variant it is recorded and fed back through the pipeline until no
//! new variants appear ("New variant?" in Fig. 5).

use tangram_ir::Codelet;

/// One output variant of a pass application.
#[derive(Debug, Clone)]
pub struct PassVariant {
    /// Short label describing the transformation applied, appended to
    /// the variant's tag (e.g. `"shfl"`, `"atomic-global"`).
    pub label: String,
    /// The transformed codelet.
    pub codelet: Codelet,
}

/// An AST transformation pass over codelets.
pub trait Pass {
    /// Pass name for diagnostics and reports.
    fn name(&self) -> &'static str;

    /// Apply the pass. Returning an empty vector means the pass found
    /// nothing to transform; each returned variant is a *new* codelet
    /// (the input is never mutated).
    fn run(&self, input: &Codelet) -> Vec<PassVariant>;
}

/// A codelet variant tracked by the driver, with its derivation.
#[derive(Debug, Clone)]
pub struct TrackedVariant {
    /// The codelet.
    pub codelet: Codelet,
    /// Labels of the passes that produced it, in application order
    /// (empty for seed codelets).
    pub derivation: Vec<String>,
}

impl TrackedVariant {
    /// A human-readable identifier: codelet id plus derivation chain.
    pub fn id(&self) -> String {
        if self.derivation.is_empty() {
            self.codelet.id()
        } else {
            format!("{}+{}", self.codelet.id(), self.derivation.join("+"))
        }
    }
}

/// The Fig. 5 driver: repeatedly applies `passes` to every known
/// variant, collecting structurally-new codelets until a fixpoint.
///
/// Returns all variants including the seeds, in discovery order.
pub fn generate_variants(seeds: &[Codelet], passes: &[&dyn Pass]) -> Vec<TrackedVariant> {
    let mut all: Vec<TrackedVariant> = seeds
        .iter()
        .map(|c| TrackedVariant { codelet: c.clone(), derivation: Vec::new() })
        .collect();
    let mut frontier: Vec<usize> = (0..all.len()).collect();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for idx in frontier {
            let current = all[idx].clone();
            for pass in passes {
                for v in pass.run(&current.codelet) {
                    let is_new = !all.iter().any(|t| t.codelet == v.codelet);
                    if is_new {
                        let mut derivation = current.derivation.clone();
                        derivation.push(v.label.clone());
                        all.push(TrackedVariant { codelet: v.codelet, derivation });
                        next.push(all.len() - 1);
                    }
                }
            }
        }
        frontier = next;
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::ast::{Block, Expr, Stmt};
    use tangram_ir::ty::{DslTy, ScalarTy};

    fn codelet(n: i64) -> Codelet {
        Codelet {
            name: "sum".into(),
            ret: DslTy::Scalar(ScalarTy::Int),
            params: vec![],
            body: Block(vec![Stmt::Return(Expr::int(n))]),
            is_coop: false,
            tag: None,
        }
    }

    /// A toy pass: increments the returned literal until it reaches 3.
    struct IncPass;
    impl Pass for IncPass {
        fn name(&self) -> &'static str {
            "inc"
        }
        fn run(&self, input: &Codelet) -> Vec<PassVariant> {
            match input.body.0.first() {
                Some(Stmt::Return(Expr::Int(v))) if *v < 3 => {
                    vec![PassVariant { label: format!("inc{}", v + 1), codelet: codelet(v + 1) }]
                }
                _ => vec![],
            }
        }
    }

    #[test]
    fn driver_iterates_to_fixpoint() {
        let vs = generate_variants(&[codelet(0)], &[&IncPass]);
        assert_eq!(vs.len(), 4); // 0 (seed), 1, 2, 3
        assert_eq!(vs[3].derivation, vec!["inc1", "inc2", "inc3"]);
        assert_eq!(vs[3].id(), "sum+inc1+inc2+inc3");
    }

    #[test]
    fn duplicates_are_not_readded() {
        // Two identical seeds collapse to two entries but the pass
        // output dedupes.
        let vs = generate_variants(&[codelet(2), codelet(2)], &[&IncPass]);
        // Seeds are kept as given (2 of them); only one `3` appears.
        assert_eq!(vs.iter().filter(|v| matches!(v.codelet.body.0[0], Stmt::Return(Expr::Int(3)))).count(), 1);
    }
}
