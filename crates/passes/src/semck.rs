//! Semantic checking of codelets before transformation and code
//! generation.
//!
//! Validates the constraints the paper's extensions introduce (and the
//! structural ones code generation relies on):
//!
//! * atomic qualifiers (`_atomicAdd` …) require `__shared` (§III-B);
//! * a `Map` atomic API call should accompany a spectrum call applying
//!   the *same* computation — a mismatch is legal but means no atomic
//!   version can be generated (§III-A), so it gets a warning;
//! * `Vector`/container member functions must be invoked on declared
//!   primitives with known names (Fig. 2);
//! * every referenced variable must be declared (parameters count);
//! * cooperative codelets must `return` exactly once, in tail position.

use std::fmt;

use tangram_ir::ast::{Block, DeclTy, Expr, Stmt};
use tangram_ir::ty::AtomicKind;
use tangram_ir::Codelet;

use crate::atomic_global::spectrum_matches_atomic;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The codelet cannot be compiled.
    Error,
    /// Legal but suspicious (e.g. an atomic API that disables no
    /// spectrum call).
    Warning,
}

/// A semantic diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    fn error(message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, message: message.into() }
    }

    fn warning(message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}: {}", self.message)
    }
}

/// The Fig. 2 `Vector` member functions.
const VECTOR_METHODS: [&str; 5] = ["Size", "MaxSize", "ThreadId", "LaneId", "VectorId"];
/// Container (`Array`) member functions.
const ARRAY_METHODS: [&str; 2] = ["Size", "Stride"];

#[derive(Default)]
struct Scope {
    vars: Vec<String>,
    vectors: Vec<String>,
    maps: Vec<String>,
    arrays: Vec<String>,
}

/// Check a codelet; returns all diagnostics (empty = clean).
pub fn check_codelet(codelet: &Codelet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut scope = Scope::default();
    for p in &codelet.params {
        scope.vars.push(p.name.clone());
        if matches!(p.ty, tangram_ir::DslTy::Array { .. }) {
            scope.arrays.push(p.name.clone());
        }
    }
    check_block(&codelet.body, &mut scope, &mut diags, codelet);

    // Tail-position return.
    let returns = count_returns(&codelet.body);
    match codelet.body.0.last() {
        Some(Stmt::Return(_)) if returns == 1 => {}
        Some(Stmt::Return(_)) => diags.push(Diagnostic::error(format!(
            "codelet `{}` has {} return statements; exactly one, in tail position, is supported",
            codelet.id(),
            returns
        ))),
        _ => diags.push(Diagnostic::error(format!(
            "codelet `{}` must end with a return statement",
            codelet.id()
        ))),
    }
    diags
}

/// Check every codelet of a spectrum.
pub fn check_spectrum(spectrum: &tangram_ir::Spectrum) -> Vec<Diagnostic> {
    spectrum.codelets.iter().flat_map(check_codelet).collect()
}

fn count_returns(b: &Block) -> usize {
    b.0.iter()
        .map(|s| match s {
            Stmt::Return(_) => 1,
            Stmt::For { body, .. } => count_returns(body),
            Stmt::If { then_b, else_b, .. } => {
                count_returns(then_b) + else_b.as_ref().map_or(0, count_returns)
            }
            _ => 0,
        })
        .sum()
}

fn check_block(b: &Block, scope: &mut Scope, diags: &mut Vec<Diagnostic>, codelet: &Codelet) {
    for s in b {
        check_stmt(s, scope, diags, codelet);
    }
}

fn check_stmt(s: &Stmt, scope: &mut Scope, diags: &mut Vec<Diagnostic>, codelet: &Codelet) {
    match s {
        Stmt::Decl { quals, ty, name, ctor_args, init } => {
            if quals.atomic.is_some() && !quals.shared {
                diags.push(Diagnostic::error(format!(
                    "`{}`: atomic qualifier `{}` requires `__shared` (§III-B)",
                    name,
                    quals.atomic.map(|a| a.to_string()).unwrap_or_default().trim()
                )));
            }
            // `Map map(sum, partition(...))`: the first constructor
            // argument names a spectrum, not a variable.
            let skip_first = matches!(ty, DeclTy::Map);
            for a in ctor_args.iter().skip(usize::from(skip_first)) {
                check_expr(a, scope, diags);
            }
            if let Some(e) = init {
                check_expr(e, scope, diags);
            }
            match ty {
                DeclTy::Vector => scope.vectors.push(name.clone()),
                DeclTy::Map => {
                    scope.maps.push(name.clone());
                    scope.vars.push(name.clone());
                }
                DeclTy::Array { size, .. } => {
                    if let Some(sz) = size.as_deref() {
                        check_expr(sz, scope, diags);
                    }
                    scope.arrays.push(name.clone());
                    scope.vars.push(name.clone());
                }
                DeclTy::Scalar(_) | DeclTy::Sequence => scope.vars.push(name.clone()),
            }
        }
        Stmt::Assign { target, value } | Stmt::CompoundAssign { target, value, .. } => {
            check_expr(target, scope, diags);
            check_expr(value, scope, diags);
        }
        Stmt::Expr(e) => {
            // Map atomic API usage: check the §III-A matching rule.
            if let Some((recv, method, _)) = e.as_var_method() {
                if scope.maps.iter().any(|m| m == recv) {
                    if let Some(kind) =
                        method.strip_prefix("atomic").and_then(AtomicKind::from_suffix)
                    {
                        check_map_atomic(recv, kind, codelet, diags);
                        return;
                    }
                }
            }
            check_expr(e, scope, diags);
        }
        Stmt::For { init, cond, step, body } => {
            let vars_before = scope.vars.len();
            check_stmt(init, scope, diags, codelet);
            check_expr(cond, scope, diags);
            check_stmt(step, scope, diags, codelet);
            check_block(body, scope, diags, codelet);
            scope.vars.truncate(vars_before);
        }
        Stmt::If { cond, then_b, else_b } => {
            check_expr(cond, scope, diags);
            let vars_before = scope.vars.len();
            check_block(then_b, scope, diags, codelet);
            scope.vars.truncate(vars_before);
            if let Some(eb) = else_b {
                check_block(eb, scope, diags, codelet);
                scope.vars.truncate(vars_before);
            }
        }
        Stmt::Return(e) => check_expr(e, scope, diags),
    }
}

/// §III-A: "the AST pass checks whether the spectrum call applies to
/// the input the same computation as the atomic API" — warn when no
/// matching spectrum call exists, because the atomic version cannot
/// then be generated.
fn check_map_atomic(map: &str, kind: AtomicKind, codelet: &Codelet, diags: &mut Vec<Diagnostic>) {
    let mut found_matching = false;
    let mut found_any = false;
    visit_calls(&codelet.body, &mut |callee: &str, args: &[Expr]| {
        let takes_map =
            args.len() == 1 && matches!(&args[0], Expr::Var(v) if v == map);
        if takes_map {
            found_any = true;
            if spectrum_matches_atomic(callee, kind) {
                found_matching = true;
            }
        }
    });
    if !found_any {
        diags.push(Diagnostic::warning(format!(
            "`{map}.atomic{}()` has no spectrum call consuming `{map}`; the non-atomic \
             version will be incomplete",
            kind.suffix()
        )));
    } else if !found_matching {
        diags.push(Diagnostic::warning(format!(
            "`{map}.atomic{}()` does not match the computation of the spectrum call \
             consuming `{map}`; no atomic version will be generated (§III-A)",
            kind.suffix()
        )));
    }
}

fn visit_calls(b: &Block, f: &mut impl FnMut(&str, &[Expr])) {
    use tangram_ir::visit::{walk_block, walk_expr, Visitor};
    struct V<'a, F>(&'a mut F);
    impl<F: FnMut(&str, &[Expr])> Visitor for V<'_, F> {
        fn visit_expr(&mut self, e: &Expr) {
            if let Expr::Call { callee, args } = e {
                (self.0)(callee, args);
            }
            walk_expr(self, e);
        }
    }
    walk_block(&mut V(f), b);
}

fn check_expr(e: &Expr, scope: &Scope, diags: &mut Vec<Diagnostic>) {
    use tangram_ir::visit::{walk_expr, Visitor};
    struct C<'a> {
        scope: &'a Scope,
        diags: &'a mut Vec<Diagnostic>,
    }
    impl Visitor for C<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            match e {
                Expr::Var(v) => {
                    let known = self.scope.vars.iter().any(|x| x == v)
                        || self.scope.vectors.iter().any(|x| x == v);
                    if !known {
                        self.diags
                            .push(Diagnostic::error(format!("reference to undeclared `{v}`")));
                    }
                }
                Expr::Method { recv, method, .. } => {
                    if let Expr::Var(r) = recv.as_ref() {
                        if self.scope.vectors.iter().any(|x| x == r) {
                            if !VECTOR_METHODS.contains(&method.as_str()) {
                                self.diags.push(Diagnostic::error(format!(
                                    "`{r}.{method}()` is not a Vector member function (Fig. 2)"
                                )));
                            }
                            // Receiver is a Vector: do not also flag it
                            // as an undeclared variable.
                            for a in match e {
                                Expr::Method { args, .. } => args,
                                _ => unreachable!(),
                            } {
                                walk_expr(self, a);
                            }
                            return;
                        }
                        if self.scope.arrays.iter().any(|x| x == r)
                            && !ARRAY_METHODS.contains(&method.as_str())
                            && !method.starts_with("atomic")
                        {
                            self.diags.push(Diagnostic::error(format!(
                                "`{r}.{method}()` is not an Array member function"
                            )));
                        }
                    }
                }
                _ => {}
            }
            walk_expr(self, e);
        }
    }
    let mut c = C { scope, diags };
    c.visit_expr(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;
    use tangram_lang::parse_codelets;

    #[test]
    fn canonical_corpus_is_clean() {
        for src in [
            corpus::FIG1A,
            corpus::FIG1B_TILED,
            corpus::FIG1B_STRIDED,
            corpus::FIG1C,
            corpus::FIG3A,
            corpus::FIG3B,
        ] {
            let c = corpus::parse_canonical(src, "float");
            let diags = check_codelet(&c);
            assert!(diags.is_empty(), "{}: {diags:?}", c.id());
        }
    }

    #[test]
    fn atomic_qualifier_without_shared_is_an_error() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                _atomicAdd int acc;
                return acc;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.severity == Severity::Error
            && d.message.contains("requires `__shared`")), "{diags:?}");
    }

    #[test]
    fn mismatched_map_atomic_is_a_warning() {
        let src = corpus::FIG1B_TILED.replace("map.atomicAdd()", "map.atomicMax()");
        let c = corpus::parse_canonical(&src, "float");
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.severity == Severity::Warning
            && d.message.contains("no atomic version")), "{diags:?}");
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int x = ghost + 1;
                return x;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.message.contains("undeclared `ghost`")), "{diags:?}");
    }

    #[test]
    fn unknown_vector_method_is_an_error() {
        let src = r#"
            __codelet __coop
            int sum(const Array<1,int> in) {
                Vector vthread();
                int x = vthread.WarpCount();
                return x;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(
            diags.iter().any(|d| d.message.contains("not a Vector member function")),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_tail_return_is_an_error() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                int x = 0;
                x = 1;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.message.contains("must end with a return")), "{diags:?}");
    }

    #[test]
    fn multiple_returns_are_an_error() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                if (in.Size() == 0) {
                    return 0;
                }
                return 1;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.message.contains("2 return statements")), "{diags:?}");
    }

    #[test]
    fn loop_scoped_variables_do_not_leak() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                for (unsigned i = 0; i < in.Size(); i += 1) {
                    int x = 0;
                }
                return i;
            }
        "#;
        let c = parse_codelets(src).unwrap().remove(0);
        let diags = check_codelet(&c);
        assert!(diags.iter().any(|d| d.message.contains("undeclared `i`")), "{diags:?}");
    }

    #[test]
    fn spectrum_check_aggregates() {
        let s = corpus::sum_spectrum("int");
        assert!(check_spectrum(&s).is_empty());
    }
}
