//! The planner: enumeration and pruning of synthesized code versions
//! (§IV-B, Fig. 6).
//!
//! A *code version* assigns codelets to the levels of the GPU software
//! hierarchy (grid → block → thread). The composition grammar:
//!
//! * **Grid level**: a compound distribute codelet with a tiled or
//!   strided access pattern, either writing per-block partials to an
//!   array reduced by a *second kernel* (original Tangram), or
//!   accumulating them with **global atomics** (§III-A) in a single
//!   kernel.
//! * **Block level**: one of
//!   * a compound distribute across threads (thread level = the
//!     scalar codelet), whose per-thread partials are reduced by the
//!     scalar codelet or by one of the cooperative codelets;
//!   * a strided atomic distribute (per-thread partials accumulated
//!     directly with block-scope atomics);
//!   * a cooperative codelet applied to the whole block tile.
//! * **Cooperative codelets**: `V` (Fig. 1c), `VA1` (Fig. 3a), `VA2`
//!   (Fig. 3b), and the shuffle variants `Vs`, `VA2+S` produced by the
//!   §III-C pass.
//!
//! The grammar yields 72 versions; the paper reports 89 (the delta is
//! enumeration internals the paper does not specify — see DESIGN.md
//! and EXPERIMENTS.md). The *checkable* counts match exactly: 10
//! original versions, 30 after pruning (every two-kernel version plus
//! the preliminary-experiment losers are removed; all survivors use
//! global atomics), and the 16 versions of Fig. 6 with their (a)–(p)
//! labels and the 8 best-performing highlighted ones.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Access pattern of a distribute (compound) codelet — the `Sequence`
/// choice of Fig. 1b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dist {
    /// Contiguous tiles per worker.
    Tiled,
    /// Stride-by-worker-count (enables thread coarsening at the block
    /// level, §IV-C2).
    Strided,
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dist::Tiled => "DT",
            Dist::Strided => "DS",
        })
    }
}

/// The cooperative codelets available after the paper's extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Coop {
    /// Fig. 1c — shared-memory tree summation.
    V,
    /// Fig. 3a — single shared accumulator, all threads atomic.
    VA1,
    /// Fig. 3b — per-warp tree then shared-atomic accumulate.
    VA2,
    /// Fig. 1c after the §III-C shuffle pass.
    Vs,
    /// Fig. 3b after the §III-C shuffle pass (`VA2+S`).
    VA2s,
}

impl Coop {
    /// All five cooperative codelets.
    pub const ALL: [Coop; 5] = [Coop::V, Coop::VA1, Coop::VA2, Coop::Vs, Coop::VA2s];

    /// Whether the codelet uses shared-memory atomics (§III-B).
    pub fn uses_shared_atomics(self) -> bool {
        matches!(self, Coop::VA1 | Coop::VA2 | Coop::VA2s)
    }

    /// Whether the codelet uses warp shuffles (§III-C).
    pub fn uses_shuffle(self) -> bool {
        matches!(self, Coop::Vs | Coop::VA2s)
    }
}

impl fmt::Display for Coop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Coop::V => "V",
            Coop::VA1 => "VA1",
            Coop::VA2 => "VA2",
            Coop::Vs => "Vs",
            Coop::VA2s => "VA2+S",
        })
    }
}

/// How a compound block codelet reduces its per-thread partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reducer {
    /// The scalar codelet (Fig. 1a) run by thread 0.
    Scalar,
    /// A cooperative codelet.
    Coop(Coop),
}

impl fmt::Display for Reducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reducer::Scalar => f.write_str("S"),
            Reducer::Coop(c) => write!(f, "{c}"),
        }
    }
}

/// Grid-level codelet choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridOp {
    /// Access pattern across blocks.
    pub dist: Dist,
    /// Whether per-block partials accumulate with global atomics
    /// (single kernel) instead of a second reduction kernel.
    pub atomic: bool,
}

impl fmt::Display for GridOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.dist, if self.atomic { ",A" } else { "" })
    }
}

/// Block-level codelet choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockOp {
    /// Distribute across threads (thread level = scalar codelet),
    /// partials reduced by `reducer`.
    Compound {
        /// Access pattern across threads.
        dist: Dist,
        /// Partial-result reducer.
        reducer: Reducer,
    },
    /// Strided atomic distribute: per-thread partials accumulated by
    /// block-scope atomics directly (`DS,A` at the block level).
    AtomicCompound,
    /// A cooperative codelet over the whole block tile.
    Coop(Coop),
}

impl fmt::Display for BlockOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockOp::Compound { dist, reducer } => write!(f, "{dist}+S+{reducer}"),
            BlockOp::AtomicCompound => f.write_str("DS,A"),
            BlockOp::Coop(c) => write!(f, "{c}"),
        }
    }
}

/// A complete code version: grid and block assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeVersion {
    /// Grid-level codelet.
    pub grid: GridOp,
    /// Block-level codelet.
    pub block: BlockOp,
}

impl CodeVersion {
    /// Whether the version needs a second kernel launch to reduce the
    /// per-block partial sums (every non-atomic grid does).
    pub fn needs_second_kernel(&self) -> bool {
        !self.grid.atomic
    }

    /// Whether any component uses global atomics.
    pub fn uses_global_atomics(&self) -> bool {
        self.grid.atomic
    }

    /// Whether any component uses shared-memory atomics.
    pub fn uses_shared_atomics(&self) -> bool {
        match self.block {
            BlockOp::Compound { reducer: Reducer::Coop(c), .. } => c.uses_shared_atomics(),
            BlockOp::Compound { .. } => false,
            BlockOp::AtomicCompound => true,
            BlockOp::Coop(c) => c.uses_shared_atomics(),
        }
    }

    /// Whether any component uses warp shuffles.
    pub fn uses_shuffle(&self) -> bool {
        match self.block {
            BlockOp::Compound { reducer: Reducer::Coop(c), .. } => c.uses_shuffle(),
            BlockOp::Compound { .. } => false,
            BlockOp::AtomicCompound => false,
            BlockOp::Coop(c) => c.uses_shuffle(),
        }
    }

    /// Whether this version only uses the original Tangram components
    /// (no atomics anywhere, no shuffles).
    pub fn is_original(&self) -> bool {
        !self.uses_global_atomics() && !self.uses_shared_atomics() && !self.uses_shuffle()
    }
}

impl fmt::Display for CodeVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {}", self.grid, self.block)
    }
}

/// Every block-level configuration of the grammar (18 total).
pub fn block_configs() -> Vec<BlockOp> {
    let mut out = Vec::new();
    for dist in [Dist::Tiled, Dist::Strided] {
        out.push(BlockOp::Compound { dist, reducer: Reducer::Scalar });
        for c in Coop::ALL {
            out.push(BlockOp::Compound { dist, reducer: Reducer::Coop(c) });
        }
    }
    out.push(BlockOp::AtomicCompound);
    for c in Coop::ALL {
        out.push(BlockOp::Coop(c));
    }
    out
}

/// The full version space of the grammar (72 versions).
pub fn enumerate_all() -> Vec<CodeVersion> {
    let mut out = Vec::new();
    for atomic in [false, true] {
        for dist in [Dist::Tiled, Dist::Strided] {
            for block in block_configs() {
                out.push(CodeVersion { grid: GridOp { dist, atomic }, block });
            }
        }
    }
    out
}

/// The versions expressible with original Tangram (no atomics, no
/// shuffles): the 10 versions of §IV-B.
pub fn enumerate_original() -> Vec<CodeVersion> {
    enumerate_all().into_iter().filter(CodeVersion::is_original).collect()
}

/// The two versions removed by the preliminary-experiment sweep in
/// addition to the two-kernel versions (see DESIGN.md: the paper does
/// not enumerate its preliminary losers; we remove the two `DS,A`-grid
/// versions whose block level repeats a strided pattern already
/// covered by the grid distribution).
fn preliminary_losers() -> Vec<CodeVersion> {
    let dsa = GridOp { dist: Dist::Strided, atomic: true };
    vec![
        CodeVersion { grid: dsa, block: BlockOp::AtomicCompound },
        CodeVersion {
            grid: dsa,
            block: BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::V) },
        },
    ]
}

/// The pruned search space actually tested (30 versions, §IV-B): every
/// version requiring a second kernel is removed, as are the
/// scalar-reducer singles and the preliminary losers. All survivors
/// accumulate per-block partials with global atomics.
pub fn enumerate_pruned() -> Vec<CodeVersion> {
    let losers = preliminary_losers();
    enumerate_all()
        .into_iter()
        .filter(|v| {
            !v.needs_second_kernel()
                && !matches!(v.block, BlockOp::Compound { reducer: Reducer::Scalar, .. })
                && !losers.contains(v)
        })
        .collect()
}

/// The 16 versions of Fig. 6 with their (a)–(p) labels: the
/// `DT,A`-grid versions of the pruned set.
pub fn fig6_versions() -> Vec<(char, CodeVersion)> {
    let g = GridOp { dist: Dist::Tiled, atomic: true };
    let c = |block| CodeVersion { grid: g, block };
    vec![
        ('a', c(BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::V) })),
        ('b', c(BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::Vs) })),
        ('c', c(BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::VA2) })),
        ('d', c(BlockOp::Compound { dist: Dist::Tiled, reducer: Reducer::Coop(Coop::V) })),
        ('e', c(BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::VA2s) })),
        ('f', c(BlockOp::Compound { dist: Dist::Tiled, reducer: Reducer::Coop(Coop::VA1) })),
        ('g', c(BlockOp::Compound { dist: Dist::Tiled, reducer: Reducer::Coop(Coop::VA2) })),
        ('h', c(BlockOp::Compound { dist: Dist::Tiled, reducer: Reducer::Coop(Coop::Vs) })),
        ('i', c(BlockOp::Compound { dist: Dist::Tiled, reducer: Reducer::Coop(Coop::VA2s) })),
        ('j', c(BlockOp::AtomicCompound)),
        ('k', c(BlockOp::Compound { dist: Dist::Strided, reducer: Reducer::Coop(Coop::VA1) })),
        ('l', c(BlockOp::Coop(Coop::V))),
        ('m', c(BlockOp::Coop(Coop::Vs))),
        ('n', c(BlockOp::Coop(Coop::VA1))),
        ('o', c(BlockOp::Coop(Coop::VA2))),
        ('p', c(BlockOp::Coop(Coop::VA2s))),
    ]
}

/// The 8 best-performing versions highlighted in Fig. 6 (the ones the
/// evaluation section names as per-size winners).
pub fn fig6_best() -> Vec<char> {
    vec!['a', 'b', 'c', 'e', 'k', 'm', 'n', 'p']
}

/// Look up a Fig. 6 version by its letter.
pub fn fig6_by_label(label: char) -> Option<CodeVersion> {
    fig6_versions().into_iter().find(|(l, _)| *l == label).map(|(_, v)| v)
}

/// Search-space summary (the §IV-B narrative counts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpaceReport {
    /// Versions expressible with original Tangram.
    pub original: usize,
    /// Full space after the paper's extensions.
    pub total: usize,
    /// New versions using only global atomics.
    pub global_atomic_only: usize,
    /// New versions using shared-memory atomics (without shuffles).
    pub shared_atomic: usize,
    /// New versions using warp shuffles.
    pub shuffle: usize,
    /// Versions surviving pruning.
    pub pruned: usize,
    /// The paper's corresponding counts, for the report.
    pub paper: (usize, usize, usize, usize, usize, usize),
}

/// Compute the search-space report.
pub fn search_space_report() -> SearchSpaceReport {
    let all = enumerate_all();
    let original = all.iter().filter(|v| v.is_original()).count();
    let global_atomic_only = all
        .iter()
        .filter(|v| v.uses_global_atomics() && !v.uses_shared_atomics() && !v.uses_shuffle())
        .count();
    let shared_atomic = all.iter().filter(|v| v.uses_shared_atomics() && !v.uses_shuffle()).count();
    let shuffle = all.iter().filter(|v| v.uses_shuffle()).count();
    SearchSpaceReport {
        original,
        total: all.len(),
        global_atomic_only,
        shared_atomic,
        shuffle,
        pruned: enumerate_pruned().len(),
        paper: (10, 89, 10, 38, 31, 30),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn original_space_is_10() {
        assert_eq!(enumerate_original().len(), 10);
    }

    #[test]
    fn full_space_is_72_and_unique() {
        let all = enumerate_all();
        assert_eq!(all.len(), 72);
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 72);
    }

    #[test]
    fn pruned_space_is_30_all_global_atomic() {
        let pruned = enumerate_pruned();
        assert_eq!(pruned.len(), 30);
        assert!(pruned.iter().all(|v| v.uses_global_atomics()));
        assert!(pruned.iter().all(|v| !v.needs_second_kernel()));
    }

    #[test]
    fn fig6_is_16_within_pruned() {
        let fig6 = fig6_versions();
        assert_eq!(fig6.len(), 16);
        let labels: HashSet<char> = fig6.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels.len(), 16);
        assert_eq!(*labels.iter().min().unwrap(), 'a');
        assert_eq!(*labels.iter().max().unwrap(), 'p');
        let pruned: HashSet<_> = enumerate_pruned().into_iter().collect();
        for (l, v) in &fig6 {
            assert!(pruned.contains(v), "fig6({l}) not in pruned set");
        }
        // All use Global Atomic Tile Distribution at the grid level.
        assert!(fig6.iter().all(|(_, v)| v.grid == GridOp { dist: Dist::Tiled, atomic: true }));
    }

    #[test]
    fn fig6_best_are_8_distinct_fig6_labels() {
        let best = fig6_best();
        assert_eq!(best.len(), 8);
        for l in &best {
            assert!(fig6_by_label(*l).is_some(), "missing fig6 label {l}");
        }
    }

    #[test]
    fn eval_section_version_structure() {
        // §IV-C: (p) = VA2+shuffle cooperative; (m) = V+shuffle
        // cooperative; (n) = VA1 cooperative; (b),(e) = strided block
        // distribute with shuffle reducers.
        assert_eq!(fig6_by_label('p').unwrap().block, BlockOp::Coop(Coop::VA2s));
        assert_eq!(fig6_by_label('m').unwrap().block, BlockOp::Coop(Coop::Vs));
        assert_eq!(fig6_by_label('n').unwrap().block, BlockOp::Coop(Coop::VA1));
        for l in ['b', 'e'] {
            match fig6_by_label(l).unwrap().block {
                BlockOp::Compound { dist, reducer: Reducer::Coop(c) } => {
                    assert_eq!(dist, Dist::Strided);
                    assert!(c.uses_shuffle());
                }
                other => panic!("fig6({l}) unexpected block {other:?}"),
            }
        }
        // (a),(c),(k): strided block distribute, non-shuffle coop.
        for l in ['a', 'c', 'k'] {
            match fig6_by_label(l).unwrap().block {
                BlockOp::Compound { dist, reducer: Reducer::Coop(c) } => {
                    assert_eq!(dist, Dist::Strided);
                    assert!(!c.uses_shuffle());
                }
                other => panic!("fig6({l}) unexpected block {other:?}"),
            }
        }
    }

    #[test]
    fn report_matches_design_counts() {
        let r = search_space_report();
        assert_eq!(r.original, 10);
        assert_eq!(r.total, 72);
        assert_eq!(r.global_atomic_only, 10);
        assert_eq!(r.shared_atomic, 28);
        assert_eq!(r.shuffle, 24);
        assert_eq!(r.pruned, 30);
        assert_eq!(r.original + r.global_atomic_only + r.shared_atomic + r.shuffle, r.total);
    }

    #[test]
    fn display_formats() {
        let v = fig6_by_label('e').unwrap();
        assert_eq!(v.to_string(), "DT,A / DS+S+VA2+S");
        assert_eq!(fig6_by_label('j').unwrap().to_string(), "DT,A / DS,A");
        assert_eq!(fig6_by_label('n').unwrap().to_string(), "DT,A / VA1");
    }
}
