//! Tokens of the codelet language.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[allow(missing_docs)] // variants are self-describing
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (also carries keywords that the parser treats
    /// contextually, like primitive names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),

    // Keywords.
    KwInt,
    KwUnsigned,
    KwFloat,
    KwDouble,
    KwBool,
    KwVoid,
    KwConst,
    KwFor,
    KwIf,
    KwElse,
    KwReturn,
    KwVector,
    KwMap,
    KwSequence,
    KwArray,

    // Qualifiers.
    QCodelet,
    QCoop,
    QTag,
    QShared,
    QTunable,
    /// `_atomicAdd` / `_atomicSub` / `_atomicMax` / `_atomicMin`,
    /// carrying the suffix.
    QAtomic(String),

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Float(v) => write!(f, "float `{v}`"),
            Tok::KwInt => write!(f, "`int`"),
            Tok::KwUnsigned => write!(f, "`unsigned`"),
            Tok::KwFloat => write!(f, "`float`"),
            Tok::KwDouble => write!(f, "`double`"),
            Tok::KwBool => write!(f, "`bool`"),
            Tok::KwVoid => write!(f, "`void`"),
            Tok::KwConst => write!(f, "`const`"),
            Tok::KwFor => write!(f, "`for`"),
            Tok::KwIf => write!(f, "`if`"),
            Tok::KwElse => write!(f, "`else`"),
            Tok::KwReturn => write!(f, "`return`"),
            Tok::KwVector => write!(f, "`Vector`"),
            Tok::KwMap => write!(f, "`Map`"),
            Tok::KwSequence => write!(f, "`Sequence`"),
            Tok::KwArray => write!(f, "`Array`"),
            Tok::QCodelet => write!(f, "`__codelet`"),
            Tok::QCoop => write!(f, "`__coop`"),
            Tok::QTag => write!(f, "`__tag`"),
            Tok::QShared => write!(f, "`__shared`"),
            Tok::QTunable => write!(f, "`__tunable`"),
            Tok::QAtomic(s) => write!(f, "`_atomic{s}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Question => write!(f, "`?`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::PlusAssign => write!(f, "`+=`"),
            Tok::MinusAssign => write!(f, "`-=`"),
            Tok::StarAssign => write!(f, "`*=`"),
            Tok::SlashAssign => write!(f, "`/=`"),
            Tok::PercentAssign => write!(f, "`%=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::AndAnd => write!(f, "`&&`"),
            Tok::OrOr => write!(f, "`||`"),
            Tok::Not => write!(f, "`!`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Start position.
    pub pos: Pos,
}
