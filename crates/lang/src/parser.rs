//! Recursive-descent parser producing `tangram-ir` ASTs.

use tangram_ir::ast::{BinOp, Block, DeclTy, Expr, Stmt, UnOp};
use tangram_ir::codelet::{Codelet, Param};
use tangram_ir::ty::{DslTy, Qualifiers, ScalarTy};

use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token};

/// Parse a whole source file into its codelets.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// let src = r#"
///     __codelet
///     int sum(const Array<1,int> in) {
///         int accum = 0;
///         for (unsigned i = 0; i < in.Size(); i += in.Stride()) {
///             accum += in[i];
///         }
///         return accum;
///     }
/// "#;
/// let codelets = tangram_lang::parse_codelets(src).unwrap();
/// assert_eq!(codelets.len(), 1);
/// assert_eq!(codelets[0].name, "sum");
/// ```
pub fn parse_codelets(src: &str) -> Result<Vec<Codelet>, ParseError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while p.peek() != &Tok::Eof {
        out.push(p.codelet()?);
    }
    Ok(out)
}

/// Parse a single expression (testing / tooling convenience).
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not exactly one
/// expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

/// Parse a single statement (testing / tooling convenience).
///
/// # Errors
///
/// Returns a [`ParseError`] when the input is not exactly one
/// statement.
pub fn parse_stmt(src: &str) -> Result<Stmt, ParseError> {
    let mut p = Parser::new(src)?;
    let s = p.stmt()?;
    p.expect(Tok::Eof)?;
    Ok(s)
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser { toks: lex(src)?, i: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.i + n).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(self.pos(), format!("expected {t}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(self.pos(), format!("expected identifier, found {other}"))),
        }
    }

    // ---- types -----------------------------------------------------

    fn scalar_ty(&mut self) -> Result<ScalarTy, ParseError> {
        match self.bump() {
            Tok::KwInt => Ok(ScalarTy::Int),
            Tok::KwUnsigned => {
                // `unsigned int` is accepted.
                self.eat(&Tok::KwInt);
                Ok(ScalarTy::Unsigned)
            }
            Tok::KwFloat => Ok(ScalarTy::Float),
            Tok::KwDouble => Ok(ScalarTy::Double),
            Tok::KwBool => Ok(ScalarTy::Bool),
            other => Err(ParseError::new(self.pos(), format!("expected a scalar type, found {other}"))),
        }
    }

    fn is_scalar_start(t: &Tok) -> bool {
        matches!(t, Tok::KwInt | Tok::KwUnsigned | Tok::KwFloat | Tok::KwDouble | Tok::KwBool)
    }

    fn dsl_ty(&mut self) -> Result<DslTy, ParseError> {
        match self.peek() {
            Tok::KwVoid => {
                self.bump();
                Ok(DslTy::Void)
            }
            Tok::KwArray => {
                self.bump();
                self.expect(Tok::Lt)?;
                let dims = match self.bump() {
                    Tok::Int(v) if (1..=4).contains(&v) => v as u8,
                    other => {
                        return Err(ParseError::new(
                            self.pos(),
                            format!("expected Array dimension count, found {other}"),
                        ))
                    }
                };
                self.expect(Tok::Comma)?;
                let elem = self.scalar_ty()?;
                self.expect(Tok::Gt)?;
                Ok(DslTy::Array { dims, elem })
            }
            _ => Ok(DslTy::Scalar(self.scalar_ty()?)),
        }
    }

    // ---- codelets ---------------------------------------------------

    fn codelet(&mut self) -> Result<Codelet, ParseError> {
        self.expect(Tok::QCodelet)?;
        let mut is_coop = false;
        let mut tag = None;
        loop {
            match self.peek() {
                Tok::QCoop => {
                    self.bump();
                    is_coop = true;
                }
                Tok::QTag => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    tag = Some(self.ident()?);
                    self.expect(Tok::RParen)?;
                }
                _ => break,
            }
        }
        let ret = self.dsl_ty()?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let is_const = self.eat(&Tok::KwConst);
                let ty = self.dsl_ty()?;
                let pname = self.ident()?;
                params.push(Param { name: pname, ty, is_const });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(Codelet { name, ret, params, body, is_coop, tag })
    }

    // ---- statements --------------------------------------------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(ParseError::new(self.pos(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block(stmts))
    }

    /// A block or a single statement wrapped in a block.
    fn blockish(&mut self) -> Result<Block, ParseError> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            Ok(Block(vec![self.stmt()?]))
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::KwFor => self.for_stmt(),
            Tok::KwIf => self.if_stmt(),
            Tok::KwReturn => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration / assignment / expression statement *without* the
    /// trailing semicolon (so `for (...)` headers can reuse it).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Qualifiers start a declaration.
        let mut quals = Qualifiers::none();
        let mut has_quals = false;
        loop {
            match self.peek() {
                Tok::QShared => {
                    self.bump();
                    quals.shared = true;
                    has_quals = true;
                }
                Tok::QTunable => {
                    self.bump();
                    quals.tunable = true;
                    has_quals = true;
                }
                Tok::QAtomic(suffix) => {
                    let kind = tangram_ir::AtomicKind::from_suffix(suffix)
                        .expect("lexer only emits known atomic suffixes");
                    self.bump();
                    quals.atomic = Some(kind);
                    has_quals = true;
                }
                _ => break,
            }
        }
        let starts_decl = has_quals
            || Self::is_scalar_start(self.peek())
            || matches!(self.peek(), Tok::KwVector | Tok::KwMap | Tok::KwSequence);
        if starts_decl {
            return self.decl_stmt(quals);
        }
        // Assignment or expression statement.
        let target = self.expr()?;
        let compound = |op| Some(op);
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => compound(BinOp::Add),
            Tok::MinusAssign => compound(BinOp::Sub),
            Tok::StarAssign => compound(BinOp::Mul),
            Tok::SlashAssign => compound(BinOp::Div),
            Tok::PercentAssign => compound(BinOp::Rem),
            _ => return Ok(Stmt::Expr(target)),
        };
        self.bump();
        let value = self.expr()?;
        Ok(match op {
            None => Stmt::Assign { target, value },
            Some(op) => Stmt::CompoundAssign { op, target, value },
        })
    }

    fn decl_stmt(&mut self, quals: Qualifiers) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::KwVector | Tok::KwMap | Tok::KwSequence => {
                let ty = match self.bump() {
                    Tok::KwVector => DeclTy::Vector,
                    Tok::KwMap => DeclTy::Map,
                    _ => DeclTy::Sequence,
                };
                let name = self.ident()?;
                self.expect(Tok::LParen)?;
                let mut ctor_args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        ctor_args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RParen)?;
                }
                Ok(Stmt::Decl { quals, ty, name, ctor_args, init: None })
            }
            _ => {
                let elem = self.scalar_ty()?;
                let name = self.ident()?;
                if self.eat(&Tok::LBracket) {
                    let size = if self.peek() == &Tok::RBracket {
                        None
                    } else {
                        Some(Box::new(self.expr()?))
                    };
                    self.expect(Tok::RBracket)?;
                    return Ok(Stmt::Decl {
                        quals,
                        ty: DeclTy::Array { elem, size },
                        name,
                        ctor_args: vec![],
                        init: None,
                    });
                }
                let init = if self.eat(&Tok::Assign) { Some(self.expr()?) } else { None };
                Ok(Stmt::Decl { quals, ty: DeclTy::Scalar(elem), name, ctor_args: vec![], init })
            }
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::KwFor)?;
        self.expect(Tok::LParen)?;
        let init = self.simple_stmt()?;
        self.expect(Tok::Semi)?;
        let cond = self.expr()?;
        self.expect(Tok::Semi)?;
        let step = self.simple_stmt()?;
        self.expect(Tok::RParen)?;
        let body = self.blockish()?;
        Ok(Stmt::For { init: Box::new(init), cond, step: Box::new(step), body })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::KwIf)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_b = self.blockish()?;
        let else_b = if self.eat(&Tok::KwElse) { Some(self.blockish()?) } else { None };
        Ok(Stmt::If { cond, then_b, else_b })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let then_e = self.expr()?;
            self.expect(Tok::Colon)?;
            let else_e = self.expr()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            });
        }
        Ok(cond)
    }

    /// Precedence-climbing binary expressions. Levels, low to high:
    /// `||`, `&&`, `|`, `^`, `&`, `==/!=`, relational, shifts, `+/-`,
    /// `*//%`.
    fn binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                Tok::OrOr => (BinOp::Or, 0),
                Tok::AndAnd => (BinOp::And, 1),
                Tok::Pipe => (BinOp::BitOr, 2),
                Tok::Caret => (BinOp::BitXor, 3),
                Tok::Amp => (BinOp::BitAnd, 4),
                Tok::EqEq => (BinOp::Eq, 5),
                Tok::Ne => (BinOp::Ne, 5),
                Tok::Lt => (BinOp::Lt, 6),
                Tok::Le => (BinOp::Le, 6),
                Tok::Gt => (BinOp::Gt, 6),
                Tok::Ge => (BinOp::Ge, 6),
                Tok::Shl => (BinOp::Shl, 7),
                Tok::Shr => (BinOp::Shr, 7),
                Tok::Plus => (BinOp::Add, 8),
                Tok::Minus => (BinOp::Sub, 8),
                Tok::Star => (BinOp::Mul, 9),
                Tok::Slash => (BinOp::Div, 9),
                Tok::Percent => (BinOp::Rem, 9),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(self.unary()?) })
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(self.unary()?) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::index(e, idx);
                }
                Tok::Dot => {
                    self.bump();
                    let method = self.ident()?;
                    self.expect(Tok::LParen)?;
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    e = Expr::Method { recv: Box::new(e), method, args };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                // Cast `(int)x` vs parenthesized expression.
                if Self::is_scalar_start(self.peek_at(1)) && self.peek_at(2) == &Tok::RParen {
                    self.bump();
                    let ty = self.scalar_ty()?;
                    self.expect(Tok::RParen)?;
                    let e = self.unary()?;
                    return Ok(Expr::Cast { ty, expr: Box::new(e) });
                }
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError::new(self.pos(), format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_ir::codelet::CodeletKind;
    use tangram_ir::print::{codelet_to_string, expr_to_string};
    use tangram_ir::ty::AtomicKind;

    #[test]
    fn precedence_is_c_like() {
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(expr_to_string(&e), "a + (b * c)");
        let e = parse_expr("a < b && c != d || e").unwrap();
        assert_eq!(expr_to_string(&e), "((a < b) && (c != d)) || e");
        let e = parse_expr("x % 32 + y / 2").unwrap();
        assert_eq!(expr_to_string(&e), "(x % 32) + (y / 2)");
    }

    #[test]
    fn parses_ternary_and_methods() {
        let e = parse_expr("(vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0")
            .unwrap();
        match e {
            Expr::Ternary { .. } => {}
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn parses_cast() {
        let e = parse_expr("(int)x + 1").unwrap();
        assert_eq!(expr_to_string(&e), "((int)x) + 1");
    }

    #[test]
    fn parses_declarations() {
        let s = parse_stmt("__shared _atomicAdd int partial;").unwrap();
        match s {
            Stmt::Decl { quals, ty: DeclTy::Scalar(ScalarTy::Int), name, .. } => {
                assert!(quals.shared);
                assert_eq!(quals.atomic, Some(AtomicKind::Add));
                assert_eq!(name, "partial");
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_stmt("__shared int tmp[in.Size()];").unwrap();
        assert!(matches!(s, Stmt::Decl { ty: DeclTy::Array { .. }, .. }));
        let s = parse_stmt("__tunable unsigned p;").unwrap();
        match s {
            Stmt::Decl { quals, .. } => assert!(quals.tunable),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_primitive_declarations() {
        let s = parse_stmt("Vector vthread();").unwrap();
        assert!(matches!(s, Stmt::Decl { ty: DeclTy::Vector, .. }));
        let s = parse_stmt("Map map(sum, partition(in, p, start, inc, end));").unwrap();
        match s {
            Stmt::Decl { ty: DeclTy::Map, ctor_args, .. } => {
                assert_eq!(ctor_args.len(), 2);
                assert_eq!(ctor_args[0], Expr::var("sum"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_fig1a_codelet() {
        let src = r#"
            __codelet
            int sum(const Array<1,int> in) {
                unsigned len = in.Size();
                int accum = 0;
                for (unsigned i = 0; i < len; i += in.Stride()) {
                    accum += in[i];
                }
                return accum;
            }
        "#;
        let cs = parse_codelets(src).unwrap();
        assert_eq!(cs.len(), 1);
        let c = &cs[0];
        assert_eq!(c.name, "sum");
        assert_eq!(c.kind(), CodeletKind::AtomicAutonomous);
        assert_eq!(c.params.len(), 1);
        assert!(c.params[0].is_const);
    }

    #[test]
    fn parses_coop_with_tag() {
        let src = r#"
            __codelet __coop __tag(shared_V1)
            int sum(const Array<1,int> in) {
                Vector vthread();
                __shared _atomicAdd int tmp;
                int val = 0;
                val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
                tmp = val;
                return tmp;
            }
        "#;
        let cs = parse_codelets(src).unwrap();
        let c = &cs[0];
        assert!(c.is_coop);
        assert_eq!(c.tag.as_deref(), Some("shared_V1"));
        assert_eq!(c.kind(), CodeletKind::Cooperative);
    }

    #[test]
    fn print_parse_round_trip() {
        let src = r#"
            __codelet __coop
            int sum(const Array<1,int> in) {
                Vector vthread();
                __shared int tmp[in.Size()];
                int val = 0;
                for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                    val += ((vthread.LaneId() + offset) < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : 0;
                    tmp[vthread.ThreadId()] = val;
                }
                if (in.Size() != vthread.MaxSize() && in.Size() / vthread.MaxSize() > 0) {
                    if (vthread.LaneId() == 0) {
                        tmp[vthread.VectorId()] = val;
                    }
                } else {
                    val = 0;
                }
                return val;
            }
        "#;
        let first = parse_codelets(src).unwrap();
        let printed = codelet_to_string(&first[0]);
        let second = parse_codelets(&printed).unwrap();
        assert_eq!(first, second, "printed source:\n{printed}");
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_codelets("__codelet int sum( {").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse_stmt("int x = 1").is_err());
    }

    #[test]
    fn unterminated_block_is_an_error() {
        assert!(parse_codelets("__codelet void f() { int x = 1;").is_err());
    }
}
