//! Lexer for the codelet language.

use crate::error::ParseError;
use crate::token::{Pos, Tok, Token};

/// Tokenize `src` into a token stream terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns [`ParseError`] on unknown characters or malformed
/// literals, with the offending position.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer { chars: src.chars().collect(), i: 0, line: 1, col: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = if c.is_ascii_digit() {
                self.number(pos)?
            } else if c.is_alphabetic() || c == '_' {
                self.word()
            } else {
                self.punct(pos)?
            };
            out.push(Token { tok, pos });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => break,
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, ParseError> {
        let mut s = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else if c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                s.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-')
            {
                is_float = true;
                s.push(c);
                self.bump();
                if let Some(sign @ ('+' | '-')) = self.peek() {
                    s.push(sign);
                    self.bump();
                }
            } else if c == 'f' || c == 'u' || c == 'U' {
                // Type suffixes accepted and ignored.
                if c == 'f' {
                    is_float = true;
                }
                self.bump();
                break;
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| ParseError::new(pos, format!("malformed float literal `{s}`")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| ParseError::new(pos, format!("malformed integer literal `{s}`")))
        }
    }

    fn word(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "int" => Tok::KwInt,
            "unsigned" => Tok::KwUnsigned,
            "float" => Tok::KwFloat,
            "double" => Tok::KwDouble,
            "bool" => Tok::KwBool,
            "void" => Tok::KwVoid,
            "const" => Tok::KwConst,
            "for" => Tok::KwFor,
            "if" => Tok::KwIf,
            "else" => Tok::KwElse,
            "return" => Tok::KwReturn,
            "Vector" => Tok::KwVector,
            "Map" => Tok::KwMap,
            "Sequence" => Tok::KwSequence,
            "Array" => Tok::KwArray,
            "__codelet" => Tok::QCodelet,
            "__coop" => Tok::QCoop,
            "__tag" => Tok::QTag,
            "__shared" => Tok::QShared,
            "__tunable" => Tok::QTunable,
            _ => {
                if let Some(rest) = s.strip_prefix("_atomic") {
                    if tangram_ir::AtomicKind::from_suffix(rest).is_some() {
                        return Tok::QAtomic(rest.to_string());
                    }
                }
                Tok::Ident(s)
            }
        }
    }

    fn punct(&mut self, pos: Pos) -> Result<Tok, ParseError> {
        let c = self.bump().unwrap();
        let two = |l: &mut Lexer, next: char, a: Tok, b: Tok| {
            if l.peek() == Some(next) {
                l.bump();
                a
            } else {
                b
            }
        };
        Ok(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            ';' => Tok::Semi,
            ',' => Tok::Comma,
            '.' => Tok::Dot,
            '?' => Tok::Question,
            ':' => Tok::Colon,
            '+' => two(self, '=', Tok::PlusAssign, Tok::Plus),
            '-' => two(self, '=', Tok::MinusAssign, Tok::Minus),
            '*' => two(self, '=', Tok::StarAssign, Tok::Star),
            '/' => two(self, '=', Tok::SlashAssign, Tok::Slash),
            '%' => two(self, '=', Tok::PercentAssign, Tok::Percent),
            '=' => two(self, '=', Tok::EqEq, Tok::Assign),
            '!' => two(self, '=', Tok::Ne, Tok::Not),
            '^' => Tok::Caret,
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    Tok::Shl
                } else {
                    two(self, '=', Tok::Le, Tok::Lt)
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    Tok::Shr
                } else {
                    two(self, '=', Tok::Ge, Tok::Gt)
                }
            }
            '&' => two(self, '&', Tok::AndAnd, Tok::Amp),
            '|' => two(self, '|', Tok::OrOr, Tok::Pipe),
            other => return Err(ParseError::new(pos, format!("unexpected character `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_qualifiers_and_keywords() {
        let toks = kinds("__codelet __coop __tag(shared_V2) __shared _atomicAdd __tunable int");
        assert_eq!(
            toks,
            vec![
                Tok::QCodelet,
                Tok::QCoop,
                Tok::QTag,
                Tok::LParen,
                Tok::Ident("shared_V2".into()),
                Tok::RParen,
                Tok::QShared,
                Tok::QAtomic("Add".into()),
                Tok::QTunable,
                Tok::KwInt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("a += b /= c <= d >> e && f != g");
        assert!(toks.contains(&Tok::PlusAssign));
        assert!(toks.contains(&Tok::SlashAssign));
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::Shr));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::Ne));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], Tok::Int(42));
        assert_eq!(kinds("3.5")[0], Tok::Float(3.5));
        assert_eq!(kinds("1e3")[0], Tok::Float(1000.0));
        assert_eq!(kinds("2.5f")[0], Tok::Float(2.5));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // line comment\n b /* block\n comment */ c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_char_errors() {
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn unknown_atomic_suffix_is_identifier() {
        assert_eq!(kinds("_atomicMul")[0], Tok::Ident("_atomicMul".into()));
    }
}
