//! Parser diagnostics.

use std::fmt;

use crate::token::Pos;

/// A lexing or parsing error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Position of the error.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Create an error at `pos`.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError { pos, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(Pos { line: 3, col: 7 }, "expected `;`");
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
    }
}
