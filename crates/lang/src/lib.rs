//! # tangram-lang — lexer and parser for the Tangram codelet language
//!
//! Parses the C-like codelet language of the Tangram programming
//! model, including the paper's extensions: the `__coop`/`__tag`
//! codelet markers, the `__shared`/`__tunable` qualifiers, and the new
//! shared-memory atomic qualifiers (`_atomicAdd`, `_atomicSub`,
//! `_atomicMax`, `_atomicMin`, §III-B). The codelets of the paper's
//! Figures 1 and 3 parse verbatim (modulo the prose ellipses in the
//! `Sequence` constructors, which the canonical sources spell out).
//!
//! ```
//! let src = r#"
//!     __codelet __coop __tag(shared_V1)
//!     float sum(const Array<1,float> in) {
//!         Vector vthread();
//!         __shared _atomicAdd float tmp;
//!         float val = 0;
//!         val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
//!         tmp = val;
//!         return tmp;
//!     }
//! "#;
//! let codelets = tangram_lang::parse_codelets(src).unwrap();
//! assert_eq!(codelets[0].tag.as_deref(), Some("shared_V1"));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::ParseError;
pub use parser::{parse_codelets, parse_expr, parse_stmt};
