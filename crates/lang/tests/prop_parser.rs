//! Robustness properties: the lexer and parser never panic — they
//! return positioned errors for arbitrary garbage — and accepted
//! inputs round-trip through the printer.

use proptest::prelude::*;
use tangram_ir::print::codelet_to_string;
use tangram_lang::{parse_codelets, parse_expr, parse_stmt};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Arbitrary input never panics the front end.
    #[test]
    fn parser_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = parse_codelets(&src);
        let _ = parse_expr(&src);
        let _ = parse_stmt(&src);
    }

    /// Arbitrary *token-shaped* input (more likely to get deep into
    /// the grammar) never panics either.
    #[test]
    fn parser_total_on_token_soup(tokens in prop::collection::vec(
        prop_oneof![
            Just("__codelet"), Just("__coop"), Just("__shared"), Just("_atomicAdd"),
            Just("int"), Just("float"), Just("Vector"), Just("Map"), Just("Array"),
            Just("for"), Just("if"), Just("else"), Just("return"),
            Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
            Just(";"), Just(","), Just("."), Just("?"), Just(":"),
            Just("+"), Just("-"), Just("*"), Just("/"), Just("%"), Just("="),
            Just("+="), Just("<"), Just(">"), Just("=="), Just("&&"),
            Just("x"), Just("y"), Just("sum"), Just("42"), Just("3.5"),
        ],
        0..60,
    )) {
        let src = tokens.join(" ");
        let _ = parse_codelets(&src);
    }

    /// Simple generated expressions round-trip: print(parse(print(e)))
    /// is stable.
    #[test]
    fn expression_print_is_stable(
        a in 0i64..1000,
        b in 0i64..1000,
        op in prop_oneof![Just("+"), Just("*"), Just("<"), Just("&&"), Just("%")],
    ) {
        let src = format!("(x + {a}) {op} (y * {b})");
        let e1 = parse_expr(&src).unwrap();
        let printed = tangram_ir::print::expr_to_string(&e1);
        let e2 = parse_expr(&printed).unwrap();
        prop_assert_eq!(e1, e2);
    }
}

/// The corpus round-trips byte-stably after one print cycle
/// (idempotent formatting).
#[test]
fn corpus_print_is_idempotent() {
    use tangram_lang::parse_codelets as parse;
    let fig1c = r#"
        __codelet __coop
        float sum(const Array<1,float> in) {
            Vector vthread();
            __shared float tmp[in.Size()];
            float val = 0;
            val = (vthread.ThreadId() < in.Size()) ? in[vthread.ThreadId()] : 0;
            for (int offset = vthread.MaxSize() / 2; offset > 0; offset /= 2) {
                val += ((vthread.LaneId() + offset) < vthread.Size()) ? tmp[vthread.ThreadId() + offset] : 0;
                tmp[vthread.ThreadId()] = val;
            }
            return val;
        }
    "#;
    let c1 = parse(fig1c).unwrap().remove(0);
    let p1 = codelet_to_string(&c1);
    let c2 = parse(&p1).unwrap().remove(0);
    let p2 = codelet_to_string(&c2);
    assert_eq!(p1, p2, "printing must be idempotent");
}
