//! # cpu-ref — CPU reference reduction and OpenMP timing model
//!
//! Two roles in the reproduction:
//!
//! 1. a **correctness oracle**: [`parallel_sum`] is a real
//!    multithreaded chunked reduction (crossbeam scoped threads) used
//!    by the test suite to check every GPU code version;
//! 2. the **OpenMP baseline** of the figures: the paper runs
//!    `#pragma omp parallel for reduction(+)` on an IBM Minsky system
//!    (two dual-socket 8-core 3.5 GHz POWER8+ CPUs, §IV-A). With no
//!    POWER8 available, [`OpenMpModel`] models its time analytically:
//!    a fork/join overhead plus the dominant of SIMD-issue throughput
//!    and memory bandwidth. Its shape is what the figures need: low
//!    fixed cost (wins for tiny arrays), a throughput plateau that
//!    loses badly to GPUs for large arrays.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Sum `data` using `threads` OS threads over disjoint chunks.
///
/// Accumulates in `f64` per chunk for accuracy, returning the `f64`
/// total (callers compare GPU `f32` results against this with an
/// appropriate tolerance).
///
/// # Examples
///
/// ```
/// let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
/// assert_eq!(cpu_ref::parallel_sum(&data, 4), 5050.0);
/// ```
pub fn parallel_sum(data: &[f32], threads: usize) -> f64 {
    let threads = threads.max(1);
    if data.len() < 4096 || threads == 1 {
        return data.iter().map(|&x| f64::from(x)).sum();
    }
    let chunk = data.len().div_ceil(threads);
    let mut partials = vec![0.0f64; threads];
    crossbeam::thread::scope(|s| {
        for (slot, piece) in partials.iter_mut().zip(data.chunks(chunk)) {
            s.spawn(move |_| {
                *slot = piece.iter().map(|&x| f64::from(x)).sum();
            });
        }
    })
    .expect("reduction worker panicked");
    partials.into_iter().sum()
}

/// Sequential Kahan-compensated sum — the highest-accuracy oracle for
/// property tests.
pub fn kahan_sum(data: &[f32]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in data {
        let y = f64::from(x) - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Pack an argmin/argmax candidate the way the GPU kernels do: a
/// monotone `u32` key of the `f32` value in the high half, the
/// bit-complemented index in the low half.
///
/// Taking the `u64`-maximum of packed candidates is then exactly
/// "larger key wins; on equal keys the *smaller* index wins" — the
/// tie-break contract of the argmin/argmax workloads. `for_max`
/// selects the argmax key order; `false` flips it for argmin.
pub fn pack_arg_candidate(value: f32, index: u32, for_max: bool) -> u64 {
    let bits = value.to_bits();
    // Monotone total-order key: flip all bits of negatives, flip only
    // the sign of non-negatives (the classic IEEE-754 sortable map).
    let key = if bits >> 31 == 1 { bits ^ 0xFFFF_FFFF } else { bits ^ 0x8000_0000 };
    // Argmin wants the smallest value to carry the largest key.
    let key = if for_max { key } else { !key };
    (u64::from(key) << 32) | u64::from(index ^ 0xFFFF_FFFF)
}

/// Decode the index from a packed argmin/argmax result (the low-half
/// complement of [`pack_arg_candidate`]).
pub fn unpack_arg_index(packed: u64) -> u32 {
    (packed as u32) ^ 0xFFFF_FFFF
}

/// Reference argmax-with-index oracle: the packed candidate the GPU
/// kernels must produce for `data` (ties resolve to the smallest
/// index, NaN-free corpus assumed). Returns 0 — the packed identity —
/// for empty input.
pub fn argmax_packed(data: &[f32]) -> u64 {
    arg_extreme_packed(data, true)
}

/// Reference argmin-with-index oracle (see [`argmax_packed`]).
pub fn argmin_packed(data: &[f32]) -> u64 {
    arg_extreme_packed(data, false)
}

fn arg_extreme_packed(data: &[f32], for_max: bool) -> u64 {
    data.iter()
        .enumerate()
        .map(|(i, &x)| pack_arg_candidate(x, i as u32, for_max))
        .max()
        .unwrap_or(0)
}

/// Map an element to its histogram bin exactly as the GPU kernels do:
/// truncate toward zero with `cvt.s32.f32` semantics (`f32 as i64`,
/// saturating at the `i64` range like the simulator), wrap into `u32`,
/// add 3, and fold modulo `bins`.
///
/// The +3 offset keeps the all-zeros bench input out of bin 0 without
/// changing the distribution shape.
pub fn histogram_bin(value: f32, bins: u32) -> u32 {
    let truncated = value as i64; // saturating cast, matches the simulator's cvt
    (truncated as u32).wrapping_add(3) % bins.max(1)
}

/// Reference histogram oracle: per-bin `u32` counts of `data` under
/// [`histogram_bin`].
pub fn histogram_ref(data: &[f32], bins: u32) -> Vec<u32> {
    let mut counts = vec![0u32; bins.max(1) as usize];
    for &x in data {
        let bin = histogram_bin(x, bins) as usize;
        counts[bin] = counts[bin].wrapping_add(1);
    }
    counts
}

/// The `u32` element an `f32` corpus value maps to in the
/// `u32`-dtype scan/segsum workloads — the simulator's exact
/// `cvt.s32.f32` truncation (`f32 as i64`, saturating, then the low
/// 32 bits), the same cast [`histogram_bin`] folds over.
pub fn u32_elem(value: f32) -> u32 {
    (value as i64) as u32
}

/// Reference inclusive prefix-sum oracle over `f32`: a strict
/// left-to-right sequential fold. The workload corpus keeps every
/// prefix an integer inside the `f32`-exact range, so any device
/// association produces bit-identical results.
pub fn inclusive_scan_f32(data: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0.0f32;
    for &x in data {
        acc += x;
        out.push(acc);
    }
    out
}

/// Reference exclusive prefix-sum oracle over `f32` (see
/// [`inclusive_scan_f32`]): `out[i] = Σ_{j<i} data[j]`, `out[0] = 0`.
pub fn exclusive_scan_f32(data: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0.0f32;
    for &x in data {
        out.push(acc);
        acc += x;
    }
    out
}

/// Reference inclusive prefix-sum oracle over the `u32` elements of
/// an `f32` corpus ([`u32_elem`], wrapping addition — exact under any
/// association).
pub fn inclusive_scan_u32(data: &[f32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u32;
    for &x in data {
        acc = acc.wrapping_add(u32_elem(x));
        out.push(acc);
    }
    out
}

/// Reference exclusive prefix-sum oracle over `u32` elements (see
/// [`inclusive_scan_u32`]).
pub fn exclusive_scan_u32(data: &[f32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u32;
    for &x in data {
        out.push(acc);
        acc = acc.wrapping_add(u32_elem(x));
    }
    out
}

/// Reference segmented-sum oracle over `f32`: `out[s] = Σ data[i]`
/// over elements with `ids[i] == s`. `ids` must cover `data` and be
/// sorted ascending starting at 0; the output has `ids.last() + 1`
/// slots (empty for empty input).
pub fn segsum_f32(data: &[f32], ids: &[u32]) -> Vec<f32> {
    assert!(ids.len() >= data.len(), "segment descriptor shorter than data");
    let nsegs = if data.is_empty() { 0 } else { ids[data.len() - 1] as usize + 1 };
    let mut out = vec![0.0f32; nsegs];
    for (&x, &s) in data.iter().zip(ids) {
        out[s as usize] += x;
    }
    out
}

/// Reference segmented-sum oracle over `u32` elements of an `f32`
/// corpus (see [`segsum_f32`] and [`u32_elem`]).
pub fn segsum_u32(data: &[f32], ids: &[u32]) -> Vec<u32> {
    assert!(ids.len() >= data.len(), "segment descriptor shorter than data");
    let nsegs = if data.is_empty() { 0 } else { ids[data.len() - 1] as usize + 1 };
    let mut out = vec![0u32; nsegs];
    for (&x, &s) in data.iter().zip(ids) {
        out[s as usize] = out[s as usize].wrapping_add(u32_elem(x));
    }
    out
}

/// Analytic model of the paper's OpenMP 4.0 baseline on the POWER8+
/// system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenMpModel {
    /// Worker cores used by the parallel region.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Elements reduced per cycle per core (VSX SIMD width × issue).
    pub elems_per_cycle: f64,
    /// Fork/join plus scheduling overhead per parallel region (ns).
    pub fork_join_ns: f64,
    /// Sustained memory bandwidth in GB/s (large arrays stream from
    /// DRAM).
    pub mem_bw_gbps: f64,
    /// Retained for configurations that gate the parallel region on
    /// size (`#pragma omp parallel if(n > cutoff)`); the paper's code
    /// has no such clause, so the default model ignores it.
    pub serial_cutoff: u64,
}

impl Default for OpenMpModel {
    fn default() -> Self {
        Self::power8_minsky()
    }
}

impl OpenMpModel {
    /// The §IV-A system: 2 × dual-socket 8-core 3.5 GHz POWER8+
    /// (16 worker cores), gcc 5.4, OpenMP 4.0.
    pub fn power8_minsky() -> Self {
        OpenMpModel {
            cores: 16,
            clock_ghz: 3.5,
            elems_per_cycle: 4.0,
            fork_join_ns: 5_500.0,
            mem_bw_gbps: 115.0,
            serial_cutoff: 2_048,
        }
    }

    /// Modelled wall time to reduce `n` `f32` elements.
    ///
    /// The parallel region always forks (the paper's pragma carries no
    /// `if` clause), so tiny arrays pay the full fork/join cost — this
    /// is what makes the OpenMP baseline ≈4× faster than CUB yet only
    /// ≈2× faster than a single Tangram kernel launch on small arrays
    /// (§IV-C1).
    pub fn time_ns(&self, n: u64) -> f64 {
        let bytes = n as f64 * 4.0;
        let compute_ns =
            n as f64 / (f64::from(self.cores) * self.elems_per_cycle * self.clock_ghz);
        let memory_ns = bytes / self.mem_bw_gbps;
        self.fork_join_ns + compute_ns.max(memory_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let data: Vec<f32> = (0..100_000).map(|i| ((i % 13) as f32) - 2.5).collect();
        let seq: f64 = data.iter().map(|&x| f64::from(x)).sum();
        for threads in [1, 2, 4, 8] {
            let par = parallel_sum(&data, threads);
            assert!((par - seq).abs() < 1e-6, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_stay_sequential() {
        let data = vec![1.5f32; 100];
        assert_eq!(parallel_sum(&data, 8), 150.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(parallel_sum(&[], 4), 0.0);
        assert_eq!(kahan_sum(&[]), 0.0);
    }

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // Large value plus many small ones: naive f32 drops them.
        let mut data = vec![1e8f32];
        data.extend(std::iter::repeat_n(0.01f32, 10_000));
        let k = kahan_sum(&data);
        assert!((k - (1e8 + 100.0)).abs() < 1.0);
    }

    #[test]
    fn packed_arg_orders_values_then_breaks_ties_low() {
        // Packed comparison must agree with value comparison across
        // sign boundaries...
        let samples = [-1e30f32, -2.5, -0.0, 0.0, 1e-20, 2.5, 1e30];
        for (i, &a) in samples.iter().enumerate() {
            for &b in &samples[i + 1..] {
                assert!(
                    pack_arg_candidate(a, 0, true) <= pack_arg_candidate(b, 0, true),
                    "argmax order broken for {a} vs {b}"
                );
                assert!(
                    pack_arg_candidate(a, 0, false) >= pack_arg_candidate(b, 0, false),
                    "argmin order broken for {a} vs {b}"
                );
            }
        }
        // ...and on equal values the smaller index must pack larger.
        for for_max in [true, false] {
            assert!(
                pack_arg_candidate(7.0, 3, for_max) > pack_arg_candidate(7.0, 9, for_max)
            );
        }
        assert_eq!(unpack_arg_index(pack_arg_candidate(-3.25, 1234, true)), 1234);
    }

    #[test]
    fn arg_oracles_pick_extremes_and_first_ties() {
        let data = [3.0f32, -7.5, 9.0, 9.0, -7.5, 0.25];
        assert_eq!(unpack_arg_index(argmax_packed(&data)), 2);
        assert_eq!(unpack_arg_index(argmin_packed(&data)), 1);
        assert_eq!(argmax_packed(&[]), 0);
        assert_eq!(argmin_packed(&[]), 0);
    }

    #[test]
    fn histogram_counts_every_element_once() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32) * 0.75 - 200.0).collect();
        for bins in [2u32, 16, 64] {
            let counts = histogram_ref(&data, bins);
            assert_eq!(counts.len(), bins as usize);
            assert_eq!(counts.iter().map(|&c| u64::from(c)).sum::<u64>(), 1000);
        }
        // Negative values truncate toward zero then wrap mod bins —
        // spot-check the exact bin of a few elements.
        assert_eq!(histogram_bin(0.0, 64), 3);
        assert_eq!(histogram_bin(-1.9, 64), 2); // trunc -1 → wrap+3
        assert_eq!(histogram_bin(61.0, 64), 0);
    }

    #[test]
    fn scan_oracles_agree_and_shift() {
        let data = [3.0f32, -7.5, 9.0, 0.25, -2.0];
        let incl = inclusive_scan_f32(&data);
        let excl = exclusive_scan_f32(&data);
        assert_eq!(incl.len(), 5);
        assert_eq!(excl[0], 0.0);
        // excl is incl shifted right by one element.
        assert_eq!(&excl[1..], &incl[..4]);
        assert_eq!(inclusive_scan_f32(&[]), Vec::<f32>::new());
        // u32 oracle wraps: truncation of -7.5 is huge as u32.
        let u = inclusive_scan_u32(&data);
        assert_eq!(u[0], 3);
        assert_eq!(u[1], 3u32.wrapping_add((-7i64) as u32));
        let ue = exclusive_scan_u32(&data);
        assert_eq!(ue[0], 0);
        assert_eq!(&ue[1..], &u[..4]);
    }

    #[test]
    fn segsum_oracles_split_by_descriptor() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let ids = [0u32, 0, 1, 2, 2];
        assert_eq!(segsum_f32(&data, &ids), vec![3.0, 3.0, 9.0]);
        assert_eq!(segsum_u32(&data, &ids), vec![3, 3, 9]);
        // One segment and all-length-1 edges.
        assert_eq!(segsum_f32(&data, &[0; 5]), vec![15.0]);
        assert_eq!(segsum_f32(&data, &[0, 1, 2, 3, 4]), data.to_vec());
        assert_eq!(segsum_f32(&[], &[]), Vec::<f32>::new());
    }

    #[test]
    fn model_shapes() {
        let m = OpenMpModel::power8_minsky();
        // Tiny arrays pay the fork/join, nothing else.
        assert!(m.time_ns(64) < 1.2 * m.fork_join_ns);
        // Medium: fork/join dominates.
        let t64k = m.time_ns(65_536);
        assert!(t64k > m.fork_join_ns && t64k < 2.5 * m.fork_join_ns);
        // Large: memory-bandwidth bound and roughly linear.
        let t64m = m.time_ns(64 << 20);
        let t256m = m.time_ns(256 << 20);
        assert!(t256m / t64m > 3.5 && t256m / t64m < 4.5);
        let bw_ns = (256u64 << 20) as f64 * 4.0 / m.mem_bw_gbps;
        assert!((t256m - bw_ns) / bw_ns < 0.05);
    }

    #[test]
    fn model_is_monotone() {
        let m = OpenMpModel::power8_minsky();
        let sizes = [64u64, 256, 1024, 4096, 16_384, 262_144, 1 << 20, 1 << 24];
        for w in sizes.windows(2) {
            assert!(m.time_ns(w[0]) <= m.time_ns(w[1]), "{} vs {}", w[0], w[1]);
        }
    }
}
