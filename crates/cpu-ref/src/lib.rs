//! # cpu-ref — CPU reference reduction and OpenMP timing model
//!
//! Two roles in the reproduction:
//!
//! 1. a **correctness oracle**: [`parallel_sum`] is a real
//!    multithreaded chunked reduction (crossbeam scoped threads) used
//!    by the test suite to check every GPU code version;
//! 2. the **OpenMP baseline** of the figures: the paper runs
//!    `#pragma omp parallel for reduction(+)` on an IBM Minsky system
//!    (two dual-socket 8-core 3.5 GHz POWER8+ CPUs, §IV-A). With no
//!    POWER8 available, [`OpenMpModel`] models its time analytically:
//!    a fork/join overhead plus the dominant of SIMD-issue throughput
//!    and memory bandwidth. Its shape is what the figures need: low
//!    fixed cost (wins for tiny arrays), a throughput plateau that
//!    loses badly to GPUs for large arrays.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Sum `data` using `threads` OS threads over disjoint chunks.
///
/// Accumulates in `f64` per chunk for accuracy, returning the `f64`
/// total (callers compare GPU `f32` results against this with an
/// appropriate tolerance).
///
/// # Examples
///
/// ```
/// let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
/// assert_eq!(cpu_ref::parallel_sum(&data, 4), 5050.0);
/// ```
pub fn parallel_sum(data: &[f32], threads: usize) -> f64 {
    let threads = threads.max(1);
    if data.len() < 4096 || threads == 1 {
        return data.iter().map(|&x| f64::from(x)).sum();
    }
    let chunk = data.len().div_ceil(threads);
    let mut partials = vec![0.0f64; threads];
    crossbeam::thread::scope(|s| {
        for (slot, piece) in partials.iter_mut().zip(data.chunks(chunk)) {
            s.spawn(move |_| {
                *slot = piece.iter().map(|&x| f64::from(x)).sum();
            });
        }
    })
    .expect("reduction worker panicked");
    partials.into_iter().sum()
}

/// Sequential Kahan-compensated sum — the highest-accuracy oracle for
/// property tests.
pub fn kahan_sum(data: &[f32]) -> f64 {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for &x in data {
        let y = f64::from(x) - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Analytic model of the paper's OpenMP 4.0 baseline on the POWER8+
/// system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenMpModel {
    /// Worker cores used by the parallel region.
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Elements reduced per cycle per core (VSX SIMD width × issue).
    pub elems_per_cycle: f64,
    /// Fork/join plus scheduling overhead per parallel region (ns).
    pub fork_join_ns: f64,
    /// Sustained memory bandwidth in GB/s (large arrays stream from
    /// DRAM).
    pub mem_bw_gbps: f64,
    /// Retained for configurations that gate the parallel region on
    /// size (`#pragma omp parallel if(n > cutoff)`); the paper's code
    /// has no such clause, so the default model ignores it.
    pub serial_cutoff: u64,
}

impl Default for OpenMpModel {
    fn default() -> Self {
        Self::power8_minsky()
    }
}

impl OpenMpModel {
    /// The §IV-A system: 2 × dual-socket 8-core 3.5 GHz POWER8+
    /// (16 worker cores), gcc 5.4, OpenMP 4.0.
    pub fn power8_minsky() -> Self {
        OpenMpModel {
            cores: 16,
            clock_ghz: 3.5,
            elems_per_cycle: 4.0,
            fork_join_ns: 5_500.0,
            mem_bw_gbps: 115.0,
            serial_cutoff: 2_048,
        }
    }

    /// Modelled wall time to reduce `n` `f32` elements.
    ///
    /// The parallel region always forks (the paper's pragma carries no
    /// `if` clause), so tiny arrays pay the full fork/join cost — this
    /// is what makes the OpenMP baseline ≈4× faster than CUB yet only
    /// ≈2× faster than a single Tangram kernel launch on small arrays
    /// (§IV-C1).
    pub fn time_ns(&self, n: u64) -> f64 {
        let bytes = n as f64 * 4.0;
        let compute_ns =
            n as f64 / (f64::from(self.cores) * self.elems_per_cycle * self.clock_ghz);
        let memory_ns = bytes / self.mem_bw_gbps;
        self.fork_join_ns + compute_ns.max(memory_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let data: Vec<f32> = (0..100_000).map(|i| ((i % 13) as f32) - 2.5).collect();
        let seq: f64 = data.iter().map(|&x| f64::from(x)).sum();
        for threads in [1, 2, 4, 8] {
            let par = parallel_sum(&data, threads);
            assert!((par - seq).abs() < 1e-6, "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_stay_sequential() {
        let data = vec![1.5f32; 100];
        assert_eq!(parallel_sum(&data, 8), 150.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(parallel_sum(&[], 4), 0.0);
        assert_eq!(kahan_sum(&[]), 0.0);
    }

    #[test]
    fn kahan_beats_naive_on_cancellation() {
        // Large value plus many small ones: naive f32 drops them.
        let mut data = vec![1e8f32];
        data.extend(std::iter::repeat_n(0.01f32, 10_000));
        let k = kahan_sum(&data);
        assert!((k - (1e8 + 100.0)).abs() < 1.0);
    }

    #[test]
    fn model_shapes() {
        let m = OpenMpModel::power8_minsky();
        // Tiny arrays pay the fork/join, nothing else.
        assert!(m.time_ns(64) < 1.2 * m.fork_join_ns);
        // Medium: fork/join dominates.
        let t64k = m.time_ns(65_536);
        assert!(t64k > m.fork_join_ns && t64k < 2.5 * m.fork_join_ns);
        // Large: memory-bandwidth bound and roughly linear.
        let t64m = m.time_ns(64 << 20);
        let t256m = m.time_ns(256 << 20);
        assert!(t256m / t64m > 3.5 && t256m / t64m < 4.5);
        let bw_ns = (256u64 << 20) as f64 * 4.0 / m.mem_bw_gbps;
        assert!((t256m - bw_ns) / bw_ns < 0.05);
    }

    #[test]
    fn model_is_monotone() {
        let m = OpenMpModel::power8_minsky();
        let sizes = [64u64, 256, 1024, 4096, 16_384, 262_144, 1 << 20, 1 << 24];
        for w in sizes.windows(2) {
            assert!(m.time_ns(w[0]) <= m.time_ns(w[1]), "{} vs {}", w[0], w[1]);
        }
    }
}
