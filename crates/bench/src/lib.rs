//! # tangram-bench — the figure/table regeneration harness
//!
//! Produces the data behind every evaluation artifact of the paper
//! (§IV): the search-space table (§IV-B), the Fig. 6 composition, and
//! the speedup-over-CUB series of Figs. 7–10.
//!
//! All times are modelled nanoseconds from the `gpu-sim` cost models —
//! deterministic and hardware-independent. Large arrays are measured
//! with sampled block execution (see `gpu_sim::exec::BlockSelection`);
//! correctness of every version is established separately by the test
//! suite at exact sizes.

#![warn(missing_docs)]

pub mod cli;

use std::collections::HashMap;

use cpu_ref::OpenMpModel;
use gpu_baselines::{CubReduce, KokkosReduce};
use gpu_sim::exec::BlockSelection;
use gpu_sim::profile::{LaunchProfile, Trace};
use gpu_sim::{
    negative_corpus, run_negative, ArchConfig, Device, ExecMode, NegativeKernel, RaceReport,
    SimError,
};
use serde::{Deserialize, Serialize, Value};
use tangram::api::CandidateRaces;
use tangram::evaluate::EvalOptions;
use tangram::metrics::{CacheMetrics, SanitizeSummary, StoreSummary, SweepMetrics};
use tangram::resilience::{ResilienceOptions, ResilienceReport};
use tangram::select::{select_best_report, select_best_with, SelectionRow};
use tangram::Session;
use tangram_passes::planner;

/// One point of a Fig. 7–10 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigurePoint {
    /// Array size (32-bit elements).
    pub n: u64,
    /// Best Tangram version's modelled time (ns).
    pub tangram_ns: f64,
    /// The winning version (display string).
    pub version: String,
    /// Fig. 6 label of the winner, when applicable.
    pub fig6_label: Option<char>,
    /// Winning tuning (block size, coarsening).
    pub tuning: (u32, u32),
    /// CUB baseline time (ns).
    pub cub_ns: f64,
    /// Kokkos baseline time (ns).
    pub kokkos_ns: f64,
    /// OpenMP (POWER8 model) time (ns).
    pub openmp_ns: f64,
}

impl FigurePoint {
    /// Speedup of the best Tangram version over CUB (the figures'
    /// y-axis; >1 = Tangram faster).
    pub fn tangram_speedup(&self) -> f64 {
        self.cub_ns / self.tangram_ns
    }

    /// Speedup of Kokkos over CUB.
    pub fn kokkos_speedup(&self) -> f64 {
        self.cub_ns / self.kokkos_ns
    }

    /// Speedup of OpenMP over CUB.
    pub fn openmp_speedup(&self) -> f64 {
        self.cub_ns / self.openmp_ns
    }
}

/// A complete per-architecture series (Figs. 8/9/10; Fig. 7 combines
/// the Tangram series of all three).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchSeries {
    /// Architecture identifier (`kepler`/`maxwell`/`pascal`).
    pub arch: String,
    /// Points, one per array size.
    pub points: Vec<FigurePoint>,
}

/// Measure the CUB baseline at size `n` (modelled ns).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_cub(arch: &ArchConfig, n: u64) -> Result<f64, SimError> {
    let cub = CubReduce::new();
    let mut dev = Device::new(arch.clone());
    let input = dev.alloc_f32(n)?;
    let selection = selection_for(cub.grid_for(n));
    dev.reset_clock();
    cub.run(&mut dev, input, n, selection)?;
    Ok(dev.elapsed_ns())
}

/// Measure the Kokkos baseline at size `n` (modelled ns).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_kokkos(arch: &ArchConfig, n: u64) -> Result<f64, SimError> {
    let kokkos = KokkosReduce::new();
    let mut dev = Device::new(arch.clone());
    let input = dev.alloc_f32(n)?;
    let selection = selection_for((n / 1024).clamp(1, 2048) as u32);
    dev.reset_clock();
    kokkos.run(&mut dev, input, n, selection)?;
    Ok(dev.elapsed_ns())
}

fn selection_for(grid: u32) -> BlockSelection {
    if grid > 64 {
        BlockSelection::Sample { max_blocks: 6 }
    } else {
        BlockSelection::All
    }
}

/// Memoized baseline measurements, keyed by `(arch id, n)`.
///
/// Fig. 7 is assembled from the same per-architecture series as
/// Figs. 8–10, and every figure shares one size grid — so CUB, Kokkos
/// and the OpenMP model are each measured once per `(arch, n)` and
/// reused, instead of once per figure.
#[derive(Debug, Default)]
pub struct BaselineCache {
    cub: HashMap<(String, u64), f64>,
    kokkos: HashMap<(String, u64), f64>,
    openmp: HashMap<u64, f64>,
    stats: CacheMetrics,
}

impl BaselineCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// CUB time at `(arch, n)`, measured on first use.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn cub(&mut self, arch: &ArchConfig, n: u64) -> Result<f64, SimError> {
        if let Some(&t) = self.cub.get(&(arch.id.clone(), n)) {
            self.stats.record(true);
            return Ok(t);
        }
        self.stats.record(false);
        let t = measure_cub(arch, n)?;
        self.cub.insert((arch.id.clone(), n), t);
        Ok(t)
    }

    /// Kokkos time at `(arch, n)`, measured on first use.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn kokkos(&mut self, arch: &ArchConfig, n: u64) -> Result<f64, SimError> {
        if let Some(&t) = self.kokkos.get(&(arch.id.clone(), n)) {
            self.stats.record(true);
            return Ok(t);
        }
        self.stats.record(false);
        let t = measure_kokkos(arch, n)?;
        self.kokkos.insert((arch.id.clone(), n), t);
        Ok(t)
    }

    /// OpenMP (POWER8 model) time at `n` — architecture-independent.
    pub fn openmp(&mut self, n: u64) -> f64 {
        self.stats.record(self.openmp.contains_key(&n));
        *self.openmp.entry(n).or_insert_with(|| OpenMpModel::power8_minsky().time_ns(n))
    }

    /// Hit/miss accounting across every baseline lookup so far.
    pub fn metrics(&self) -> CacheMetrics {
        self.stats
    }
}

/// Produce the figure series for one architecture over `sizes`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn arch_series(arch: &ArchConfig, sizes: &[u64]) -> Result<ArchSeries, SimError> {
    arch_series_with(arch, sizes, &EvalOptions::default(), &mut BaselineCache::new())
}

/// [`arch_series`] with an explicit evaluation-engine configuration
/// and a shared [`BaselineCache`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn arch_series_with(
    arch: &ArchConfig,
    sizes: &[u64],
    opts: &EvalOptions,
    baselines: &mut BaselineCache,
) -> Result<ArchSeries, SimError> {
    let mut points = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (_tuned, row): (_, SelectionRow) = select_best_with(arch, n, opts)?;
        let cub_ns = baselines.cub(arch, n)?;
        let kokkos_ns = baselines.kokkos(arch, n)?;
        points.push(FigurePoint {
            n,
            tangram_ns: row.time_ns,
            version: row.version.to_string(),
            fig6_label: row.fig6_label,
            tuning: (row.block_size, row.coarsen),
            cub_ns,
            kokkos_ns,
            openmp_ns: baselines.openmp(n),
        });
    }
    Ok(ArchSeries { arch: arch.id.clone(), points })
}

/// [`arch_series_with`] under a resilience policy: candidates that
/// trap, time out, or fail the oracle are quarantined per size instead
/// of aborting the series, and the per-size [`ResilienceReport`]s are
/// merged into one. Winners are bit-identical to [`arch_series_with`]
/// whenever every candidate survives.
///
/// # Errors
///
/// Fails when a size has no surviving candidate, on context-pool
/// allocation failure, or on baseline measurement errors.
pub fn arch_series_report(
    arch: &ArchConfig,
    sizes: &[u64],
    opts: &EvalOptions,
    res: &ResilienceOptions,
    baselines: &mut BaselineCache,
) -> Result<(ArchSeries, ResilienceReport), SimError> {
    let candidates = planner::enumerate_pruned();
    let mut points = Vec::with_capacity(sizes.len());
    let mut merged = ResilienceReport::default();
    for &n in sizes {
        let (_tuned, row, report) = select_best_report(arch, n, &candidates, opts, res)?;
        merged.merge(report);
        let cub_ns = baselines.cub(arch, n)?;
        let kokkos_ns = baselines.kokkos(arch, n)?;
        points.push(FigurePoint {
            n,
            tangram_ns: row.time_ns,
            version: row.version.to_string(),
            fig6_label: row.fig6_label,
            tuning: (row.block_size, row.coarsen),
            cub_ns,
            kokkos_ns,
            openmp_ns: baselines.openmp(n),
        });
    }
    Ok((ArchSeries { arch: arch.id.clone(), points }, merged))
}

/// Everything one [`arch_series_session`] run produces beyond the
/// figure points themselves: merged job accounting, per-size sweep
/// metrics, the last profiled winner's scheduler trace, and the last
/// sanitizer screen's per-candidate race reports.
#[derive(Debug)]
pub struct SeriesReport {
    /// The figure series (bit-identical to [`arch_series_with`] under
    /// the same engine options).
    pub series: ArchSeries,
    /// Per-size job accounting merged into one report.
    pub resilience: ResilienceReport,
    /// Per-size sweep metrics, in input order.
    pub metrics: Vec<SweepMetrics>,
    /// Scheduler trace of the last (largest-size) profiled winner;
    /// `None` when the session does not profile.
    pub trace: Option<Trace>,
    /// Per-candidate race reports of the last size's sanitizer screen;
    /// `None` when the session does not sanitize. (The screen caps its
    /// array size, so the reports are identical across sizes.)
    pub races: Option<Vec<CandidateRaces>>,
}

/// The figure series plus observability, driven by a configured
/// [`Session`]: per-size sweep metrics ride along, job accounting is
/// merged across sizes, and — when the session profiles — the
/// scheduler [`Trace`] of the last (largest-size) winner is returned
/// for Chrome `trace_event` export. The points are bit-identical to
/// [`arch_series_with`] / [`arch_series_report`] under the same
/// options: profiling re-runs winners and sanitizing screens
/// candidates on scratch devices; neither re-selects winners.
///
/// # Errors
///
/// Propagates simulator errors; fails when a size has no surviving
/// candidate or on baseline measurement errors.
pub fn arch_series_session(
    session: &Session,
    sizes: &[u64],
    baselines: &mut BaselineCache,
) -> Result<SeriesReport, SimError> {
    let arch = session.arch().clone();
    let candidates = planner::enumerate_pruned();
    let mut points = Vec::with_capacity(sizes.len());
    let mut metrics = Vec::with_capacity(sizes.len());
    let mut merged = ResilienceReport::default();
    let mut trace = None;
    let mut races = None;
    for &n in sizes {
        let report = session.select_best_of(n, &candidates)?;
        merged.merge(report.resilience);
        metrics.push(report.metrics);
        if report.trace.is_some() {
            trace = report.trace;
        }
        if report.races.is_some() {
            races = report.races;
        }
        let row = report.row;
        let cub_ns = baselines.cub(&arch, n)?;
        let kokkos_ns = baselines.kokkos(&arch, n)?;
        points.push(FigurePoint {
            n,
            tangram_ns: row.time_ns,
            version: row.version.to_string(),
            fig6_label: row.fig6_label,
            tuning: (row.block_size, row.coarsen),
            cub_ns,
            kokkos_ns,
            openmp_ns: baselines.openmp(n),
        });
    }
    Ok(SeriesReport {
        series: ArchSeries { arch: arch.id.clone(), points },
        resilience: merged,
        metrics,
        trace,
        races,
    })
}

/// Human-readable one-liner of a winner's dynamic counters, shared by
/// the `sweep` and `figures` bins (`profile: kernel=… issues=… …`).
/// The counters come straight from the site totals; `exact=false`
/// marks a block-sampled launch whose counts cover only the sample.
pub fn profile_summary_line(p: &LaunchProfile) -> String {
    let (mut issues, mut divergent, mut conflicts, mut atomics, mut txns) = (0, 0, 0, 0, 0);
    for s in &p.sites {
        issues += s.issues;
        divergent += s.divergent_issues;
        conflicts += s.shared_bank_conflicts;
        atomics += s.atomic_ops;
        txns += s.global_transactions;
    }
    format!(
        "profile: kernel={} exact={} issues={} divergent={} bank_conflicts={} atomic_ops={} atomic_serial={} shuffles={} gmem_txn={}",
        p.kernel,
        p.exact,
        issues,
        divergent,
        conflicts,
        atomics,
        p.total_atomic_serial(),
        p.total_shuffle_exchanges(),
        txns
    )
}

/// Human-readable one-liner of a sweep's race-sanitizer screen,
/// shared by the `sweep` and `figures` bins.
pub fn sanitize_summary_line(s: &SanitizeSummary) -> String {
    format!(
        "sanitize: candidates={} racy={} findings={} occurrences={}",
        s.candidates, s.racy, s.findings, s.occurrences
    )
}

/// Human-readable one-liner of a sweep's tuning-store outcome, shared
/// by the `sweep` and `figures` bins. The verify script greps
/// `outcome=warm` off this line; keep the `key=`/`outcome=`/`saved=`
/// tokens stable.
pub fn cache_summary_line(s: &StoreSummary) -> String {
    let mut line = format!(
        "cache: mode={} key={} outcome={} warm={} saved={}",
        s.mode, s.key, s.outcome, s.warm, s.saved
    );
    if let Some(detail) = &s.detail {
        line.push_str(&format!(" detail=[{detail}]"));
    }
    line
}

/// Aggregated tuning-store one-liner for a multi-size series (the
/// `figures` bin sweeps one session across many sizes): outcome
/// counts over every sweep that consulted the store, or `None` when
/// no store was configured.
pub fn cache_series_line(metrics: &[SweepMetrics]) -> Option<String> {
    let stores: Vec<&StoreSummary> = metrics.iter().filter_map(|m| m.store.as_ref()).collect();
    let first = stores.first()?;
    let warm = stores.iter().filter(|s| s.warm).count();
    let saved = stores.iter().filter(|s| s.saved).count();
    let invalid = stores.iter().filter(|s| s.outcome == "invalid").count();
    Some(format!(
        "cache: mode={} sweeps={} warm={} saved={} invalid={}",
        first.mode,
        stores.len(),
        warm,
        saved,
        invalid
    ))
}

/// Run the deliberately-racy negative corpus through the sanitizer on
/// `arch` (default interpreter hot path) and return each kernel with
/// its race report — the bins' `--seed-racy` smoke mode. Every kernel
/// of the corpus races by construction, so a sanitizer that returns an
/// all-clean vector here is broken.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn seeded_racy_reports(
    arch: &ArchConfig,
) -> Result<Vec<(NegativeKernel, RaceReport)>, SimError> {
    negative_corpus()
        .into_iter()
        .map(|nk| {
            let report = run_negative(arch, ExecMode::default(), &nk)?;
            Ok((nk, report))
        })
        .collect()
}

/// Assemble the `--sanitize-json` payload: one entry per sanitizer
/// screen (`(arch id, n, per-candidate reports)`), plus — under
/// `--seed-racy` — the seeded negative-corpus reports with their
/// expected findings.
///
/// # Errors
///
/// Propagates the serializer's error (instead of swallowing it into
/// an `{"error": …}` payload) so the bins can die with a typed CLI
/// message.
pub fn sanitize_json(
    screens: &[(String, u64, Vec<CandidateRaces>)],
    seeded: &[(NegativeKernel, RaceReport)],
) -> Result<String, serde_json::Error> {
    let screen_entries: Vec<Value> = screens
        .iter()
        .map(|(arch, n, candidates)| {
            Value::Map(vec![
                ("arch".to_string(), arch.to_value()),
                ("n".to_string(), n.to_value()),
                ("candidates".to_string(), candidates.to_value()),
            ])
        })
        .collect();
    let seeded_entries: Vec<Value> = seeded
        .iter()
        .map(|(nk, report)| {
            Value::Map(vec![
                ("label".to_string(), nk.label.to_value()),
                ("expect".to_string(), nk.expect.label().to_value()),
                ("expect_pc".to_string(), (nk.expect_pc as u64).to_value()),
                ("report".to_string(), report.to_value()),
            ])
        })
        .collect();
    let map = vec![
        ("screens".to_string(), Value::Seq(screen_entries)),
        ("seeded".to_string(), Value::Seq(seeded_entries)),
    ];
    serde_json::to_string_pretty(&Value::Map(map))
}

/// Geometric mean of the Tangram-over-CUB speedups in a series
/// (the paper's "2× on average").
pub fn geomean_speedup(points: &[FigurePoint]) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = points.iter().map(|p| p.tangram_speedup().ln()).sum();
    (log_sum / points.len() as f64).exp()
}

/// Maximum Tangram-over-CUB speedup (the paper's "up to 7.8×").
pub fn max_speedup(points: &[FigurePoint]) -> f64 {
    points.iter().map(FigurePoint::tangram_speedup).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cache_measures_once_per_arch_and_size() {
        let arch = ArchConfig::pascal_p100();
        let mut cache = BaselineCache::new();
        let first = cache.cub(&arch, 2048).unwrap();
        assert_eq!(cache.cub.len(), 1);
        let again = cache.cub(&arch, 2048).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        assert_eq!(cache.cub.len(), 1, "repeat lookup must not re-measure");
        // A different architecture is a distinct key.
        cache.cub(&ArchConfig::kepler_k40c(), 2048).unwrap();
        assert_eq!(cache.cub.len(), 2);
        assert_eq!(cache.openmp(2048).to_bits(), cache.openmp(2048).to_bits());
    }

    #[test]
    fn cache_metrics_count_hits_and_misses() {
        let arch = ArchConfig::maxwell_gtx980();
        let mut cache = BaselineCache::new();
        cache.cub(&arch, 1024).unwrap();
        cache.cub(&arch, 1024).unwrap();
        cache.openmp(1024);
        cache.openmp(1024);
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses), (2, 2));
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn session_series_matches_free_function_series() {
        let arch = ArchConfig::maxwell_gtx980();
        let sizes = [1024, 16_384];
        let opts = EvalOptions::serial();
        let free =
            arch_series_with(&arch, &sizes, &opts, &mut BaselineCache::new()).unwrap();
        let session = Session::new(arch).eval(opts).profiled(true);
        let rep = arch_series_session(&session, &sizes, &mut BaselineCache::new()).unwrap();
        for (a, b) in free.points.iter().zip(&rep.series.points) {
            assert_eq!(a.version, b.version);
            assert_eq!(a.tangram_ns.to_bits(), b.tangram_ns.to_bits());
            assert_eq!(a.cub_ns.to_bits(), b.cub_ns.to_bits());
        }
        assert_eq!(rep.metrics.len(), sizes.len());
        assert!(rep.metrics.iter().all(|m| m.winner_profile.is_some()));
        assert!(rep.resilience.total_jobs > 0);
        assert!(rep.trace.is_some(), "profiled sessions return the last winner's trace");
        assert!(rep.races.is_none(), "unsanitized sessions record no race reports");
    }

    #[test]
    fn baselines_measure_positively() {
        let arch = ArchConfig::maxwell_gtx980();
        let cub = measure_cub(&arch, 4096).unwrap();
        let kokkos = measure_kokkos(&arch, 4096).unwrap();
        assert!(cub > 0.0 && kokkos > 0.0);
        // CUB pays two launches plus host overhead at tiny sizes.
        assert!(cub > 2.0 * arch.launch_overhead_ns);
    }

    #[test]
    fn geomean_of_unit_speedups_is_one() {
        let p = |s: f64| FigurePoint {
            n: 1,
            tangram_ns: 1.0 / s,
            version: String::new(),
            fig6_label: None,
            tuning: (0, 0),
            cub_ns: 1.0,
            kokkos_ns: 1.0,
            openmp_ns: 1.0,
        };
        let pts = vec![p(2.0), p(0.5)];
        assert!((geomean_speedup(&pts) - 1.0).abs() < 1e-12);
        assert!((max_speedup(&pts) - 2.0).abs() < 1e-12);
    }
}
