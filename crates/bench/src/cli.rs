//! Shared command-line parsing for the `sweep` and `figures` bins.
//!
//! Both binaries accept the same engine and observability flags; this
//! module declares each flag once — name, arity, parse, and help line
//! — so the bins differ only in which flags they enable, their usage
//! banner, and whether bare words (subcommands) are allowed.
//!
//! Parse errors never fall back to defaults: a present flag with a
//! missing or malformed value, and any unknown `--flag`, print the
//! program's usage to stderr and exit(1), exactly like the previous
//! per-bin parsers.

use std::time::Duration;

use gpu_sim::ExecMode;
use tangram::evaluate::{default_threads, EvalOptions, SweepMode};
use tangram::resilience::ResilienceOptions;
use tangram::store::CacheMode;
use tangram::WorkloadKey;

/// Every flag any binary understands. `value` is true when the
/// flag consumes the next argument (the switches take none).
const FLAGS: [(&str, bool); 28] = [
    ("--n", true),
    ("--max-size", true),
    ("--arch", true),
    ("--workload", true),
    ("--repeat", true),
    ("--threads", true),
    ("--sweep-mode", true),
    ("--interp", true),
    ("--instr-budget", true),
    ("--json", true),
    ("--fault-seed", true),
    ("--fault-rate", true),
    ("--profile", false),
    ("--trace-out", true),
    ("--metrics-json", true),
    ("--sanitize", false),
    ("--sanitize-json", true),
    ("--seed-racy", false),
    ("--cache-dir", true),
    ("--cache", true),
    ("--socket", true),
    ("--workers", true),
    ("--max-queue", true),
    ("--tenant-cap", true),
    ("--queue-wait", true),
    ("--tenant", true),
    ("--count", true),
    ("--concurrent", false),
];

/// Typed result of parsing one command line. Fields are `None` when
/// the flag was absent; accessors apply the shared defaults.
#[derive(Debug, Clone, Default)]
pub struct CliOpts {
    /// Non-flag words in order (the `figures` subcommand).
    pub bare: Vec<String>,
    /// `--n`: array size in elements.
    pub n: Option<u64>,
    /// `--max-size`: largest array size swept.
    pub max_size: Option<u64>,
    /// `--arch`: architecture identifier.
    pub arch: Option<String>,
    /// `--workload`: the typed workload to tune (`sum`, `argmax`,
    /// `hist64`, …); absent means the classic `sum-f32` sweep.
    pub workload: Option<WorkloadKey>,
    /// `--repeat`: sweep repetitions.
    pub repeat: Option<u64>,
    /// `--threads`: evaluation worker threads.
    pub threads: Option<usize>,
    /// `--sweep-mode`: search strategy.
    pub sweep_mode: Option<SweepMode>,
    /// `--interp`: interpreter hot path.
    pub interp: Option<ExecMode>,
    /// `--instr-budget`: per-block dynamic instruction budget.
    pub instr_budget: Option<u64>,
    /// `--json`: output path for machine-readable results.
    pub json: Option<String>,
    /// `--fault-seed`: fault-injection campaign seed.
    pub fault_seed: Option<u64>,
    /// `--fault-rate`: injected faults per million instructions.
    pub fault_rate: Option<u32>,
    /// `--profile`: enable site-level profiling of sweep winners.
    pub profile: bool,
    /// `--trace-out`: Chrome `trace_event` JSON output path.
    pub trace_out: Option<String>,
    /// `--metrics-json`: sweep-metrics JSON output path.
    pub metrics_json: Option<String>,
    /// `--sanitize`: race-sanitize sweep candidates.
    pub sanitize: bool,
    /// `--sanitize-json`: race-report JSON output path.
    pub sanitize_json: Option<String>,
    /// `--seed-racy`: also run the deliberately-racy negative corpus
    /// through the sanitizer (smoke mode; exits nonzero on findings,
    /// which the negative corpus guarantees).
    pub seed_racy: bool,
    /// `--cache-dir`: persistent tuning-store directory.
    pub cache_dir: Option<String>,
    /// `--cache`: tuning-store usage mode (`rw`/`ro`/`off`).
    pub cache: Option<CacheMode>,
    /// `--socket`: tuning-daemon unix socket path.
    pub socket: Option<String>,
    /// `--workers`: daemon worker slots (concurrent sweeps).
    pub workers: Option<usize>,
    /// `--max-queue`: daemon admission-queue depth.
    pub max_queue: Option<usize>,
    /// `--tenant-cap`: daemon per-tenant concurrency cap.
    pub tenant_cap: Option<usize>,
    /// `--queue-wait`: longest a request waits for a worker slot
    /// (`500ms`, `30s`, `1m`; `0ms` sheds immediately).
    pub queue_wait: Option<Duration>,
    /// `--tenant`: tenant identifier attached to daemon queries.
    pub tenant: Option<String>,
    /// `--count`: how many queries (or concurrent clients) to issue.
    pub count: Option<usize>,
    /// `--concurrent`: issue the `--count` queries from concurrent
    /// connections (a dedup burst) instead of sequentially.
    pub concurrent: bool,
}

impl CliOpts {
    /// Whether profiling is in effect: `--profile`, or implied by
    /// `--trace-out` / `--metrics-json` (both need profiled runs).
    pub fn profiling(&self) -> bool {
        self.profile || self.trace_out.is_some() || self.metrics_json.is_some()
    }

    /// Whether race sanitizing is in effect: `--sanitize`, or implied
    /// by `--sanitize-json` / `--seed-racy` (both need sanitized
    /// runs).
    pub fn sanitizing(&self) -> bool {
        self.sanitize || self.sanitize_json.is_some() || self.seed_racy
    }

    /// Assemble the engine options these flags describe, defaulting
    /// the sweep strategy to `default_sweep` and the interpreter to
    /// `default_interp` (the bins disagree on both: `sweep` defaults
    /// to halving on the compiled tier, `figures` to exhaustive on
    /// the library default).
    pub fn eval_options(&self, default_sweep: SweepMode, default_interp: ExecMode) -> EvalOptions {
        EvalOptions::with_threads(self.threads.unwrap_or_else(default_threads))
            .with_sweep(self.sweep_mode.unwrap_or(default_sweep))
            .with_interp(self.interp.unwrap_or(default_interp))
            .with_instr_budget(self.instr_budget)
    }

    /// The resilience policy these flags describe: a fault campaign
    /// when `--fault-seed` is present (at `--fault-rate`, default
    /// 200 ppm), otherwise none.
    pub fn resilience(&self) -> Option<ResilienceOptions> {
        self.fault_seed
            .map(|seed| ResilienceOptions::campaign(seed, self.fault_rate.unwrap_or(200)))
    }

    /// The tuning-store configuration these flags describe:
    /// `Some((dir, mode))` when `--cache-dir` is present (mode
    /// defaults to `rw`), `None` when the store is unused.
    ///
    /// # Errors
    ///
    /// `--cache` without `--cache-dir` (there is no store to apply
    /// the mode to).
    pub fn cache(&self) -> Result<Option<(String, CacheMode)>, String> {
        match (&self.cache_dir, self.cache) {
            (Some(dir), mode) => Ok(Some((dir.clone(), mode.unwrap_or_default()))),
            (None, Some(_)) => Err("--cache needs --cache-dir".to_string()),
            (None, None) => Ok(None),
        }
    }
}

/// One binary's parsing configuration.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Program name for error prefixes (`sweep: ...`).
    pub prog: &'static str,
    /// Usage banner printed by `--help` and on errors.
    pub usage: &'static str,
    /// The subset of the shared flag table this binary accepts.
    pub enabled: &'static [&'static str],
    /// Whether bare (non-flag) words are allowed (the `figures`
    /// subcommand) or rejected (`sweep`).
    pub allow_bare: bool,
}

impl Cli {
    /// Parse `args` (without the program name). `--help`/`-h` print
    /// the usage and exit(0); any parse error prints the usage and
    /// exits(1).
    pub fn parse(&self, args: &[String]) -> CliOpts {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", self.usage);
            std::process::exit(0);
        }
        match self.try_parse(args) {
            Ok(opts) => opts,
            Err(msg) => self.die(&msg),
        }
    }

    /// [`Cli::parse`] without the process exits: returns the error
    /// message `parse` would die with, so tests can assert on parse
    /// failures in-process. (`--help` is handled by `parse` only.)
    ///
    /// # Errors
    ///
    /// Unknown or disabled flags, missing values, malformed values.
    pub fn try_parse(&self, args: &[String]) -> Result<CliOpts, String> {
        let mut opts = CliOpts::default();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            let Some(&(name, takes_value)) = FLAGS.iter().find(|(n, _)| *n == a) else {
                if !a.starts_with("--") && self.allow_bare {
                    opts.bare.push(a.to_string());
                    i += 1;
                    continue;
                }
                return Err(format!("unknown flag `{a}`\n{}", self.usage));
            };
            if !self.enabled.contains(&name) {
                return Err(format!("unknown flag `{a}`\n{}", self.usage));
            }
            let raw = if takes_value {
                match args.get(i + 1) {
                    Some(v) => v.as_str(),
                    None => return Err(format!("{name} needs a value")),
                }
            } else {
                ""
            };
            Self::apply(&mut opts, name, raw)?;
            i += if takes_value { 2 } else { 1 };
        }
        Ok(opts)
    }

    /// Print `msg` under the program's name and exit(1).
    pub fn die(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.prog);
        std::process::exit(1);
    }

    fn apply(opts: &mut CliOpts, name: &'static str, raw: &str) -> Result<(), String> {
        match name {
            "--n" => opts.n = Some(Self::positive(name, raw)?),
            "--max-size" => opts.max_size = Some(Self::positive(name, raw)?),
            "--arch" => opts.arch = Some(raw.to_string()),
            "--workload" => opts.workload = Some(Self::value(name, raw)?),
            "--repeat" => opts.repeat = Some(Self::positive(name, raw)?),
            "--threads" => opts.threads = Some(Self::positive(name, raw)?),
            "--sweep-mode" => opts.sweep_mode = Some(Self::value(name, raw)?),
            "--interp" => opts.interp = Some(Self::value(name, raw)?),
            "--instr-budget" => opts.instr_budget = Some(Self::positive(name, raw)?),
            "--json" => opts.json = Some(raw.to_string()),
            "--fault-seed" => opts.fault_seed = Some(Self::value(name, raw)?),
            "--fault-rate" => opts.fault_rate = Some(Self::value(name, raw)?),
            "--profile" => opts.profile = true,
            "--trace-out" => opts.trace_out = Some(raw.to_string()),
            "--metrics-json" => opts.metrics_json = Some(raw.to_string()),
            "--sanitize" => opts.sanitize = true,
            "--sanitize-json" => opts.sanitize_json = Some(raw.to_string()),
            "--seed-racy" => opts.seed_racy = true,
            "--cache-dir" => opts.cache_dir = Some(raw.to_string()),
            "--cache" => opts.cache = Some(Self::value(name, raw)?),
            "--socket" => opts.socket = Some(raw.to_string()),
            "--workers" => opts.workers = Some(Self::positive(name, raw)?),
            "--max-queue" => opts.max_queue = Some(Self::positive(name, raw)?),
            "--tenant-cap" => opts.tenant_cap = Some(Self::positive(name, raw)?),
            "--queue-wait" => opts.queue_wait = Some(Self::duration(name, raw)?),
            "--tenant" => opts.tenant = Some(raw.to_string()),
            "--count" => opts.count = Some(Self::positive(name, raw)?),
            "--concurrent" => opts.concurrent = true,
            other => unreachable!("flag `{other}` missing from Cli::apply"),
        }
        Ok(())
    }

    fn value<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        // Carry the type's own parse message: for enum-like values
        // (`--interp`, `--sweep-mode`, `--cache`) it names every
        // accepted spelling, so a typo'd mode tells the user the full
        // menu.
        raw.parse().map_err(|e| format!("invalid value `{raw}` for {name}: {e}"))
    }

    /// [`Cli::value`] for counts that make no sense at zero: an array
    /// of 0 elements, 0 worker threads, 0 repeats, or a 0-instruction
    /// budget would each turn the run into a silent no-op (or an
    /// instant timeout), so they are parse errors that name the flag,
    /// in the same style as the enum-valued flags.
    fn positive<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        // All positive-only flags are unsigned integers, so `raw`
        // also parses as u64 whenever it parses as T.
        if Self::value::<u64>(name, raw)? == 0 {
            return Err(format!("invalid value `{raw}` for {name}: must be at least 1"));
        }
        Self::value(name, raw)
    }

    /// Parse a duration value: an unsigned integer with a required
    /// unit suffix (`ms`, `s`, or `m`). Zero is allowed — for
    /// `--queue-wait` it means "shed the moment all workers are
    /// busy", which is a meaningful QoS policy, unlike a zero count.
    fn duration(name: &str, raw: &str) -> Result<Duration, String> {
        let bad = |why: &str| format!("invalid value `{raw}` for {name}: {why}");
        let (digits, unit) = match raw.find(|c: char| !c.is_ascii_digit()) {
            Some(split) => raw.split_at(split),
            None if raw.is_empty() => ("", ""),
            // A bare number is ambiguous (ms or s?); make the unit
            // explicit rather than guessing.
            None => return Err(bad("missing unit (want e.g. `500ms`, `30s`, `1m`)")),
        };
        let count: u64 = digits
            .parse()
            .map_err(|_| bad("want an unsigned integer with a unit, e.g. `500ms`"))?;
        match unit {
            "ms" => Ok(Duration::from_millis(count)),
            "s" => Ok(Duration::from_secs(count)),
            "m" => Ok(Duration::from_secs(count * 60)),
            _ => Err(bad(&format!("unknown unit `{unit}` (want `ms`, `s`, or `m`)"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_CLI: Cli = Cli {
        prog: "test",
        usage: "usage: test",
        enabled: &[
            "--n",
            "--workload",
            "--threads",
            "--repeat",
            "--instr-budget",
            "--sweep-mode",
            "--interp",
            "--profile",
            "--metrics-json",
            "--sanitize",
            "--sanitize-json",
            "--seed-racy",
            "--cache-dir",
            "--cache",
            "--socket",
            "--workers",
            "--max-queue",
            "--tenant-cap",
            "--queue-wait",
            "--tenant",
            "--count",
            "--concurrent",
        ],
        allow_bare: true,
    };

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_typed_flags_switches_and_bare_words() {
        let o = TEST_CLI.parse(&args(&[
            "all",
            "--n",
            "4096",
            "--sweep-mode",
            "halving",
            "--profile",
        ]));
        assert_eq!(o.bare, vec!["all".to_string()]);
        assert_eq!(o.n, Some(4096));
        assert_eq!(o.sweep_mode, Some(SweepMode::Halving));
        assert!(o.profile && o.profiling());
    }

    #[test]
    fn observability_outputs_imply_profiling() {
        let o = TEST_CLI.parse(&args(&["--metrics-json", "/tmp/m.json"]));
        assert!(!o.profile, "the switch itself stays off");
        assert!(o.profiling(), "--metrics-json implies profiled runs");
    }

    #[test]
    fn eval_options_fill_shared_defaults() {
        let o = TEST_CLI.parse(&args(&["--threads", "3"]));
        let e = o.eval_options(SweepMode::Halving, ExecMode::Compiled);
        assert_eq!(e.threads, 3);
        assert_eq!(e.sweep, SweepMode::Halving);
        assert_eq!(e.interp, ExecMode::Compiled, "absent --interp takes the bin's default");
        assert!(o.resilience().is_none());
        let o = TEST_CLI.parse(&args(&["--interp", "reference"]));
        let e = o.eval_options(SweepMode::Halving, ExecMode::Compiled);
        assert_eq!(e.interp, ExecMode::Reference, "an explicit --interp beats the default");
    }

    #[test]
    fn bad_interp_names_the_flag_and_lists_every_mode() {
        let err = TEST_CLI.try_parse(&args(&["--interp", "turbo"])).unwrap_err();
        assert!(err.contains("invalid value `turbo` for --interp"), "got: {err}");
        for mode in ["uop", "predecoded", "reference", "lanewise", "compiled", "jit"] {
            assert!(err.contains(mode), "error must list `{mode}`, got: {err}");
        }
    }

    #[test]
    fn workload_parses_every_kind_and_defaults_the_dtype() {
        for (raw, id) in [
            ("sum", "sum-f32"),
            ("max", "max-f32"),
            ("argmax", "argmax-f32"),
            ("argmin-f32", "argmin-f32"),
            ("hist", "hist64-f32"),
            ("hist16", "hist16-f32"),
            ("scan", "scan-f32"),
            ("scan-u32", "scan-u32"),
            ("exscan", "exscan-f32"),
            ("exscan-u32", "exscan-u32"),
            ("segsum", "segsum-f32"),
            ("segsum-u32", "segsum-u32"),
        ] {
            let o = TEST_CLI.try_parse(&args(&["--workload", raw])).unwrap();
            assert_eq!(o.workload.map(|w| w.id()).as_deref(), Some(id), "raw `{raw}`");
        }
    }

    #[test]
    fn bad_workload_names_the_flag_and_lists_every_spelling() {
        let err = TEST_CLI.try_parse(&args(&["--workload", "argbest"])).unwrap_err();
        assert!(err.contains("invalid value `argbest` for --workload"), "got: {err}");
        for spelling in ["sum", "max", "min", "argmax", "argmin", "hist", "scan", "exscan", "segsum"]
        {
            assert!(err.contains(spelling), "error must list `{spelling}`, got: {err}");
        }
    }

    #[test]
    fn workload_histogram_bins_are_range_checked() {
        let err = TEST_CLI.try_parse(&args(&["--workload", "hist1"])).unwrap_err();
        assert!(err.contains("invalid value `hist1` for --workload"), "got: {err}");
        assert!(err.contains("out of range"), "got: {err}");
        let err = TEST_CLI.try_parse(&args(&["--workload", "hist9999"])).unwrap_err();
        assert!(err.contains("out of range"), "got: {err}");
        let o = TEST_CLI.try_parse(&args(&["--workload", "hist4096"])).unwrap();
        assert_eq!(o.workload.map(|w| w.id()).as_deref(), Some("hist4096-f32"));
    }

    #[test]
    fn unknown_flags_name_the_offender() {
        let err = TEST_CLI.try_parse(&args(&["--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag `--bogus`"), "got: {err}");
        assert!(err.contains(TEST_CLI.usage), "errors carry the usage banner");
    }

    #[test]
    fn disabled_flags_are_unknown_for_this_bin() {
        // `--arch` exists in the shared table but is not in
        // TEST_CLI's enabled subset, so it must be rejected exactly
        // like a flag that does not exist at all.
        let err = TEST_CLI.try_parse(&args(&["--arch", "maxwell"])).unwrap_err();
        assert!(err.contains("unknown flag `--arch`"), "got: {err}");
        assert!(TEST_CLI.try_parse(&args(&["--sanitize"])).is_ok());
    }

    #[test]
    fn missing_and_malformed_values_are_structured_errors() {
        let err = TEST_CLI.try_parse(&args(&["--n"])).unwrap_err();
        assert!(err.contains("--n needs a value"), "got: {err}");
        let err = TEST_CLI.try_parse(&args(&["--n", "lots"])).unwrap_err();
        assert!(err.contains("invalid value `lots` for --n"), "got: {err}");
    }

    #[test]
    fn sanitize_outputs_imply_sanitizing() {
        let o = TEST_CLI.parse(&args(&["--sanitize-json", "/tmp/r.json"]));
        assert!(!o.sanitize, "the switch itself stays off");
        assert!(o.sanitizing(), "--sanitize-json implies sanitized runs");
        assert!(!o.profiling(), "sanitizing does not drag profiling in");
        let o = TEST_CLI.parse(&args(&["--seed-racy"]));
        assert!(o.seed_racy && o.sanitizing(), "--seed-racy implies sanitized runs");
        let o = TEST_CLI.parse(&args(&["--sanitize"]));
        assert!(o.sanitize && o.sanitizing() && o.sanitize_json.is_none());
    }

    #[test]
    fn zero_valued_counts_are_rejected_with_the_flag_named() {
        for (flag, raw) in
            [("--threads", "0"), ("--n", "0"), ("--repeat", "00"), ("--instr-budget", "0")]
        {
            let err = TEST_CLI.try_parse(&args(&[flag, raw])).unwrap_err();
            assert!(
                err.contains(&format!("invalid value `{raw}` for {flag}")),
                "{flag}: {err}"
            );
            assert!(err.contains("must be at least 1"), "{flag}: {err}");
        }
        // Positive values still parse, through the same path.
        let o = TEST_CLI.try_parse(&args(&["--threads", "1", "--n", "4096"])).unwrap();
        assert_eq!((o.threads, o.n), (Some(1), Some(4096)));
    }

    #[test]
    fn cache_flags_parse_validate_and_default() {
        assert_eq!(TEST_CLI.try_parse(&args(&[])).unwrap().cache(), Ok(None));
        let o = TEST_CLI.try_parse(&args(&["--cache-dir", "/tmp/ts"])).unwrap();
        assert_eq!(
            o.cache().unwrap(),
            Some(("/tmp/ts".to_string(), CacheMode::ReadWrite)),
            "--cache defaults to rw"
        );
        let o = TEST_CLI.try_parse(&args(&["--cache-dir", "/tmp/ts", "--cache", "ro"])).unwrap();
        assert_eq!(o.cache().unwrap(), Some(("/tmp/ts".to_string(), CacheMode::ReadOnly)));
        // --cache without --cache-dir names the missing flag.
        let o = TEST_CLI.try_parse(&args(&["--cache", "rw"])).unwrap();
        assert_eq!(o.cache().unwrap_err(), "--cache needs --cache-dir");
        // A bad mode lists the accepted spellings, like --interp.
        let err = TEST_CLI.try_parse(&args(&["--cache", "turbo"])).unwrap_err();
        assert!(err.contains("invalid value `turbo` for --cache"), "got: {err}");
        for mode in ["rw", "readwrite", "ro", "readonly", "off", "none"] {
            assert!(err.contains(mode), "error must list `{mode}`, got: {err}");
        }
    }

    #[test]
    fn serve_flags_parse_typed() {
        let o = TEST_CLI
            .try_parse(&args(&[
                "--socket",
                "/tmp/t.sock",
                "--workers",
                "4",
                "--max-queue",
                "8",
                "--tenant-cap",
                "2",
                "--tenant",
                "ci",
                "--count",
                "6",
                "--concurrent",
            ]))
            .unwrap();
        assert!(o.concurrent);
        assert_eq!(o.socket.as_deref(), Some("/tmp/t.sock"));
        assert_eq!(o.workers, Some(4));
        assert_eq!(o.max_queue, Some(8));
        assert_eq!(o.tenant_cap, Some(2));
        assert_eq!(o.tenant.as_deref(), Some("ci"));
        assert_eq!(o.count, Some(6));
        // Counts that make no sense at zero stay positive-only.
        for flag in ["--workers", "--max-queue", "--tenant-cap", "--count"] {
            let err = TEST_CLI.try_parse(&args(&[flag, "0"])).unwrap_err();
            assert!(err.contains(&format!("invalid value `0` for {flag}")), "{flag}: {err}");
            assert!(err.contains("must be at least 1"), "{flag}: {err}");
        }
    }

    #[test]
    fn queue_wait_durations_parse_with_units() {
        for (raw, want) in [
            ("500ms", Duration::from_millis(500)),
            ("30s", Duration::from_secs(30)),
            ("2m", Duration::from_secs(120)),
            ("0ms", Duration::ZERO),
        ] {
            let o = TEST_CLI.try_parse(&args(&["--queue-wait", raw])).unwrap();
            assert_eq!(o.queue_wait, Some(want), "raw `{raw}`");
        }
    }

    #[test]
    fn bad_durations_name_the_flag_and_the_problem() {
        for (raw, needle) in [
            ("500", "missing unit"),
            ("fast", "unsigned integer"),
            ("", "unsigned integer"),
            ("10h", "unknown unit `h`"),
            ("10 s", "unknown unit"),
        ] {
            let err = TEST_CLI.try_parse(&args(&["--queue-wait", raw])).unwrap_err();
            assert!(
                err.contains(&format!("invalid value `{raw}` for --queue-wait")),
                "raw `{raw}`: {err}"
            );
            assert!(err.contains(needle), "raw `{raw}`: {err}");
        }
    }

    #[test]
    fn bare_words_are_rejected_when_not_allowed() {
        let no_bare = Cli { allow_bare: false, ..TEST_CLI };
        let err = no_bare.try_parse(&args(&["all"])).unwrap_err();
        assert!(err.contains("unknown flag `all`"), "got: {err}");
        assert_eq!(TEST_CLI.try_parse(&args(&["all"])).unwrap().bare, vec!["all".to_string()]);
    }
}
