//! Shared command-line parsing for the `sweep` and `figures` bins.
//!
//! Both binaries accept the same engine and observability flags; this
//! module declares each flag once — name, arity, parse, and help line
//! — so the bins differ only in which flags they enable, their usage
//! banner, and whether bare words (subcommands) are allowed.
//!
//! Parse errors never fall back to defaults: a present flag with a
//! missing or malformed value, and any unknown `--flag`, print the
//! program's usage to stderr and exit(1), exactly like the previous
//! per-bin parsers.

use gpu_sim::ExecMode;
use tangram::evaluate::{default_threads, EvalOptions, SweepMode};
use tangram::resilience::ResilienceOptions;

/// Every flag either binary understands. `value` is true when the
/// flag consumes the next argument (`--profile` is the one switch).
const FLAGS: [(&str, bool); 14] = [
    ("--n", true),
    ("--max-size", true),
    ("--arch", true),
    ("--repeat", true),
    ("--threads", true),
    ("--sweep-mode", true),
    ("--interp", true),
    ("--instr-budget", true),
    ("--json", true),
    ("--fault-seed", true),
    ("--fault-rate", true),
    ("--profile", false),
    ("--trace-out", true),
    ("--metrics-json", true),
];

/// Typed result of parsing one command line. Fields are `None` when
/// the flag was absent; accessors apply the shared defaults.
#[derive(Debug, Clone, Default)]
pub struct CliOpts {
    /// Non-flag words in order (the `figures` subcommand).
    pub bare: Vec<String>,
    /// `--n`: array size in elements.
    pub n: Option<u64>,
    /// `--max-size`: largest array size swept.
    pub max_size: Option<u64>,
    /// `--arch`: architecture identifier.
    pub arch: Option<String>,
    /// `--repeat`: sweep repetitions.
    pub repeat: Option<u64>,
    /// `--threads`: evaluation worker threads.
    pub threads: Option<usize>,
    /// `--sweep-mode`: search strategy.
    pub sweep_mode: Option<SweepMode>,
    /// `--interp`: interpreter hot path.
    pub interp: Option<ExecMode>,
    /// `--instr-budget`: per-block dynamic instruction budget.
    pub instr_budget: Option<u64>,
    /// `--json`: output path for machine-readable results.
    pub json: Option<String>,
    /// `--fault-seed`: fault-injection campaign seed.
    pub fault_seed: Option<u64>,
    /// `--fault-rate`: injected faults per million instructions.
    pub fault_rate: Option<u32>,
    /// `--profile`: enable site-level profiling of sweep winners.
    pub profile: bool,
    /// `--trace-out`: Chrome `trace_event` JSON output path.
    pub trace_out: Option<String>,
    /// `--metrics-json`: sweep-metrics JSON output path.
    pub metrics_json: Option<String>,
}

impl CliOpts {
    /// Whether profiling is in effect: `--profile`, or implied by
    /// `--trace-out` / `--metrics-json` (both need profiled runs).
    pub fn profiling(&self) -> bool {
        self.profile || self.trace_out.is_some() || self.metrics_json.is_some()
    }

    /// Assemble the engine options these flags describe, defaulting
    /// the sweep strategy to `default_sweep` (the bins disagree on
    /// it: `sweep` defaults to halving, `figures` to exhaustive).
    pub fn eval_options(&self, default_sweep: SweepMode) -> EvalOptions {
        EvalOptions::with_threads(self.threads.unwrap_or_else(default_threads))
            .with_sweep(self.sweep_mode.unwrap_or(default_sweep))
            .with_interp(self.interp.unwrap_or_default())
            .with_instr_budget(self.instr_budget)
    }

    /// The resilience policy these flags describe: a fault campaign
    /// when `--fault-seed` is present (at `--fault-rate`, default
    /// 200 ppm), otherwise none.
    pub fn resilience(&self) -> Option<ResilienceOptions> {
        self.fault_seed
            .map(|seed| ResilienceOptions::campaign(seed, self.fault_rate.unwrap_or(200)))
    }
}

/// One binary's parsing configuration.
#[derive(Debug, Clone, Copy)]
pub struct Cli {
    /// Program name for error prefixes (`sweep: ...`).
    pub prog: &'static str,
    /// Usage banner printed by `--help` and on errors.
    pub usage: &'static str,
    /// The subset of the shared flag table this binary accepts.
    pub enabled: &'static [&'static str],
    /// Whether bare (non-flag) words are allowed (the `figures`
    /// subcommand) or rejected (`sweep`).
    pub allow_bare: bool,
}

impl Cli {
    /// Parse `args` (without the program name). `--help`/`-h` print
    /// the usage and exit(0); any parse error prints the usage and
    /// exits(1).
    pub fn parse(&self, args: &[String]) -> CliOpts {
        let mut opts = CliOpts::default();
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if a == "--help" || a == "-h" {
                println!("{}", self.usage);
                std::process::exit(0);
            }
            let Some(&(name, takes_value)) = FLAGS.iter().find(|(n, _)| *n == a) else {
                if !a.starts_with("--") && self.allow_bare {
                    opts.bare.push(a.to_string());
                    i += 1;
                    continue;
                }
                self.die(&format!("unknown flag `{a}`\n{}", self.usage));
            };
            if !self.enabled.contains(&name) {
                self.die(&format!("unknown flag `{a}`\n{}", self.usage));
            }
            let raw = if takes_value {
                match args.get(i + 1) {
                    Some(v) => v.as_str(),
                    None => self.die(&format!("{name} needs a value")),
                }
            } else {
                ""
            };
            self.apply(&mut opts, name, raw);
            i += if takes_value { 2 } else { 1 };
        }
        opts
    }

    /// Print `msg` under the program's name and exit(1).
    pub fn die(&self, msg: &str) -> ! {
        eprintln!("{}: {msg}", self.prog);
        std::process::exit(1);
    }

    fn apply(&self, opts: &mut CliOpts, name: &'static str, raw: &str) {
        match name {
            "--n" => opts.n = Some(self.value(name, raw)),
            "--max-size" => opts.max_size = Some(self.value(name, raw)),
            "--arch" => opts.arch = Some(raw.to_string()),
            "--repeat" => opts.repeat = Some(self.value(name, raw)),
            "--threads" => opts.threads = Some(self.value(name, raw)),
            "--sweep-mode" => opts.sweep_mode = Some(self.value(name, raw)),
            "--interp" => opts.interp = Some(self.value(name, raw)),
            "--instr-budget" => opts.instr_budget = Some(self.value(name, raw)),
            "--json" => opts.json = Some(raw.to_string()),
            "--fault-seed" => opts.fault_seed = Some(self.value(name, raw)),
            "--fault-rate" => opts.fault_rate = Some(self.value(name, raw)),
            "--profile" => opts.profile = true,
            "--trace-out" => opts.trace_out = Some(raw.to_string()),
            "--metrics-json" => opts.metrics_json = Some(raw.to_string()),
            other => unreachable!("flag `{other}` missing from Cli::apply"),
        }
    }

    fn value<T: std::str::FromStr>(&self, name: &str, raw: &str) -> T {
        match raw.parse() {
            Ok(v) => v,
            Err(_) => self.die(&format!("invalid value `{raw}` for {name}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_CLI: Cli = Cli {
        prog: "test",
        usage: "usage: test",
        enabled: &["--n", "--threads", "--sweep-mode", "--profile", "--metrics-json"],
        allow_bare: true,
    };

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_typed_flags_switches_and_bare_words() {
        let o = TEST_CLI.parse(&args(&[
            "all",
            "--n",
            "4096",
            "--sweep-mode",
            "halving",
            "--profile",
        ]));
        assert_eq!(o.bare, vec!["all".to_string()]);
        assert_eq!(o.n, Some(4096));
        assert_eq!(o.sweep_mode, Some(SweepMode::Halving));
        assert!(o.profile && o.profiling());
    }

    #[test]
    fn observability_outputs_imply_profiling() {
        let o = TEST_CLI.parse(&args(&["--metrics-json", "/tmp/m.json"]));
        assert!(!o.profile, "the switch itself stays off");
        assert!(o.profiling(), "--metrics-json implies profiled runs");
    }

    #[test]
    fn eval_options_fill_shared_defaults() {
        let o = TEST_CLI.parse(&args(&["--threads", "3"]));
        let e = o.eval_options(SweepMode::Halving);
        assert_eq!(e.threads, 3);
        assert_eq!(e.sweep, SweepMode::Halving);
        assert_eq!(e.interp, ExecMode::default());
        assert!(o.resilience().is_none());
    }
}
