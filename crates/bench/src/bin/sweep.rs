//! Wall-clock benchmark of the full pruned-space selection sweep.
//!
//! ```text
//! sweep [--n N] [--arch kepler|maxwell|pascal] [--repeat R]
//!       [--threads T] [--json PATH]
//! ```
//!
//! `--threads T` sets the evaluation engine's worker count (default:
//! available parallelism). The winner and its modelled time are
//! bit-identical for any T; only the wall-clock changes. `--json`
//! appends one record per repeat to `PATH` (JSON lines).

use std::time::Instant;

use gpu_sim::ArchConfig;
use tangram::evaluate::{default_threads, EvalOptions};
use tangram::select::select_best_with;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: u64 = flag(&args, "--n").unwrap_or(1 << 22);
    let repeat: u64 = flag(&args, "--repeat").unwrap_or(1);
    let threads: usize = flag(&args, "--threads").map_or_else(default_threads, |t| t as usize);
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();
    let arch_id = args
        .iter()
        .position(|a| a == "--arch")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "maxwell".to_string());
    let arch = ArchConfig::paper_archs()
        .into_iter()
        .find(|a| a.id == arch_id)
        .expect("unknown arch id");
    let opts = EvalOptions::with_threads(threads);

    for _ in 0..repeat {
        let start = Instant::now();
        let (_tuned, row) = select_best_with(&arch, n, &opts).expect("sweep failed");
        let wall = start.elapsed();
        println!(
            "sweep arch={} n={} threads={} wall_ms={:.1} winner={} block={} coarsen={} time_ns={}",
            arch.id,
            n,
            threads,
            wall.as_secs_f64() * 1e3,
            row.version,
            row.block_size,
            row.coarsen,
            row.time_ns
        );
        if let Some(path) = &json_path {
            let record = format!(
                "{{\"arch\":\"{}\",\"n\":{},\"threads\":{},\"wall_ms\":{:.3},\"winner\":\"{}\",\"block\":{},\"coarsen\":{},\"time_ns\":{}}}\n",
                arch.id,
                n,
                threads,
                wall.as_secs_f64() * 1e3,
                row.version,
                row.block_size,
                row.coarsen,
                row.time_ns
            );
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("open json log");
            f.write_all(record.as_bytes()).expect("write json log");
        }
    }
}

fn flag(args: &[String], flag: &str) -> Option<u64> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))?.parse().ok()
}
