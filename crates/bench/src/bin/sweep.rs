//! Wall-clock benchmark of the full pruned-space selection sweep.
//!
//! ```text
//! sweep [--n N] [--arch kepler|maxwell|pascal] [--repeat R]
//!       [--threads T] [--sweep-mode exhaustive|halving]
//!       [--interp uop|reference|compiled] [--instr-budget I] [--json PATH]
//!       [--fault-seed S] [--fault-rate PPM]
//!       [--profile] [--trace-out PATH] [--metrics-json PATH]
//! ```
//!
//! `--threads T` sets the evaluation engine's worker count (default:
//! available parallelism). The winner and its modelled time are
//! bit-identical for any T; only the wall-clock changes. `--json`
//! appends one record per repeat to `PATH` (JSON lines).
//!
//! `--workload W` tunes a typed workload (`argmax`, `hist256`, …)
//! instead of the classic `sum-f32` sweep. Non-sum winner lines carry
//! a `workload=` token after `n=`; `--workload sum` (and no flag at
//! all) prints the byte-identical legacy line. The oracle-validated
//! winner tail (`winner=… block=… coarsen=… time_ns=…`) matches the
//! `tuned` daemon's answer for the same query byte for byte.
//!
//! `--sweep-mode` selects the search strategy (default: `halving`,
//! the successive-halving sweep; `exhaustive` measures every job at
//! full fidelity). `--interp` selects the interpreter hot path
//! (default: `compiled`, the closure-threaded tier; `uop` is the
//! predecoded µop engine, `reference` the lane-wise path — all three
//! produce bit-identical winners, so the flag only trades wall-clock
//! for observability). `--instr-budget I` overrides the per-block
//! dynamic instruction budget (the runaway-loop guard).
//!
//! `--fault-seed S` enables a deterministic fault-injection campaign
//! (bit-flips, shared-atomic retry storms, warp stalls) at
//! `--fault-rate` faults per million instructions (default 200).
//! Faulty attempts are validated against the CPU oracle and retried;
//! the accepted winner is bit-identical to a fault-free sweep, and a
//! `resilience:` summary line reports what was injected, detected,
//! recovered, and quarantined.
//!
//! `--profile` re-runs the sweep winner with site-level profiling and
//! prints one `profile:` line of its dynamic counters; the winner line
//! itself is byte-identical to an unprofiled run. `--trace-out PATH`
//! writes the profiled winner's Chrome `trace_event` JSON (open it in
//! `chrome://tracing` / Perfetto), and `--metrics-json PATH` writes
//! the full machine-readable [`tangram::metrics::ProfileReport`],
//! including the architecture's spotlight kernels (the atomic
//! grid-combine and shuffle-tree counters behind the paper's §IV
//! narrative). Both output flags imply `--profile`.
//!
//! `--sanitize` screens every candidate with the happens-before race
//! sanitizer before the sweep, quarantining racy variants, and prints
//! one `sanitize:` summary line; the winner line is byte-identical to
//! an unsanitized run whenever the corpus is race-free (it is).
//! `--sanitize-json PATH` writes the per-candidate race reports.
//! `--seed-racy` additionally pushes the deliberately-racy negative
//! corpus through the sanitizer. Both imply `--sanitize`, and the
//! process exits nonzero when any hazard was found — so CI can assert
//! both directions: clean corpus ⇒ exit 0, seeded races ⇒ exit 1.
//!
//! `--cache-dir PATH` attaches the persistent tuning store rooted at
//! `PATH` (`--cache rw|ro|off` sets its usage, default `rw`): sweeps
//! then warm-start from cached winners — re-confirmed at full
//! fidelity against the cpu-ref oracle, so the winner line is
//! byte-identical to a cold sweep — and print one `cache:` summary
//! line. Corrupt or stale records are quarantined aside as
//! `.corrupt` files and the sweep falls back to a clean cold run;
//! a broken cache never changes a winner and never fails the
//! process.

use std::time::Instant;

use gpu_sim::ArchConfig;
use tangram::evaluate::SweepMode;
use tangram::metrics::{spotlight_profiles, ProfileReport};
use tangram::{Session, Workload, WorkloadKey};
use tangram_bench::cli::Cli;
use tangram_bench::{
    cache_summary_line, profile_summary_line, sanitize_json, sanitize_summary_line,
    seeded_racy_reports,
};

const USAGE: &str = "usage: sweep [--n N] [--arch kepler|maxwell|pascal] [--workload W]
             [--repeat R] [--threads T] [--sweep-mode exhaustive|halving]
             [--interp uop|reference|compiled] [--instr-budget I] [--json PATH]
             [--fault-seed S] [--fault-rate PPM]
             [--profile] [--trace-out PATH] [--metrics-json PATH]
             [--sanitize] [--sanitize-json PATH] [--seed-racy]
             [--cache-dir PATH] [--cache rw|ro|off]

  --n N              array size in elements (default 4194304)
  --arch ID          architecture: kepler|maxwell|pascal (default maxwell)
  --workload W       sum | max | min | argmax | argmin | hist<bins>
                     (default sum; non-sum lines carry a workload= token)
  --repeat R         repeat the sweep R times (default 1)
  --threads T        evaluation worker threads (default: available parallelism)
  --sweep-mode M     exhaustive | halving (default halving); winners are
                     bit-identical, halving skips dominated tunings
  --interp M         uop | reference | compiled interpreter hot path
                     (default compiled; winners are bit-identical)
  --instr-budget I   per-block dynamic instruction budget (runaway guard)
  --json PATH        append one JSON record per repeat to PATH
  --fault-seed S     enable a deterministic fault-injection campaign
  --fault-rate PPM   injected faults per million instructions (default 200)
  --profile          profile the winner; adds a `profile:` counter line
  --trace-out PATH   write the profiled winner's Chrome trace JSON to PATH
  --metrics-json PATH  write the sweep's ProfileReport JSON to PATH
                     (--trace-out/--metrics-json imply --profile)
  --sanitize         race-sanitize candidates; adds a `sanitize:` line and
                     exits nonzero when any hazard was found
  --sanitize-json PATH  write the per-candidate race reports to PATH
  --seed-racy        also sanitize the deliberately-racy negative corpus
                     (--sanitize-json/--seed-racy imply --sanitize)
  --cache-dir PATH   persistent tuning store; warm-starts repeat sweeps
                     from re-confirmed cached winners (adds a `cache:` line)
  --cache MODE       rw | ro | off store usage (default rw; needs --cache-dir)";

const CLI: Cli = Cli {
    prog: "sweep",
    usage: USAGE,
    enabled: &[
        "--n",
        "--arch",
        "--workload",
        "--repeat",
        "--threads",
        "--sweep-mode",
        "--interp",
        "--instr-budget",
        "--json",
        "--fault-seed",
        "--fault-rate",
        "--profile",
        "--trace-out",
        "--metrics-json",
        "--sanitize",
        "--sanitize-json",
        "--seed-racy",
        "--cache-dir",
        "--cache",
    ],
    allow_bare: false,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = CLI.parse(&args);
    let n = o.n.unwrap_or(1 << 22);
    let repeat = o.repeat.unwrap_or(1);
    let arch_id = o.arch.clone().unwrap_or_else(|| "maxwell".to_string());
    let Some(arch) = ArchConfig::paper_archs().into_iter().find(|a| a.id == arch_id) else {
        CLI.die(&format!("unknown arch id `{arch_id}` (expected kepler|maxwell|pascal)"));
    };
    let wkey = o.workload.unwrap_or_else(WorkloadKey::sum);
    // The classic `sum-f32` path stays byte-identical: no workload
    // token on its lines, and `--workload sum` is exactly no flag.
    let legacy = wkey == WorkloadKey::sum();
    if !legacy && (o.profiling() || o.fault_seed.is_some()) {
        CLI.die(
            "--profile/--trace-out/--metrics-json/--fault-seed only apply to the \
             sum sweep (workload sweeps do not profile winners yet)",
        );
    }
    let opts = o.eval_options(SweepMode::Halving, gpu_sim::ExecMode::Compiled);
    let (threads, mode_id, interp_id) = (opts.threads, opts.sweep.id(), opts.interp.id());
    let mut session = Session::new(arch.clone())
        .eval(opts)
        .profiled(o.profiling())
        .sanitized(o.sanitizing());
    if let Some(res) = o.resilience() {
        session = session.resilience(res);
    }
    match o.cache() {
        Ok(Some((dir, mode))) => session = session.store(dir).cache_mode(mode),
        Ok(None) => {}
        Err(e) => CLI.die(&e),
    }

    let mut metrics = ProfileReport::new();
    let mut last_trace = None;
    let mut last_races = None;
    let mut hazards = 0u64;
    for _ in 0..repeat {
        if !legacy {
            let start = Instant::now();
            let report = match session.run(&Workload::new(wkey, n)) {
                Ok(report) => report,
                Err(e) => CLI.die(&format!("sweep failed: {e}")),
            };
            let wall = start.elapsed();
            println!(
                "sweep arch={} n={} workload={} threads={} mode={} interp={} wall_ms={:.1} winner={} block={} coarsen={} time_ns={}",
                arch.id,
                n,
                wkey.id(),
                threads,
                mode_id,
                interp_id,
                wall.as_secs_f64() * 1e3,
                report.winner_id(),
                report.block_size(),
                report.coarsen(),
                report.time_ns()
            );
            let (san, store_line, races) = match &report {
                tangram::RunReport::Reduce(rep) => {
                    (rep.metrics.sanitize, rep.metrics.store.clone(), rep.races.clone())
                }
                tangram::RunReport::Workload(rep) => {
                    (rep.metrics.sanitize, rep.metrics.store.clone(), rep.races.clone())
                }
            };
            if let Some(s) = &san {
                println!("{}", sanitize_summary_line(s));
                hazards += s.findings as u64;
            }
            if let Some(s) = &store_line {
                println!("{}", cache_summary_line(s));
            }
            if races.is_some() {
                last_races = races;
            }
            if let Some(path) = &o.json {
                let record = format!(
                    "{{\"arch\":\"{}\",\"n\":{},\"workload\":\"{}\",\"threads\":{},\"mode\":\"{}\",\"interp\":\"{}\",\"wall_ms\":{:.3},\"winner\":\"{}\",\"block\":{},\"coarsen\":{},\"time_ns\":{}}}\n",
                    arch.id,
                    n,
                    wkey.id(),
                    threads,
                    mode_id,
                    interp_id,
                    wall.as_secs_f64() * 1e3,
                    report.winner_id(),
                    report.block_size(),
                    report.coarsen(),
                    report.time_ns()
                );
                append_json(path, &record);
            }
            continue;
        }
        let start = Instant::now();
        let report = match session.select_best(n) {
            Ok(report) => report,
            Err(e) => CLI.die(&format!("sweep failed: {e}")),
        };
        let wall = start.elapsed();
        let row = &report.row;
        println!(
            "sweep arch={} n={} threads={} mode={} interp={} wall_ms={:.1} winner={} block={} coarsen={} time_ns={}",
            arch.id,
            n,
            threads,
            mode_id,
            interp_id,
            wall.as_secs_f64() * 1e3,
            row.version,
            row.block_size,
            row.coarsen,
            row.time_ns
        );
        if o.fault_seed.is_some() {
            println!("{}", report.resilience.summary_line());
        }
        if let Some(profile) = &report.metrics.winner_profile {
            println!("{}", profile_summary_line(profile));
        }
        if let Some(s) = &report.metrics.sanitize {
            println!("{}", sanitize_summary_line(s));
            hazards += s.findings as u64;
        }
        if let Some(s) = &report.metrics.store {
            println!("{}", cache_summary_line(s));
        }
        if report.races.is_some() {
            last_races = report.races.clone();
        }
        if let Some(path) = &o.json {
            let record = format!(
                "{{\"arch\":\"{}\",\"n\":{},\"threads\":{},\"mode\":\"{}\",\"interp\":\"{}\",\"wall_ms\":{:.3},\"winner\":\"{}\",\"block\":{},\"coarsen\":{},\"time_ns\":{}}}\n",
                arch.id,
                n,
                threads,
                mode_id,
                interp_id,
                wall.as_secs_f64() * 1e3,
                row.version,
                row.block_size,
                row.coarsen,
                row.time_ns
            );
            append_json(path, &record);
        }
        metrics.sweeps.push(report.metrics);
        if report.trace.is_some() {
            last_trace = report.trace;
        }
    }

    if let Some(path) = &o.trace_out {
        let Some(trace) = &last_trace else {
            CLI.die("no trace captured (profiled winner produced no launches)");
        };
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[sweep] wrote {path}");
    }
    if let Some(path) = &o.metrics_json {
        match spotlight_profiles(&arch) {
            Ok(spots) => metrics.spotlights = spots,
            Err(e) => CLI.die(&format!("spotlight profiling failed: {e}")),
        }
        let json = match metrics.to_json() {
            Ok(json) => json,
            Err(e) => CLI.die(&format!("cannot serialize metrics: {e}")),
        };
        if let Err(e) = std::fs::write(path, json) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[sweep] {}", metrics.summary_line());
        eprintln!("[sweep] wrote {path}");
    }

    let mut seeded = Vec::new();
    if o.seed_racy {
        seeded = match seeded_racy_reports(&arch) {
            Ok(s) => s,
            Err(e) => CLI.die(&format!("seed-racy run failed: {e}")),
        };
        for (nk, report) in &seeded {
            println!("seed-racy {}: {}", nk.label, report.summary());
            hazards += report.findings.len() as u64;
        }
    }
    if let Some(path) = &o.sanitize_json {
        let screens: Vec<_> =
            last_races.into_iter().map(|races| (arch.id.clone(), n, races)).collect();
        let json = match sanitize_json(&screens, &seeded) {
            Ok(json) => json,
            Err(e) => CLI.die(&format!("cannot serialize race reports: {e}")),
        };
        if let Err(e) = std::fs::write(path, json) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[sweep] wrote {path}");
    }
    if hazards > 0 {
        eprintln!("[sweep] sanitizer found {hazards} hazard(s)");
        std::process::exit(1);
    }
}

/// Append one JSON-lines record to `path` (both sweep flavors log
/// through here so the open/write error handling stays identical).
fn append_json(path: &str, record: &str) {
    use std::io::Write as _;
    let open = std::fs::OpenOptions::new().create(true).append(true).open(path);
    let mut f = match open {
        Ok(f) => f,
        Err(e) => CLI.die(&format!("cannot open json log `{path}`: {e}")),
    };
    if let Err(e) = f.write_all(record.as_bytes()) {
        CLI.die(&format!("cannot write json log `{path}`: {e}"));
    }
}
