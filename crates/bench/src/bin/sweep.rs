//! Wall-clock benchmark of the full pruned-space selection sweep.
//!
//! ```text
//! sweep [--n N] [--arch kepler|maxwell|pascal] [--repeat R]
//!       [--threads T] [--sweep-mode exhaustive|halving]
//!       [--interp uop|reference] [--instr-budget I] [--json PATH]
//!       [--fault-seed S] [--fault-rate PPM]
//! ```
//!
//! `--threads T` sets the evaluation engine's worker count (default:
//! available parallelism). The winner and its modelled time are
//! bit-identical for any T; only the wall-clock changes. `--json`
//! appends one record per repeat to `PATH` (JSON lines).
//!
//! `--sweep-mode` selects the search strategy (default: `halving`,
//! the successive-halving sweep; `exhaustive` measures every job at
//! full fidelity). `--interp` selects the interpreter hot path
//! (default: `uop`, the predecoded µop engine; `reference` is the
//! lane-wise path, for A/B timing). `--instr-budget I` overrides the
//! per-block dynamic instruction budget (the runaway-loop guard).
//!
//! `--fault-seed S` enables a deterministic fault-injection campaign
//! (bit-flips, shared-atomic retry storms, warp stalls) at
//! `--fault-rate` faults per million instructions (default 200).
//! Faulty attempts are validated against the CPU oracle and retried;
//! the accepted winner is bit-identical to a fault-free sweep, and a
//! `resilience:` summary line reports what was injected, detected,
//! recovered, and quarantined.

use std::time::Instant;

use gpu_sim::{ArchConfig, ExecMode};
use tangram::evaluate::{default_threads, EvalOptions, SweepMode};
use tangram::resilience::ResilienceOptions;
use tangram::select::{select_best_report, select_best_with};
use tangram_passes::planner;

const USAGE: &str = "usage: sweep [--n N] [--arch kepler|maxwell|pascal] [--repeat R]
             [--threads T] [--sweep-mode exhaustive|halving]
             [--interp uop|reference] [--instr-budget I] [--json PATH]
             [--fault-seed S] [--fault-rate PPM]

  --n N             array size in elements (default 4194304)
  --arch ID         architecture: kepler|maxwell|pascal (default maxwell)
  --repeat R        repeat the sweep R times (default 1)
  --threads T       evaluation worker threads (default: available parallelism)
  --sweep-mode M    exhaustive | halving (default halving); winners are
                    bit-identical, halving skips dominated tunings
  --interp M        uop | reference interpreter hot path (default uop)
  --instr-budget I  per-block dynamic instruction budget (runaway guard)
  --json PATH       append one JSON record per repeat to PATH
  --fault-seed S    enable a deterministic fault-injection campaign
  --fault-rate PPM  injected faults per million instructions (default 200)";

/// Flags that take a value, for unknown-flag detection.
const KNOWN_FLAGS: [&str; 10] = [
    "--n",
    "--arch",
    "--repeat",
    "--threads",
    "--sweep-mode",
    "--interp",
    "--instr-budget",
    "--json",
    "--fault-seed",
    "--fault-rate",
];

fn die(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(1);
}

/// Reject any `--flag` that is not in [`KNOWN_FLAGS`], naming it —
/// a typo must not silently fall back to a default.
fn check_flags(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if KNOWN_FLAGS.contains(&a.as_str()) {
            i += 2; // skip the flag's value
            continue;
        }
        die(&format!("unknown flag `{a}`\n{USAGE}"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    check_flags(&args);
    let n: u64 = flag(&args, "--n").unwrap_or(1 << 22);
    let repeat: u64 = flag(&args, "--repeat").unwrap_or(1);
    let threads: usize = flag(&args, "--threads").map_or_else(default_threads, |t: u64| t as usize);
    let sweep_mode: SweepMode = flag(&args, "--sweep-mode").unwrap_or(SweepMode::Halving);
    let interp: ExecMode = flag(&args, "--interp").unwrap_or_default();
    let instr_budget: Option<u64> = flag(&args, "--instr-budget");
    let fault_seed: Option<u64> = flag(&args, "--fault-seed");
    let fault_rate: u32 = flag(&args, "--fault-rate").unwrap_or(200);
    let json_path = flag_str(&args, "--json");
    let arch_id = flag_str(&args, "--arch").unwrap_or_else(|| "maxwell".to_string());
    let Some(arch) = ArchConfig::paper_archs().into_iter().find(|a| a.id == arch_id) else {
        die(&format!("unknown arch id `{arch_id}` (expected kepler|maxwell|pascal)"));
    };
    let opts = EvalOptions::with_threads(threads)
        .with_sweep(sweep_mode)
        .with_interp(interp)
        .with_instr_budget(instr_budget);
    let resilience = fault_seed.map(|seed| ResilienceOptions::campaign(seed, fault_rate));

    for _ in 0..repeat {
        let start = Instant::now();
        let (row, summary) = match &resilience {
            Some(res) => {
                let candidates = planner::enumerate_pruned();
                match select_best_report(&arch, n, &candidates, &opts, res) {
                    Ok((_tuned, row, report)) => (row, Some(report.summary_line())),
                    Err(e) => die(&format!("sweep failed: {e}")),
                }
            }
            None => match select_best_with(&arch, n, &opts) {
                Ok((_tuned, row)) => (row, None),
                Err(e) => die(&format!("sweep failed: {e}")),
            },
        };
        let wall = start.elapsed();
        let mode_id = match sweep_mode {
            SweepMode::Exhaustive => "exhaustive",
            SweepMode::Halving => "halving",
        };
        let interp_id = match interp {
            ExecMode::Predecoded => "uop",
            ExecMode::Reference => "reference",
        };
        println!(
            "sweep arch={} n={} threads={} mode={} interp={} wall_ms={:.1} winner={} block={} coarsen={} time_ns={}",
            arch.id,
            n,
            threads,
            mode_id,
            interp_id,
            wall.as_secs_f64() * 1e3,
            row.version,
            row.block_size,
            row.coarsen,
            row.time_ns
        );
        if let Some(summary) = &summary {
            println!("{summary}");
        }
        if let Some(path) = &json_path {
            let record = format!(
                "{{\"arch\":\"{}\",\"n\":{},\"threads\":{},\"mode\":\"{}\",\"interp\":\"{}\",\"wall_ms\":{:.3},\"winner\":\"{}\",\"block\":{},\"coarsen\":{},\"time_ns\":{}}}\n",
                arch.id,
                n,
                threads,
                mode_id,
                interp_id,
                wall.as_secs_f64() * 1e3,
                row.version,
                row.block_size,
                row.coarsen,
                row.time_ns
            );
            use std::io::Write as _;
            let open = std::fs::OpenOptions::new().create(true).append(true).open(path);
            let mut f = match open {
                Ok(f) => f,
                Err(e) => die(&format!("cannot open json log `{path}`: {e}")),
            };
            if let Err(e) = f.write_all(record.as_bytes()) {
                die(&format!("cannot write json log `{path}`: {e}"));
            }
        }
    }
}

/// Parse `--flag VALUE`; a present flag with a missing or malformed
/// value is a usage error, not a silent fallback to the default.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let i = args.iter().position(|a| a == name)?;
    let Some(raw) = args.get(i + 1) else {
        die(&format!("{name} needs a value"));
    };
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => die(&format!("invalid value `{raw}` for {name}")),
    }
}

fn flag_str(args: &[String], name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => die(&format!("{name} needs a value")),
    }
}
