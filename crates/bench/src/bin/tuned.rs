//! `tuned` — the autotuning daemon and its client, on one binary.
//!
//! ```text
//! tuned serve    [--socket PATH] [--workers W] [--max-queue Q]
//!                [--tenant-cap C] [--queue-wait D] [--threads T]
//!                [--cache-dir PATH] [--cache rw|ro|off]
//! tuned query    [--socket PATH] [--arch ID] [--n N] [--workload W]
//!                [--tenant ID] [--count K] [--concurrent]
//! tuned stats    [--socket PATH]
//! tuned shutdown [--socket PATH]
//! tuned bench    [--json PATH] [--threads T]
//! ```
//!
//! `serve` runs the daemon from `tangram::serve` on a local unix
//! socket until SIGINT/SIGTERM or a client `shutdown` request; it
//! answers line-delimited JSON best-variant queries with in-flight
//! deduplication, nearest-bucket warm starts (via `--cache-dir`), and
//! an admission gate that sheds overload with typed busy responses.
//!
//! `query` asks a running daemon for the best variant and prints one
//! line per answer in the `sweep` bin's winner style — the trailing
//! `winner=… block=… coarsen=… time_ns=…` is byte-identical to what
//! `sweep --arch A --n N` prints for the same shape. `--workload W`
//! queries a typed workload (`argmax`, `hist64`, …); non-sum answers
//! carry a `workload=` token and their tails match
//! `sweep --workload W` byte for byte. `--count K`
//! repeats the query K times; with `--concurrent` the K queries are
//! issued from K parallel connections (a dedup burst: the daemon runs
//! one sweep and fans it out).
//!
//! `bench` runs the whole serving stack in-process — cold, warm,
//! seeded, and dedup-burst phases on every paper architecture — and
//! reports per-phase latency percentiles, daemon qps, and a byte-
//! identity cross-check against direct storeless sweeps (`--json`
//! writes the machine-readable report, e.g. `BENCH_serve.json`).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use gpu_sim::{ArchConfig, ExecMode};
use serde::{Serialize, Value};
use tangram::evaluate::{EvalOptions, SweepMode};
use tangram::serve::{
    install_signal_handlers, Client, Query, ServeConfig, Server, WireAnswer, WireReply,
};
use tangram::store::CacheMode;
use tangram::Session;
use tangram_bench::cli::Cli;

const USAGE: &str = "usage: tuned <serve|query|stats|shutdown|bench> [flags]

  tuned serve    [--socket PATH] [--workers W] [--max-queue Q]
                 [--tenant-cap C] [--queue-wait D] [--threads T]
                 [--cache-dir PATH] [--cache rw|ro|off]
  tuned query    [--socket PATH] [--arch ID] [--n N] [--workload W]
                 [--tenant ID] [--count K] [--concurrent]
  tuned stats    [--socket PATH]
  tuned shutdown [--socket PATH]
  tuned bench    [--json PATH] [--threads T]

  --socket PATH    daemon unix socket (default /tmp/tangram-tuned.sock)
  --workers W      concurrent sweeps (default 2)
  --max-queue Q    admission queue depth beyond the active sweeps (default 16)
  --tenant-cap C   per-tenant concurrency cap (default 8)
  --queue-wait D   longest queue wait before shedding, e.g. 500ms|30s|1m
                   (default 500ms; 0ms sheds the moment workers are busy)
  --threads T      worker threads inside each sweep (default 1)
  --cache-dir PATH persistent tuning store: exact hits answer warm,
                   near misses seed the sweep from the nearest n-bucket
  --cache MODE     rw | ro | off store usage (default rw)
  --arch ID        query architecture: kepler|maxwell|pascal (default maxwell)
  --n N            query array size in elements (default 4194304)
  --workload W     sum | max | min | argmax | argmin | hist<bins>
                   (default sum; non-sum answers carry a workload= token)
  --tenant ID      tenant the query is attributed to (default `default`)
  --count K        issue the query K times (default 1)
  --concurrent     issue the K queries from K parallel connections
  --json PATH      write the bench report JSON to PATH";

const CLI: Cli = Cli {
    prog: "tuned",
    usage: USAGE,
    enabled: &[
        "--socket",
        "--workers",
        "--max-queue",
        "--tenant-cap",
        "--queue-wait",
        "--threads",
        "--cache-dir",
        "--cache",
        "--arch",
        "--n",
        "--workload",
        "--tenant",
        "--count",
        "--concurrent",
        "--json",
    ],
    allow_bare: true,
};

fn socket_path(o: &tangram_bench::cli::CliOpts) -> PathBuf {
    o.socket.clone().map_or_else(|| ServeConfig::default().socket, PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = CLI.parse(&args);
    let cmd = match o.bare.as_slice() {
        [cmd] => cmd.clone(),
        [] => CLI.die("missing subcommand (want serve|query|stats|shutdown|bench)"),
        more => CLI.die(&format!(
            "one subcommand expected, got `{}`",
            more.join(" ")
        )),
    };
    match cmd.as_str() {
        "serve" => serve(&o),
        "query" => query(&o),
        "stats" => stats(&o),
        "shutdown" => shutdown(&o),
        "bench" => bench(&o),
        other => CLI.die(&format!(
            "unknown subcommand `{other}` (want serve|query|stats|shutdown|bench)"
        )),
    }
}

fn serve(o: &tangram_bench::cli::CliOpts) -> ! {
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        socket: socket_path(o),
        workers: o.workers.unwrap_or(defaults.workers),
        max_queue: o.max_queue.unwrap_or(defaults.max_queue),
        tenant_cap: o.tenant_cap.unwrap_or(defaults.tenant_cap),
        queue_wait: o.queue_wait.unwrap_or(defaults.queue_wait),
        sweep_threads: o.threads.unwrap_or(1),
        cache_dir: match o.cache() {
            Ok(c) => c.as_ref().map(|(dir, _)| PathBuf::from(dir)),
            Err(e) => CLI.die(&e),
        },
        cache_mode: match o.cache() {
            Ok(c) => c.map(|(_, mode)| mode).unwrap_or_default(),
            Err(e) => CLI.die(&e),
        },
    };
    let socket = cfg.socket.clone();
    let server = match Server::bind(cfg.clone(), ArchConfig::paper_archs()) {
        Ok(s) => s,
        Err(e) => CLI.die(&format!("cannot bind `{}`: {e}", socket.display())),
    };
    println!(
        "tuned: serving on {} (workers={} max_queue={} tenant_cap={} queue_wait={}ms cache={})",
        socket.display(),
        cfg.workers,
        cfg.max_queue,
        cfg.tenant_cap,
        cfg.queue_wait.as_millis(),
        cfg.cache_dir.as_ref().map_or("off".to_string(), |d| d.display().to_string()),
    );
    let shutdown = install_signal_handlers();
    match server.run(shutdown) {
        Ok(m) => {
            println!(
                "tuned: served {} queries (ok={} busy={} errors={} cold={} seeded={} warm={} dedup={} sweeps={}) p50={:.1}ms p99={:.1}ms qps={:.2}",
                m.queries, m.ok, m.busy, m.errors, m.cold, m.seeded, m.warm, m.dedup,
                m.sweeps, m.p50_ms, m.p99_ms, m.qps
            );
            std::process::exit(0);
        }
        Err(e) => CLI.die(&format!("serve failed: {e}")),
    }
}

fn build_query(o: &tangram_bench::cli::CliOpts) -> Query {
    let arch = o.arch.clone().unwrap_or_else(|| "maxwell".to_string());
    let mut q = Query::sweep(&arch, o.n.unwrap_or(1 << 22));
    if let Some(w) = o.workload {
        q = q.with_workload(w);
    }
    if let Some(tenant) = &o.tenant {
        q = q.tenant(tenant);
    }
    q
}

fn answer_line(q: &Query, a: &WireAnswer, latency_ms: f64) -> String {
    // Non-sum answers carry the echoed workload id; legacy `sum`
    // lines stay byte-identical to the pre-workload format.
    let workload = a.workload.as_ref().map(|w| format!(" workload={w}")).unwrap_or_default();
    format!(
        "query arch={} n={}{workload} served={} latency_ms={:.1} {}",
        q.arch, q.n, a.served, latency_ms, a.line
    )
}

fn query(o: &tangram_bench::cli::CliOpts) -> ! {
    let socket = socket_path(o);
    let q = build_query(o);
    let count = o.count.unwrap_or(1);
    let mut busy = 0u64;
    let mut errors = 0u64;
    let mut lines = Vec::new();
    if o.concurrent {
        let barrier = Arc::new(Barrier::new(count));
        let handles: Vec<_> = (0..count)
            .map(|_| {
                let socket = socket.clone();
                let q = q.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || -> Result<(String, bool), String> {
                    let mut client = Client::connect(&socket)
                        .map_err(|e| format!("cannot connect `{}`: {e}", socket.display()))?;
                    barrier.wait();
                    let t0 = Instant::now();
                    let reply = client.query(&q).map_err(|e| format!("query failed: {e}"))?;
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    match reply {
                        WireReply::Ok(a) => Ok((answer_line(&q, &a, ms), false)),
                        WireReply::Busy(reason) => {
                            Ok((format!("query arch={} n={} busy reason=\"{reason}\"", q.arch, q.n), true))
                        }
                        WireReply::Error(e) => Err(format!("daemon error: {e}")),
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("query thread panicked") {
                Ok((line, was_busy)) => {
                    busy += u64::from(was_busy);
                    lines.push(line);
                }
                Err(e) => {
                    errors += 1;
                    lines.push(format!("query error: {e}"));
                }
            }
        }
    } else {
        let mut client = match Client::connect(&socket) {
            Ok(c) => c,
            Err(e) => CLI.die(&format!("cannot connect `{}`: {e}", socket.display())),
        };
        for _ in 0..count {
            let t0 = Instant::now();
            match client.query(&q) {
                Ok(WireReply::Ok(a)) => {
                    lines.push(answer_line(&q, &a, t0.elapsed().as_secs_f64() * 1e3));
                }
                Ok(WireReply::Busy(reason)) => {
                    busy += 1;
                    lines.push(format!("query arch={} n={} busy reason=\"{reason}\"", q.arch, q.n));
                }
                Ok(WireReply::Error(e)) => {
                    errors += 1;
                    lines.push(format!("query error: {e}"));
                }
                Err(e) => CLI.die(&format!("query failed: {e}")),
            }
        }
    }
    for line in &lines {
        println!("{line}");
    }
    if errors > 0 {
        std::process::exit(1);
    }
    if busy > 0 {
        std::process::exit(2);
    }
    std::process::exit(0);
}

fn stats(o: &tangram_bench::cli::CliOpts) -> ! {
    let socket = socket_path(o);
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => CLI.die(&format!("cannot connect `{}`: {e}", socket.display())),
    };
    match client.stats() {
        Ok(v) => {
            match serde_json::to_string_pretty(&v) {
                Ok(json) => println!("{json}"),
                Err(e) => CLI.die(&format!("stats serialization failed: {e}")),
            }
            std::process::exit(0);
        }
        Err(e) => CLI.die(&format!("stats failed: {e}")),
    }
}

fn shutdown(o: &tangram_bench::cli::CliOpts) -> ! {
    let socket = socket_path(o);
    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => CLI.die(&format!("cannot connect `{}`: {e}", socket.display())),
    };
    match client.shutdown() {
        Ok(()) => {
            println!("tuned: server shut down");
            std::process::exit(0);
        }
        Err(e) => CLI.die(&format!("shutdown failed: {e}")),
    }
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

/// Sizes of the bench phases: cold/warm at `COLD_N`, the seeded query
/// one n-bucket up, and the dedup burst two buckets up (uncached).
const COLD_N: u64 = 65_536;
const SEEDED_N: u64 = 262_144;
const BURST_N: u64 = 1_048_576;
const WARM_REPEATS: usize = 5;
const BURST_CLIENTS: usize = 6;

fn pctl(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// The `sweep` bin's winner tail for a direct storeless sweep —
/// ground truth for the byte-identity cross-check.
fn direct_line(arch: &ArchConfig, n: u64, threads: usize) -> String {
    let report = Session::new(arch.clone())
        .eval(
            EvalOptions::with_threads(threads)
                .with_sweep(SweepMode::Halving)
                .with_interp(ExecMode::Compiled),
        )
        .select_best(n)
        .unwrap_or_else(|e| CLI.die(&format!("direct sweep failed ({} n={n}): {e}", arch.id)));
    format!(
        "winner={} block={} coarsen={} time_ns={}",
        report.row.version, report.row.block_size, report.row.coarsen, report.row.time_ns
    )
}

struct Phase {
    latencies_ms: Vec<f64>,
    served: Vec<String>,
}

impl Phase {
    fn value(&mut self) -> Value {
        let p50 = pctl(&mut self.latencies_ms, 0.50);
        let p99 = pctl(&mut self.latencies_ms, 0.99);
        let mut served: Vec<(String, u64)> = Vec::new();
        for s in &self.served {
            match served.iter_mut().find(|(k, _)| k == s) {
                Some((_, c)) => *c += 1,
                None => served.push((s.clone(), 1)),
            }
        }
        Value::Map(vec![
            ("queries".to_string(), (self.latencies_ms.len() as u64).to_value()),
            ("p50_ms".to_string(), p50.to_value()),
            ("p99_ms".to_string(), p99.to_value()),
            (
                "served".to_string(),
                Value::Map(served.into_iter().map(|(k, c)| (k, c.to_value())).collect()),
            ),
        ])
    }
}

fn expect_ok(reply: std::io::Result<WireReply>, what: &str) -> WireAnswer {
    match reply {
        Ok(WireReply::Ok(a)) => a,
        Ok(WireReply::Busy(reason)) => CLI.die(&format!("{what}: unexpected busy: {reason}")),
        Ok(WireReply::Error(e)) => CLI.die(&format!("{what}: daemon error: {e}")),
        Err(e) => CLI.die(&format!("{what}: {e}")),
    }
}

fn bench(o: &tangram_bench::cli::CliOpts) -> ! {
    let threads = o.threads.unwrap_or(1);
    let pid = std::process::id();
    let socket = std::env::temp_dir().join(format!("tangram-bench-{pid}.sock"));
    let cache = std::env::temp_dir().join(format!("tangram-bench-cache-{pid}"));
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&cache);
    let cfg = ServeConfig {
        socket: socket.clone(),
        workers: 4,
        max_queue: 16,
        tenant_cap: 16,
        queue_wait: Duration::from_secs(5),
        sweep_threads: threads,
        cache_dir: Some(cache.clone()),
        cache_mode: CacheMode::ReadWrite,
    };
    let server = match Server::bind(cfg, ArchConfig::paper_archs()) {
        Ok(s) => s,
        Err(e) => CLI.die(&format!("cannot bind `{}`: {e}", socket.display())),
    };
    let service = server.service();
    let stop = Arc::new(AtomicBool::new(false));
    let server_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run(&stop))
    };

    let mut arch_values = Vec::new();
    let mut identity_ok = true;
    let mut warm_speedups = Vec::new();
    for arch in ArchConfig::paper_archs() {
        eprintln!("bench: {} cold/warm/seeded/burst ...", arch.id);
        let mut client = match Client::connect(&socket) {
            Ok(c) => c,
            Err(e) => CLI.die(&format!("cannot connect `{}`: {e}", socket.display())),
        };
        // Ground truth before the daemon phases so a daemon bug
        // cannot leak into the reference lines via the cache.
        let truth_cold = direct_line(&arch, COLD_N, threads);
        let truth_seeded = direct_line(&arch, SEEDED_N, threads);
        let truth_burst = direct_line(&arch, BURST_N, threads);

        let mut check = |line: &str, truth: &str, what: &str| {
            if line != truth {
                identity_ok = false;
                eprintln!(
                    "bench: IDENTITY MISMATCH ({} {what}):\n  daemon `{line}`\n  direct `{truth}`",
                    arch.id
                );
            }
        };

        // Cold: first query at COLD_N on a fresh store.
        let q = Query::sweep(&arch.id, COLD_N);
        let t0 = Instant::now();
        let a = expect_ok(client.query(&q), "cold query");
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        check(&a.line, &truth_cold, "cold");
        if a.served != "cold" {
            CLI.die(&format!("cold query served={} (want cold)", a.served));
        }

        // Warm: repeats of the same exact shape hit the store.
        let mut warm = Phase { latencies_ms: Vec::new(), served: Vec::new() };
        for _ in 0..WARM_REPEATS {
            let t0 = Instant::now();
            let a = expect_ok(client.query(&q), "warm query");
            warm.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            check(&a.line, &truth_cold, "warm");
            if a.served != "warm" {
                CLI.die(&format!("warm query served={} (want warm)", a.served));
            }
            warm.served.push(a.served);
        }
        let warm_p50 = pctl(&mut warm.latencies_ms.clone(), 0.50);
        warm_speedups.push((arch.id.clone(), cold_ms / warm_p50.max(1e-9)));

        // Seeded: one n-bucket up, warm-started from the cold record.
        let q_seed = Query::sweep(&arch.id, SEEDED_N);
        let t0 = Instant::now();
        let a = expect_ok(client.query(&q_seed), "seeded query");
        let seeded_ms = t0.elapsed().as_secs_f64() * 1e3;
        check(&a.line, &truth_seeded, "seeded");
        if a.served != "seeded" {
            CLI.die(&format!("seeded query served={} (want seeded)", a.served));
        }

        // Dedup burst: concurrent identical queries at an uncached n.
        let barrier = Arc::new(Barrier::new(BURST_CLIENTS));
        let handles: Vec<_> = (0..BURST_CLIENTS)
            .map(|_| {
                let socket = socket.clone();
                let q = Query::sweep(&arch.id, BURST_N);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(&socket).expect("burst connect");
                    barrier.wait();
                    let t0 = Instant::now();
                    let reply = client.query(&q);
                    (reply, t0.elapsed().as_secs_f64() * 1e3)
                })
            })
            .collect();
        let mut burst = Phase { latencies_ms: Vec::new(), served: Vec::new() };
        for h in handles {
            let (reply, ms) = h.join().expect("burst thread panicked");
            let a = expect_ok(reply, "burst query");
            check(&a.line, &truth_burst, "burst");
            burst.latencies_ms.push(ms);
            burst.served.push(a.served);
        }
        let deduped = burst.served.iter().filter(|s| s.as_str() == "dedup").count();

        let mut warm_phase = warm;
        let mut burst_phase = burst;
        arch_values.push(Value::Map(vec![
            ("arch".to_string(), arch.id.to_value()),
            ("cold_ms".to_string(), cold_ms.to_value()),
            ("warm".to_string(), warm_phase.value()),
            ("seeded_ms".to_string(), seeded_ms.to_value()),
            ("dedup_burst".to_string(), burst_phase.value()),
            ("burst_deduped".to_string(), (deduped as u64).to_value()),
            ("warm_speedup".to_string(), (cold_ms / warm_p50.max(1e-9)).to_value()),
        ]));
        eprintln!(
            "bench: {} cold={cold_ms:.1}ms warm_p50={warm_p50:.2}ms seeded={seeded_ms:.1}ms burst_deduped={deduped}/{}",
            arch.id,
            BURST_CLIENTS - 1
        );
    }

    // Final daemon-side metrics, then a clean client-driven shutdown.
    let totals = service.metrics();
    let mut client = Client::connect(&socket).unwrap_or_else(|e| CLI.die(&format!("{e}")));
    client.shutdown().unwrap_or_else(|e| CLI.die(&format!("shutdown failed: {e}")));
    match server_thread.join() {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => CLI.die(&format!("server failed: {e}")),
        Err(_) => CLI.die("server thread panicked"),
    }
    let _ = std::fs::remove_dir_all(&cache);

    let min_speedup = warm_speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let report = Value::Map(vec![
        ("bench".to_string(), "serve".to_value()),
        (
            "config".to_string(),
            Value::Map(vec![
                ("workers".to_string(), 4u64.to_value()),
                ("sweep_threads".to_string(), (threads as u64).to_value()),
                ("warm_repeats".to_string(), (WARM_REPEATS as u64).to_value()),
                ("burst_clients".to_string(), (BURST_CLIENTS as u64).to_value()),
                ("cold_n".to_string(), COLD_N.to_value()),
                ("seeded_n".to_string(), SEEDED_N.to_value()),
                ("burst_n".to_string(), BURST_N.to_value()),
            ]),
        ),
        ("archs".to_string(), Value::Seq(arch_values)),
        ("totals".to_string(), totals.to_value()),
        ("identity_ok".to_string(), identity_ok.to_value()),
        ("warm_speedup_min".to_string(), min_speedup.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| CLI.die(&format!("report serialization failed: {e}")));
    if let Some(path) = &o.json {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| CLI.die(&format!("cannot open `{path}`: {e}")));
        f.write_all(json.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| CLI.die(&format!("cannot write `{path}`: {e}")));
        eprintln!("bench: wrote {path}");
    } else {
        println!("{json}");
    }
    if !identity_ok {
        CLI.die("daemon answers are not byte-identical to direct sweeps");
    }
    if min_speedup < 5.0 {
        CLI.die(&format!(
            "warm p50 speedup {min_speedup:.1}x below the 5x floor"
        ));
    }
    eprintln!(
        "bench: ok — identity clean, warm speedup ≥ {min_speedup:.0}x, dedup {} of {} burst queries",
        totals.dedup, totals.queries
    );
    std::process::exit(0);
}
