//! Figure/table regeneration CLI.
//!
//! ```text
//! figures table-search-space      # §IV-B counts
//! figures fig6                    # the 16 versions and their composition
//! figures fig7 [--max-size N]     # best-version speedups, 3 architectures
//! figures fig8|fig9|fig10 [...]   # per-architecture detail
//! figures workloads [--max-size N]  # per-workload winner table
//! figures all [--max-size N] [--json PATH] [--threads N]
//! ```
//!
//! `workloads` sweeps the typed workload menu — both arg-reductions,
//! a 64-bin histogram, inclusive/exclusive scans (`f32` and `u32`),
//! and the segmented sum — on every paper architecture and prints the
//! winning schedule per (workload, arch, n). Every winner is
//! validated against the exact CPU oracle inside the sweep, so a row
//! in this table is also a correctness witness.
//!
//! `--threads N` sets the evaluation engine's worker count (default:
//! available parallelism). The output is bit-identical for any N.
//!
//! `--sweep-mode exhaustive|halving` selects the search strategy
//! (default: exhaustive), `--interp uop|reference|compiled` the
//! interpreter hot path (default: the predecoded µop engine), and
//! `--instr-budget I` overrides the per-block dynamic instruction
//! budget. See `figures --help` for the full flag list.
//!
//! `--fault-seed S` runs the sweeps as a deterministic fault-injection
//! campaign at `--fault-rate PPM` (default 200) faults per million
//! instructions: misbehaving candidates are retried and quarantined
//! instead of aborting the figure, the reported winners stay
//! bit-identical to a clean run, and a `resilience:` summary line is
//! printed per architecture.
//!
//! `--profile` profiles every sweep winner (figure output is
//! unchanged), `--trace-out PATH` writes the last profiled winner's
//! Chrome `trace_event` JSON, and `--metrics-json PATH` writes one
//! [`tangram::metrics::ProfileReport`] covering every swept
//! architecture, the per-architecture spotlight kernels (atomic
//! grid-combine and shuffle-tree counters, the §IV narrative), and
//! the baseline-cache hit rates. Both output flags imply `--profile`.
//!
//! `--sanitize` race-screens every candidate of every sweep (figure
//! output is unchanged for the race-free corpus; racy variants would
//! be quarantined), printing one `sanitize:` line per architecture.
//! `--sanitize-json PATH` writes the per-architecture race reports,
//! and `--seed-racy` additionally sanitizes the deliberately-racy
//! negative corpus. Both imply `--sanitize`; the process exits
//! nonzero when any hazard was found.
//!
//! `--cache-dir PATH` attaches the persistent tuning store rooted at
//! `PATH` (`--cache rw|ro|off` sets its usage, default `rw`): every
//! per-size sweep warm-starts from a cached, re-confirmed winner when
//! one exists, the figure output stays bit-identical to a cold run,
//! and one aggregated `cache:` line is printed per architecture.

use std::fmt::Write as _;

use gpu_sim::ArchConfig;
use serde::Serialize;
use tangram::evaluate::SweepMode;
use tangram::metrics::{spotlight_profiles, ProfileReport};
use tangram::paper_sizes;
use tangram::Session;
use tangram::api::CandidateRaces;
use tangram::{Dtype, Workload, WorkloadKey};
use tangram_bench::cli::{Cli, CliOpts};
use tangram_bench::{
    arch_series_session, cache_series_line, geomean_speedup, max_speedup, sanitize_json,
    sanitize_summary_line, seeded_racy_reports, ArchSeries, BaselineCache,
};
use tangram_passes::planner;

const USAGE: &str = "usage: figures [table-search-space|fig6|fig7|fig8|fig9|fig10|workloads|all]
               [--max-size N] [--json PATH] [--threads T]
               [--sweep-mode exhaustive|halving] [--interp uop|reference|compiled]
               [--instr-budget I] [--fault-seed S] [--fault-rate PPM]
               [--profile] [--trace-out PATH] [--metrics-json PATH]
               [--sanitize] [--sanitize-json PATH] [--seed-racy]
               [--cache-dir PATH] [--cache rw|ro|off]

  --max-size N      largest array size swept (default 268435456)
  --json PATH       write the swept series to PATH as JSON
  --threads T       evaluation worker threads (default: available parallelism)
  --sweep-mode M    exhaustive | halving (default exhaustive); winners are
                    bit-identical, halving skips dominated tunings
  --interp M        uop | reference | compiled interpreter hot path (default uop)
  --instr-budget I  per-block dynamic instruction budget (runaway guard)
  --fault-seed S    enable a deterministic fault-injection campaign
  --fault-rate PPM  injected faults per million instructions (default 200)
  --profile         profile sweep winners (figure output is unchanged)
  --trace-out PATH  write the last profiled winner's Chrome trace JSON
  --metrics-json PATH  write the all-architecture ProfileReport JSON
                    (--trace-out/--metrics-json imply --profile)
  --sanitize        race-sanitize sweep candidates; adds `sanitize:` lines
                    and exits nonzero when any hazard was found
  --sanitize-json PATH  write the per-architecture race reports to PATH
  --seed-racy       also sanitize the deliberately-racy negative corpus
                    (--sanitize-json/--seed-racy imply --sanitize)
  --cache-dir PATH  persistent tuning store; warm-starts repeat sweeps
                    from re-confirmed cached winners (adds `cache:` lines)
  --cache MODE      rw | ro | off store usage (default rw; needs --cache-dir)";

const CLI: Cli = Cli {
    prog: "figures",
    usage: USAGE,
    enabled: &[
        "--max-size",
        "--json",
        "--threads",
        "--sweep-mode",
        "--interp",
        "--instr-budget",
        "--fault-seed",
        "--fault-rate",
        "--profile",
        "--trace-out",
        "--metrics-json",
        "--sanitize",
        "--sanitize-json",
        "--seed-racy",
        "--cache-dir",
        "--cache",
    ],
    allow_bare: true,
};

/// Everything one profiled/sanitized run accumulates for
/// `--trace-out` / `--metrics-json` / `--sanitize-json`: sweep
/// metrics + spotlights per swept arch, the last winner trace, the
/// per-architecture sanitizer screens, the running hazard count, and
/// (at the end) the baseline cache rates.
struct Observed {
    report: ProfileReport,
    trace: Option<gpu_sim::profile::Trace>,
    screens: Vec<(String, u64, Vec<CandidateRaces>)>,
    hazards: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = CLI.parse(&args);
    if let Err(e) = o.cache() {
        CLI.die(&e);
    }
    let cmd = o.bare.first().map(String::as_str).unwrap_or("all");
    let max_size = o.max_size.unwrap_or(256 << 20);
    let json_path = o.json.clone();

    let sizes: Vec<u64> = paper_sizes().into_iter().filter(|&n| n <= max_size).collect();
    let mut obs =
        Observed { report: ProfileReport::new(), trace: None, screens: Vec::new(), hazards: 0 };
    match cmd {
        "table-search-space" => print_search_space(),
        "fig6" => print_fig6(),
        "fig7" => {
            let all = run_all(&o, &sizes, &mut obs);
            print_fig7(&all);
            maybe_write_json(&all, json_path.as_deref());
        }
        "fig8" | "fig9" | "fig10" => {
            let arch = match cmd {
                "fig8" => ArchConfig::kepler_k40c(),
                "fig9" => ArchConfig::maxwell_gtx980(),
                _ => ArchConfig::pascal_p100(),
            };
            let mut baselines = BaselineCache::new();
            let series = run_one(&o, &arch, &sizes, &mut baselines, &mut obs);
            obs.report.baselines = Some(baselines.metrics());
            print_detail(cmd, &arch, &series);
            maybe_write_json(std::slice::from_ref(&series), json_path.as_deref());
        }
        "workloads" => {
            let rows = run_workload_table(&o, max_size);
            print_workload_table(&rows);
            if let Some(path) = json_path.as_deref() {
                let json = match serde_json::to_string_pretty(&rows) {
                    Ok(json) => json,
                    Err(e) => CLI.die(&format!("cannot serialize workload table: {e}")),
                };
                if let Err(e) = std::fs::write(path, &json) {
                    CLI.die(&format!("cannot write `{path}`: {e}"));
                }
                eprintln!("[figures] wrote {path}");
            }
        }
        "all" => {
            print_search_space();
            println!();
            print_fig6();
            println!();
            let all = run_all(&o, &sizes, &mut obs);
            print_fig7(&all);
            println!();
            let names = ["fig8", "fig9", "fig10"];
            for (series, (arch, name)) in
                all.iter().zip(ArchConfig::paper_archs().into_iter().zip(names))
            {
                print_detail(name, &arch, series);
                println!();
            }
            maybe_write_json(&all, json_path.as_deref());
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    write_observability(&o, &obs);
}

fn run_one(
    o: &CliOpts,
    arch: &ArchConfig,
    sizes: &[u64],
    baselines: &mut BaselineCache,
    obs: &mut Observed,
) -> ArchSeries {
    let mut session = Session::new(arch.clone())
        .eval(o.eval_options(SweepMode::Exhaustive, gpu_sim::ExecMode::default()))
        .profiled(o.profiling())
        .sanitized(o.sanitizing());
    let campaign = o.resilience();
    if let Some(res) = campaign {
        session = session.resilience(res);
    }
    // `main` validated the flag pairing up front; a well-formed pair
    // configures the persistent tuning store on this session.
    if let Ok(Some((dir, mode))) = o.cache() {
        session = session.store(dir).cache_mode(mode);
    }
    let rep = match arch_series_session(&session, sizes, baselines) {
        Ok(out) => out,
        Err(e) => CLI.die(&format!("figure sweep on {} failed: {e}", arch.id)),
    };
    if campaign.is_some() {
        println!("{} [{}]", rep.resilience.summary_line(), arch.id);
    }
    if let Some(s) = rep.metrics.iter().rev().find_map(|m| m.sanitize.as_ref()) {
        println!("{} [{}]", sanitize_summary_line(s), arch.id);
        obs.hazards += s.findings as u64;
    }
    if let Some(line) = cache_series_line(&rep.metrics) {
        println!("{line} [{}]", arch.id);
    }
    if let Some(races) = rep.races {
        let n = sizes.last().copied().unwrap_or(0);
        obs.screens.push((arch.id.clone(), n, races));
    }
    obs.report.sweeps.extend(rep.metrics);
    if rep.trace.is_some() {
        obs.trace = rep.trace;
    }
    if o.profiling() {
        match spotlight_profiles(arch) {
            Ok(spots) => obs.report.spotlights.extend(spots),
            Err(e) => CLI.die(&format!("spotlight profiling on {} failed: {e}", arch.id)),
        }
    }
    rep.series
}

fn run_all(o: &CliOpts, sizes: &[u64], obs: &mut Observed) -> Vec<ArchSeries> {
    // One baseline cache across all three architectures: Fig. 7 and
    // the per-arch detail figures then share each (arch, n) baseline
    // measurement instead of repeating it.
    let mut baselines = BaselineCache::new();
    let all = ArchConfig::paper_archs()
        .iter()
        .map(|arch| {
            eprintln!("[figures] sweeping {} ...", arch.name);
            run_one(o, arch, sizes, &mut baselines, obs)
        })
        .collect();
    obs.report.baselines = Some(baselines.metrics());
    all
}

/// Write `--trace-out` / `--metrics-json`, if requested. A no-sweep
/// command (`fig6`, `table-search-space`) has nothing to observe and
/// dies rather than writing an empty file.
fn write_observability(o: &CliOpts, obs: &Observed) {
    if let Some(path) = &o.trace_out {
        let Some(trace) = &obs.trace else {
            CLI.die("no trace captured (--trace-out needs a sweeping command)");
        };
        if let Err(e) = std::fs::write(path, trace.to_chrome_json()) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[figures] wrote {path}");
    }
    if let Some(path) = &o.metrics_json {
        if obs.report.sweeps.is_empty() {
            CLI.die("no metrics captured (--metrics-json needs a sweeping command)");
        }
        let json = match obs.report.to_json() {
            Ok(json) => json,
            Err(e) => CLI.die(&format!("cannot serialize metrics: {e}")),
        };
        if let Err(e) = std::fs::write(path, json) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[figures] {}", obs.report.summary_line());
        eprintln!("[figures] wrote {path}");
    }

    let mut seeded = Vec::new();
    if o.seed_racy {
        // The negative corpus is architecture-independent; one
        // representative architecture keeps the smoke mode fast (the
        // differential test harness covers all three × both
        // interpreters).
        seeded = match seeded_racy_reports(&ArchConfig::maxwell_gtx980()) {
            Ok(s) => s,
            Err(e) => CLI.die(&format!("seed-racy run failed: {e}")),
        };
        for (nk, report) in &seeded {
            println!("seed-racy {}: {}", nk.label, report.summary());
        }
    }
    let seeded_hazards: u64 = seeded.iter().map(|(_, r)| r.findings.len() as u64).sum();
    if let Some(path) = &o.sanitize_json {
        let json = match sanitize_json(&obs.screens, &seeded) {
            Ok(json) => json,
            Err(e) => CLI.die(&format!("cannot serialize race reports: {e}")),
        };
        if let Err(e) = std::fs::write(path, json) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[figures] wrote {path}");
    }
    let hazards = obs.hazards + seeded_hazards;
    if hazards > 0 {
        eprintln!("[figures] sanitizer found {hazards} hazard(s)");
        std::process::exit(1);
    }
}

fn maybe_write_json(series: &[ArchSeries], path: Option<&str>) {
    if let Some(path) = path {
        let json = match serde_json::to_string_pretty(series) {
            Ok(json) => json,
            Err(e) => CLI.die(&format!("cannot serialize series: {e}")),
        };
        if let Err(e) = std::fs::write(path, &json) {
            CLI.die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[figures] wrote {path}");
    }
}

// ---- per-workload selection table ------------------------------------------

/// Sizes of the per-workload table: one mid-size sweep where shared
/// privatization shines and one large enough for grid-level effects.
/// Both stay small relative to the reduce figures — every workload
/// winner is re-validated against the CPU oracle, which runs the full
/// grid functionally.
const WORKLOAD_TABLE_SIZES: [u64; 2] = [16_384, 262_144];

/// The typed workloads of the selection table.
fn table_workloads() -> Vec<WorkloadKey> {
    vec![
        WorkloadKey::argmax(),
        WorkloadKey::argmin(),
        WorkloadKey::histogram(64),
        WorkloadKey::scan(Dtype::F32),
        WorkloadKey::scan(Dtype::U32),
        WorkloadKey::exscan(Dtype::F32),
        WorkloadKey::segsum(Dtype::F32),
    ]
}

/// One row of the per-workload table, as printed and as `--json`.
#[derive(Serialize)]
struct WorkloadFigRow {
    arch: String,
    row: tangram::WorkloadRow,
}

fn run_workload_table(o: &CliOpts, max_size: u64) -> Vec<WorkloadFigRow> {
    let sizes: Vec<u64> =
        WORKLOAD_TABLE_SIZES.iter().copied().filter(|&n| n <= max_size).collect();
    if sizes.is_empty() {
        CLI.die("--max-size below the smallest workload-table size (16384)");
    }
    let mut rows = Vec::new();
    for arch in ArchConfig::paper_archs() {
        eprintln!("[figures] workload table on {} ...", arch.name);
        let mut session = Session::new(arch.clone())
            .eval(o.eval_options(SweepMode::Halving, gpu_sim::ExecMode::default()))
            .sanitized(o.sanitizing());
        if let Ok(Some((dir, mode))) = o.cache() {
            session = session.store(dir).cache_mode(mode);
        }
        for key in table_workloads() {
            for &n in &sizes {
                let report = match session.run(&Workload::new(key, n)) {
                    Ok(r) => r,
                    Err(e) => {
                        CLI.die(&format!("workload sweep {key} on {} failed: {e}", arch.id))
                    }
                };
                let Some(rep) = report.as_workload() else {
                    CLI.die(&format!("{key} did not produce a workload report"));
                };
                rows.push(WorkloadFigRow { arch: arch.id.clone(), row: rep.row.clone() });
            }
        }
    }
    rows
}

fn print_workload_table(rows: &[WorkloadFigRow]) {
    println!("== per-workload selection (winning schedule per architecture) ==");
    println!(
        "{:>12} {:>8} {:>10} {:>8} {:>6} {:>8} {:>16}",
        "workload", "arch", "n", "variant", "block", "coarsen", "time_ns"
    );
    for r in rows {
        println!(
            "{:>12} {:>8} {:>10} {:>8} {:>6} {:>8} {:>16.2}",
            r.row.workload.id(),
            r.arch,
            r.row.n,
            r.row.variant,
            r.row.block_size,
            r.row.coarsen,
            r.row.time_ns
        );
    }
}

// ---- §IV-B table -----------------------------------------------------------

fn print_search_space() {
    let r = planner::search_space_report();
    println!("== Search space (paper §IV-B) ==");
    println!("{:<42}{:>10}{:>10}", "category", "ours", "paper");
    let rows = [
        ("original Tangram versions", r.original, r.paper.0),
        ("total after extensions", r.total, r.paper.1),
        ("new: global atomics only", r.global_atomic_only, r.paper.2),
        ("new: shared-memory atomics", r.shared_atomic, r.paper.3),
        ("new: warp shuffles", r.shuffle, r.paper.4),
        ("after pruning (single-kernel)", r.pruned, r.paper.5),
    ];
    for (name, ours, paper) in rows {
        println!("{name:<42}{ours:>10}{paper:>10}");
    }
    println!("(the intermediate totals differ because the paper's enumeration");
    println!(" internals are unspecified; the checkable counts 10/30/16 match — see DESIGN.md)");
}

// ---- Fig. 6 ---------------------------------------------------------------

fn print_fig6() {
    println!("== Fig. 6: the 16 DT,A-grid code versions ==");
    let best = planner::fig6_best();
    for (label, v) in planner::fig6_versions() {
        let star = if best.contains(&label) { " *" } else { "" };
        println!("  ({label})  {v}{star}");
    }
    println!("  (* = one of the 8 best-performing versions)");
}

// ---- Fig. 7 ---------------------------------------------------------------

fn print_fig7(all: &[ArchSeries]) {
    println!("== Fig. 7: speedup of best Tangram version over CUB ==");
    let mut header = format!("{:>12}", "n");
    for s in all {
        let _ = write!(header, "{:>12}", s.arch);
    }
    let _ = write!(header, "{:>12}", "OpenMP");
    println!("{header}  (OpenMP vs CUB on pascal)");
    let Some(pascal) = all.last() else {
        CLI.die("no architectures swept");
    };
    for (i, p) in pascal.points.iter().enumerate() {
        let mut row = format!("{:>12}", p.n);
        for s in all {
            let _ = write!(row, "{:>12.2}", s.points[i].tangram_speedup());
        }
        let _ = write!(row, "{:>12.2}", p.openmp_speedup());
        println!("{row}");
    }
    for s in all {
        println!(
            "  {}: average speedup {:.2}x, max {:.2}x",
            s.arch,
            geomean_speedup(&s.points),
            max_speedup(&s.points)
        );
    }
}

// ---- Figs. 8/9/10 ----------------------------------------------------------

fn print_detail(name: &str, arch: &ArchConfig, series: &ArchSeries) {
    println!("== {}: detail on {} ==", name, arch.name);
    println!(
        "{:>12} {:>8} {:>22} {:>10} {:>10} {:>10}",
        "n", "best", "version (B,C)", "vs CUB", "Kokkos", "OpenMP"
    );
    for p in &series.points {
        let label = p.fig6_label.map(|c| format!("({c})")).unwrap_or_else(|| "-".into());
        println!(
            "{:>12} {:>8} {:>17} {:>4} {:>10.2} {:>10.2} {:>10.2}",
            p.n,
            label,
            p.version,
            format!("{},{}", p.tuning.0, p.tuning.1),
            p.tangram_speedup(),
            p.kokkos_speedup(),
            p.openmp_speedup()
        );
    }
}
