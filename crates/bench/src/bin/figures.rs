//! Figure/table regeneration CLI.
//!
//! ```text
//! figures table-search-space      # §IV-B counts
//! figures fig6                    # the 16 versions and their composition
//! figures fig7 [--max-size N]     # best-version speedups, 3 architectures
//! figures fig8|fig9|fig10 [...]   # per-architecture detail
//! figures all [--max-size N] [--json PATH] [--threads N]
//! ```
//!
//! `--threads N` sets the evaluation engine's worker count (default:
//! available parallelism). The output is bit-identical for any N.
//!
//! `--sweep-mode exhaustive|halving` selects the search strategy
//! (default: exhaustive), `--interp uop|reference` the interpreter
//! hot path (default: the predecoded µop engine), and
//! `--instr-budget I` overrides the per-block dynamic instruction
//! budget. See `figures --help` for the full flag list.
//!
//! `--fault-seed S` runs the sweeps as a deterministic fault-injection
//! campaign at `--fault-rate PPM` (default 200) faults per million
//! instructions: misbehaving candidates are retried and quarantined
//! instead of aborting the figure, the reported winners stay
//! bit-identical to a clean run, and a `resilience:` summary line is
//! printed per architecture.

use std::fmt::Write as _;

use gpu_sim::{ArchConfig, ExecMode};
use tangram::evaluate::{EvalOptions, SweepMode};
use tangram::paper_sizes;
use tangram::resilience::ResilienceOptions;
use tangram_bench::{
    arch_series_report, arch_series_with, geomean_speedup, max_speedup, ArchSeries, BaselineCache,
};
use tangram_passes::planner;

const USAGE: &str = "usage: figures [table-search-space|fig6|fig7|fig8|fig9|fig10|all]
               [--max-size N] [--json PATH] [--threads T]
               [--sweep-mode exhaustive|halving] [--interp uop|reference]
               [--instr-budget I] [--fault-seed S] [--fault-rate PPM]

  --max-size N      largest array size swept (default 268435456)
  --json PATH       write the swept series to PATH as JSON
  --threads T       evaluation worker threads (default: available parallelism)
  --sweep-mode M    exhaustive | halving (default exhaustive); winners are
                    bit-identical, halving skips dominated tunings
  --interp M        uop | reference interpreter hot path (default uop)
  --instr-budget I  per-block dynamic instruction budget (runaway guard)
  --fault-seed S    enable a deterministic fault-injection campaign
  --fault-rate PPM  injected faults per million instructions (default 200)";

/// Flags that take a value, for unknown-flag detection.
const KNOWN_FLAGS: [&str; 8] = [
    "--max-size",
    "--json",
    "--threads",
    "--sweep-mode",
    "--interp",
    "--instr-budget",
    "--fault-seed",
    "--fault-rate",
];

fn die(msg: &str) -> ! {
    eprintln!("figures: {msg}");
    std::process::exit(1);
}

/// Reject any `--flag` that is not in [`KNOWN_FLAGS`], naming it —
/// a typo must not silently fall back to a default.
fn check_flags(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if KNOWN_FLAGS.contains(&a.as_str()) {
            i += 2; // skip the flag's value
            continue;
        }
        if a.starts_with("--") {
            die(&format!("unknown flag `{a}`\n{USAGE}"));
        }
        i += 1; // the command word
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    check_flags(&args);
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let max_size: u64 = flag_value(&args, "--max-size").unwrap_or(256 << 20);
    let json_path = flag_str(&args, "--json");
    let mut opts = match flag_value(&args, "--threads") {
        Some(t) => EvalOptions::with_threads(t as usize),
        None => EvalOptions::default(),
    };
    if let Some(raw) = flag_str(&args, "--sweep-mode") {
        match raw.parse::<SweepMode>() {
            Ok(mode) => opts = opts.with_sweep(mode),
            Err(e) => die(&e),
        }
    }
    if let Some(raw) = flag_str(&args, "--interp") {
        match raw.parse::<ExecMode>() {
            Ok(mode) => opts = opts.with_interp(mode),
            Err(e) => die(&e),
        }
    }
    opts = opts.with_instr_budget(flag_value(&args, "--instr-budget"));
    let fault_seed: Option<u64> = flag_value(&args, "--fault-seed");
    let fault_rate: u32 = flag_value(&args, "--fault-rate").map_or(200, |r| r as u32);
    let resilience = fault_seed.map(|seed| ResilienceOptions::campaign(seed, fault_rate));

    let sizes: Vec<u64> = paper_sizes().into_iter().filter(|&n| n <= max_size).collect();
    match cmd {
        "table-search-space" => print_search_space(),
        "fig6" => print_fig6(),
        "fig7" => {
            let all = run_all(&sizes, &opts, resilience.as_ref());
            print_fig7(&all);
            maybe_write_json(&all, json_path.as_deref());
        }
        "fig8" | "fig9" | "fig10" => {
            let arch = match cmd {
                "fig8" => ArchConfig::kepler_k40c(),
                "fig9" => ArchConfig::maxwell_gtx980(),
                _ => ArchConfig::pascal_p100(),
            };
            let series = run_one(&arch, &sizes, &opts, resilience.as_ref(), &mut BaselineCache::new());
            print_detail(cmd, &arch, &series);
            maybe_write_json(std::slice::from_ref(&series), json_path.as_deref());
        }
        "all" => {
            print_search_space();
            println!();
            print_fig6();
            println!();
            let all = run_all(&sizes, &opts, resilience.as_ref());
            print_fig7(&all);
            println!();
            let names = ["fig8", "fig9", "fig10"];
            for (series, (arch, name)) in
                all.iter().zip(ArchConfig::paper_archs().into_iter().zip(names))
            {
                print_detail(name, &arch, series);
                println!();
            }
            maybe_write_json(&all, json_path.as_deref());
        }
        other => {
            eprintln!("unknown command `{other}`");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let raw = flag_str(args, flag)?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => die(&format!("invalid value `{raw}` for {flag}")),
    }
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1) {
        Some(v) => Some(v.clone()),
        None => die(&format!("{flag} needs a value")),
    }
}

fn run_one(
    arch: &ArchConfig,
    sizes: &[u64],
    opts: &EvalOptions,
    res: Option<&ResilienceOptions>,
    baselines: &mut BaselineCache,
) -> ArchSeries {
    match res {
        Some(res) => match arch_series_report(arch, sizes, opts, res, baselines) {
            Ok((series, report)) => {
                println!("{} [{}]", report.summary_line(), arch.id);
                series
            }
            Err(e) => die(&format!("fault campaign on {} failed: {e}", arch.id)),
        },
        None => match arch_series_with(arch, sizes, opts, baselines) {
            Ok(series) => series,
            Err(e) => die(&format!("figure sweep on {} failed: {e}", arch.id)),
        },
    }
}

fn run_all(sizes: &[u64], opts: &EvalOptions, res: Option<&ResilienceOptions>) -> Vec<ArchSeries> {
    // One baseline cache across all three architectures: Fig. 7 and
    // the per-arch detail figures then share each (arch, n) baseline
    // measurement instead of repeating it.
    let mut baselines = BaselineCache::new();
    ArchConfig::paper_archs()
        .iter()
        .map(|arch| {
            eprintln!("[figures] sweeping {} ...", arch.name);
            run_one(arch, sizes, opts, res, &mut baselines)
        })
        .collect()
}

fn maybe_write_json(series: &[ArchSeries], path: Option<&str>) {
    if let Some(path) = path {
        let json = match serde_json::to_string_pretty(series) {
            Ok(json) => json,
            Err(e) => die(&format!("cannot serialize series: {e}")),
        };
        if let Err(e) = std::fs::write(path, &json) {
            die(&format!("cannot write `{path}`: {e}"));
        }
        eprintln!("[figures] wrote {path}");
    }
}

// ---- §IV-B table -----------------------------------------------------------

fn print_search_space() {
    let r = planner::search_space_report();
    println!("== Search space (paper §IV-B) ==");
    println!("{:<42}{:>10}{:>10}", "category", "ours", "paper");
    let rows = [
        ("original Tangram versions", r.original, r.paper.0),
        ("total after extensions", r.total, r.paper.1),
        ("new: global atomics only", r.global_atomic_only, r.paper.2),
        ("new: shared-memory atomics", r.shared_atomic, r.paper.3),
        ("new: warp shuffles", r.shuffle, r.paper.4),
        ("after pruning (single-kernel)", r.pruned, r.paper.5),
    ];
    for (name, ours, paper) in rows {
        println!("{name:<42}{ours:>10}{paper:>10}");
    }
    println!("(the intermediate totals differ because the paper's enumeration");
    println!(" internals are unspecified; the checkable counts 10/30/16 match — see DESIGN.md)");
}

// ---- Fig. 6 ---------------------------------------------------------------

fn print_fig6() {
    println!("== Fig. 6: the 16 DT,A-grid code versions ==");
    let best = planner::fig6_best();
    for (label, v) in planner::fig6_versions() {
        let star = if best.contains(&label) { " *" } else { "" };
        println!("  ({label})  {v}{star}");
    }
    println!("  (* = one of the 8 best-performing versions)");
}

// ---- Fig. 7 ---------------------------------------------------------------

fn print_fig7(all: &[ArchSeries]) {
    println!("== Fig. 7: speedup of best Tangram version over CUB ==");
    let mut header = format!("{:>12}", "n");
    for s in all {
        let _ = write!(header, "{:>12}", s.arch);
    }
    let _ = write!(header, "{:>12}", "OpenMP");
    println!("{header}  (OpenMP vs CUB on pascal)");
    let Some(pascal) = all.last() else {
        die("no architectures swept");
    };
    for (i, p) in pascal.points.iter().enumerate() {
        let mut row = format!("{:>12}", p.n);
        for s in all {
            let _ = write!(row, "{:>12.2}", s.points[i].tangram_speedup());
        }
        let _ = write!(row, "{:>12.2}", p.openmp_speedup());
        println!("{row}");
    }
    for s in all {
        println!(
            "  {}: average speedup {:.2}x, max {:.2}x",
            s.arch,
            geomean_speedup(&s.points),
            max_speedup(&s.points)
        );
    }
}

// ---- Figs. 8/9/10 ----------------------------------------------------------

fn print_detail(name: &str, arch: &ArchConfig, series: &ArchSeries) {
    println!("== {}: detail on {} ==", name, arch.name);
    println!(
        "{:>12} {:>8} {:>22} {:>10} {:>10} {:>10}",
        "n", "best", "version (B,C)", "vs CUB", "Kokkos", "OpenMP"
    );
    for p in &series.points {
        let label = p.fig6_label.map(|c| format!("({c})")).unwrap_or_else(|| "-".into());
        println!(
            "{:>12} {:>8} {:>17} {:>4} {:>10.2} {:>10.2} {:>10.2}",
            p.n,
            label,
            p.version,
            format!("{},{}", p.tuning.0, p.tuning.1),
            p.tangram_speedup(),
            p.kokkos_speedup(),
            p.openmp_speedup()
        );
    }
}
