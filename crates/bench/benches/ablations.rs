//! Ablation benches for the design choices DESIGN.md calls out
//! (modelled times via `iter_custom`, as in `paper_figures.rs`):
//!
//! * **warp shuffles** (§III-C): version (l) `V` vs (m) `Vs`;
//! * **shared-atomic microarchitecture** (§II-A2): version (n) `VA1`
//!   across the three generations;
//! * **thread coarsening** (§IV-C2): version (a) coarsening sweep;
//! * **vectorized loads** (§IV-C1): CUB vs the best scalar Tangram
//!   version at a large size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::ArchConfig;
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::tuner::BenchContext;
use tangram_bench::measure_cub;

fn modelled(c: &mut Criterion, group: &str, id: String, ns: f64) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(200));
    g.bench_function(id, |b| {
        b.iter_custom(|iters| Duration::from_secs_f64(ns * 1e-9 * iters as f64))
    });
    g.finish();
}

/// Shuffle vs shared-memory tree exchange at 256K elements.
fn ablation_shuffle(c: &mut Criterion) {
    let n = 262_144;
    for arch in ArchConfig::paper_archs() {
        let mut ctx = BenchContext::new(&arch, n).unwrap();
        for (name, label) in [("tree", 'l'), ("shuffle", 'm')] {
            let sv = synthesize(
                planner::fig6_by_label(label).unwrap(),
                Tuning { block_size: 256, coarsen: 1 },
            )
            .unwrap();
            let ns = ctx.measure(&sv).unwrap();
            modelled(c, "ablation-shuffle", format!("{}/{name}", arch.id), ns);
        }
    }
}

/// The same all-threads-atomic codelet across generations: the
/// Kepler software lock vs native units.
fn ablation_shared_atomics(c: &mut Criterion) {
    let n = 262_144;
    for arch in ArchConfig::paper_archs() {
        let mut ctx = BenchContext::new(&arch, n).unwrap();
        let sv = synthesize(
            planner::fig6_by_label('n').unwrap(),
            Tuning { block_size: 256, coarsen: 1 },
        )
        .unwrap();
        let ns = ctx.measure(&sv).unwrap();
        modelled(c, "ablation-shared-atomics", format!("va1/{}", arch.id), ns);
    }
}

/// Thread-coarsening sweep on the strided compound version (a).
fn ablation_coarsening(c: &mut Criterion) {
    let arch = ArchConfig::maxwell_gtx980();
    let n = 16 << 20;
    let mut ctx = BenchContext::new(&arch, n).unwrap();
    for coarsen in [1u32, 2, 4, 8, 16] {
        let sv = synthesize(
            planner::fig6_by_label('a').unwrap(),
            Tuning { block_size: 256, coarsen },
        )
        .unwrap();
        let ns = ctx.measure(&sv).unwrap();
        modelled(c, "ablation-coarsening", format!("c{coarsen}"), ns);
    }
}

/// Vectorized (CUB) vs scalar (Tangram) streaming at 64M elements.
fn ablation_vector_loads(c: &mut Criterion) {
    let arch = ArchConfig::kepler_k40c();
    let n = 64 << 20;
    let cub_ns = measure_cub(&arch, n).unwrap();
    modelled(c, "ablation-vector-loads", "cub-v4".into(), cub_ns);
    let mut ctx = BenchContext::new(&arch, n).unwrap();
    let sv = synthesize(
        planner::fig6_by_label('b').unwrap(),
        Tuning { block_size: 64, coarsen: 16 },
    )
    .unwrap();
    let ns = ctx.measure(&sv).unwrap();
    modelled(c, "ablation-vector-loads", "tangram-scalar".into(), ns);
}

criterion_group! {
    name = ablations;
    // Deterministic modelled durations: no plots (zero variance).
    config = Criterion::default().without_plots();
    targets = ablation_shuffle, ablation_shared_atomics, ablation_coarsening,
        ablation_vector_loads
}
criterion_main!(ablations);
