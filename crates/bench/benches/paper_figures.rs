//! Criterion benches reporting the *modelled* GPU times behind the
//! paper's Figs. 7–10.
//!
//! Each measurement is the simulator cost model's nanoseconds for one
//! reduction (returned through `iter_custom`), so `cargo bench`
//! output reads as the figure data: compare `tangram/<n>` against
//! `cub/<n>` and `kokkos/<n>` within a group to recover the speedup
//! series. The `figures` binary prints the same data as tables.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::ArchConfig;
use tangram::select::select_best;
use tangram_bench::{measure_cub, measure_kokkos};

const SIZES: [u64; 4] = [1_024, 65_536, 1 << 20, 16 << 20];

fn bench_arch(c: &mut Criterion, arch: &ArchConfig, figure: &str) {
    let mut group = c.benchmark_group(format!("{figure}-{}", arch.id));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(200));
    for &n in &SIZES {
        // Selection and measurement happen once; criterion replays the
        // modelled duration.
        let (_tuned, row) = select_best(arch, n).expect("selection");
        let tangram_ns = row.time_ns;
        let cub_ns = measure_cub(arch, n).expect("cub");
        let kokkos_ns = measure_kokkos(arch, n).expect("kokkos");
        group.bench_function(format!("tangram/{n}"), |b| {
            b.iter_custom(|iters| Duration::from_secs_f64(tangram_ns * 1e-9 * iters as f64))
        });
        group.bench_function(format!("cub/{n}"), |b| {
            b.iter_custom(|iters| Duration::from_secs_f64(cub_ns * 1e-9 * iters as f64))
        });
        group.bench_function(format!("kokkos/{n}"), |b| {
            b.iter_custom(|iters| Duration::from_secs_f64(kokkos_ns * 1e-9 * iters as f64))
        });
    }
    group.finish();
}

fn fig8_kepler(c: &mut Criterion) {
    bench_arch(c, &ArchConfig::kepler_k40c(), "fig8");
}

fn fig9_maxwell(c: &mut Criterion) {
    bench_arch(c, &ArchConfig::maxwell_gtx980(), "fig9");
}

fn fig10_pascal(c: &mut Criterion) {
    bench_arch(c, &ArchConfig::pascal_p100(), "fig10");
}

/// Fig. 7 is the per-architecture best-version series: bench the
/// OpenMP model alongside for the CPU line.
fn fig7_openmp_line(c: &mut Criterion) {
    let model = cpu_ref::OpenMpModel::power8_minsky();
    let mut group = c.benchmark_group("fig7-openmp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(200));
    for &n in &SIZES {
        let t = model.time_ns(n);
        group.bench_function(format!("openmp/{n}"), |b| {
            b.iter_custom(|iters| Duration::from_secs_f64(t * 1e-9 * iters as f64))
        });
    }
    group.finish();
}

criterion_group! {
    name = figures;
    // The measurements are deterministic modelled durations; disable
    // the plotting backend (zero variance breaks its axis scaling).
    config = Criterion::default().without_plots();
    targets = fig8_kepler, fig9_maxwell, fig10_pascal, fig7_openmp_line
}
criterion_main!(figures);
