//! Host-side throughput of the SIMT interpreter itself (real wall
//! time, not modelled time): how fast the substrate executes the
//! synthesized kernels and the hand-written baselines.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpu_baselines::CubReduce;
use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device, ExecMode};
use tangram::evaluate::{evaluate_all, ContextPool, EvalOptions};
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn interpreter_throughput(c: &mut Criterion) {
    let n: u64 = 65_536;
    let data: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
    let arch = ArchConfig::maxwell_gtx980();
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for label in ['m', 'n', 'p'] {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), Tuning::default()).unwrap();
        group.bench_function(format!("fig6-{label}/64K"), |b| {
            b.iter(|| {
                let mut dev = Device::new(arch.clone());
                let input = upload(&mut dev, &data).unwrap();
                run_reduction(&mut dev, &sv, input, n, BlockSelection::All).unwrap()
            })
        });
    }
    let cub = CubReduce::new();
    group.bench_function("cub/64K", |b| {
        b.iter(|| {
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &data).unwrap();
            cub.run(&mut dev, input, n, BlockSelection::All).unwrap()
        })
    });
    group.finish();
}

/// Warp-issue dispatch: a deeply divergent kernel at an exact block
/// count keeps the interpreter in `run_warp`'s issue loop, so this
/// tracks the per-instruction hot path (no per-issue allocation, no
/// `Instr` clone, array-based stat counters).
fn warp_issue_dispatch(c: &mut Criterion) {
    let n: u64 = 32_768;
    let data: Vec<f32> = (0..n).map(|i| (i % 9) as f32).collect();
    let arch = ArchConfig::maxwell_gtx980();
    let mut group = c.benchmark_group("warp-issue");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    // (m) = tree reduction in shared memory: branch-heavy, barriers.
    // (p) = shuffle + atomic: Shfl/Atom issue paths.
    for label in ['m', 'p'] {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), Tuning::default()).unwrap();
        group.bench_function(format!("fig6-{label}/32K-exact"), |b| {
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &data).unwrap();
            b.iter(|| {
                dev.reset_clock();
                run_reduction(&mut dev, &sv, input, n, BlockSelection::All).unwrap()
            })
        });
    }
    group.finish();
}

/// Warp-uniform scalarization: the same synthesized kernels under the
/// predecoded µop engine (warp-uniform ops execute once per warp and
/// broadcast) and under the lane-wise reference interpreter (every op
/// executes per active lane). The uop/reference ratio is the
/// end-to-end win of predecode plus scalarization; BENCH_interp.json
/// records the medians.
fn uniform_scalarization(c: &mut Criterion) {
    let n: u64 = 32_768;
    let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let arch = ArchConfig::maxwell_gtx980();
    let mut group = c.benchmark_group("uniform-scalarization");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    // (m) = shared-memory tree: uniform loop bounds and barriers.
    // (p) = shuffle + atomic: uniform shuffle deltas, divergent tail.
    for label in ['m', 'p'] {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), Tuning::default()).unwrap();
        for (mode_name, mode) in [("uop", ExecMode::Predecoded), ("reference", ExecMode::Reference)]
        {
            group.bench_function(format!("fig6-{label}/{mode_name}"), |b| {
                let mut dev = Device::new(arch.clone());
                dev.set_exec_mode(mode);
                let input = upload(&mut dev, &data).unwrap();
                b.iter(|| {
                    dev.reset_clock();
                    run_reduction(&mut dev, &sv, input, n, BlockSelection::All).unwrap()
                })
            });
        }
    }
    group.finish();
}

/// The compiled tier against the µop engine on the same kernels: the
/// jit/uop ratio is the end-to-end win of closure threading,
/// register-major rows, and superinstruction runs over predecode
/// alone. The reference tier rides along as the common anchor;
/// BENCH_interp.json records the medians.
fn jit(c: &mut Criterion) {
    let n: u64 = 32_768;
    let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let arch = ArchConfig::maxwell_gtx980();
    let mut group = c.benchmark_group("jit");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    // (m) = shared-memory tree: barriers bound the superinstruction
    //       runs. (p) = shuffle + atomic: Shfl/Atom closures plus a
    //       divergent tail.
    for label in ['m', 'p'] {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), Tuning::default()).unwrap();
        for (mode_name, mode) in [
            ("compiled", ExecMode::Compiled),
            ("uop", ExecMode::Predecoded),
            ("reference", ExecMode::Reference),
        ] {
            group.bench_function(format!("fig6-{label}/{mode_name}"), |b| {
                let mut dev = Device::new(arch.clone());
                dev.set_exec_mode(mode);
                let input = upload(&mut dev, &data).unwrap();
                b.iter(|| {
                    dev.reset_clock();
                    run_reduction(&mut dev, &sv, input, n, BlockSelection::All).unwrap()
                })
            });
        }
    }
    group.finish();
}

/// The full tuner sweep over the pruned space at one size — the
/// workload the parallel evaluation engine accelerates. Serial and
/// 4-worker variants bracket the engine overhead; BENCH_sweep.json
/// records the wall-clock baselines from the release `sweep` binary.
fn tuner_sweep(c: &mut Criterion) {
    let n: u64 = 1 << 20;
    let arch = ArchConfig::maxwell_gtx980();
    let candidates = planner::enumerate_pruned();
    let mut group = c.benchmark_group("tuner-sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for threads in [1usize, 4] {
        let opts = EvalOptions::with_threads(threads);
        group.bench_function(format!("pruned/1M/threads-{threads}"), |b| {
            let pool = ContextPool::new(&arch, n);
            b.iter(|| black_box(evaluate_all(&pool, &candidates, &opts).unwrap()))
        });
    }
    group.finish();
}

fn synthesis_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    group.bench_function("synthesize-fig6p", |b| {
        b.iter(|| synthesize(planner::fig6_by_label('p').unwrap(), Tuning::default()).unwrap())
    });
    group.bench_function("enumerate-pruned", |b| b.iter(planner::enumerate_pruned));
    group.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().without_plots();
    targets = interpreter_throughput, warp_issue_dispatch, uniform_scalarization, jit, tuner_sweep, synthesis_cost
}
criterion_main!(simulator);
