//! Host-side throughput of the SIMT interpreter itself (real wall
//! time, not modelled time): how fast the substrate executes the
//! synthesized kernels and the hand-written baselines.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_baselines::CubReduce;
use gpu_sim::exec::BlockSelection;
use gpu_sim::{ArchConfig, Device};
use tangram::tangram_codegen::{synthesize, Tuning};
use tangram::tangram_passes::planner;
use tangram::{run_reduction, upload};

fn interpreter_throughput(c: &mut Criterion) {
    let n: u64 = 65_536;
    let data: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
    let arch = ArchConfig::maxwell_gtx980();
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for label in ['m', 'n', 'p'] {
        let sv = synthesize(planner::fig6_by_label(label).unwrap(), Tuning::default()).unwrap();
        group.bench_function(format!("fig6-{label}/64K"), |b| {
            b.iter(|| {
                let mut dev = Device::new(arch.clone());
                let input = upload(&mut dev, &data).unwrap();
                run_reduction(&mut dev, &sv, input, n, BlockSelection::All).unwrap()
            })
        });
    }
    let cub = CubReduce::new();
    group.bench_function("cub/64K", |b| {
        b.iter(|| {
            let mut dev = Device::new(arch.clone());
            let input = upload(&mut dev, &data).unwrap();
            cub.run(&mut dev, input, n, BlockSelection::All).unwrap()
        })
    });
    group.finish();
}

fn synthesis_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(30).measurement_time(Duration::from_secs(2));
    group.bench_function("synthesize-fig6p", |b| {
        b.iter(|| synthesize(planner::fig6_by_label('p').unwrap(), Tuning::default()).unwrap())
    });
    group.bench_function("enumerate-pruned", |b| b.iter(planner::enumerate_pruned));
    group.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().without_plots();
    targets = interpreter_throughput, synthesis_cost
}
criterion_main!(simulator);
