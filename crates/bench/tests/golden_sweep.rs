//! Golden-file conformance for the `sweep` bin: with a pinned `n` and
//! `--threads 1`, the winner line — architecture, thread count, sweep
//! mode, interpreter, winning version, tuning, and modelled time — is
//! byte-identical to the checked-in snapshot for every paper
//! architecture. Only the `wall_ms=` token (real wall clock) is
//! stripped before comparison.
//!
//! The snapshot (`tests/golden/sweep_winners.txt`) is the public
//! contract of the whole pipeline: planner enumeration order, pruning,
//! codegen, the cost model, and the CLI's output format all feed the
//! bytes. Regenerate it deliberately — run the commands below and
//! paste the output — never by copying a failing test's `got`.
//!
//! ```text
//! for a in kepler maxwell pascal; do
//!     sweep --n 16384 --threads 1 --arch $a | grep '^sweep '
//! done   # then strip the wall_ms= token
//! ```
//!
//! The workload snapshot (`tests/golden/workload_winners.txt`) pins
//! the `--workload` sweeps the same way, workload-major:
//!
//! ```text
//! for w in max argmax argmin hist64 scan scan-u32 exscan segsum; do
//! for a in kepler maxwell pascal; do
//!     sweep --n 16384 --threads 1 --arch $a --workload $w | grep '^sweep '
//! done; done   # then strip the wall_ms= token
//! ```

use std::process::Command;

/// Small enough to keep the full three-arch sweep quick in debug
/// builds, large enough that every tuning rung is exercised.
const N: &str = "16384";
const ARCHES: [&str; 3] = ["kepler", "maxwell", "pascal"];

/// Drop the one nondeterministic token (real wall-clock time).
fn normalize(line: &str) -> String {
    let kept: Vec<&str> =
        line.split_whitespace().filter(|t| !t.starts_with("wall_ms=")).collect();
    kept.join(" ")
}

fn winner_lines(extra: &[&str]) -> String {
    let mut got = String::new();
    for arch in ARCHES {
        let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
            .args(["--n", N, "--threads", "1", "--arch", arch])
            .args(extra)
            .output()
            .expect("sweep bin runs");
        assert!(
            out.status.success(),
            "sweep exited nonzero on {arch}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("sweep emits UTF-8");
        for line in stdout.lines().filter(|l| l.starts_with("sweep ")) {
            got.push_str(&normalize(line));
            got.push('\n');
        }
    }
    got
}

/// The non-sum workloads pinned by the workload snapshot: the
/// original four, then the scan and segmented-sum kinds (appended so
/// the legacy lines stay byte-identical).
const WORKLOADS: [&str; 8] =
    ["max", "argmax", "argmin", "hist64", "scan", "scan-u32", "exscan", "segsum"];

fn workload_winner_lines(extra: &[&str]) -> String {
    let mut got = String::new();
    for workload in WORKLOADS {
        got.push_str(&winner_lines(&[&["--workload", workload], extra].concat()));
    }
    got
}

/// The winner lines match the checked-in snapshot byte for byte.
#[test]
fn sweep_winner_lines_match_golden_snapshot() {
    let want = include_str!("golden/sweep_winners.txt");
    let got = winner_lines(&[]);
    assert_eq!(
        got, want,
        "sweep winner lines drifted from tests/golden/sweep_winners.txt — \
         if the change is intentional, regenerate the snapshot (see module docs)"
    );
}

/// The sweep's result is interpreter-independent: forcing the µop
/// tier (`--interp uop`) reproduces the snapshot exactly, modulo the
/// `interp=` token itself. With the snapshot generated under the
/// default compiled tier, this pins uop ≡ compiled at the whole-bin
/// level — winner, tuning, and modelled time byte for byte.
#[test]
fn uop_tier_matches_snapshot_modulo_interp_token() {
    let want = include_str!("golden/sweep_winners.txt").replace("interp=compiled", "interp=uop");
    let got = winner_lines(&["--interp", "uop"]);
    assert_eq!(
        got, want,
        "--interp uop must reproduce the compiled tier's winner lines \
         (the tiers are bit-identical by contract)"
    );
}

/// Per-workload winner lines — a reduce workload (`max`), both
/// arg-reductions, and a histogram — match their own snapshot byte
/// for byte on every architecture. Unlike the sum snapshot these
/// lines carry a `workload=` token; the sum lines above prove the
/// legacy format never changed.
#[test]
fn workload_winner_lines_match_golden_snapshot() {
    let want = include_str!("golden/workload_winners.txt");
    let got = workload_winner_lines(&[]);
    assert_eq!(
        got, want,
        "workload winner lines drifted from tests/golden/workload_winners.txt — \
         if the change is intentional, regenerate the snapshot (see module docs)"
    );
}

/// Workload sweeps are interpreter-independent too: the µop tier
/// reproduces the workload snapshot modulo the `interp=` token.
#[test]
fn workload_uop_tier_matches_snapshot_modulo_interp_token() {
    let want =
        include_str!("golden/workload_winners.txt").replace("interp=compiled", "interp=uop");
    let got = workload_winner_lines(&["--interp", "uop"]);
    assert_eq!(
        got, want,
        "--interp uop must reproduce the compiled tier's workload winner lines"
    );
}

/// `--sanitize` is output-transparent on the clean corpus: the winner
/// lines still match the same snapshot, the screen reports zero racy
/// candidates, and the process still exits 0.
#[test]
fn sanitized_sweep_matches_the_same_snapshot() {
    let want = include_str!("golden/sweep_winners.txt");
    let got = winner_lines(&["--sanitize"]);
    assert_eq!(got, want, "--sanitize must not change the winner lines on a race-free corpus");

    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(["--n", N, "--threads", "1", "--arch", "maxwell", "--sanitize"])
        .output()
        .expect("sweep bin runs");
    assert!(out.status.success(), "clean corpus must exit 0 under --sanitize");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout
        .lines()
        .find(|l| l.starts_with("sanitize:"))
        .expect("--sanitize prints a sanitize: summary line");
    assert!(line.contains("racy=0"), "clean corpus must screen racy=0, got: {line}");
}
