//! Thread-count determinism: the parallel evaluation engine must
//! produce bit-identical selection tables and figure JSON for
//! `threads = 1` and `threads = 4`, on every paper architecture.

use gpu_sim::ArchConfig;
use tangram::evaluate::EvalOptions;
use tangram::select::selection_table_with;
use tangram_bench::{arch_series_with, BaselineCache};

const SIZES: [u64; 2] = [1024, 16_384];

#[test]
fn selection_rows_are_identical_across_thread_counts() {
    for arch in ArchConfig::paper_archs() {
        let serial = selection_table_with(&arch, &SIZES, &EvalOptions::serial()).unwrap();
        let parallel =
            selection_table_with(&arch, &SIZES, &EvalOptions::with_threads(4)).unwrap();
        let a = serde_json::to_string_pretty(&serial).unwrap();
        let b = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(a, b, "selection table differs on {}", arch.id);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.time_ns.to_bits(), p.time_ns.to_bits(), "modelled ns on {}", arch.id);
        }
    }
}

#[test]
fn figure_json_is_identical_across_thread_counts() {
    for arch in ArchConfig::paper_archs() {
        let serial =
            arch_series_with(&arch, &SIZES, &EvalOptions::serial(), &mut BaselineCache::new())
                .unwrap();
        let parallel = arch_series_with(
            &arch,
            &SIZES,
            &EvalOptions::with_threads(4),
            &mut BaselineCache::new(),
        )
        .unwrap();
        let a = serde_json::to_string_pretty(&serial).unwrap();
        let b = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(a, b, "figure series differs on {}", arch.id);
    }
}
