//! Sweep-level observability (`tangram::metrics`).
//!
//! The `gpu_sim::profile` layer attributes dynamic counters to static
//! instruction sites of one launch; this module aggregates the level
//! above it — whole selection sweeps. A [`SweepMetrics`] captures one
//! `(arch, n)` sweep: per-rung job counts and wall-clock timings,
//! prune/quarantine/retry totals (via [`ResilienceReport`]), the
//! winning row, and the winner's per-site [`LaunchProfile`]. A
//! [`ProfileReport`] collects the sweeps of a whole run plus
//! *spotlight* profiles — profiled runs of the paper's pedagogical
//! kernels (the Fig. 1c cooperative codelet and its §III-C shuffle
//! variant) that reproduce the §IV counter narrative: atomic
//! contention serializations at the global-accumulate site, shuffle
//! exchanges replacing shared-memory traffic.
//!
//! Determinism: every counter in these types is bit-identical for any
//! thread count; only the `wall_ms` fields are host wall-clock and
//! must never enter determinism-checked comparisons (the verify
//! script strips them).

use gpu_sim::profile::LaunchProfile;
use gpu_sim::{ArchConfig, SimError};
use serde::Serialize;
use tangram_codegen::{synthesize_cached, Tuning};
use tangram_passes::planner::{self, BlockOp, Coop};
use tangram_passes::specialize::ReduceOp;

use crate::evaluate::RungStats;
use crate::resilience::ResilienceReport;
use crate::select::SelectionRow;
use crate::tuner::BenchContext;

/// Hit/miss accounting for a memoization cache (e.g. the figure
/// harness's baseline cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheMetrics {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populate) an entry.
    pub misses: u64,
}

impl CacheMetrics {
    /// Record one lookup.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Fraction of lookups served from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another cache's counters into this one.
    pub fn merge(&mut self, other: CacheMetrics) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Aggregate outcome of a sweep's race-sanitizer screen (present only
/// when the session ran with [`crate::api::Session::sanitized`] on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SanitizeSummary {
    /// Candidates the screen executed under shadow-state tracking.
    pub candidates: usize,
    /// Candidates quarantined for reporting at least one hazard.
    pub racy: usize,
    /// Deduplicated findings across all screened candidates.
    pub findings: usize,
    /// Raw hazard occurrences (per-byte, pre-dedup) across the screen.
    pub occurrences: u64,
}

/// What the persistent tuning store did for one sweep (present only
/// when the session ran with [`crate::api::Session::store`]
/// configured).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StoreSummary {
    /// Store directory.
    pub dir: String,
    /// Cache mode (`rw`/`ro`).
    pub mode: String,
    /// Record key (`arch/op/dtype/bucket`).
    pub key: String,
    /// Lookup outcome: `warm` (cached winner confirmed, sweep
    /// skipped), `miss` (no usable record), `invalid` (record failed
    /// integrity or confirmation — see `detail`), or `disabled`
    /// (store could not be opened).
    pub outcome: String,
    /// Failure detail for `invalid`/`disabled` outcomes, and the
    /// write-back error when saving failed.
    pub detail: Option<String>,
    /// Whether the sweep was answered from the cache.
    pub warm: bool,
    /// Whether a cold sweep was warm-started (survivor rung seeded)
    /// from the nearest cached n-bucket's winner.
    pub seeded: bool,
    /// Whether a fresh record was written back.
    pub saved: bool,
}

/// Everything observed about one `(arch, n)` selection sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepMetrics {
    /// Architecture identifier (`kepler`/`maxwell`/`pascal`).
    pub arch: String,
    /// Array size (elements).
    pub n: u64,
    /// The typed workload the sweep was keyed by (`sum-f32` for the
    /// classic selection sweeps).
    pub workload: tangram_passes::workload::WorkloadKey,
    /// Sweep strategy (`exhaustive`/`halving`/`resilient`).
    pub mode: String,
    /// Interpreter hot path (`uop`/`reference`).
    pub interp: String,
    /// Evaluation worker threads.
    pub threads: usize,
    /// Per-rung job counts and wall-clock timings.
    pub rungs: Vec<RungStats>,
    /// Job accounting: measured / infeasible / pruned / quarantined /
    /// retries / fault totals. For clean sweeps only the job counts
    /// are populated.
    pub resilience: ResilienceReport,
    /// The winning row.
    pub winner: SelectionRow,
    /// Per-site profile of the winner's main kernel (present when the
    /// sweep ran with profiling enabled).
    pub winner_profile: Option<LaunchProfile>,
    /// Race-sanitizer screen totals (present when the sweep ran
    /// sanitized).
    pub sanitize: Option<SanitizeSummary>,
    /// Persistent tuning-store outcome (present when the session has
    /// a store configured).
    pub store: Option<StoreSummary>,
    /// Wall-clock of the whole sweep in milliseconds
    /// (nondeterministic; excluded from determinism checks).
    pub wall_ms: f64,
}

/// A profiled run of one spotlight kernel (§IV counter narrative).
#[derive(Debug, Clone, Serialize)]
pub struct KernelSpotlight {
    /// Architecture identifier.
    pub arch: String,
    /// Which narrative the kernel illustrates (`fig1c-coop`,
    /// `shuffle-coop`).
    pub label: String,
    /// The code version that ran.
    pub version: String,
    /// Modelled time of the profiled run (ns).
    pub time_ns: f64,
    /// Per-site counters of the main kernel.
    pub profile: LaunchProfile,
}

/// Machine-readable aggregate of a profiled run: every sweep's
/// metrics plus the spotlight kernel profiles, serializable to JSON
/// via the `--metrics-json` flag of the `sweep` and `figures` bins.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ProfileReport {
    /// One entry per `(arch, n)` sweep, in execution order.
    pub sweeps: Vec<SweepMetrics>,
    /// Profiled spotlight kernels (Fig. 1c cooperative codelet and
    /// the §III-C shuffle variant), one pair per architecture.
    pub spotlights: Vec<KernelSpotlight>,
    /// Baseline-cache hit/miss accounting, when a baseline cache was
    /// in play (the figure harness).
    pub baselines: Option<CacheMetrics>,
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold another report into this one (sweeps and spotlights
    /// append; baseline counters merge).
    pub fn merge(&mut self, other: ProfileReport) {
        self.sweeps.extend(other.sweeps);
        self.spotlights.extend(other.spotlights);
        match (&mut self.baselines, other.baselines) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (slot @ None, theirs) => *slot = theirs,
            (Some(_), None) => {}
        }
    }

    /// Pretty-printed JSON of the whole report.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error instead of swallowing it
    /// into an `{"error": …}` payload — callers (the bins) surface it
    /// as a typed CLI failure.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// One-line summary for logs: sweep count and total spotlight
    /// counter mass.
    pub fn summary_line(&self) -> String {
        let atomic: u64 =
            self.spotlights.iter().map(|s| s.profile.total_atomic_serial()).sum();
        let shuffle: u64 =
            self.spotlights.iter().map(|s| s.profile.total_shuffle_exchanges()).sum();
        format!(
            "metrics: sweeps={} spotlights={} atomic_serial={} shuffle_exchanges={}",
            self.sweeps.len(),
            self.spotlights.len(),
            atomic,
            shuffle
        )
    }
}

/// The spotlight code versions: the pruned version whose block level
/// is the Fig. 1c cooperative codelet (`Coop::V`, lowered from the
/// `FIG1C` corpus source) and the pruned shuffle variant of the same
/// codelet (`Coop::Vs`). Both carry an atomic grid combine, so their
/// profiles exhibit the §IV counters of interest: per-site atomic
/// contention at the global accumulate, and (for the variant) shuffle
/// exchanges in place of shared-memory tree traffic.
fn spotlight_versions() -> Vec<(&'static str, planner::CodeVersion)> {
    let pruned = planner::enumerate_pruned();
    let mut out = Vec::new();
    if let Some(v) = pruned.iter().find(|v| v.block == BlockOp::Coop(Coop::V)) {
        out.push(("fig1c-coop", *v));
    }
    if let Some(v) = pruned.iter().find(|v| v.block == BlockOp::Coop(Coop::Vs)) {
        out.push(("shuffle-coop", *v));
    }
    out
}

/// Array size for the spotlight runs: small enough that every block
/// executes functionally (`exact` profiles, unscaled counters), large
/// enough that atomic contention across blocks is visible.
const SPOTLIGHT_N: u64 = 65_536;

/// Run the spotlight kernels profiled on `arch` and return their
/// per-site counter profiles.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn spotlight_profiles(arch: &ArchConfig) -> Result<Vec<KernelSpotlight>, SimError> {
    let mut ctx = BenchContext::new(arch, SPOTLIGHT_N)?;
    let mut out = Vec::new();
    for (label, version) in spotlight_versions() {
        let tuning = Tuning { block_size: 256, coarsen: 1 };
        let Ok(sv) = synthesize_cached(version, tuning, ReduceOp::Sum) else {
            continue;
        };
        let (time_ns, profiles, _trace) =
            ctx.measure_profiled_with(&sv, gpu_sim::exec::BlockSelection::All)?;
        let Some(profile) = profiles.into_iter().next() else { continue };
        out.push(KernelSpotlight {
            arch: arch.id.clone(),
            label: label.to_string(),
            version: version.to_string(),
            time_ns,
            profile,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_metrics_rates() {
        let mut m = CacheMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        m.record(false);
        m.record(true);
        m.record(true);
        assert!((m.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        let mut other = CacheMetrics::default();
        other.record(false);
        m.merge(other);
        assert_eq!(m.misses, 2);
    }

    #[test]
    fn spotlights_cover_atomics_and_shuffles() {
        let arch = ArchConfig::maxwell_gtx980();
        let spots = spotlight_profiles(&arch).unwrap();
        assert_eq!(spots.len(), 2, "both spotlight versions must be in the pruned set");
        let fig1c = spots.iter().find(|s| s.label == "fig1c-coop").unwrap();
        assert!(
            fig1c.profile.total_atomic_serial() > 0,
            "atomic grid combine must serialize under contention"
        );
        assert_eq!(fig1c.profile.total_shuffle_exchanges(), 0, "Fig. 1c has no shuffles");
        let shfl = spots.iter().find(|s| s.label == "shuffle-coop").unwrap();
        assert!(shfl.profile.total_shuffle_exchanges() > 0, "Vs must exchange via shuffles");
        assert!(shfl.profile.exact, "spotlight runs must execute every block");
    }

    #[test]
    fn profile_report_merges_and_serializes() {
        let arch = ArchConfig::pascal_p100();
        let mut report = ProfileReport::new();
        report.spotlights = spotlight_profiles(&arch).unwrap();
        let mut other = ProfileReport::new();
        other.baselines = Some(CacheMetrics { hits: 3, misses: 1 });
        report.merge(other);
        assert_eq!(report.baselines.unwrap().hits, 3);
        let json = match report.to_json() {
            Ok(json) => json,
            Err(e) => panic!("report must serialize: {e}"),
        };
        let v = match serde_json::from_str(&json) {
            Ok(v) => v,
            Err(e) => panic!("report JSON must parse: {e}"),
        };
        let spots = v.get("spotlights").and_then(|s| s.as_seq()).unwrap();
        assert_eq!(spots.len(), 2);
        assert!(report.summary_line().contains("spotlights=2"));
    }
}
