//! Executing synthesized versions on the simulated device.

use gpu_sim::exec::BlockSelection;
use gpu_sim::isa::Ty;
use gpu_sim::{Arg, Device, DevicePtr, LaunchDims, SimError, TimingOptions};
use tangram_codegen::{SynthesizedVersion, SynthesizedWorkload};
use tangram_passes::workload::WorkloadKind;

use crate::workload::{segment_map, WorkloadValue};

/// Run a synthesized reduction over `n` `f32` elements at `input`.
///
/// Allocates the output (and, for two-kernel versions, the partials
/// buffer), launches the kernel(s), and returns the reduced value.
/// With a sampling [`BlockSelection`] the returned *value* is not
/// meaningful (only some blocks execute) but the device clock and
/// launch statistics are — that mode exists for the figure harness at
/// the paper's largest array sizes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_reduction(
    dev: &mut Device,
    sv: &SynthesizedVersion,
    input: DevicePtr,
    n: u64,
    selection: BlockSelection,
) -> Result<f32, SimError> {
    let plan = sv.plan(n);
    let dims = LaunchDims::new(plan.grid, plan.block).with_dynamic_smem(plan.dynamic_smem);
    if sv.version.grid.atomic {
        let out = dev.alloc_f32(1)?;
        // The global accumulator starts at the operator's identity
        // (0 for sum, ±∞ for min/max).
        dev.write_scalar(Ty::F32, out, u64::from(sv.op.identity_f32().to_bits()))?;
        dev.launch(
            &sv.main,
            dims,
            &[input.arg(), out.arg(), Arg::U32(n as u32), Arg::U32(plan.tile)],
            selection,
            TimingOptions::default(),
        )?;
        Ok(f32::from_bits(dev.read_scalar(Ty::F32, out)? as u32))
    } else {
        let partials = dev.alloc_f32(u64::from(plan.grid))?;
        let out = dev.alloc_f32(1)?;
        dev.launch(
            &sv.main,
            dims,
            &[input.arg(), partials.arg(), Arg::U32(n as u32), Arg::U32(plan.tile)],
            selection,
            TimingOptions::default(),
        )?;
        let second = sv
            .second
            .as_ref()
            .expect("non-atomic versions carry a second kernel");
        dev.launch(
            second,
            LaunchDims::new(1, 256),
            &[partials.arg(), out.arg(), Arg::U32(plan.grid)],
            BlockSelection::All,
            TimingOptions::default(),
        )?;
        Ok(f32::from_bits(dev.read_scalar(Ty::F32, out)? as u32))
    }
}

/// Run a synthesized non-reduce workload over `n` `f32` elements at
/// `input`.
///
/// Allocates and initializes the output (a packed `u64` accumulator
/// for arg-reductions, a zeroed counter array for histograms),
/// launches the single workload kernel, and reads the result back as
/// a [`WorkloadValue`]. As with [`run_reduction`], a sampling
/// [`BlockSelection`] makes the returned *value* meaningless but
/// keeps the device clock meaningful.
///
/// # Errors
///
/// Propagates simulator errors; plain-reduction keys are rejected
/// (they run through [`run_reduction`]).
pub fn run_workload(
    dev: &mut Device,
    sw: &SynthesizedWorkload,
    input: DevicePtr,
    n: u64,
    selection: BlockSelection,
) -> Result<WorkloadValue, SimError> {
    let plan = sw.plan(n);
    let dims = LaunchDims::new(plan.grid, plan.block).with_dynamic_smem(plan.dynamic_smem);
    match sw.key.kind {
        WorkloadKind::Reduce(_) => Err(SimError::InvalidLaunch(
            "plain reductions run through run_reduction, not run_workload".into(),
        )),
        WorkloadKind::ArgMax | WorkloadKind::ArgMin => {
            let out = dev.alloc(sw.out_bytes(n))?;
            let args = [input.arg(), out.arg(), Arg::U32(n as u32), Arg::U32(plan.tile)];
            // The packed-pair identity is 0: any valid candidate has a
            // complemented index, so even the worst key beats it.
            dev.write_scalar(Ty::U64, out, 0)?;
            dev.launch(&sw.kernel, dims, &args, selection, TimingOptions::default())?;
            Ok(WorkloadValue::Packed(dev.read_scalar(Ty::U64, out)?))
        }
        WorkloadKind::Histogram { .. } => {
            let out = dev.alloc(sw.out_bytes(n))?;
            let args = [input.arg(), out.arg(), Arg::U32(n as u32), Arg::U32(plan.tile)];
            dev.memset_zero(out, sw.out_bytes(n))?;
            dev.launch(&sw.kernel, dims, &args, selection, TimingOptions::default())?;
            let bytes = dev.download_bytes(out, sw.out_bytes(n))?;
            Ok(WorkloadValue::Bins(words_of(&bytes)))
        }
        WorkloadKind::Scan { .. } => {
            // Three launches: per-tile scan, single-warp spine over
            // the block sums, offset apply.
            let out_bytes = sw.out_bytes(n);
            let out = dev.alloc(out_bytes)?;
            let sums = dev.alloc(4 * u64::from(plan.grid))?;
            dev.memset_zero(sums, 4 * u64::from(plan.grid))?;
            let args =
                [input.arg(), out.arg(), Arg::U32(n as u32), Arg::U32(plan.tile), sums.arg()];
            dev.launch(&sw.kernel, dims, &args, selection, TimingOptions::default())?;
            dev.launch(
                &sw.aux[0],
                LaunchDims::new(1, 32),
                &[sums.arg(), Arg::U32(plan.grid)],
                BlockSelection::All,
                TimingOptions::default(),
            )?;
            dev.launch(&sw.aux[1], dims, &args, selection, TimingOptions::default())?;
            let bytes = dev.download_bytes(out, out_bytes)?;
            Ok(WorkloadValue::Buffer(words_of(&bytes)))
        }
        WorkloadKind::SegSum => {
            let ids = segment_map(n);
            run_segsum(dev, sw, input, n, &ids, selection)
        }
    }
}

/// Run a synthesized segmented sum with explicit segment ids
/// (`ids[i]` = segment of element `i`, sorted ascending; segment
/// count = `ids.last() + 1`). [`run_workload`] calls this with the
/// canonical descriptor expansion ([`segment_map`]); the conformance
/// suite drives it with custom descriptors (one segment,
/// all-segments-length-1, …).
///
/// # Errors
///
/// Propagates simulator errors; rejects non-segsum keys and
/// descriptors shorter than `n`.
pub fn run_segsum(
    dev: &mut Device,
    sw: &SynthesizedWorkload,
    input: DevicePtr,
    n: u64,
    ids: &[u32],
    selection: BlockSelection,
) -> Result<WorkloadValue, SimError> {
    if sw.key.kind != WorkloadKind::SegSum {
        return Err(SimError::InvalidLaunch("run_segsum needs a segsum workload".into()));
    }
    if (ids.len() as u64) < n {
        return Err(SimError::InvalidLaunch(format!(
            "segment descriptor covers {} of {n} elements",
            ids.len()
        )));
    }
    let plan = sw.plan(n);
    let dims = LaunchDims::new(plan.grid, plan.block).with_dynamic_smem(plan.dynamic_smem);
    let nsegs = ids.last().map_or(0, |&s| u64::from(s) + 1);
    let out_bytes = nsegs.max(1) * 4;
    let out = dev.alloc(out_bytes)?;
    dev.memset_zero(out, out_bytes)?;
    let segs = dev.alloc(4 * ids.len().max(1) as u64)?;
    let mut seg_bytes = Vec::with_capacity(ids.len() * 4);
    for &s in ids {
        seg_bytes.extend_from_slice(&s.to_le_bytes());
    }
    dev.upload_bytes(segs, &seg_bytes)?;
    let args = [
        input.arg(),
        out.arg(),
        Arg::U32(n as u32),
        Arg::U32(plan.tile),
        segs.arg(),
        Arg::U32(nsegs as u32),
    ];
    dev.launch(&sw.kernel, dims, &args, selection, TimingOptions::default())?;
    let bytes = dev.download_bytes(out, nsegs * 4)?;
    Ok(WorkloadValue::Buffer(words_of(&bytes)))
}

/// Reinterpret little-endian bytes as 32-bit words.
fn words_of(bytes: &[u8]) -> Vec<u32> {
    bytes.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// Upload `data` to a fresh allocation on `dev`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn upload(dev: &mut Device, data: &[f32]) -> Result<DevicePtr, SimError> {
    let ptr = dev.alloc_f32(data.len() as u64)?;
    dev.upload_f32(ptr, data)?;
    Ok(ptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::ArchConfig;
    use tangram_codegen::{synthesize, Tuning};
    use tangram_passes::planner;

    #[test]
    fn atomic_and_two_kernel_paths_agree() {
        let n = 8192u64;
        let data: Vec<f32> = (0..n).map(|i| ((i % 9) as f32) - 1.0).collect();
        let expect: f32 = data.iter().sum();
        let atomic = synthesize(planner::fig6_by_label('p').unwrap(), Tuning::default()).unwrap();
        let two = synthesize(
            planner::enumerate_original()[0],
            Tuning::default(),
        )
        .unwrap();
        for sv in [&atomic, &two] {
            let mut dev = Device::new(ArchConfig::pascal_p100());
            let input = upload(&mut dev, &data).unwrap();
            let got = run_reduction(&mut dev, sv, input, n, BlockSelection::All).unwrap();
            assert_eq!(got, expect, "{}", sv.id());
        }
    }

    #[test]
    fn clock_advances_per_kernel() {
        let sv = synthesize(planner::fig6_by_label('n').unwrap(), Tuning::default()).unwrap();
        let mut dev = Device::new(ArchConfig::kepler_k40c());
        let input = upload(&mut dev, &vec![1.0; 1024]).unwrap();
        dev.reset_clock();
        run_reduction(&mut dev, &sv, input, 1024, BlockSelection::All).unwrap();
        assert!(dev.elapsed_ns() >= dev.arch().launch_overhead_ns);
        assert_eq!(dev.launches().len(), 1, "atomic versions are single-kernel");
    }
}
