//! First-class workloads for the tuning API (`tangram::workload`).
//!
//! The original public surface was reduction-shaped: `Reducer::sum`
//! and friends, a `Session` that swept `CodeVersion`s, a store keyed
//! by `(op, dtype)` strings. This module makes the *workload* the
//! unit the tuner speaks: a [`Workload`] names what is computed
//! ([`WorkloadKey`]: plain reductions, argmin/argmax with index
//! payloads, bin-indexed histograms) over how many elements, supplies
//! the deterministic oracle corpus ([`Workload::oracle_input`]) and
//! the CPU-reference expected value ([`Workload::expected`]), and
//! [`crate::Session::run`] tunes it end to end.
//!
//! Non-reduce workloads are swept over the six [`WlVariant`]s (three
//! pass families × two grid distributions) crossed with the same
//! block-size/coarsening axes as reductions, reusing the evaluation
//! engine's fan-out, halving masks, and context pool. Winners are
//! validated against the CPU reference *exactly* (`u64` equality for
//! packed arg-pairs, per-bin equality for histograms) before they are
//! reported or persisted.

use std::str::FromStr;
use std::time::Instant;

use gpu_sim::exec::BlockSelection;
use gpu_sim::hash::fx_hash_bytes;
use gpu_sim::{ArchConfig, Device, ExecMode, RaceReport, SimError};
use serde::Serialize;
use tangram_codegen::{synthesize_workload_cached, Tuning};
use tangram_passes::specialize::ReduceOp;
use tangram_passes::workload::{enumerate_workload_variants, SEGMENT_PATTERN};
pub use tangram_passes::workload::{
    enumerate_variants_for, segments_for, Dtype, WlVariant, WorkloadKey, WorkloadKind,
};

use crate::api::CandidateRaces;
use crate::evaluate::{
    run_jobs_with, survivor_mask, ContextPool, EvalOptions, RungStats, SweepMode,
};
use crate::metrics::{SanitizeSummary, StoreSummary};
use crate::runner::{run_workload, upload};
use crate::store::STORE_SCHEMA;
use crate::tuner::{BenchContext, BLOCK_SIZES, COARSEN};

/// A tuning problem: what to compute ([`WorkloadKey`]) over how many
/// elements. The single argument of [`crate::Session::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// What the workload computes (kind + element dtype).
    pub key: WorkloadKey,
    /// Array size in elements.
    pub n: u64,
}

impl Workload {
    /// A workload for `key` over `n` elements.
    pub fn new(key: WorkloadKey, n: u64) -> Self {
        Workload { key, n }
    }

    /// A `sum-f32` reduction over `n` elements (the classic sweep).
    pub fn sum(n: u64) -> Self {
        Workload::new(WorkloadKey::sum(), n)
    }

    /// A `max-f32` reduction over `n` elements.
    pub fn max(n: u64) -> Self {
        Workload::new(WorkloadKey::reduce(ReduceOp::Max), n)
    }

    /// A `min-f32` reduction over `n` elements.
    pub fn min(n: u64) -> Self {
        Workload::new(WorkloadKey::reduce(ReduceOp::Min), n)
    }

    /// An `argmax-f32` workload over `n` elements.
    pub fn argmax(n: u64) -> Self {
        Workload::new(WorkloadKey::argmax(), n)
    }

    /// An `argmin-f32` workload over `n` elements.
    pub fn argmin(n: u64) -> Self {
        Workload::new(WorkloadKey::argmin(), n)
    }

    /// A `hist<bins>-f32` workload over `n` elements.
    pub fn histogram(bins: u32, n: u64) -> Self {
        Workload::new(WorkloadKey::histogram(bins), n)
    }

    /// An inclusive `scan-f32` workload over `n` elements.
    pub fn scan(n: u64) -> Self {
        Workload::new(WorkloadKey::scan(Dtype::F32), n)
    }

    /// An exclusive `exscan-f32` workload over `n` elements.
    pub fn exscan(n: u64) -> Self {
        Workload::new(WorkloadKey::exscan(Dtype::F32), n)
    }

    /// A `segsum-f32` workload over `n` elements (canonical segment
    /// descriptor: [`segment_map`]).
    pub fn segsum(n: u64) -> Self {
        Workload::new(WorkloadKey::segsum(Dtype::F32), n)
    }

    /// The deterministic oracle corpus for this workload's size
    /// ([`workload_input_for`]).
    pub fn oracle_input(&self) -> Vec<f32> {
        workload_input_for(self.key, self.n)
    }

    /// The CPU-reference expected value of this workload over `data`:
    /// [`expected_value`].
    pub fn expected(&self, data: &[f32]) -> WorkloadValue {
        expected_value(self.key, data)
    }
}

impl FromStr for Workload {
    type Err = String;

    /// Parse `"<workload>@<n>"` (e.g. `argmax@65536`); a bare key
    /// parses with `n = 0` (callers supply the size).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('@') {
            Some((key, n)) => Ok(Workload {
                key: key.parse()?,
                n: n.parse().map_err(|_| format!("bad element count `{n}`"))?,
            }),
            None => Ok(Workload { key: s.parse()?, n: 0 }),
        }
    }
}

/// The deterministic workload corpus at size `n`: the resilience
/// oracle's `(i % 17) - 3` ramp with planted extremes for `n >= 8` —
/// a duplicated `+1e30` pair starting at `n/3` (so argmax exercises
/// the smallest-index tie-break) and a duplicated `-1e30` pair
/// starting at `2n/3` (likewise for argmin). NaN-free by
/// construction, and safely binnable: the simulator's `cvt` f32→i32
/// matches [`cpu_ref::histogram_bin`] bit-for-bit even at `±1e30`.
pub fn workload_input(n: u64) -> Vec<f32> {
    let mut data: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) - 3.0).collect();
    if n >= 8 {
        let hi = (n / 3) as usize;
        data[hi] = 1e30;
        data[hi + 1] = 1e30;
        let lo = (2 * n / 3) as usize;
        data[lo] = -1e30;
        data[lo + 1] = -1e30;
    }
    data
}

/// The deterministic scan/segsum corpus at size `n`: the same
/// `(i % 17) - 3` ramp *without* the planted `±1e30` extremes. Every
/// element is an integer in `[-3, 13]`, so every prefix and segment
/// partial at oracle sizes (≤ 2¹⁶ elements ⇒ |sum| < 2²⁰ ≪ 2²⁴) is
/// exactly representable in `f32` — any association or atomic order
/// on the device produces bit-identical results, which is what lets
/// the vector-valued oracles compare with zero tolerance.
pub fn scan_input(n: u64) -> Vec<f32> {
    (0..n).map(|i| ((i % 17) as f32) - 3.0).collect()
}

/// The oracle corpus for `key` at size `n`: scans and segmented sums
/// use the exactness-preserving [`scan_input`] ramp, every other kind
/// the classic [`workload_input`] with planted extremes.
pub fn workload_input_for(key: WorkloadKey, n: u64) -> Vec<f32> {
    match key.kind {
        WorkloadKind::Scan { .. } | WorkloadKind::SegSum => scan_input(n),
        _ => workload_input(n),
    }
}

/// Expand the canonical segment descriptor at size `n`: element `i`'s
/// segment id, following [`SEGMENT_PATTERN`] cyclically (Fibonacci
/// run lengths 1,1,2,3,5,8,13,21 — short head segments stress
/// head-flag handling, the 21-run stresses sorted-run privatization).
/// Sorted ascending from 0; `segments_for(n)` ids total.
pub fn segment_map(n: u64) -> Vec<u32> {
    let mut ids = Vec::with_capacity(n as usize);
    let mut seg: u32 = 0;
    'fill: loop {
        for &len in &SEGMENT_PATTERN {
            if ids.len() as u64 >= n {
                break 'fill;
            }
            let take = len.min(n - ids.len() as u64);
            for _ in 0..take {
                ids.push(seg);
            }
            seg += 1;
        }
    }
    ids
}

/// Tag of [`workload_input`] in a [`BenchContext`]'s input buffer
/// (see [`BenchContext::ensure_input`]). Histogram timing depends on
/// atomic contention, which depends on the data — every measurement
/// of a workload sweep runs over this one corpus so modelled times
/// are deterministic for any thread count.
pub(crate) const WORKLOAD_INPUT_TAG: u64 = 0x774c_434f_5250_5553;

/// Tag of [`scan_input`] in a [`BenchContext`]'s input buffer — the
/// scan/segsum corpus is distinct (no planted extremes), so it hashes
/// under its own tag.
pub(crate) const SCAN_INPUT_TAG: u64 = 0x5343_414e_434f_5250;

/// `(tag, generator)` of the corpus `key` sweeps over.
pub(crate) fn workload_corpus(key: WorkloadKey) -> (u64, fn(u64) -> Vec<f32>) {
    match key.kind {
        WorkloadKind::Scan { .. } | WorkloadKind::SegSum => (SCAN_INPUT_TAG, scan_input),
        _ => (WORKLOAD_INPUT_TAG, workload_input),
    }
}

/// The output of one workload run, in the exact representation the
/// oracle compares: reductions produce a scalar, arg-reductions the
/// packed `(key, complemented index)` pair, histograms one `u32`
/// counter per bin, scans and segmented sums a full output vector of
/// raw 32-bit words.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadValue {
    /// A plain reduction's scalar result.
    Scalar(f32),
    /// An arg-reduction's packed result (monotone key in the high 32
    /// bits, complemented index in the low 32).
    Packed(u64),
    /// A histogram's per-bin counters.
    Bins(Vec<u32>),
    /// A vector-valued result (scan prefixes, per-segment sums): one
    /// raw little-endian 32-bit word per output element — `f32` bit
    /// patterns for `f32` workloads, plain `u32` otherwise. Equality
    /// is bitwise, so oracle comparison is zero-tolerance by
    /// construction.
    Buffer(Vec<u32>),
}

impl WorkloadValue {
    /// The winning index of a packed arg-reduction result. `None` for
    /// the other shapes, and for the empty-input identity (which
    /// unpacks to the `u32::MAX` sentinel: no element won).
    pub fn arg_index(&self) -> Option<u32> {
        match self {
            WorkloadValue::Packed(p) => {
                Some(cpu_ref::unpack_arg_index(*p)).filter(|&i| i != u32::MAX)
            }
            _ => None,
        }
    }

    /// The raw words of a vector-valued result (`None` for the scalar
    /// shapes).
    pub fn buffer(&self) -> Option<&[u32]> {
        match self {
            WorkloadValue::Buffer(w) => Some(w),
            _ => None,
        }
    }

    /// FNV-style fingerprint of a vector-valued result — what the
    /// wire and logs carry instead of megabytes of prefixes. `0` for
    /// scalar shapes.
    pub fn checksum(&self) -> u64 {
        match self {
            WorkloadValue::Buffer(w) => {
                let mut bytes = Vec::with_capacity(w.len() * 4);
                for v in w {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                fx_hash_bytes(&bytes)
            }
            _ => 0,
        }
    }

    /// One-line display for logs.
    pub fn summary(&self) -> String {
        match self {
            WorkloadValue::Scalar(v) => format!("scalar={v}"),
            WorkloadValue::Packed(p) => {
                format!("index={} packed={p:#018x}", cpu_ref::unpack_arg_index(*p))
            }
            WorkloadValue::Bins(b) => {
                format!("bins={} total={}", b.len(), b.iter().map(|&c| u64::from(c)).sum::<u64>())
            }
            WorkloadValue::Buffer(w) => {
                format!("len={} checksum={:#018x}", w.len(), self.checksum())
            }
        }
    }
}

impl Serialize for WorkloadValue {
    fn to_value(&self) -> serde::Value {
        match self {
            WorkloadValue::Scalar(v) => serde::Value::Map(vec![(
                "scalar".to_string(),
                serde::Value::Float(f64::from(*v)),
            )]),
            WorkloadValue::Packed(p) => serde::Value::Map(vec![
                ("packed".to_string(), p.to_value()),
                ("index".to_string(), cpu_ref::unpack_arg_index(*p).to_value()),
            ]),
            WorkloadValue::Bins(b) => {
                serde::Value::Map(vec![("bins".to_string(), b.to_value())])
            }
            // The wire/store form is the length + fingerprint, never
            // the full vector (scan outputs are as large as their
            // inputs).
            WorkloadValue::Buffer(w) => serde::Value::Map(vec![
                ("len".to_string(), (w.len() as u64).to_value()),
                ("checksum".to_string(), self.checksum().to_value()),
            ]),
        }
    }
}

/// The CPU-reference expected value of `key` over `data` — the oracle
/// every sweep winner is validated against. Arg-reductions and
/// histograms are exact (integer results); `sum` folds in `f64` and
/// rounds once at the end, so callers comparing it must use a
/// tolerance (the resilience oracle does), while `max`/`min` are
/// exact folds.
pub fn expected_value(key: WorkloadKey, data: &[f32]) -> WorkloadValue {
    match key.kind {
        WorkloadKind::Reduce(ReduceOp::Sum) => {
            WorkloadValue::Scalar(cpu_ref::parallel_sum(data, 1) as f32)
        }
        WorkloadKind::Reduce(ReduceOp::Max) => {
            WorkloadValue::Scalar(data.iter().copied().fold(f32::NEG_INFINITY, f32::max))
        }
        WorkloadKind::Reduce(ReduceOp::Min) => {
            WorkloadValue::Scalar(data.iter().copied().fold(f32::INFINITY, f32::min))
        }
        WorkloadKind::ArgMax => WorkloadValue::Packed(cpu_ref::argmax_packed(data)),
        WorkloadKind::ArgMin => WorkloadValue::Packed(cpu_ref::argmin_packed(data)),
        WorkloadKind::Histogram { bins } => {
            WorkloadValue::Bins(cpu_ref::histogram_ref(data, bins))
        }
        WorkloadKind::Scan { exclusive } => WorkloadValue::Buffer(match key.dtype {
            Dtype::F32 => {
                let out = if exclusive {
                    cpu_ref::exclusive_scan_f32(data)
                } else {
                    cpu_ref::inclusive_scan_f32(data)
                };
                out.iter().map(|v| v.to_bits()).collect()
            }
            Dtype::U32 => {
                if exclusive {
                    cpu_ref::exclusive_scan_u32(data)
                } else {
                    cpu_ref::inclusive_scan_u32(data)
                }
            }
        }),
        WorkloadKind::SegSum => {
            let ids = segment_map(data.len() as u64);
            WorkloadValue::Buffer(match key.dtype {
                Dtype::F32 => {
                    cpu_ref::segsum_f32(data, &ids).iter().map(|v| v.to_bits()).collect()
                }
                Dtype::U32 => cpu_ref::segsum_u32(data, &ids),
            })
        }
    }
}

/// Fingerprint of the non-reduce variant corpus (the workload
/// analogue of [`crate::store::corpus_fingerprint`]): the store
/// schema, the tuning axes, and every variant id in canonical order.
/// A persisted workload winner swept against a different variant
/// corpus must not warm-start a sweep over this one.
pub fn workload_corpus_fingerprint() -> u64 {
    let mut desc = format!("schema={STORE_SCHEMA};blocks={BLOCK_SIZES:?};coarsen={COARSEN:?};");
    for v in enumerate_workload_variants() {
        desc.push_str(&v.id());
        desc.push('|');
    }
    // The per-kind menus: a persisted scan/segsum winner swept
    // against a different schedule corpus must not warm-start this
    // one.
    for (label, kind) in [
        ("scan", WorkloadKind::Scan { exclusive: false }),
        ("segsum", WorkloadKind::SegSum),
    ] {
        desc.push_str(label);
        desc.push(':');
        for v in enumerate_variants_for(kind) {
            desc.push_str(&v.id());
            desc.push('|');
        }
    }
    fx_hash_bytes(desc.as_bytes())
}

/// One completed workload measurement (the [`crate::evaluate::Measurement`]
/// analogue for variant sweeps). Winners re-synthesize from
/// `(key, variant, tuning)` through the process-wide cache, so the
/// measurement does not carry the kernel.
#[derive(Debug, Clone)]
pub(crate) struct WlMeasurement {
    pub(crate) variant: WlVariant,
    pub(crate) tuning: Tuning,
    pub(crate) time_ns: f64,
}

#[derive(Clone, Copy)]
pub(crate) struct WlJob {
    pub(crate) candidate: usize,
    pub(crate) variant: WlVariant,
    pub(crate) tuning: Tuning,
}

/// The canonical job enumeration of a workload sweep: every variant
/// (family-major) crossed with every block size and coarsening
/// factor. Variant index is the "candidate" the halving masks group
/// by.
pub(crate) fn wl_jobs_for(variants: &[WlVariant]) -> Vec<WlJob> {
    let mut jobs = Vec::new();
    for (candidate, &variant) in variants.iter().enumerate() {
        for &block_size in &BLOCK_SIZES {
            for &coarsen in &COARSEN {
                jobs.push(WlJob { candidate, variant, tuning: Tuning { block_size, coarsen } });
            }
        }
    }
    jobs
}

/// Measure one workload job; `Ok(None)` marks an infeasible
/// combination (synthesis failure or a launch exceeding hardware
/// limits), mirroring [`crate::evaluate::measure_job`].
fn measure_wl_job(
    ctx: &mut BenchContext,
    key: WorkloadKey,
    job: WlJob,
    screen: bool,
) -> Result<Option<WlMeasurement>, SimError> {
    let Ok(sw) = synthesize_workload_cached(key, job.variant, job.tuning) else {
        return Ok(None);
    };
    let (tag, make) = workload_corpus(key);
    ctx.ensure_input(tag, make)?;
    let measured =
        if screen { ctx.measure_workload_screen(&sw) } else { ctx.measure_workload(&sw) };
    match measured {
        Ok(time_ns) => {
            Ok(Some(WlMeasurement { variant: job.variant, tuning: job.tuning, time_ns }))
        }
        Err(SimError::InvalidLaunch(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Sweep every tuning of `variants` for `key` over the pool,
/// exhaustively or with the same screen/survivor halving the
/// reduction sweep uses. The returned vector has one slot per job in
/// canonical order; `None` marks infeasible (and, under halving,
/// pruned) jobs. Slot layout and values are identical for any thread
/// count.
pub(crate) fn evaluate_workload(
    pool: &ContextPool,
    key: WorkloadKey,
    variants: &[WlVariant],
    opts: &EvalOptions,
) -> Result<(Vec<Option<WlMeasurement>>, Vec<RungStats>), SimError> {
    let jobs = wl_jobs_for(variants);
    let threads = opts.threads;
    match opts.sweep {
        SweepMode::Exhaustive => {
            let t0 = Instant::now();
            let results = run_jobs_with(pool, &jobs, threads, &|ctx, job| {
                measure_wl_job(ctx, key, job, false)
            })?;
            let stats = RungStats::tally("full", jobs.len(), &results, t0);
            Ok((results, vec![stats]))
        }
        SweepMode::Halving => {
            let t0 = Instant::now();
            let screen = run_jobs_with(pool, &jobs, threads, &|ctx, job| {
                measure_wl_job(ctx, key, job, true)
            })?;
            let screen_stats = RungStats::tally("screen", jobs.len(), &screen, t0);
            let times: Vec<Option<f64>> =
                screen.iter().map(|m| m.as_ref().map(|m| m.time_ns)).collect();
            let cand_of: Vec<usize> = jobs.iter().map(|j| j.candidate).collect();
            let keep = survivor_mask(&cand_of, &times);
            let surviving: Vec<usize> = (0..jobs.len()).filter(|&i| keep[i]).collect();

            let t1 = Instant::now();
            let subset: Vec<WlJob> = surviving.iter().map(|&i| jobs[i]).collect();
            let full = run_jobs_with(pool, &subset, threads, &|ctx, job| {
                measure_wl_job(ctx, key, job, false)
            })?;
            let mut out: Vec<Option<WlMeasurement>> = Vec::new();
            out.resize_with(jobs.len(), || None);
            let mut measured = 0;
            for (&i, m) in surviving.iter().zip(full) {
                measured += usize::from(m.is_some());
                out[i] = m;
            }
            let survivor_stats = RungStats {
                rung: "survivor".to_string(),
                jobs: surviving.len(),
                measured,
                wall_ms: t1.elapsed().as_secs_f64() * 1e3,
            };
            Ok((out, vec![screen_stats, survivor_stats]))
        }
    }
}

/// The fastest full-fidelity workload measurement (strictly `<`, ties
/// to the earlier canonical slot — same rule as
/// [`crate::evaluate::best_measurement`]).
pub(crate) fn best_wl_measurement(results: &[Option<WlMeasurement>]) -> Option<&WlMeasurement> {
    let mut best: Option<&WlMeasurement> = None;
    for m in results.iter().flatten() {
        if best.is_none_or(|b| m.time_ns < b.time_ns) {
            best = Some(m);
        }
    }
    best
}

/// Run one variant of `key` under the race sanitizer at its first
/// feasible tuning over the oracle corpus (histogram hazards are
/// data-dependent, so the screen runs the same corpus the sweep
/// times). Mirrors the reduction sweep's candidate screen.
pub(crate) fn sanitize_workload_variant(
    arch: &ArchConfig,
    n: u64,
    key: WorkloadKey,
    candidate: usize,
    variant: WlVariant,
) -> Result<Option<CandidateRaces>, SimError> {
    for &block_size in &BLOCK_SIZES {
        for &coarsen in &COARSEN {
            let tuning = Tuning { block_size, coarsen };
            let Ok(sw) = synthesize_workload_cached(key, variant, tuning) else { continue };
            let mut dev = Device::new(arch.clone());
            dev.set_sanitizing(true);
            let input = upload(&mut dev, &workload_input_for(key, n))?;
            match run_workload(&mut dev, &sw, input, n, BlockSelection::All) {
                Ok(_) => {
                    let reports: Vec<RaceReport> =
                        dev.launches().iter().filter_map(|l| l.races.clone()).collect();
                    return Ok(Some(CandidateRaces {
                        candidate,
                        version: variant.id(),
                        block_size,
                        coarsen,
                        reports,
                    }));
                }
                Err(SimError::InvalidLaunch(_)) => continue,
                Err(_) => return Ok(None),
            }
        }
    }
    Ok(None)
}

/// Outcome of validating one variant tuning against the CPU
/// reference.
#[derive(Debug, Clone)]
pub(crate) struct OracleCheck {
    /// The device's output.
    pub(crate) got: WorkloadValue,
    /// The CPU reference's output.
    pub(crate) want: WorkloadValue,
}

impl OracleCheck {
    pub(crate) fn ok(&self) -> bool {
        self.got == self.want
    }
}

/// Run `(variant, tuning)` of `key` exactly over the oracle corpus at
/// `on` elements under `interp`, and compare to the CPU reference.
/// The comparison is exact: packed `u64` equality for arg-reductions,
/// per-bin `u32` equality for histograms.
pub(crate) fn validate_workload_winner(
    arch: &ArchConfig,
    interp: ExecMode,
    key: WorkloadKey,
    variant: WlVariant,
    tuning: Tuning,
    on: u64,
) -> Result<OracleCheck, SimError> {
    let sw = synthesize_workload_cached(key, variant, tuning)
        .map_err(|e| SimError::InvalidLaunch(format!("winner failed to re-synthesize: {e}")))?;
    let data = workload_input_for(key, on);
    let mut dev = Device::new(arch.clone());
    dev.set_exec_mode(interp);
    let input = upload(&mut dev, &data)?;
    let got = run_workload(&mut dev, &sw, input, on, BlockSelection::All)?;
    Ok(OracleCheck { got, want: expected_value(key, &data) })
}

/// The winning row of a workload sweep — the [`crate::SelectionRow`]
/// analogue, keyed by the typed workload and naming the winning
/// variant by its compact id (`DT-AG`).
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadRow {
    /// The workload that was tuned.
    pub workload: WorkloadKey,
    /// Array size (elements).
    pub n: u64,
    /// Winning variant id (see [`WlVariant::id`]).
    pub variant: String,
    /// Winning block size.
    pub block_size: u32,
    /// Winning coarsening factor.
    pub coarsen: u32,
    /// Modelled time of the winner (ns).
    pub time_ns: f64,
}

/// Sweep-level observability for one workload sweep (the
/// [`crate::SweepMetrics`] analogue). Every counter is bit-identical
/// for any thread count; only `wall_ms` is host wall-clock.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadMetrics {
    /// Architecture identifier.
    pub arch: String,
    /// Array size (elements).
    pub n: u64,
    /// The workload that was tuned.
    pub workload: WorkloadKey,
    /// Sweep strategy (`exhaustive`/`halving`).
    pub mode: String,
    /// Interpreter hot path (`reference`/`uop`/`compiled`).
    pub interp: String,
    /// Evaluation worker threads.
    pub threads: usize,
    /// Per-rung job counts and wall-clock timings.
    pub rungs: Vec<RungStats>,
    /// Jobs in the canonical enumeration.
    pub total_jobs: usize,
    /// Jobs measured at full fidelity.
    pub measured: usize,
    /// Jobs pruned by the halving screen (0 for exhaustive sweeps).
    pub pruned: usize,
    /// Infeasible jobs (synthesis failures and launches over limits).
    pub infeasible: usize,
    /// Race-sanitizer screen totals (present when the sweep ran
    /// sanitized).
    pub sanitize: Option<SanitizeSummary>,
    /// Persistent tuning-store outcome (present when the session has
    /// a store configured).
    pub store: Option<StoreSummary>,
    /// Wall-clock of the whole sweep in milliseconds
    /// (nondeterministic; excluded from determinism checks).
    pub wall_ms: f64,
}

/// Everything [`crate::Session::run`] reports for a non-reduce
/// workload sweep.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// The winning row.
    pub row: WorkloadRow,
    /// The winner's output over the oracle corpus at
    /// [`WorkloadReport::oracle_n`] elements, exactly equal to the
    /// CPU reference (the sweep fails otherwise).
    pub value: WorkloadValue,
    /// Size the oracle validation ran at (the sweep size capped so
    /// every block executes functionally).
    pub oracle_n: u64,
    /// Per-variant race-sanitizer outcomes (present when the sweep
    /// ran sanitized).
    pub races: Option<Vec<CandidateRaces>>,
    /// Sweep-level counters.
    pub metrics: WorkloadMetrics,
}

impl WorkloadReport {
    /// The canonical winner tokens shared by the `sweep` bin and the
    /// tuning daemon: `winner=<variant> block=<b> coarsen=<c>
    /// time_ns=<t>`. Byte-identical between both by construction.
    pub fn winner_line(&self) -> String {
        format!(
            "winner={} block={} coarsen={} time_ns={}",
            self.row.variant, self.row.block_size, self.row.coarsen, self.row.time_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_plants_both_extremes() {
        for n in [8u64, 64, 1000, 65_536] {
            let data = workload_input(n);
            let hi = (n / 3) as usize;
            let lo = (2 * n / 3) as usize;
            assert_eq!(data[hi], 1e30);
            assert_eq!(data[hi + 1], 1e30);
            assert_eq!(data[lo], -1e30);
            assert_eq!(data[lo + 1], -1e30);
            // The tie-break: argmax must report the *first* of the
            // duplicated maxima, argmin the first of the minima.
            let argmax = expected_value(WorkloadKey::argmax(), &data);
            assert_eq!(argmax.arg_index(), Some(hi as u32), "n={n}");
            let argmin = expected_value(WorkloadKey::argmin(), &data);
            assert_eq!(argmin.arg_index(), Some(lo as u32), "n={n}");
        }
        // Tiny corpora have no planted extremes but still an oracle.
        let tiny = workload_input(4);
        assert_eq!(expected_value(WorkloadKey::argmax(), &tiny).arg_index(), Some(3));
    }

    #[test]
    fn histogram_oracle_counts_every_element() {
        let data = workload_input(4096);
        let WorkloadValue::Bins(bins) = expected_value(WorkloadKey::histogram(64), &data) else {
            panic!("histogram oracle must produce bins");
        };
        assert_eq!(bins.len(), 64);
        assert_eq!(bins.iter().map(|&c| u64::from(c)).sum::<u64>(), 4096);
    }

    #[test]
    fn job_enumeration_is_variant_major() {
        let variants = enumerate_workload_variants();
        let jobs = wl_jobs_for(&variants);
        assert_eq!(jobs.len(), variants.len() * BLOCK_SIZES.len() * COARSEN.len());
        assert!(jobs.windows(2).all(|w| w[0].candidate <= w[1].candidate));
    }

    #[test]
    fn workload_parses_with_and_without_size() {
        let w: Workload = "argmax@65536".parse().unwrap();
        assert_eq!(w, Workload::argmax(65_536));
        let w: Workload = "hist128".parse().unwrap();
        assert_eq!(w.key, WorkloadKey::histogram(128));
        assert!("warp9@12".parse::<Workload>().is_err());
        assert!("argmax@lots".parse::<Workload>().is_err());
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(workload_corpus_fingerprint(), workload_corpus_fingerprint());
    }

    #[test]
    fn segment_map_agrees_with_segments_for() {
        for n in [0u64, 1, 2, 53, 54, 55, 1000, 65_536] {
            let ids = segment_map(n);
            assert_eq!(ids.len() as u64, n);
            assert!(ids.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1), "sorted, gapless");
            let nsegs = ids.last().map_or(0, |&s| u64::from(s) + 1);
            assert_eq!(nsegs, segments_for(n), "n={n}");
        }
    }

    #[test]
    fn scan_corpus_stays_in_the_exact_envelope() {
        let data = scan_input(65_536);
        let mut acc = 0.0f64;
        for &x in &data {
            assert_eq!(x, x.trunc(), "integer-valued");
            acc += f64::from(x);
            assert!(acc.abs() < (1u64 << 24) as f64, "prefix must stay exactly representable");
        }
        // The f32 fold therefore equals the f64 fold, bit for bit.
        assert_eq!(data.iter().sum::<f32>() as f64, acc);
    }

    #[test]
    fn buffer_values_checksum_and_summarize_without_the_payload() {
        let v = WorkloadValue::Buffer(vec![1, 2, 3]);
        assert_ne!(v.checksum(), WorkloadValue::Buffer(vec![1, 2, 4]).checksum());
        let s = v.summary();
        assert!(s.contains("len=3"), "got: {s}");
        assert!(s.contains("checksum="), "got: {s}");
        // The serialized form carries length + checksum, not 3 words.
        let json = serde_json::to_string(&serde::Serialize::to_value(&v)).unwrap();
        assert!(json.contains("\"len\""), "got: {json}");
        assert!(!json.contains('['), "must not serialize the payload: {json}");
    }

    #[test]
    fn scan_oracle_shapes_track_output_shape() {
        let data = scan_input(100);
        for key in [WorkloadKey::scan(Dtype::F32), WorkloadKey::exscan(Dtype::U32)] {
            let WorkloadValue::Buffer(words) = expected_value(key, &data) else {
                panic!("scan oracle must produce a buffer");
            };
            assert_eq!(words.len() as u64, key.kind.output_shape(100).0);
        }
        let WorkloadValue::Buffer(words) =
            expected_value(WorkloadKey::segsum(Dtype::F32), &data)
        else {
            panic!("segsum oracle must produce a buffer");
        };
        assert_eq!(words.len() as u64, segments_for(100));
    }
}
